/**
 * @file
 * Trace workbench: generate any of the library's workload traces to a
 * portable text file, inspect it, or replay it on a chosen NoC
 * configuration -- the glue a user needs to evaluate their *own*
 * traffic on FastTrack.
 *
 * Usage:
 *   trace_tool gen <spmv|graph|dataflow|parsec> <n> <out-file>
 *   trace_tool info <file>
 *   trace_tool replay <file> <hoplite|ft-full|ft-inject> [D] [R]
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "sim/simulation.hpp"
#include "workloads/dataflow.hpp"
#include "workloads/graph_analytics.hpp"
#include "workloads/mp_overlay.hpp"
#include "workloads/spmv.hpp"

using namespace fasttrack;

namespace {

int
usage()
{
    std::cerr
        << "usage:\n"
        << "  trace_tool gen <spmv|graph|dataflow|parsec> <n> <file>\n"
        << "  trace_tool info <file>\n"
        << "  trace_tool replay <file> <hoplite|ft-full|ft-inject> "
           "[D=2] [R=1]\n";
    return 2;
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        FT_FATAL("cannot open trace file: ", path);
    return Trace::load(in);
}

int
cmdGen(const std::string &kind, std::uint32_t n,
       const std::string &path)
{
    Trace trace;
    if (kind == "spmv") {
        MatrixParams params = spmvCatalog().front();
        trace = spmvTrace(generateMatrix(params), n);
    } else if (kind == "graph") {
        const GraphBenchmark bench = graphCatalog().front();
        trace = graphPushTrace(bench.build(), n,
                               defaultPartition(bench));
    } else if (kind == "dataflow") {
        trace = dataflowTrace(sparseLuDag(luCatalog().front()), n);
    } else if (kind == "parsec") {
        trace = mpOverlayTrace(parsecCatalog().front(), n,
                               std::min(32u, n * n));
    } else {
        return usage();
    }
    std::ofstream out(path);
    if (!out)
        FT_FATAL("cannot write trace file: ", path);
    trace.save(out);
    std::cout << "wrote " << trace.messages.size() << " messages ("
              << trace.name << ") to " << path << "\n";
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const Trace trace = loadTrace(path);
    std::uint64_t self = 0, with_deps = 0;
    std::map<NodeId, std::uint64_t> per_src;
    for (const auto &m : trace.messages) {
        self += m.src == m.dst;
        with_deps += !m.deps.empty();
        ++per_src[m.src];
    }
    std::uint64_t busiest = 0;
    for (const auto &[node, count] : per_src)
        busiest = std::max(busiest, count);

    Table table("trace " + trace.name);
    table.setHeader({"property", "value"});
    table.addRow({"NoC side", Table::num(
                      static_cast<std::uint64_t>(trace.n))});
    table.addRow({"messages", Table::num(
                      static_cast<std::uint64_t>(
                          trace.messages.size()))});
    table.addRow({"node-local", Table::num(self)});
    table.addRow({"with dependencies", Table::num(with_deps)});
    table.addRow({"active sources", Table::num(
                      static_cast<std::uint64_t>(per_src.size()))});
    table.addRow({"busiest source msgs", Table::num(busiest)});
    table.addRow({"last timestamp", Table::num(
                      trace.messages.empty()
                          ? 0
                          : trace.messages.back().earliest)});
    table.print(std::cout);
    return 0;
}

int
cmdReplay(const std::string &path, const std::string &kind,
          std::uint32_t d, std::uint32_t r)
{
    const Trace trace = loadTrace(path);
    NocConfig cfg = NocConfig::hoplite(trace.n);
    if (kind == "ft-full")
        cfg = NocConfig::fastTrack(trace.n, d, r);
    else if (kind == "ft-inject")
        cfg = NocConfig::fastTrack(trace.n, d, r, NocVariant::ftInject);
    else if (kind != "hoplite")
        return usage();

    const TraceResult res =
        runSim({.config = &cfg, .trace = &trace}).trace;
    Table table("replay of " + trace.name + " on " + cfg.describe());
    table.setHeader({"metric", "value"});
    table.addRow({"completion (cycles)", Table::num(res.completion)});
    table.addRow({"avg latency", Table::num(
                      res.stats.totalLatency.mean(), 1)});
    table.addRow({"p99 latency", Table::num(
                      res.stats.totalLatency.percentile(99))});
    table.addRow({"worst latency", Table::num(
                      res.stats.totalLatency.max())});
    table.addRow({"short hops", Table::num(
                      res.stats.shortHopTraversals)});
    table.addRow({"express hops", Table::num(
                      res.stats.expressHopTraversals)});
    table.addRow({"misroutes", Table::num(res.stats.totalMisroutes())});
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "gen" && argc >= 5) {
        return cmdGen(argv[2],
                      static_cast<std::uint32_t>(std::atoi(argv[3])),
                      argv[4]);
    }
    if (cmd == "info")
        return cmdInfo(argv[2]);
    if (cmd == "replay" && argc >= 4) {
        const std::uint32_t d =
            argc > 4 ? static_cast<std::uint32_t>(std::atoi(argv[4]))
                     : 2;
        const std::uint32_t r =
            argc > 5 ? static_cast<std::uint32_t>(std::atoi(argv[5]))
                     : 1;
        return cmdReplay(argv[2], argv[3], d, r);
    }
    return usage();
}
