/**
 * @file
 * Link-utilization heatmaps: run a workload and render per-link
 * traversal intensity for each lane class as ASCII grids, showing how
 * express links drain traffic off the short rings.
 *
 * Run: ./noc_heatmap [pattern] [noc-side] [D] [R]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "noc/network.hpp"
#include "traffic/injector.hpp"

using namespace fasttrack;

namespace {

/** Map a utilization fraction to a density glyph. */
char
glyph(double frac)
{
    static const char ramp[] = " .:-=+*#%@";
    const int idx = std::min(9, static_cast<int>(frac * 10.0));
    return ramp[idx];
}

void
printGrid(const Network &noc, OutPort port, const char *title)
{
    const std::uint32_t n = noc.topology().n();
    const auto &links = noc.linkTraversals();
    std::uint64_t peak = 1;
    for (const auto &per_router : links)
        peak = std::max(peak,
                        per_router[static_cast<std::size_t>(port)]);

    std::cout << title << " (peak " << peak << " traversals)\n";
    for (std::uint32_t y = 0; y < n; ++y) {
        std::cout << "  ";
        for (std::uint32_t x = 0; x < n; ++x) {
            const NodeId id = y * n + x;
            const std::uint64_t v =
                links[id][static_cast<std::size_t>(port)];
            std::cout << glyph(static_cast<double>(v) /
                               static_cast<double>(peak));
        }
        std::cout << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string pattern_name = argc > 1 ? argv[1] : "TRANSPOSE";
    const std::uint32_t n = argc > 2 ? std::atoi(argv[2]) : 8;
    const std::uint32_t d = argc > 3 ? std::atoi(argv[3]) : 2;
    const std::uint32_t r = argc > 4 ? std::atoi(argv[4]) : 1;

    NocConfig cfg = d == 0 ? NocConfig::hoplite(n)
                           : NocConfig::fastTrack(n, d, r);
    Network noc(cfg);
    SyntheticWorkload workload;
    workload.pattern = patternFromString(pattern_name);
    workload.injectionRate = 0.5;
    workload.packetsPerPe = 512;
    SyntheticInjector injector(noc, workload);
    while (!injector.done()) {
        injector.tick();
        noc.step();
    }

    std::cout << "Link utilization of " << cfg.describe() << " under "
              << pattern_name << " @50% injection ("
              << noc.stats().delivered << " packets, " << noc.now()
              << " cycles)\n\n";
    printGrid(noc, OutPort::eSh, "East short links");
    printGrid(noc, OutPort::sSh, "South short links");
    if (cfg.isFastTrack()) {
        printGrid(noc, OutPort::eEx, "East express links");
        printGrid(noc, OutPort::sEx, "South express links");
        const auto &s = noc.stats();
        const double total = static_cast<double>(
            s.shortHopTraversals + s.expressHopTraversals);
        std::cout << "express share of all traversals: "
                  << Table::num(
                         100.0 *
                             static_cast<double>(s.expressHopTraversals) /
                             total, 1)
                  << "%\n";
    }
    return 0;
}
