/**
 * @file
 * Packet journey tracer: follows individual packets hop by hop
 * through a loaded NoC, printing each router traversal with the lane
 * class taken — the debugging view used to audit the routing policy
 * against the paper (e.g. Fig 8's example trajectory).
 *
 * Run: ./packet_tracer [N] [D] [R] [src-x src-y dst-x dst-y]
 */

#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "noc/network.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 8;
    const std::uint32_t d = argc > 2 ? std::atoi(argv[2]) : 2;
    const std::uint32_t r = argc > 3 ? std::atoi(argv[3]) : 1;
    Coord src{0, 3}, dst{3, 0}; // the paper's Fig 8 example
    if (argc > 7) {
        src = {static_cast<std::uint16_t>(std::atoi(argv[4])),
               static_cast<std::uint16_t>(std::atoi(argv[5]))};
        dst = {static_cast<std::uint16_t>(std::atoi(argv[6])),
               static_cast<std::uint16_t>(std::atoi(argv[7]))};
    }

    const NocConfig cfg = d == 0 ? NocConfig::hoplite(n)
                                 : NocConfig::fastTrack(n, d, r);
    Network noc(cfg);

    constexpr std::uint64_t kTracked = 1;
    noc.setJourneyTracer([&](const Packet &p, NodeId at, OutPort out,
                             Cycle when) {
        if (p.id != kTracked)
            return;
        std::cout << "  cycle " << when << ": at "
                  << coordToString(toCoord(at, n));
        if (out == OutPort::none)
            std::cout << " -> delivered to client";
        else
            std::cout << " -> leaves on " << toString(out);
        if (p.deflections)
            std::cout << "   (deflections so far: " << p.deflections
                      << ")";
        std::cout << "\n";
    });

    // Background load so the traced packet meets real contention.
    Rng rng(99);
    std::uint64_t id = 100;
    auto background = [&] {
        for (NodeId s = 0; s < cfg.pes(); ++s) {
            if (!noc.hasPendingOffer(s) && rng.nextBool(0.25)) {
                Packet p;
                p.id = ++id;
                p.src = s;
                NodeId t = static_cast<NodeId>(
                    rng.nextBelow(cfg.pes() - 1));
                if (t >= s)
                    ++t;
                p.dst = t;
                noc.offer(p);
            }
        }
    };
    for (int warm = 0; warm < 20; ++warm) {
        background();
        noc.step();
    }

    std::cout << cfg.describe() << ": tracing packet "
              << coordToString(src) << " -> " << coordToString(dst)
              << " under 25% background load\n";
    Packet tracked;
    tracked.id = kTracked;
    tracked.src = toNodeId(src, n);
    tracked.dst = toNodeId(dst, n);
    tracked.created = noc.now();
    noc.offer(tracked);

    bool done = false;
    noc.setDeliverCallback([&](const Packet &p, Cycle when) {
        if (p.id != kTracked)
            return;
        done = true;
        std::cout << "delivered after " << when - p.created
                  << " cycles: " << p.shortHops << " short + "
                  << p.expressHops << " express hops, "
                  << p.deflections << " deflections\n";
    });
    for (int guard = 0; guard < 10000 && !done; ++guard) {
        background();
        noc.step();
    }
    if (!done)
        std::cout << "packet still in flight after guard!\n";
    return done ? 0 : 1;
}
