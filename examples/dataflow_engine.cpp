/**
 * @file
 * Domain scenario: a token-dataflow engine (the paper's sparse-LU
 * case study, Fig 15c). Builds a low-ILP elimination DAG, distributes
 * its operations over the PEs, and replays the token traffic --
 * showing why latency-bound workloads care about express links and
 * how compute delay shifts the bottleneck between PEs and NoC.
 *
 * Run: ./dataflow_engine [ops] [noc-side] [compute-delay]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/simulation.hpp"
#include "workloads/dataflow.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    const std::uint32_t ops = argc > 1 ? std::atoi(argv[1]) : 6000;
    const std::uint32_t n = argc > 2 ? std::atoi(argv[2]) : 8;
    const Cycle delay = argc > 3 ? std::atoi(argv[3]) : 2;

    LuDagParams params;
    params.name = "example";
    params.nodes = ops;
    params.avgWidth = 12.0;
    params.avgFanin = 1.8;
    const DataflowDag dag = sparseLuDag(params);

    std::cout << "Token dataflow engine example\n"
              << "DAG: " << dag.nodeCount << " ops, "
              << dag.edgeCount() << " token edges, depth "
              << dag.depth() << " (avg ILP "
              << Table::num(dag.avgWidth(), 1) << ")\n"
              << "critical path alone needs >= "
              << dag.depth() * (1 + delay)
              << " cycles of compute+firing before any NoC time\n\n";

    const Trace trace = dataflowTrace(dag, n, delay);

    Table table("makespan by NoC (lower is better)");
    table.setHeader({"NoC", "completion (cycles)", "avg token latency",
                     "speedup"});

    struct Candidate
    {
        std::string label;
        NocConfig cfg;
    };
    const Candidate noc_list[] = {
        {"Hoplite", NocConfig::hoplite(n)},
        {"FT(2,1)", NocConfig::fastTrack(n, 2, 1)},
        {"FT(2,2)", NocConfig::fastTrack(n, 2, 2)},
    };

    double baseline = 0.0;
    for (const Candidate &cand : noc_list) {
        const TraceResult res =
            runSim({.config = &cand.cfg, .trace = &trace}).trace;
        if (baseline == 0.0)
            baseline = static_cast<double>(res.completion);
        table.addRow({cand.label, Table::num(res.completion),
                      Table::num(res.stats.totalLatency.mean(), 1),
                      Table::num(baseline /
                                     static_cast<double>(res.completion),
                                 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nEvery token traversal sits on the critical path "
                 "of some op chain: shaving per-hop latency with "
                 "express links compounds across the DAG depth. Try "
                 "compute-delay 20 to emulate heavyweight PEs and "
                 "watch the NoC stop mattering.\n";
    return 0;
}
