/**
 * @file
 * Quickstart: build a FastTrack NoC and a baseline Hoplite NoC, run
 * the same random workload on both, and compare throughput, latency
 * and FPGA cost -- the library's core loop in ~60 lines.
 *
 * Run: ./quickstart [N] [injection-rate]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "fpga/area_model.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 8;
    const double rate = argc > 2 ? std::atof(argv[2]) : 1.0;

    std::cout << "FastTrack quickstart: " << n << "x" << n
              << " NoC, RANDOM traffic, injection rate " << rate
              << ", 1K packets/PE\n\n";

    AreaModel area;
    Table table("Hoplite vs FastTrack at a glance");
    table.setHeader({"NoC", "rate(pkt/cyc/PE)", "avg-lat(cyc)",
                     "worst-lat", "deflections", "LUTs", "MHz",
                     "Mpkts/s"});

    for (const NocUnderTest &nut : standardLineup(n)) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = rate;
        SynthResult res = runSim({.config = &nut.config,
                                  .channels = nut.channels,
                                  .workload = &workload})
                              .synth;

        const NocCost cost =
            area.nocCost(nut.config.toSpec(256, nut.channels));
        const double mpkts = res.sustainedRate() * nut.config.pes() *
                             cost.frequencyMhz;
        table.addRow({nut.label, Table::num(res.sustainedRate(), 4),
                      Table::num(res.avgLatency(), 1),
                      Table::num(res.worstLatency()),
                      Table::num(res.stats.totalDeflections()),
                      Table::num(cost.luts), Table::num(
                          cost.frequencyMhz, 0),
                      Table::num(mpkts, 1)});
    }
    table.print(std::cout);

    std::cout << "\nExpress links let packets skip " << 2
              << " routers per cycle; the FT(64,2,1) row should show "
                 "roughly 2-2.5x the Hoplite sustained rate.\n";
    return 0;
}
