/**
 * @file
 * Domain scenario: a sparse matrix-vector multiply accelerator whose
 * PEs exchange vector entries over the NoC (the paper's Fig 15a case
 * study). Generates a circuit-style matrix, synthesizes its
 * communication trace, and compares Hoplite against FastTrack
 * configurations in both cycles and wall-clock microseconds.
 *
 * Run: ./spmv_accelerator [rows] [noc-side] [localFraction]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "fpga/area_model.hpp"
#include "sim/simulation.hpp"
#include "workloads/spmv.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    const std::uint32_t rows = argc > 1 ? std::atoi(argv[1]) : 8000;
    const std::uint32_t n = argc > 2 ? std::atoi(argv[2]) : 8;
    const double local = argc > 3 ? std::atof(argv[3]) : 0.6;

    MatrixParams params;
    params.name = "example";
    params.rows = rows;
    params.avgNnzPerRow = 6.0;
    params.localFraction = local;
    const SparseMatrix matrix = generateMatrix(params);

    std::cout << "SpMV accelerator example\n"
              << "matrix: " << matrix.rows << " rows, " << matrix.nnz()
              << " nonzeros, "
              << Table::num(100.0 * matrix.bandedFraction(
                                static_cast<std::uint32_t>(
                                    0.02 * matrix.rows)), 1)
              << "% within the 2% band\n";

    const Trace trace = spmvTrace(matrix, n);
    std::uint64_t self = 0;
    for (const auto &m : trace.messages)
        self += m.src == m.dst;
    std::cout << "trace: " << trace.messages.size() << " messages ("
              << self << " node-local) on a " << n << "x" << n
              << " NoC\n\n";

    AreaModel area;
    Table table("one SpMV sweep: routing time by NoC");
    table.setHeader({"NoC", "cycles", "MHz", "time(us)", "LUTs",
                     "speedup"});

    struct Candidate
    {
        std::string label;
        NocConfig cfg;
    };
    std::vector<Candidate> noc_list = {
        {"Hoplite", NocConfig::hoplite(n)},
    };
    if (n >= 4) {
        noc_list.push_back({"FT(2,1)", NocConfig::fastTrack(n, 2, 1)});
        noc_list.push_back({"FT(2,2)", NocConfig::fastTrack(n, 2, 2)});
    }
    if (n >= 8)
        noc_list.push_back({"FT(4,1)", NocConfig::fastTrack(n, 4, 1)});

    double hoplite_us = 0.0;
    for (const Candidate &cand : noc_list) {
        const TraceResult res =
            runSim({.config = &cand.cfg, .trace = &trace}).trace;
        const NocCost cost = area.nocCost(cand.cfg.toSpec(256));
        const double us =
            static_cast<double>(res.completion) / cost.frequencyMhz;
        if (hoplite_us == 0.0)
            hoplite_us = us;
        table.addRow({cand.label, Table::num(res.completion),
                      Table::num(cost.frequencyMhz, 0),
                      Table::num(us, 1), Table::num(cost.luts),
                      Table::num(hoplite_us / us, 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nTip: raise localFraction toward 0.95 to emulate "
                 "hamm_memplus-style matrices where block mapping "
                 "keeps traffic local and FastTrack's edge shrinks.\n";
    return 0;
}
