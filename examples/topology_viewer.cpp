/**
 * @file
 * Topology viewer: renders any FT(N^2, D, R) as a Fig 7-style map -
 * router kinds (Black/Grey/White), express-link start columns/rows,
 * wiring bill, and the per-kind resource budget.
 *
 * Run: ./topology_viewer [N] [D] [R] [variant]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "fpga/area_model.hpp"
#include "noc/topology.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 8;
    const std::uint32_t d = argc > 2 ? std::atoi(argv[2]) : 2;
    const std::uint32_t r = argc > 3 ? std::atoi(argv[3]) : 2;
    const bool inject = argc > 4 && std::strcmp(argv[4], "inject") == 0;

    const NocConfig cfg =
        d == 0 ? NocConfig::hoplite(n)
               : NocConfig::fastTrack(n, d, r,
                                      inject ? NocVariant::ftInject
                                             : NocVariant::ftFull);
    Topology topo(cfg);

    std::cout << cfg.describe() << " router map "
              << "(#=full express, +=one dimension, .=plain Hoplite)\n\n";
    std::cout << "    ";
    for (std::uint32_t x = 0; x < n; ++x)
        std::cout << (topo.hasExpressX(x) ? "E" : " ");
    std::cout << "   <- columns driving X express links\n";
    for (std::uint32_t y = 0; y < n; ++y) {
        std::cout << (topo.hasExpressY(y) ? "  E " : "    ");
        for (std::uint32_t x = 0; x < n; ++x) {
            switch (topo.kindAt({static_cast<std::uint16_t>(x),
                                 static_cast<std::uint16_t>(y)})) {
              case RouterArch::ftFull:
              case RouterArch::ftInject:
                std::cout << "#";
                break;
              case RouterArch::ftGrey:
                std::cout << "+";
                break;
              default:
                std::cout << ".";
            }
        }
        std::cout << "\n";
    }

    const auto kinds = AreaModel::kindCounts(n, cfg.costD(), r);
    AreaModel area;
    Table table("\nresource budget at 256b");
    table.setHeader({"kind", "count", "LUTs each", "FFs each"});
    const auto full_arch =
        inject ? RouterArch::ftInject : RouterArch::ftFull;
    if (kinds.black) {
        const RouterCost c = area.routerCost(full_arch, 256);
        table.addRow({"Black (both dims)", Table::num(
                          static_cast<std::uint64_t>(kinds.black)),
                      Table::num(static_cast<std::uint64_t>(c.luts)),
                      Table::num(static_cast<std::uint64_t>(c.ffs))});
    }
    if (kinds.grey) {
        const RouterCost c = area.routerCost(RouterArch::ftGrey, 256);
        table.addRow({"Grey (one dim)", Table::num(
                          static_cast<std::uint64_t>(kinds.grey)),
                      Table::num(static_cast<std::uint64_t>(c.luts)),
                      Table::num(static_cast<std::uint64_t>(c.ffs))});
    }
    if (kinds.white) {
        const RouterCost c = area.routerCost(RouterArch::hoplite, 256);
        table.addRow({"White (Hoplite)", Table::num(
                          static_cast<std::uint64_t>(kinds.white)),
                      Table::num(static_cast<std::uint64_t>(c.luts)),
                      Table::num(static_cast<std::uint64_t>(c.ffs))});
    }
    table.print(std::cout);

    const NocCost cost = area.nocCost(cfg.toSpec(256));
    std::cout << "\ntotals: " << cost.luts << " LUTs, " << cost.ffs
              << " FFs, " << topo.tracksPerRing()
              << " tracks/ring (" << cost.wireCount
              << " ring tracks), "
              << Table::num(cost.frequencyMhz, 0) << " MHz\n";
    return 0;
}
