/**
 * @file
 * Design-space exploration: enumerate every legal FastTrack topology
 * (D, R, variant) plus replicated-Hoplite alternatives for one system
 * size, measure saturated throughput, cost them with the FPGA models,
 * and report the LUT-throughput Pareto frontier -- the methodology the
 * paper's Section IV-A proposes for tuning cost vs performance.
 *
 * Run: ./design_space_explorer [noc-side] [datawidth]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "fpga/power_model.hpp"
#include "fpga/routability.hpp"
#include "sim/experiment.hpp"

using namespace fasttrack;

namespace {

struct DesignPoint
{
    std::string label;
    NocConfig cfg;
    std::uint32_t channels = 1;
    NocCost cost;
    double rate = 0.0;  ///< pkt/cycle/PE at saturation
    double mpkts = 0.0; ///< wall-clock bandwidth
    double watts = 0.0;
    bool pareto = false;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 8;
    const std::uint32_t width = argc > 2 ? std::atoi(argv[2]) : 256;

    AreaModel area;
    PowerModel power(area);
    RoutabilityModel routability(area);

    // Enumerate the design space.
    std::vector<DesignPoint> points;
    auto add = [&](std::string label, NocConfig cfg,
                   std::uint32_t channels) {
        DesignPoint p;
        p.label = std::move(label);
        p.cfg = cfg;
        p.channels = channels;
        points.push_back(p);
    };
    for (std::uint32_t ch : {1u, 2u, 3u}) {
        add(ch == 1 ? "Hoplite" : "Hoplite-" + std::to_string(ch) + "x",
            NocConfig::hoplite(n), ch);
    }
    for (std::uint32_t d = 1; d <= n / 2; ++d) {
        for (std::uint32_t r = 1; r <= d; ++r) {
            if (d % r != 0 || (r > 1 && n % r != 0))
                continue;
            add("FT(" + std::to_string(d) + "," + std::to_string(r) +
                    ")", NocConfig::fastTrack(n, d, r), 1);
            if (n % d == 0) {
                add("FTlite(" + std::to_string(d) + "," +
                        std::to_string(r) + ")",
                    NocConfig::fastTrack(n, d, r, NocVariant::ftInject),
                    1);
            }
        }
    }

    std::cout << "Exploring " << points.size() << " designs for a "
              << n << "x" << n << " NoC at " << width << "b...\n\n";

    // Measure and cost every point; drop unroutable ones.
    std::vector<DesignPoint> feasible;
    for (DesignPoint &p : points) {
        const NocSpec spec = p.cfg.toSpec(width, p.channels);
        if (!routability.map(spec).feasible) {
            std::cout << "  (skipping " << p.label
                      << ": does not fit the device)\n";
            continue;
        }
        p.cost = area.nocCost(spec);
        const SynthResult res = saturationRun(
            {p.label, p.cfg, p.channels}, TrafficPattern::random, 512);
        p.rate = res.sustainedRate();
        p.mpkts = p.rate * p.cfg.pes() * p.cost.frequencyMhz;
        p.watts = power.dynamicPowerW(spec);
        feasible.push_back(p);
    }

    // Pareto frontier on (LUTs minimized, Mpkts/s maximized).
    for (DesignPoint &p : feasible) {
        p.pareto = std::none_of(
            feasible.begin(), feasible.end(), [&](const DesignPoint &q) {
                return (q.cost.luts <= p.cost.luts &&
                        q.mpkts > p.mpkts) ||
                       (q.cost.luts < p.cost.luts &&
                        q.mpkts >= p.mpkts);
            });
    }
    std::sort(feasible.begin(), feasible.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  return a.cost.luts < b.cost.luts;
              });

    Table table("design space (RANDOM @100% injection); * = on the "
                "LUT-bandwidth Pareto frontier");
    table.setHeader({"design", "LUTs", "wires", "MHz", "W",
                     "rate(pkt/cyc/PE)", "Mpkts/s", "Pareto"});
    for (const DesignPoint &p : feasible) {
        table.addRow({p.label, Table::num(p.cost.luts),
                      Table::num(static_cast<std::uint64_t>(
                          p.cost.wireCount)),
                      Table::num(p.cost.frequencyMhz, 0),
                      Table::num(p.watts, 1), Table::num(p.rate, 4),
                      Table::num(p.mpkts, 0), p.pareto ? "*" : ""});
    }
    table.print(std::cout);
    return 0;
}
