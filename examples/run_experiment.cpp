/**
 * @file
 * Config-file experiment runner: describe a NoC and a synthetic
 * workload in a key=value file and get the full measurement row --
 * scripting without recompilation.
 *
 * Run: ./run_experiment <config-file>
 *
 * Example config:
 *
 *     # 8x8 FastTrack under random traffic
 *     noc      = ft-full     # hoplite | ft-full | ft-inject
 *     n        = 8
 *     d        = 2
 *     r        = 1
 *     channels = 1
 *     pattern  = RANDOM      # RANDOM | LOCAL | BITCOMPL | TRANSPOSE
 *     rate     = 0.5
 *     packets  = 1024
 *     seed     = 1
 *     width    = 256         # datapath bits for the cost models
 *     short_stages   = 0     # extra link pipeline registers
 *     express_stages = 0
 */

#include <iostream>
#include <string>

#include "common/config_file.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "fpga/power_model.hpp"
#include "net/endpoint.hpp"
#include "sim/batch_runner.hpp"
#include "sim/remote.hpp"
#include "sim/simulation.hpp"

using namespace fasttrack;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: run_experiment <config-file> [--csv]"
                     " [--remote HOST:PORT[,HOST:PORT...]]"
                     " [--shard-cycles N]"
                     " [--snapshot-every N] [--snapshot-dir DIR]"
                     " [--resume DIR] [--max-cycles N]\n";
        return 2;
    }
    SimConfig sim;
    Cycle shard_cycles = 0;
    for (int i = 2; i < argc; ++i) {
        if (std::string(argv[i]) == "--csv") {
            Table::setCsvMode(true);
        } else if (std::string(argv[i]) == "--snapshot-every") {
            if (i + 1 >= argc || std::stoll(argv[i + 1]) < 1) {
                std::cerr << "run_experiment: --snapshot-every needs"
                             " a positive integer\n";
                return 2;
            }
            sim.snapshotEveryCycles =
                static_cast<Cycle>(std::stoll(argv[++i]));
        } else if (std::string(argv[i]) == "--snapshot-dir") {
            if (i + 1 >= argc) {
                std::cerr << "run_experiment: --snapshot-dir needs"
                             " a directory\n";
                return 2;
            }
            sim.snapshotDir = argv[++i];
        } else if (std::string(argv[i]) == "--resume") {
            if (i + 1 >= argc) {
                std::cerr << "run_experiment: --resume needs a"
                             " directory or snapshot file\n";
                return 2;
            }
            sim.resumeFrom = argv[++i];
        } else if (std::string(argv[i]) == "--max-cycles") {
            if (i + 1 >= argc || std::stoll(argv[i + 1]) < 1) {
                std::cerr << "run_experiment: --max-cycles needs a"
                             " positive integer\n";
                return 2;
            }
            sim.maxCycles = static_cast<Cycle>(std::stoll(argv[++i]));
        } else if (std::string(argv[i]) == "--shard-cycles") {
            if (i + 1 >= argc || std::stoll(argv[i + 1]) < 1 ||
                static_cast<std::uint64_t>(std::stoll(argv[i + 1])) >
                    kMaxSliceCycles) {
                std::cerr << "run_experiment: --shard-cycles needs"
                             " a positive integer <= "
                          << kMaxSliceCycles << "\n";
                return 2;
            }
            shard_cycles = static_cast<Cycle>(std::stoll(argv[++i]));
        } else if (std::string(argv[i]) == "--remote") {
            std::string error;
            std::vector<net::Endpoint> endpoints;
            if (i + 1 >= argc ||
                !net::parseEndpointList(argv[i + 1], endpoints,
                                        error)) {
                std::cerr << "run_experiment: --remote: "
                          << (i + 1 >= argc ? "needs a value" : error)
                          << "\n";
                return 2;
            }
            RemoteConfig remote;
            remote.endpoints = std::move(endpoints);
            setRemoteConfig(std::move(remote));
            ++i;
        } else {
            std::cerr << "run_experiment: unknown flag '" << argv[i]
                      << "'\n";
            return 2;
        }
    }
    const KeyValueFile kv = KeyValueFile::parseFile(argv[1]);

    const auto n = static_cast<std::uint32_t>(kv.getInt("n", 8));
    const std::string kind = kv.getString("noc", "ft-full");
    NocConfig cfg = NocConfig::hoplite(n);
    if (kind == "ft-full" || kind == "ft-inject") {
        cfg = NocConfig::fastTrack(
            n, static_cast<std::uint32_t>(kv.getInt("d", 2)),
            static_cast<std::uint32_t>(kv.getInt("r", 1)),
            kind == "ft-inject" ? NocVariant::ftInject
                                : NocVariant::ftFull);
    } else if (kind != "hoplite") {
        FT_FATAL("unknown noc kind: ", kind);
    }
    cfg.shortLinkStages =
        static_cast<std::uint32_t>(kv.getInt("short_stages", 0));
    cfg.expressLinkStages =
        static_cast<std::uint32_t>(kv.getInt("express_stages", 0));
    cfg.validate();

    SyntheticWorkload workload;
    workload.pattern =
        patternFromString(kv.getString("pattern", "RANDOM"));
    workload.injectionRate = kv.getDouble("rate", 0.5);
    workload.packetsPerPe =
        static_cast<std::uint32_t>(kv.getInt("packets", 1024));
    workload.seed = static_cast<std::uint64_t>(kv.getInt("seed", 1));

    const auto channels =
        static_cast<std::uint32_t>(kv.getInt("channels", 1));
    const auto width =
        static_cast<std::uint32_t>(kv.getInt("width", 256));

    if (sim.snapshotEveryCycles != 0 && sim.snapshotDir.empty()) {
        std::cerr << "run_experiment: --snapshot-every needs"
                     " --snapshot-dir\n";
        return 2;
    }
    const bool checkpointing =
        sim.snapshotEveryCycles != 0 || !sim.resumeFrom.empty();
    if (shard_cycles != 0) {
        if (!remoteConfigured()) {
            std::cerr << "run_experiment: --shard-cycles needs"
                         " --remote\n";
            return 2;
        }
        if (checkpointing || channels != 1) {
            std::cerr << "run_experiment: --shard-cycles is"
                         " incompatible with --snapshot-every/--resume"
                         " and needs channels = 1\n";
            return 2;
        }
    }

    auto noc = makeNoc(cfg, channels);
    SynthResult res;
    if (shard_cycles != 0) {
        // Temporal sharding: the run travels as checkpoint slices
        // across the --remote daemons; merged stats are bit-identical
        // to the uninterrupted local run (docs/distributed.md).
        RunRequest run;
        run.config = &cfg;
        run.channels = channels;
        run.workload = &workload;
        run.sim.maxCycles = sim.maxCycles;
        res = runShardedSim(run, shard_cycles).synth;
        const RemoteStats rs = remoteStats();
        std::cerr << "shard: " << rs.slicesRemote << " slice(s) remote, "
                  << rs.slicesFallback << " local\n";
    } else if (checkpointing) {
        // The checkpoint path runs the point directly (the sweep
        // cache would bypass anyway) so snapshots are written and a
        // --resume continues bit-identically where the last one left
        // off (docs/checkpoint.md).
        const RunResult run = runSim({.config = &cfg,
                                      .channels = channels,
                                      .workload = &workload,
                                      .sim = sim});
        res = run.synth;
        if (run.resumed)
            std::cerr << "checkpoint: resumed at cycle "
                      << run.resumedAtCycle << "\n";
        std::cerr << "checkpoint: wrote " << run.snapshotsWritten
                  << " snapshot(s)\n";
    } else {
        // batchedCachedRuns computes the identical result (bit for
        // bit) whether it runs here, on the pool, or on a --remote
        // daemon.
        res = batchedCachedRuns(cfg, channels, {workload},
                                sim.maxCycles)
                  .front();
    }

    AreaModel area;
    PowerModel power(area);
    const NocSpec spec = cfg.toSpec(width, channels);
    const NocCost cost = area.nocCost(spec);
    const double activity =
        res.stats.linkActivity(noc->linkCount(), res.cycles);

    Table table(cfg.describe() + (channels > 1 ? " x" +
                    std::to_string(channels) : "") +
                ", " + toString(workload.pattern) + " @" +
                Table::num(workload.injectionRate, 2));
    table.setHeader({"metric", "value"});
    table.addRow({"completed", res.completed ? "yes" : "NO"});
    table.addRow({"cycles", Table::num(res.cycles)});
    table.addRow({"sustained rate (pkt/cyc/PE)",
                  Table::num(res.sustainedRate(), 4)});
    table.addRow({"avg latency (cyc)", Table::num(res.avgLatency(), 1)});
    table.addRow({"p99 latency",
                  Table::num(res.stats.totalLatency.percentile(99))});
    table.addRow({"worst latency", Table::num(res.worstLatency())});
    table.addRow({"misroutes", Table::num(res.stats.totalMisroutes())});
    table.addRow({"express hop share %",
                  Table::num(
                      res.stats.shortHopTraversals +
                              res.stats.expressHopTraversals
                          ? 100.0 *
                                static_cast<double>(
                                    res.stats.expressHopTraversals) /
                                static_cast<double>(
                                    res.stats.shortHopTraversals +
                                    res.stats.expressHopTraversals)
                          : 0.0, 1)});
    table.addRow({"LUTs", Table::num(cost.luts)});
    table.addRow({"FFs", Table::num(cost.ffs)});
    table.addRow({"clock (MHz)", Table::num(cost.frequencyMhz, 0)});
    table.addRow({"bandwidth (Mpkts/s)",
                  Table::num(res.sustainedRate() * cfg.pes() *
                                 cost.frequencyMhz, 1)});
    table.addRow({"power (W)",
                  Table::num(power.dynamicPowerW(spec, activity), 2)});
    table.addRow({"energy (mJ)",
                  Table::num(power.energyJ(spec,
                                           static_cast<double>(
                                               res.cycles),
                                           activity) * 1e3, 3)});
    table.print(std::cout);
    return res.completed ? 0 : 1;
}
