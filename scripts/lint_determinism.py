#!/usr/bin/env python3
"""Header-hygiene lint for the FastTrack sources.

Two textual rules that need no compiler:

  header hygiene (rules ``include-guard`` / ``using-namespace``)
    Every header carries an include guard named after its path
    (``src/noc/packet.hpp`` -> ``FT_NOC_PACKET_HPP``) and headers
    never contain top-level ``using namespace``.

The determinism rules that used to live here (``nondet``,
``unordered-iter``) moved into the ft-tidy clang-tidy plugin
(tools/ft_tidy, docs/static_analysis.md), which sees the AST instead
of regexes: ft-nondeterminism subsumes both with none of the textual
false negatives.

A finding can be suppressed for one line with a trailing comment:
``// ft-lint: allow(<rule>)`` (the historical ``det-lint:`` marker is
still honoured). Exit status is 1 when findings remain.

Usage:
    lint_determinism.py [--self-test] [ROOT...]
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}
HEADER_SUFFIXES = {".hpp", ".hh", ".h"}

SUPPRESS_RE = re.compile(r"//\s*(?:det|ft)-lint:\s*allow\(([a-z-]+)\)")

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")

LINE_COMMENT_RE = re.compile(r"//(?!\s*(?:det|ft)-lint:).*$")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents never match."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def suppressed(line: str, rule: str) -> bool:
    m = SUPPRESS_RE.search(line)
    return bool(m) and m.group(1) == rule


def expected_guard(path: Path, root: Path) -> str:
    """Guard name derived from the path below src/ (or the root)."""
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = Path(path.name)
    parts = [p for p in rel.parts if p != "src"]
    stem = "_".join(parts)
    return "FT_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper()


def lint_file(path: Path, root: Path) -> list[Finding]:
    findings: list[Finding] = []
    try:
        text = path.read_text(errors="replace")
    except OSError as err:
        return [Finding(path, 0, "io", f"unreadable: {err}")]
    if path.suffix not in HEADER_SUFFIXES:
        return findings
    lines = text.splitlines()

    guard = expected_guard(path, root)
    if not re.search(rf"^\s*#ifndef\s+{guard}\b", text, re.M) or \
       not re.search(rf"^\s*#define\s+{guard}\b", text, re.M):
        findings.append(Finding(
            path, 1, "include-guard",
            f"missing or misnamed include guard (expected "
            f"{guard})"))
    for lineno, raw in enumerate(lines, 1):
        line = LINE_COMMENT_RE.sub("", strip_strings(raw))
        if USING_NAMESPACE_RE.search(line) and \
           not suppressed(raw, "using-namespace"):
            findings.append(Finding(
                path, lineno, "using-namespace",
                "'using namespace' in a header pollutes every "
                "includer; qualify names instead"))

    return findings


def lint_roots(roots: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for root in roots:
        base = root if root.is_dir() else root.parent
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES)
        for path in files:
            findings.extend(lint_file(path, base))
    return findings


# --- self-test ---------------------------------------------------------

BAD_HEADER = """\
#ifndef WRONG_GUARD
#define WRONG_GUARD
using namespace std;
#endif
"""

CLEAN_HEADER = """\
#ifndef FT_SUB_CLEAN_HPP
#define FT_SUB_CLEAN_HPP
#include <map>
inline int follow(const std::map<int, int> &m) {
    int sum = 0;
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}
#endif // FT_SUB_CLEAN_HPP
"""

SUPPRESSED_HEADER = """\
#ifndef FT_SUB_OK_HPP
#define FT_SUB_OK_HPP
using namespace std; // ft-lint: allow(using-namespace)
#endif // FT_SUB_OK_HPP
"""

LEGACY_SUPPRESSED_HEADER = """\
#ifndef FT_SUB_LEGACY_HPP
#define FT_SUB_LEGACY_HPP
using namespace std; // det-lint: allow(using-namespace)
#endif // FT_SUB_LEGACY_HPP
"""


def self_test() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "sub").mkdir()
        (root / "sub" / "bad.hpp").write_text(BAD_HEADER)
        (root / "sub" / "clean.hpp").write_text(CLEAN_HEADER)
        (root / "sub" / "ok.hpp").write_text(SUPPRESSED_HEADER)
        (root / "sub" / "legacy.hpp").write_text(
            LEGACY_SUPPRESSED_HEADER)
        found = lint_roots([root])
        got = {(f.path.name, f.rule) for f in found}

        def expect(name: str, rule: str, present: bool = True) -> None:
            if ((name, rule) in got) != present:
                want = "expected" if present else "did not expect"
                failures.append(f"{want} {rule} in {name}")

        expect("bad.hpp", "include-guard")
        expect("bad.hpp", "using-namespace")
        expect("clean.hpp", "include-guard", present=False)
        expect("clean.hpp", "using-namespace", present=False)
        expect("ok.hpp", "using-namespace", present=False)
        expect("legacy.hpp", "using-namespace", present=False)
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("self-test passed")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture tests and exit")
    args = ap.parse_args()
    if args.self_test:
        return self_test()

    roots = [Path(r) for r in args.roots]
    for r in roots:
        if not r.exists():
            print(f"error: no such path: {r}", file=sys.stderr)
            return 2
    findings = lint_roots(roots)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
