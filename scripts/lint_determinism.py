#!/usr/bin/env python3
"""Determinism and header-hygiene lint for the FastTrack sources.

The simulator's contract is bit-identical results across runs, thread
counts and platforms (ROADMAP tier-1; docs/correctness.md). This lint
statically bans the constructs that silently break that contract:

  nondeterminism sources (rule ``nondet``)
    ``rand()`` / ``srand()``, ``std::random_device``, wall-clock reads
    (``time()``, ``clock()``, ``std::chrono::*_clock::now``) anywhere
    except the sanctioned deterministic generator in ``common/rng``.

  unordered iteration (rule ``unordered-iter``)
    Iterating an ``std::unordered_map`` / ``std::unordered_set`` in a
    way that can feed results (range-for, ``.begin()``), because the
    visit order is implementation-defined. Keyed lookups are fine.

  header hygiene (rules ``include-guard`` / ``using-namespace``)
    Every header carries an include guard named after its path
    (``src/noc/packet.hpp`` -> ``FT_NOC_PACKET_HPP``) and headers
    never contain top-level ``using namespace``.

A finding can be suppressed for one line with a trailing comment:
``// det-lint: allow(<rule>)``. Exit status is 1 when findings remain.

Usage:
    lint_determinism.py [--self-test] [ROOT...]
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}
HEADER_SUFFIXES = {".hpp", ".hh", ".h"}

# Files allowed to touch raw entropy: the deterministic RNG itself.
RNG_ALLOWLIST = re.compile(r"(^|/)common/rng\.(cpp|hpp)$")

SUPPRESS_RE = re.compile(r"//\s*det-lint:\s*allow\(([a-z-]+)\)")

NONDET_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "wall-clock time()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(
        r"std::chrono::(system|steady|high_resolution)_clock::now"),
     "std::chrono clock read"),
]

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;({=]")
RANGE_FOR_RE = re.compile(r"for\s*\([^;)]*:\s*&?\s*(\w+(?:\.\w+)*)\s*\)")
DIRECT_UNORDERED_FOR_RE = re.compile(
    r"for\s*\([^)]*:\s*[^)]*unordered_(?:map|set)")

USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+[\w:]+\s*;")

LINE_COMMENT_RE = re.compile(r"//(?!\s*det-lint:).*$")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings(line: str) -> str:
    """Blank out string/char literals so their contents never match."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def suppressed(line: str, rule: str) -> bool:
    m = SUPPRESS_RE.search(line)
    return bool(m) and m.group(1) == rule


def expected_guard(path: Path, root: Path) -> str:
    """Guard name derived from the path below src/ (or the root)."""
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = Path(path.name)
    parts = [p for p in rel.parts if p != "src"]
    stem = "_".join(parts)
    return "FT_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper()


def lint_file(path: Path, root: Path) -> list[Finding]:
    findings: list[Finding] = []
    try:
        text = path.read_text(errors="replace")
    except OSError as err:
        return [Finding(path, 0, "io", f"unreadable: {err}")]
    lines = text.splitlines()
    rel = path.as_posix()

    # --- nondeterminism sources ---
    if not RNG_ALLOWLIST.search(rel):
        for lineno, raw in enumerate(lines, 1):
            line = LINE_COMMENT_RE.sub("", strip_strings(raw))
            for pattern, what in NONDET_PATTERNS:
                if pattern.search(line) and not suppressed(raw, "nondet"):
                    findings.append(Finding(
                        path, lineno, "nondet",
                        f"{what} is nondeterministic; draw from "
                        f"common/rng (Rng) instead"))

    # --- unordered-container iteration ---
    unordered_names: set[str] = set()
    for raw in lines:
        line = strip_strings(raw)
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))
    for lineno, raw in enumerate(lines, 1):
        line = LINE_COMMENT_RE.sub("", strip_strings(raw))
        if suppressed(raw, "unordered-iter"):
            continue
        hit = None
        if DIRECT_UNORDERED_FOR_RE.search(line):
            hit = "range-for over an unordered container"
        else:
            m = RANGE_FOR_RE.search(line)
            if m and m.group(1).split(".")[-1] in unordered_names:
                hit = f"range-for over unordered container " \
                      f"'{m.group(1)}'"
            else:
                for name in unordered_names:
                    if re.search(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(",
                                 line):
                        hit = f"iterator walk over unordered " \
                              f"container '{name}'"
                        break
        if hit:
            findings.append(Finding(
                path, lineno, "unordered-iter",
                f"{hit}: visit order is implementation-defined and "
                f"can leak into results; use an ordered container or "
                f"sort first"))

    # --- header hygiene ---
    if path.suffix in HEADER_SUFFIXES:
        guard = expected_guard(path, root)
        if not re.search(rf"^\s*#ifndef\s+{guard}\b", text, re.M) or \
           not re.search(rf"^\s*#define\s+{guard}\b", text, re.M):
            findings.append(Finding(
                path, 1, "include-guard",
                f"missing or misnamed include guard (expected "
                f"{guard})"))
        for lineno, raw in enumerate(lines, 1):
            line = LINE_COMMENT_RE.sub("", strip_strings(raw))
            if USING_NAMESPACE_RE.search(line) and \
               not suppressed(raw, "using-namespace"):
                findings.append(Finding(
                    path, lineno, "using-namespace",
                    "'using namespace' in a header pollutes every "
                    "includer; qualify names instead"))

    return findings


def lint_roots(roots: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for root in roots:
        base = root if root.is_dir() else root.parent
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.suffix in SOURCE_SUFFIXES)
        for path in files:
            findings.extend(lint_file(path, base))
    return findings


# --- self-test ---------------------------------------------------------

BAD_HEADER = """\
#ifndef WRONG_GUARD
#define WRONG_GUARD
using namespace std;
#include <unordered_map>
inline int draw() { return rand(); }
#endif
"""

BAD_SOURCE = """\
#include <unordered_map>
#include <ctime>
std::unordered_map<int, int> table;
long stamp() { return time(nullptr); }
int total() {
    int sum = 0;
    for (const auto &kv : table)
        sum += kv.second;
    for (auto it = table.begin(); it != table.end(); ++it)
        sum += it->second;
    return sum;
}
"""

CLEAN_HEADER = """\
#ifndef FT_SUB_CLEAN_HPP
#define FT_SUB_CLEAN_HPP
#include <map>
inline int follow(const std::map<int, int> &m) {
    int sum = 0;
    for (const auto &kv : m)
        sum += kv.second;
    return sum;
}
#endif // FT_SUB_CLEAN_HPP
"""

SUPPRESSED_SOURCE = """\
#include <unordered_map>
std::unordered_map<int, int> cache;
int peek() {
    int n = 0;
    for (const auto &kv : cache) // det-lint: allow(unordered-iter)
        n += kv.second;
    return n;
}
"""


def self_test() -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "sub").mkdir()
        (root / "sub" / "bad.hpp").write_text(BAD_HEADER)
        (root / "sub" / "bad.cpp").write_text(BAD_SOURCE)
        (root / "sub" / "clean.hpp").write_text(CLEAN_HEADER)
        (root / "sub" / "ok.cpp").write_text(SUPPRESSED_SOURCE)
        found = lint_roots([root])
        got = {(f.path.name, f.rule) for f in found}

        def expect(name: str, rule: str, present: bool = True) -> None:
            if ((name, rule) in got) != present:
                want = "expected" if present else "did not expect"
                failures.append(f"{want} {rule} in {name}")

        expect("bad.hpp", "include-guard")
        expect("bad.hpp", "using-namespace")
        expect("bad.hpp", "nondet")
        expect("bad.cpp", "nondet")
        expect("bad.cpp", "unordered-iter")
        expect("clean.hpp", "include-guard", present=False)
        expect("clean.hpp", "unordered-iter", present=False)
        expect("ok.cpp", "unordered-iter", present=False)
        iter_hits = [f for f in found
                     if f.path.name == "bad.cpp"
                     and f.rule == "unordered-iter"]
        if len(iter_hits) != 2:
            failures.append(
                f"expected 2 unordered-iter findings in bad.cpp, "
                f"got {len(iter_hits)}")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("self-test passed")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("roots", nargs="*", default=["src"],
                    help="files or directories to lint (default: src)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in fixture tests and exit")
    args = ap.parse_args()
    if args.self_test:
        return self_test()

    roots = [Path(r) for r in args.roots]
    for r in roots:
        if not r.exists():
            print(f"error: no such path: {r}", file=sys.stderr)
            return 2
    findings = lint_roots(roots)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
