#!/usr/bin/env python3
"""Render the bench harnesses' --csv output as matplotlib figures.

Usage:
    # regenerate one figure's data and plot it
    build/bench/bench_fig11_sustained_rate --csv > fig11.csv
    scripts/plot_figures.py fig11.csv -o fig11.png

The bench CSV format is a sequence of blocks:
    # <table title>
    <header row>
    <data rows...>
The first column is treated as the x axis; every remaining numeric
column becomes a series. Non-numeric cells (NA) are skipped.
"""

import argparse
import sys


def parse_blocks(path):
    """Split a bench CSV file into (title, header, rows) blocks."""
    blocks = []
    title, header, rows = None, None, []
    with open(path) as f:
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if line.startswith("###"):
                continue
            if line.startswith("#"):
                if header is not None:
                    blocks.append((title, header, rows))
                title, header, rows = line[1:].strip(), None, []
                continue
            cells = line.split(",")
            if header is None:
                header = cells
            else:
                rows.append(cells)
    if header is not None:
        blocks.append((title, header, rows))
    return blocks


def numeric(cell):
    try:
        return float(cell)
    except ValueError:
        return None


def plot_blocks(blocks, out, logx=False, logy=False):
    try:
        import matplotlib
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    n = len(blocks)
    fig, axes = plt.subplots(n, 1, figsize=(7, 4 * n), squeeze=False)
    for ax, (title, header, rows) in zip(axes[:, 0], blocks):
        xs = [numeric(r[0]) for r in rows]
        for col in range(1, len(header)):
            pts = [
                (x, numeric(r[col]))
                for x, r in zip(xs, rows)
                if x is not None and col < len(r)
            ]
            pts = [(x, y) for x, y in pts if y is not None]
            if not pts:
                continue
            ax.plot(*zip(*pts), marker="o", label=header[col])
        ax.set_title(title or "")
        ax.set_xlabel(header[0])
        if logx:
            ax.set_xscale("log")
        if logy:
            ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out} ({n} panel(s))")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("csv", help="bench --csv output file")
    ap.add_argument("-o", "--out", default="figure.png")
    ap.add_argument("--logx", action="store_true")
    ap.add_argument("--logy", action="store_true")
    args = ap.parse_args()

    blocks = parse_blocks(args.csv)
    if not blocks:
        sys.exit("no CSV tables found in input")
    plot_blocks(blocks, args.out, args.logx, args.logy)


if __name__ == "__main__":
    main()
