#!/usr/bin/env python3
"""Run bench_core_speed and record a perf baseline as JSON.

Executes the google-benchmark core-speed harness with JSON output,
extracts the BM_NetworkStep* and BM_BatchedStep* results, compares
the scalar engine against the recorded pre-refactor baseline and the
batched lockstep engine against its same-geometry scalar counterpart
(items/sec already counts router-cycles across all K lanes, so the
ratio is the *per-replica* speedup), and writes BENCH_core_speed.json
so a perf regression (or claimed win) is a diffable artifact instead
of a number in a PR description.

Noise handling: each case runs --benchmark_repetitions times and the
median repetition is recorded (single-core CI boxes and shared VMs
jitter far too much for one-shot numbers). For a drift-immune speedup
ratio, pass --baseline-bench with a binary built from the pre-refactor
tree; both binaries then run interleaved in the same host window and
the recorded ratio compares those medians. Without it, the frozen
BASELINE table below is used.

Usage:
    python3 scripts/bench_record.py --bench build/bench/bench_core_speed \
        [--baseline-bench path/to/old/bench_core_speed] \
        [--out BENCH_core_speed.json] [--min-time 1] [--repetitions 3]

Exit status is non-zero when the benchmark binary fails to run or
produces no BM_NetworkStep results.
"""

import argparse
import json
import subprocess
import sys

# Pre-refactor numbers (optional-slot state + virtual hot loop) at
# -O2/-DNDEBUG, re-measured as median-of-repetitions interleaved with
# the post-refactor build on the same host window. The 2x speedup
# target of the engine-core refactor is measured against
# BM_NetworkStep/16/1.
BASELINE = {
    "BM_NetworkStep/4/0": {"ns_per_iter": 2868, "items_per_second": 5.63e6},
    "BM_NetworkStep/4/1": {"ns_per_iter": 4895, "items_per_second": 3.36e6},
    "BM_NetworkStep/8/0": {"ns_per_iter": 8756, "items_per_second": 7.59e6},
    "BM_NetworkStep/8/1": {"ns_per_iter": 17928, "items_per_second": 3.58e6},
    "BM_NetworkStep/16/1": {"ns_per_iter": 70472, "items_per_second": 3.70e6},
}

HEADLINE = "BM_NetworkStep/16/1"
BATCHED_HEADLINE = "BM_BatchedStep/16/1"
PREFIXES = ("BM_NetworkStep", "BM_BatchedStep")


def run_bench(bench, min_time, repetitions):
    cmd = [
        bench,
        "--benchmark_filter=BM_NetworkStep|BM_BatchedStep",
        "--benchmark_format=json",
        f"--benchmark_min_time={min_time}",
        f"--benchmark_repetitions={repetitions}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark failed with exit {proc.returncode}")
    return json.loads(proc.stdout)


def extract(raw, repetitions):
    """Scalar + batched results keyed by case name (median repetition)."""
    results = {}
    for b in raw.get("benchmarks", []):
        name = b["name"]
        if not name.startswith(PREFIXES):
            continue
        # BM_NetworkStepTraced etc. share the prefix but not the grid.
        if name.startswith("BM_NetworkStepTraced"):
            continue
        if repetitions > 1:
            if b.get("aggregate_name") != "median":
                continue
            name = name.removesuffix("_median")
        elif b.get("run_type") == "aggregate":
            continue
        results[name] = {
            "ns_per_iter": round(b["real_time"], 1),
            "items_per_second": round(b.get("items_per_second", 0.0), 1),
        }
        if "replicas" in b:
            results[name]["replicas"] = int(b["replicas"])
    return results


def per_replica_speedups(current):
    """Batched items/sec over the same-geometry scalar case.

    BM_BatchedStep counts router-cycles across all K lanes as items,
    so this ratio is per-replica throughput relative to one scalar
    network — ~1.0 means a lane costs the same as a solo run (see
    docs/engine.md, "Measured throughput, honestly").
    """
    ratios = {}
    for name, cur in current.items():
        if not name.startswith("BM_BatchedStep"):
            continue
        scalar = current.get(
            "BM_NetworkStep" + name.removeprefix("BM_BatchedStep"))
        if scalar and scalar["items_per_second"] > 0:
            ratios[name] = round(
                cur["items_per_second"] / scalar["items_per_second"], 3)
    return ratios


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True,
                        help="path to the bench_core_speed binary")
    parser.add_argument("--baseline-bench", default=None,
                        help="pre-refactor bench binary to measure "
                             "in-window instead of the frozen table")
    parser.add_argument("--out", default="BENCH_core_speed.json",
                        help="output JSON path")
    parser.add_argument("--min-time", default="1",
                        help="--benchmark_min_time per case (seconds)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="repetitions per case; the median is "
                             "recorded")
    args = parser.parse_args()

    raw = run_bench(args.bench, args.min_time, args.repetitions)
    current = extract(raw, args.repetitions)
    if not any(n.startswith("BM_NetworkStep") for n in current):
        raise SystemExit("no BM_NetworkStep results in benchmark output")
    if not any(n.startswith("BM_BatchedStep") for n in current):
        raise SystemExit("no BM_BatchedStep results in benchmark output")

    if args.baseline_bench:
        base_raw = run_bench(args.baseline_bench, args.min_time,
                             args.repetitions)
        baseline = extract(base_raw, args.repetitions)
        if not baseline:
            raise SystemExit("no BM_NetworkStep results from the "
                             "baseline binary")
        baseline_source = "measured in-window from --baseline-bench"
    else:
        baseline = BASELINE
        baseline_source = "frozen pre-refactor table"

    speedups = {}
    for name, base in baseline.items():
        if not name.startswith("BM_NetworkStep"):
            continue  # the pre-refactor tree has no batched engine
        cur = current.get(name)
        if cur and base["items_per_second"] > 0:
            speedups[name] = round(
                cur["items_per_second"] / base["items_per_second"], 3)

    per_replica = per_replica_speedups(current)

    record = {
        "benchmark": "bench_core_speed",
        "context": raw.get("context", {}),
        "protocol": {
            "repetitions": args.repetitions,
            "statistic": "median" if args.repetitions > 1 else "single",
            "min_time_s": args.min_time,
            "baseline_source": baseline_source,
        },
        "baseline_pre_refactor": baseline,
        "current": current,
        "speedup_vs_baseline": speedups,
        "headline": {
            "case": HEADLINE,
            "speedup": speedups.get(HEADLINE),
            "target": 2.0,
        },
        "batched": {
            "headline_case": BATCHED_HEADLINE,
            "per_replica_speedup_vs_scalar": per_replica,
            "headline_per_replica_speedup":
                per_replica.get(BATCHED_HEADLINE),
            "note": "per-replica ratio of the batched lockstep engine "
                    "vs one scalar Network of the same geometry; "
                    "routeCore is compute-bound so ~1.0x is expected "
                    "(docs/engine.md, 'Measured throughput, honestly')",
        },
    }

    with open(args.out, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")

    headline = speedups.get(HEADLINE)
    print(f"wrote {args.out}")
    if headline is not None:
        print(f"{HEADLINE}: {headline}x vs pre-refactor baseline "
              f"(target 2.0x)")
    batched = per_replica.get(BATCHED_HEADLINE)
    if batched is not None:
        print(f"{BATCHED_HEADLINE}: {batched}x per replica vs "
              f"{HEADLINE}")


if __name__ == "__main__":
    main()
