/**
 * @file
 * Invariant-checker tests. A deliberately broken toy router drives
 * the checker's event API the way a buggy engine would - duplicating
 * a packet, driving one wire twice, teleporting, delivering twice,
 * livelocking - and every break must be flagged with the right
 * violation class, while a faithful replay of legal behavior stays
 * silent. In FT_CHECK builds an end-to-end test also proves the
 * hooks inside Network fire.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "check/invariants.hpp"
#include "noc/config.hpp"
#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

using check::FailMode;
using check::Geometry;
using check::InvariantChecker;
using check::Violation;

Geometry
hopliteGeo(std::uint32_t n)
{
    Geometry g;
    g.n = n;
    return g;
}

Geometry
fastTrackGeo(std::uint32_t n, std::uint32_t d, std::uint32_t r)
{
    Geometry g;
    g.n = n;
    g.d = d;
    g.r = r;
    g.fastTrack = true;
    return g;
}

Packet
pkt(std::uint64_t id, NodeId src, NodeId dst)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

bool
flagged(const InvariantChecker &c, Violation kind)
{
    return std::any_of(c.violations().begin(), c.violations().end(),
                       [&](const InvariantChecker::Record &r) {
                           return r.kind == kind;
                       });
}

/**
 * A toy "router cycle" harness: replays a scripted sequence of events
 * against a record-mode checker, standing in for an engine whose
 * router logic may be broken in controlled ways.
 */
struct ToyNet
{
    explicit ToyNet(const Geometry &g)
        : checker(g, FailMode::record), geo(g)
    {
    }

    void offerAndInject(const Packet &p, Cycle now)
    {
        checker.onOffer(p, now);
        checker.onInject(p, p.src, now);
    }

    InvariantChecker checker;
    Geometry geo;
};

// --- legal behavior stays silent --------------------------------------

TEST(Invariants, FaithfulHopliteRouteIsClean)
{
    // 0 -> 2 on a 4x4 torus: two east short hops, then exit.
    ToyNet net(hopliteGeo(4));
    const Packet p = pkt(1, 0, 2);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eSh, 0);
    net.checker.onCycleEnd(0, 1, 0);
    net.checker.onTraversal(p, 1, OutPort::eSh, 1);
    net.checker.onCycleEnd(1, 1, 0);
    net.checker.onDelivery(p, 2, 2);
    net.checker.onCycleEnd(2, 0, 0);
    net.checker.verifyQuiescent(2);
    EXPECT_TRUE(net.checker.violations().empty())
        << net.checker.violations().front().detail;
    EXPECT_GT(net.checker.eventsChecked(), 0u);
}

TEST(Invariants, FaithfulExpressRideIsClean)
{
    // FT(64, 2, 1): 0 -> 4 via two express hops along the top row.
    ToyNet net(fastTrackGeo(8, 2, 1));
    const Packet p = pkt(7, 0, 4);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eEx, 0);
    net.checker.onTraversal(p, 2, OutPort::eEx, 1);
    net.checker.onDelivery(p, 4, 2);
    net.checker.verifyQuiescent(2);
    EXPECT_TRUE(net.checker.violations().empty())
        << net.checker.violations().front().detail;
}

// --- the broken toy router --------------------------------------------

TEST(Invariants, DuplicatedPacketTripsConservation)
{
    // Broken router forwards the same packet onto two different
    // wires in one cycle (fan-out duplication).
    ToyNet net(hopliteGeo(4));
    const Packet p = pkt(9, 0, 5);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eSh, 0);
    net.checker.onTraversal(p, 0, OutPort::sSh, 0);
    EXPECT_TRUE(flagged(net.checker, Violation::conservation));
}

TEST(Invariants, DoubleDrivenWireTripsLinkExclusivity)
{
    // Broken router drives one physical wire with two packets in the
    // same cycle (single-driver violation).
    ToyNet net(hopliteGeo(4));
    const Packet a = pkt(1, 0, 2);
    const Packet b = pkt(2, 4, 2);
    net.offerAndInject(a, 0);
    net.offerAndInject(b, 0);
    net.checker.onTraversal(a, 0, OutPort::eSh, 0);
    net.checker.onTraversal(b, 0, OutPort::eSh, 0);
    EXPECT_TRUE(flagged(net.checker, Violation::linkExclusivity));
}

TEST(Invariants, PhantomPacketTripsConservation)
{
    // A packet that was never injected appears on a wire.
    ToyNet net(hopliteGeo(4));
    net.checker.onTraversal(pkt(42, 0, 3), 0, OutPort::eSh, 0);
    EXPECT_TRUE(flagged(net.checker, Violation::conservation));
}

TEST(Invariants, DoubleDeliveryTripsConservation)
{
    ToyNet net(hopliteGeo(4));
    const Packet p = pkt(5, 0, 1);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eSh, 0);
    net.checker.onDelivery(p, 1, 1);
    net.checker.onDelivery(p, 1, 1);
    EXPECT_TRUE(flagged(net.checker, Violation::conservation));
}

TEST(Invariants, DroppedPacketTripsCycleEndCrossCheck)
{
    // Router silently drops a packet: the engine decrements its own
    // in-flight count without a delivery event.
    ToyNet net(hopliteGeo(4));
    const Packet p = pkt(3, 0, 2);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eSh, 0);
    net.checker.onCycleEnd(0, /*reported_in_flight=*/0,
                           /*reported_pending=*/0);
    EXPECT_TRUE(flagged(net.checker, Violation::conservation));
}

TEST(Invariants, ExpressPortAtDepopulatedSiteTripsLegality)
{
    // FT(64, 2, 2): router x=1 is depopulated (1 % 2 != 0) and has no
    // X express port, yet the broken router drives one.
    ToyNet net(fastTrackGeo(8, 2, 2));
    const Packet p = pkt(11, 1, 5);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 1, OutPort::eEx, 0);
    EXPECT_TRUE(flagged(net.checker, Violation::expressLegality));
}

TEST(Invariants, WrongHopLengthTripsLegality)
{
    // An express hop must land exactly D routers downstream; the
    // broken router lands the packet D-1 routers away instead.
    ToyNet net(fastTrackGeo(8, 4, 1));
    const Packet p = pkt(12, 0, 6);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eEx, 0);
    // Next event claims the packet is at router 3, not 0 + D = 4.
    net.checker.onTraversal(p, 3, OutPort::eSh, 1);
    EXPECT_TRUE(flagged(net.checker, Violation::expressLegality));
}

TEST(Invariants, RDoesNotDivideDTripsLegalityAtConstruction)
{
    InvariantChecker c(fastTrackGeo(8, 3, 2), FailMode::record);
    EXPECT_TRUE(flagged(c, Violation::expressLegality));
}

TEST(Invariants, MisdeliveryTripsProtocol)
{
    ToyNet net(hopliteGeo(4));
    const Packet p = pkt(6, 0, 2);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eSh, 0);
    net.checker.onDelivery(p, 1, 1); // addressed to 2, handed to 1
    EXPECT_TRUE(flagged(net.checker, Violation::protocol));
}

TEST(Invariants, InjectWithoutOfferTripsProtocol)
{
    ToyNet net(hopliteGeo(4));
    net.checker.onInject(pkt(7, 0, 3), 0, 0);
    EXPECT_TRUE(flagged(net.checker, Violation::protocol));
}

// --- livelock detection ------------------------------------------------

TEST(Invariants, OrbitingPacketTripsLivelockBound)
{
    ToyNet net(hopliteGeo(4));
    net.checker.setLivelockBound(100);
    Packet p = pkt(21, 0, 2);
    net.offerAndInject(p, 0);
    // The packet orbits the x-ring forever, deflected every cycle.
    NodeId at = 0;
    for (Cycle c = 0; c < 200 &&
                      !flagged(net.checker, Violation::livelock);
         ++c) {
        net.checker.onTraversal(p, at, OutPort::eSh, c);
        at = (at + 1) % 4;
        ++p.deflections;
        net.checker.onCycleEnd(c, 1, 0);
    }
    EXPECT_TRUE(flagged(net.checker, Violation::livelock));
}

TEST(Invariants, StalledNetworkTripsGlobalProgressBound)
{
    // In-flight packets exist but no event stream advances them and
    // nothing is delivered: the global progress detector must fire.
    ToyNet net(hopliteGeo(4));
    net.checker.setLivelockBound(50);
    net.offerAndInject(pkt(31, 0, 2), 0);
    for (Cycle c = 0; c < 60; ++c)
        net.checker.onCycleEnd(c, 1, 0);
    EXPECT_TRUE(flagged(net.checker, Violation::livelock));
}

TEST(Invariants, DeliveredTrafficNeverTripsLivelock)
{
    ToyNet net(hopliteGeo(4));
    net.checker.setLivelockBound(50);
    for (Cycle c = 0; c < 500; ++c) {
        const Packet p = pkt(100 + c, 0, 1);
        net.offerAndInject(p, c);
        net.checker.onTraversal(p, 0, OutPort::eSh, c);
        net.checker.onDelivery(p, 1, c + 1);
        net.checker.onCycleEnd(c, 0, 0);
    }
    EXPECT_FALSE(flagged(net.checker, Violation::livelock));
}

// --- quiescence and geometry ------------------------------------------

TEST(Invariants, LeakedPacketTripsQuiescenceCheck)
{
    ToyNet net(hopliteGeo(4));
    const Packet p = pkt(51, 0, 3);
    net.offerAndInject(p, 0);
    net.checker.onTraversal(p, 0, OutPort::eSh, 0);
    net.checker.verifyQuiescent(10); // packet still tracked
    EXPECT_TRUE(flagged(net.checker, Violation::conservation));
}

TEST(Invariants, GeometryOfExtractsConfig)
{
    const Geometry g = check::geometryOf(NocConfig::fastTrack(8, 4, 2));
    EXPECT_EQ(g.n, 8u);
    EXPECT_EQ(g.d, 4u);
    EXPECT_EQ(g.r, 2u);
    EXPECT_TRUE(g.fastTrack);
    EXPECT_TRUE(g.hasExpressX(0));
    EXPECT_FALSE(g.hasExpressX(1));
    const Geometry h = check::geometryOf(NocConfig::hoplite(4));
    EXPECT_FALSE(h.fastTrack);
    EXPECT_FALSE(h.hasExpressX(0));
}

// --- end-to-end: hooks inside the real Network ------------------------

TEST(Invariants, NetworkHooksObserveRealTraffic)
{
    if (!check::kHooksEnabled)
        GTEST_SKIP() << "build without FT_CHECK";
    Network noc(NocConfig::fastTrack(8, 2, 1));
    ASSERT_NE(noc.checker(), nullptr);

    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.5;
    workload.packetsPerPe = 50;
    const SynthResult res = runSynthetic(noc, workload);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(noc.checker()->eventsChecked(), 0u);
    EXPECT_EQ(noc.checker()->trackedInFlight(), 0u);
}

TEST(Invariants, RecordModeCheckerCanBeAttached)
{
    Network noc(NocConfig::hoplite(4));
    auto recorder = std::make_unique<InvariantChecker>(
        hopliteGeo(4), FailMode::record);
    InvariantChecker *raw = recorder.get();
    noc.attachChecker(std::move(recorder));
    EXPECT_EQ(noc.checker(), raw);

    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::local;
    workload.injectionRate = 0.3;
    workload.packetsPerPe = 10;
    const SynthResult res = runSynthetic(noc, workload);
    ASSERT_TRUE(res.completed);
    // A correct engine must produce a silent checker (and in builds
    // without FT_CHECK the hooks never fire at all).
    EXPECT_TRUE(raw->violations().empty());
    if (check::kHooksEnabled)
        EXPECT_GT(raw->eventsChecked(), 0u);
    else
        EXPECT_EQ(raw->eventsChecked(), 0u);
}

} // namespace
} // namespace fasttrack
