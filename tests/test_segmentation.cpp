/**
 * @file
 * Tests for message segmentation (serialized cacheline transfers).
 */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "traffic/segmentation.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {
namespace {

Trace
baseTrace()
{
    Trace t;
    t.name = "seg";
    t.n = 4;
    t.messages = {
        TraceMessage{0, 0, 5, 3, 0, {}},
        TraceMessage{1, 5, 10, 0, 2, {0}},
    };
    return t;
}

TEST(Segmentation, FragmentsPerMessage)
{
    EXPECT_EQ(fragmentsPerMessage(512, 512), 1u);
    EXPECT_EQ(fragmentsPerMessage(512, 256), 2u);
    EXPECT_EQ(fragmentsPerMessage(512, 96), 6u);
    EXPECT_EQ(fragmentsPerMessage(100, 256), 1u);
    EXPECT_EQ(fragmentsPerMessage(1, 1), 1u);
}

TEST(Segmentation, WideEnoughIsIdentity)
{
    const Trace t = baseTrace();
    const Trace s = segmentTrace(t, 256, 256);
    EXPECT_EQ(s.messages.size(), t.messages.size());
    EXPECT_EQ(s.name, t.name);
}

TEST(Segmentation, ExpandsCountsAndMetadata)
{
    const Trace t = baseTrace();
    const Trace s = segmentTrace(t, 512, 128); // 4 fragments each
    ASSERT_EQ(s.messages.size(), 8u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(s.messages[i].src, 0u);
        EXPECT_EQ(s.messages[i].dst, 5u);
        EXPECT_EQ(s.messages[i].earliest, 3u);
        EXPECT_TRUE(s.messages[i].deps.empty());
    }
    for (std::size_t i = 4; i < 8; ++i) {
        EXPECT_EQ(s.messages[i].src, 5u);
        // Each fragment of message 1 depends on all 4 fragments of
        // message 0.
        EXPECT_EQ(s.messages[i].deps.size(), 4u);
        EXPECT_EQ(s.messages[i].delayAfterDeps, 2u);
    }
    s.validate();
}

TEST(Segmentation, ReplayRespectsFragmentDependencies)
{
    const Trace s = segmentTrace(baseTrace(), 512, 128);
    Network noc(NocConfig::hoplite(4));
    TraceReplayer replayer(noc, s);
    const Cycle completion = replayer.run(100000);
    EXPECT_TRUE(replayer.finished());
    // Four fragments serialize through one source: the second
    // message's fragments cannot even start before all four of the
    // first arrive (>= 4 injection cycles + path + compute delay).
    EXPECT_GE(completion, 4u + 2 + 2);
}

TEST(Segmentation, NarrowerIsMorePackets)
{
    const Trace t = baseTrace();
    EXPECT_GT(segmentTrace(t, 512, 64).messages.size(),
              segmentTrace(t, 512, 256).messages.size());
}

} // namespace
} // namespace fasttrack
