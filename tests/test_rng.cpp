/**
 * @file
 * Unit tests for the deterministic xoshiro256** RNG wrapper.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace fasttrack {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                (1ull << 40)}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformityCoarseChiSquare)
{
    // 16 buckets x 16k draws: each bucket should be within 10% of the
    // expected count for a healthy generator.
    Rng rng(17);
    constexpr int kBuckets = 16;
    constexpr int kDraws = 1 << 16;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.nextBelow(kBuckets)];
    const double expect = static_cast<double>(kDraws) / kBuckets;
    for (int c : counts) {
        EXPECT_NEAR(c, expect, expect * 0.10);
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(19);
    for (double p : {0.05, 0.3, 0.9}) {
        int hits = 0;
        constexpr int kDraws = 20000;
        for (int i = 0; i < kDraws; ++i)
            hits += rng.nextBool(p);
        EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.02);
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng b = a.split();
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i) {
        seen.insert(a.next());
        seen.insert(b.next());
    }
    // All 200 draws distinct: streams do not mirror each other.
    EXPECT_EQ(seen.size(), 200u);
}

} // namespace
} // namespace fasttrack
