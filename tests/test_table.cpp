/**
 * @file
 * Unit tests for the ASCII table / CSV emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace fasttrack {
namespace {

TEST(Table, AlignsColumns)
{
    Table t("demo");
    t.setHeader({"a", "long-header"});
    t.addRow({"12345", "x"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t("csv");
    t.setHeader({"x", "y"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "# csv\nx,y\n1,2\n3,4\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.14159, 0), "3");
    EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
    EXPECT_EQ(Table::na(), "NA");
}

TEST(Table, RowCountTracksRows)
{
    Table t;
    EXPECT_EQ(t.rowCount(), 0u);
    t.setHeader({"only"});
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, GlobalCsvModeSwitchesPrint)
{
    Table t("mode");
    t.setHeader({"a"});
    t.addRow({"1"});
    Table::setCsvMode(true);
    std::ostringstream os;
    t.print(os);
    Table::setCsvMode(false);
    EXPECT_EQ(os.str(), "# mode\na\n1\n");
    std::ostringstream os2;
    t.print(os2);
    EXPECT_NE(os2.str().find("=="), std::string::npos);
}

TEST(TableDeathTest, MismatchedRowWidthPanics)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace fasttrack
