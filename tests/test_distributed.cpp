/**
 * @file
 * End-to-end contract of the distributed sweep fabric: an ftd daemon
 * on loopback must serve sweeps byte-identical to the in-process
 * path, answer warm points from its blob cache, survive hostile
 * requests, and the client must ride out killed sessions and dead
 * endpoints via retry/backoff and local fallback — a sweep never
 * fails because the fleet did. Also pins the message payload codecs
 * (sweepRequest / sweepResult / metricsEpoch).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "sim/batch_runner.hpp"
#include "sim/ftd_server.hpp"
#include "sim/remote.hpp"
#include "sim/sweep_cache.hpp"

namespace fasttrack {
namespace {

/** Content hash of a full result (every counter and histogram). */
std::uint64_t
resultHash(const SynthResult &res)
{
    const auto bytes = encodeSynthResult(res);
    sched::Fnv1a h;
    h.addBytes(bytes.data(), bytes.size());
    return h.value();
}

/**
 * Small, fast workloads. Each test uses its own seed base so cold
 * runs stay cold even when the whole binary runs in one process
 * (the sweep cache is process-global).
 */
std::vector<SyntheticWorkload>
smallWorkloads(std::size_t count, std::uint64_t seed_base)
{
    std::vector<SyntheticWorkload> workloads(count);
    for (std::size_t i = 0; i < count; ++i) {
        workloads[i].pattern = TrafficPattern::random;
        workloads[i].injectionRate = 0.25 + 0.05 * static_cast<double>(i);
        workloads[i].packetsPerPe = 24;
        workloads[i].seed = seed_base + i;
    }
    return workloads;
}

/** Install a remote config for the scope, clear it on exit (also on
 *  assertion failure) so later tests run the local path. */
struct WithRemote
{
    explicit WithRemote(RemoteConfig config)
    {
        setRemoteConfig(std::move(config));
    }
    ~WithRemote() { clearRemoteConfig(); }
};

RemoteConfig
loopbackConfig(std::initializer_list<std::uint16_t> ports)
{
    RemoteConfig config;
    for (std::uint16_t port : ports)
        config.endpoints.push_back(net::Endpoint{"127.0.0.1", port});
    // Force every point over the wire: the daemon shares this
    // process's sweep cache, so a client-side pre-pass would answer
    // locally and leave the transport untested.
    config.useLocalCache = false;
    config.backoffInitialMs = 1;
    config.backoffCapMs = 20;
    config.connectTimeoutMs = 2'000;
    return config;
}

/** A started FtdServer on an ephemeral loopback port. */
struct WithDaemon
{
    FtdServer server;
    explicit WithDaemon(net::ServerConfig config = {})
        : server(std::move(config))
    {
        std::string error;
        EXPECT_TRUE(server.start(error)) << error;
    }
    ~WithDaemon() { server.stop(); }
    std::uint16_t port() { return server.boundPort(); }
};

/** An ephemeral port with nothing listening on it. */
std::uint16_t
deadPort()
{
    net::Listener listener;
    std::string error;
    EXPECT_TRUE(listener.open("127.0.0.1", 0, error)) << error;
    const std::uint16_t port = listener.boundPort();
    listener.close();
    return port;
}

SweepRequest
sampleRequest(std::uint64_t seed)
{
    SweepRequest request;
    request.pointIndex = 3;
    request.config = NocConfig::fastTrack(4, 2, 1);
    request.channels = 2;
    request.workload = smallWorkloads(1, seed).front();
    request.maxCycles = 100'000;
    return request;
}

TEST(DistributedCodec, SweepRequestRoundTrips)
{
    const SweepRequest request = sampleRequest(9001);
    SweepRequest decoded;
    ASSERT_TRUE(decodeSweepRequestPayload(
        encodeSweepRequestPayload(request), decoded));
    EXPECT_EQ(decoded.pointIndex, request.pointIndex);
    EXPECT_EQ(decoded.config.n, request.config.n);
    EXPECT_EQ(decoded.config.d, request.config.d);
    EXPECT_EQ(decoded.config.r, request.config.r);
    EXPECT_EQ(decoded.config.variant, request.config.variant);
    EXPECT_EQ(decoded.channels, request.channels);
    EXPECT_EQ(decoded.workload.pattern, request.workload.pattern);
    EXPECT_EQ(decoded.workload.injectionRate,
              request.workload.injectionRate);
    EXPECT_EQ(decoded.workload.packetsPerPe,
              request.workload.packetsPerPe);
    EXPECT_EQ(decoded.workload.seed, request.workload.seed);
    EXPECT_EQ(decoded.maxCycles, request.maxCycles);
    // The key the daemon derives from the decoded request must equal
    // the one the client derives from the original — the cross-node
    // cache-sharing contract.
    EXPECT_EQ(sweepKey(decoded.config, decoded.channels,
                       decoded.workload, decoded.maxCycles),
              sweepKey(request.config, request.channels,
                       request.workload, request.maxCycles));
}

TEST(DistributedCodec, SweepRequestRejectsHostilePayloads)
{
    const std::vector<std::uint8_t> good =
        encodeSweepRequestPayload(sampleRequest(9002));
    SweepRequest out;

    // Truncation at every boundary fails cleanly.
    for (std::size_t keep = 0; keep < good.size(); ++keep) {
        const std::vector<std::uint8_t> cut(
            good.begin(),
            good.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_FALSE(decodeSweepRequestPayload(cut, out)) << keep;
    }
    // Trailing junk fails (payloads decode exactly).
    std::vector<std::uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(decodeSweepRequestPayload(padded, out));

    // Structurally valid but semantically hostile requests are
    // rejected by validation, not FT_FATAL: the daemon must answer
    // with an error frame, never die.
    SweepRequest hostile = sampleRequest(9003);
    hostile.config.d = hostile.config.n; // d > n/2
    EXPECT_FALSE(decodeSweepRequestPayload(
        encodeSweepRequestPayload(hostile), out));

    hostile = sampleRequest(9003);
    hostile.workload.injectionRate = 0.0;
    EXPECT_FALSE(decodeSweepRequestPayload(
        encodeSweepRequestPayload(hostile), out));

    hostile = sampleRequest(9003);
    hostile.workload.packetsPerPe = (1u << 20) + 1; // allocation bound
    EXPECT_FALSE(decodeSweepRequestPayload(
        encodeSweepRequestPayload(hostile), out));

    hostile = sampleRequest(9003);
    hostile.maxCycles = 0;
    EXPECT_FALSE(decodeSweepRequestPayload(
        encodeSweepRequestPayload(hostile), out));
}

TEST(DistributedCodec, SweepResultRoundTrips)
{
    const SynthResult res = cachedRunSynthetic(
        NocConfig::hoplite(4), 1, smallWorkloads(1, 9010).front());
    const std::vector<std::uint8_t> inner = encodeSynthResult(res);
    const std::vector<std::uint8_t> payload =
        encodeSweepResultPayload(7, true, inner);

    std::uint32_t point = 0;
    bool hit = false;
    SynthResult decoded;
    ASSERT_TRUE(decodeSweepResultPayload(payload, point, hit, decoded));
    EXPECT_EQ(point, 7u);
    EXPECT_TRUE(hit);
    EXPECT_EQ(resultHash(decoded), resultHash(res));

    // Hostile variants: truncated, inner-length mismatch, empty inner.
    std::vector<std::uint8_t> cut(payload.begin(), payload.end() - 1);
    EXPECT_FALSE(decodeSweepResultPayload(cut, point, hit, decoded));
    std::vector<std::uint8_t> padded = payload;
    padded.push_back(0);
    EXPECT_FALSE(decodeSweepResultPayload(padded, point, hit, decoded));
    EXPECT_FALSE(decodeSweepResultPayload(
        encodeSweepResultPayload(7, false, {}), point, hit, decoded));
}

TEST(DistributedCodec, MetricsPayloadRoundTrips)
{
    const std::map<std::string, double> values = {
        {"ftd.points_served", 12.0},
        {"sweep_cache.hits", 3.5},
        {"", -0.0},
    };
    std::map<std::string, double> decoded;
    ASSERT_TRUE(decodeMetricsPayload(encodeMetricsPayload(values),
                                     decoded));
    EXPECT_EQ(decoded, values);

    ASSERT_TRUE(decodeMetricsPayload(encodeMetricsPayload({}),
                                     decoded));
    EXPECT_TRUE(decoded.empty());

    // Count larger than the payload backs fails cleanly.
    net::WireWriter w;
    w.u32(1'000'000);
    EXPECT_FALSE(decodeMetricsPayload(w.take(), decoded));
}

TEST(Distributed, TwoDaemonSweepIsByteIdenticalToLocal)
{
    WithDaemon a, b;
    const NocConfig config = NocConfig::fastTrack(4, 2, 1);
    const std::vector<SyntheticWorkload> workloads =
        smallWorkloads(6, 9100);

    std::vector<SynthResult> remote;
    {
        WithRemote wr(loopbackConfig({a.port(), b.port()}));
        remote = batchedCachedRuns(config, 1, workloads);
    }
    // remoteStats() reports this run, not process-cumulative totals.
    const RemoteStats after = remoteStats();
    EXPECT_EQ(after.pointsRemote, workloads.size());
    EXPECT_EQ(after.pointsFallback, 0u);

    // Round-robin sharding puts points on both daemons.
    EXPECT_GT(a.server.stats().pointsServed, 0u);
    EXPECT_GT(b.server.stats().pointsServed, 0u);
    EXPECT_EQ(a.server.stats().pointsServed +
                  b.server.stats().pointsServed,
              workloads.size());

    // Remote execution is invisible in the bytes: per point, the
    // local path produces the identical result.
    const std::vector<SynthResult> local =
        batchedCachedRuns(config, 1, workloads);
    ASSERT_EQ(remote.size(), local.size());
    for (std::size_t i = 0; i < local.size(); ++i)
        EXPECT_EQ(resultHash(remote[i]), resultHash(local[i])) << i;
}

TEST(Distributed, WarmDaemonAnswersFromItsCache)
{
    WithDaemon daemon;
    const NocConfig config = NocConfig::hoplite(4);
    const std::vector<SyntheticWorkload> workloads =
        smallWorkloads(4, 9200);
    WithRemote wr(loopbackConfig({daemon.port()}));

    const std::vector<SynthResult> cold =
        batchedCachedRuns(config, 1, workloads);
    const RemoteStats cold1 = remoteStats();
    EXPECT_EQ(cold1.pointsRemote, workloads.size());
    EXPECT_EQ(cold1.remoteCacheHits, 0u);

    // Same sweep again: every point travels the wire (the client's
    // own cache pre-pass is off) and the daemon replays its blob
    // cache instead of simulating. remoteStats() now describes the
    // warm run alone — the cold run's counters must not leak in
    // (the never-reset-counter regression).
    const std::vector<SynthResult> warm =
        batchedCachedRuns(config, 1, workloads);
    const RemoteStats warm1 = remoteStats();
    EXPECT_EQ(warm1.pointsRemote, workloads.size());
    EXPECT_EQ(warm1.remoteCacheHits, workloads.size());
    // The lifetime view keeps accumulating across both runs.
    const RemoteStats life = remoteLifetimeStats();
    EXPECT_GE(life.pointsRemote, 2 * workloads.size());
    EXPECT_EQ(daemon.server.stats().cacheHits, workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i)
        EXPECT_EQ(resultHash(warm[i]), resultHash(cold[i])) << i;

    // The daemon's telemetry epochs surfaced as client-side gauges.
    telemetry::MetricsRegistry metrics;
    reportRemoteStats(metrics);
    metrics.snapshot(0);
    const auto &values = metrics.epochs().back().values;
    const std::string label = "127.0.0.1:" +
                              std::to_string(daemon.port());
    EXPECT_EQ(values.count("remote." + label + ".ftd.points_served"),
              1u);
}

TEST(Distributed, DroppedEndpointStopsBeingExported)
{
    // Regression: endpoint gauges used to accumulate in a never-
    // cleared process-global map, so a daemon dropped from the
    // configuration kept being re-exported with stale values forever.
    // Gauges must describe the most recent run's endpoints only.
    WithDaemon a, b;
    const NocConfig config = NocConfig::fastTrack(4, 2, 1);
    const std::string label_a =
        "127.0.0.1:" + std::to_string(a.port());
    const std::string label_b =
        "127.0.0.1:" + std::to_string(b.port());

    {
        WithRemote wr(loopbackConfig({a.port()}));
        batchedCachedRuns(config, 1, smallWorkloads(2, 9600));
    }
    telemetry::MetricsRegistry first;
    reportRemoteStats(first);
    first.snapshot(0);
    const auto &v1 = first.epochs().back().values;
    EXPECT_EQ(v1.count("remote." + label_a + ".ftd.points_served"),
              1u);

    {
        WithRemote wr(loopbackConfig({b.port()}));
        batchedCachedRuns(config, 1, smallWorkloads(2, 9601));
    }
    telemetry::MetricsRegistry second;
    reportRemoteStats(second);
    second.snapshot(0);
    const auto &v2 = second.epochs().back().values;
    EXPECT_EQ(v2.count("remote." + label_b + ".ftd.points_served"),
              1u);
    EXPECT_EQ(v2.count("remote." + label_a + ".ftd.points_served"),
              0u);
}

TEST(Distributed, DeadEndpointFallsBackToLocalScalarPath)
{
    const NocConfig config = NocConfig::fastTrack(4, 2, 1);
    const std::vector<SyntheticWorkload> workloads =
        smallWorkloads(3, 9300);

    RemoteConfig remote = loopbackConfig({deadPort()});
    remote.maxAttempts = 2;
    remote.connectTimeoutMs = 200;
    std::vector<SynthResult> viaFallback;
    {
        WithRemote wr(std::move(remote));
        viaFallback = batchedCachedRuns(config, 1, workloads);
    }
    const RemoteStats after = remoteStats();
    EXPECT_EQ(after.pointsFallback, workloads.size());
    EXPECT_GE(after.connectFailures, 2u);
    EXPECT_EQ(after.pointsRemote, 0u);

    const std::vector<SynthResult> local =
        batchedCachedRuns(config, 1, workloads);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        EXPECT_EQ(resultHash(viaFallback[i]), resultHash(local[i]))
            << i;
}

TEST(Distributed, ClientRidesOutInjectedMidStreamDrops)
{
    // The daemon hard-closes every session after two response frames
    // — a worker killed mid-sweep. The kill is a real TCP reset, and
    // a reset may destroy results already queued in the client's
    // receive buffer, so whether a given session counts as progress
    // is a kernel-level race. The contract under test is the
    // degradation path: every point completes with byte-identical
    // results, over reconnects while the daemon looks alive and via
    // local fallback once the retry budget is spent.
    net::ServerConfig config;
    config.dropAfterFrames = 2;
    WithDaemon daemon(std::move(config));
    const NocConfig noc = NocConfig::fastTrack(4, 2, 1);
    const std::vector<SyntheticWorkload> workloads =
        smallWorkloads(5, 9400);

    std::vector<SynthResult> remote;
    {
        WithRemote wr(loopbackConfig({daemon.port()}));
        remote = batchedCachedRuns(noc, 1, workloads);
    }
    const RemoteStats after = remoteStats();
    EXPECT_EQ(after.pointsRemote + after.pointsFallback,
              workloads.size());
    EXPECT_GE(after.reconnects, 2u);
    EXPECT_GE(daemon.server.netStats().injectedDrops, 2u);

    const std::vector<SynthResult> local =
        batchedCachedRuns(noc, 1, workloads);
    for (std::size_t i = 0; i < workloads.size(); ++i)
        EXPECT_EQ(resultHash(remote[i]), resultHash(local[i])) << i;
}

TEST(Distributed, HostileRequestGetsErrorFrameAndSessionSurvives)
{
    WithDaemon daemon;

    // Raw-socket session: handshake by hand.
    std::string error;
    net::Socket sock = net::connectTo("127.0.0.1", daemon.port(),
                                      2'000, error);
    ASSERT_TRUE(sock.valid()) << error;
    net::Frame hello;
    hello.type = net::MessageType::hello;
    net::WireWriter hw;
    hw.u32(net::kWireVersion);
    hw.u32(kSweepCacheSchema);
    hw.u32(8);
    hello.payload = hw.take();
    ASSERT_EQ(net::sendFrame(sock, hello, 2'000),
              net::FrameStatus::ok);
    net::Frame ack;
    ASSERT_EQ(net::recvFrame(sock, ack, 2'000, 2'000),
              net::FrameStatus::ok);
    ASSERT_EQ(ack.type, net::MessageType::helloAck);
    net::WireReader ar(ack.payload);
    std::uint32_t version = 0, schema = 0, granted = 0;
    ASSERT_TRUE(ar.u32(version) && ar.u32(schema) && ar.u32(granted));
    EXPECT_EQ(schema, kSweepCacheSchema); // daemon speaks its build

    // A sweepRequest whose payload is garbage: answered with a
    // kErrBadRequest error frame (echoing the request id), followed
    // by the batch's telemetry epoch — and the session stays up.
    net::Frame bad;
    bad.type = net::MessageType::sweepRequest;
    bad.requestId = 41;
    bad.payload = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_EQ(net::sendFrame(sock, bad, 2'000), net::FrameStatus::ok);
    net::Frame reply;
    ASSERT_EQ(net::recvFrame(sock, reply, 10'000, 2'000),
              net::FrameStatus::ok);
    ASSERT_EQ(reply.type, net::MessageType::error);
    EXPECT_EQ(reply.requestId, 41u);
    std::uint32_t code = 0;
    std::string message;
    ASSERT_TRUE(net::parseErrorFrame(reply, code, message));
    EXPECT_EQ(code, net::kErrBadRequest);
    ASSERT_EQ(net::recvFrame(sock, reply, 10'000, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(reply.type, net::MessageType::metricsEpoch);

    // The same session then serves a valid point.
    SweepRequest request = sampleRequest(9500);
    request.maxCycles = kDefaultMaxCycles;
    net::Frame good;
    good.type = net::MessageType::sweepRequest;
    good.requestId = 42;
    good.payload = encodeSweepRequestPayload(request);
    ASSERT_EQ(net::sendFrame(sock, good, 2'000), net::FrameStatus::ok);
    ASSERT_EQ(net::recvFrame(sock, reply, 60'000, 10'000),
              net::FrameStatus::ok);
    ASSERT_EQ(reply.type, net::MessageType::sweepResult);
    EXPECT_EQ(reply.requestId, 42u);
    std::uint32_t point = 0;
    bool hit = false;
    SynthResult result;
    ASSERT_TRUE(
        decodeSweepResultPayload(reply.payload, point, hit, result));
    EXPECT_EQ(point, request.pointIndex);
    ASSERT_EQ(net::recvFrame(sock, reply, 10'000, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(reply.type, net::MessageType::metricsEpoch);
    std::map<std::string, double> epoch;
    ASSERT_TRUE(decodeMetricsPayload(reply.payload, epoch));
    EXPECT_GE(epoch.at("ftd.points_served"), 1.0);
    EXPECT_GE(epoch.at("ftd.bad_requests"), 1.0);

    net::Frame goodbye;
    goodbye.type = net::MessageType::goodbye;
    ASSERT_EQ(net::sendFrame(sock, goodbye, 2'000),
              net::FrameStatus::ok);
    sock.close();

    daemon.server.stop();
    EXPECT_EQ(daemon.server.stats().badRequests, 1u);
    EXPECT_EQ(daemon.server.stats().pointsServed, 1u);
    EXPECT_EQ(daemon.server.netStats().protocolErrors, 0u);
}

} // namespace
} // namespace fasttrack
