/**
 * @file
 * Tests for the trace format and the dependency-aware replayer.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "noc/network.hpp"
#include "traffic/trace_replay.hpp"
#include "workloads/dataflow.hpp"
#include "workloads/graph_analytics.hpp"
#include "workloads/mp_overlay.hpp"
#include "workloads/spmv.hpp"

namespace fasttrack {
namespace {

Trace
smallTrace()
{
    Trace t;
    t.name = "unit";
    t.n = 4;
    // 0: (0 -> 5) at cycle 0
    // 1: (5 -> 10) after 0 delivers, +3 compute
    // 2: (10 -> 15) after 1 delivers
    // 3: (1 -> 2) independent, not before cycle 20
    TraceMessage m0{0, 0, 5, 0, 0, {}};
    TraceMessage m1{1, 5, 10, 0, 3, {0}};
    TraceMessage m2{2, 10, 15, 0, 0, {1}};
    TraceMessage m3{3, 1, 2, 20, 0, {}};
    t.messages = {m0, m1, m2, m3};
    return t;
}

TEST(Trace, SaveLoadRoundTrip)
{
    const Trace t = smallTrace();
    std::stringstream ss;
    t.save(ss);
    const Trace u = Trace::load(ss);
    EXPECT_EQ(u.name, t.name);
    EXPECT_EQ(u.n, t.n);
    ASSERT_EQ(u.messages.size(), t.messages.size());
    for (std::size_t i = 0; i < t.messages.size(); ++i) {
        EXPECT_EQ(u.messages[i].src, t.messages[i].src);
        EXPECT_EQ(u.messages[i].dst, t.messages[i].dst);
        EXPECT_EQ(u.messages[i].earliest, t.messages[i].earliest);
        EXPECT_EQ(u.messages[i].delayAfterDeps,
                  t.messages[i].delayAfterDeps);
        EXPECT_EQ(u.messages[i].deps, t.messages[i].deps);
    }
}

TEST(TraceDeathTest, ValidateRejectsBadTraces)
{
    Trace t = smallTrace();
    t.messages[1].deps = {3}; // forward dependency
    EXPECT_EXIT(t.validate(), ::testing::ExitedWithCode(1),
                "earlier messages");

    Trace u = smallTrace();
    u.messages[2].dst = 99;
    EXPECT_EXIT(u.validate(), ::testing::ExitedWithCode(1), "node");

    Trace v = smallTrace();
    v.messages[0].id = 7;
    EXPECT_EXIT(v.validate(), ::testing::ExitedWithCode(1), "has id");
}

TEST(TraceReplay, DependenciesRespected)
{
    const Trace trace = smallTrace();
    Network noc(NocConfig::hoplite(4));
    std::map<std::uint64_t, Cycle> delivered_at;
    std::map<std::uint64_t, Cycle> injected_at;

    TraceReplayer replayer(noc, trace);
    // Intercept deliveries *after* the replayer installed its own
    // callback is not possible (single callback), so observe through
    // packet bookkeeping instead: record per-message times by polling.
    // Simpler: wrap by re-running with our own chained callback is
    // not supported; rely on the replayer's own assertions plus the
    // final schedule check below.
    const Cycle completion = replayer.run(100000);
    EXPECT_TRUE(replayer.finished());
    EXPECT_GE(completion, 3u); // at least the chain length
    EXPECT_EQ(replayer.deliveredMessages(), trace.messages.size());
    (void)delivered_at;
    (void)injected_at;
}

TEST(TraceReplay, ChainLatencyIsSequential)
{
    // The 3-message chain 0 -> 1 -> 2 spans three network traversals
    // plus the compute delay; completion must exceed their sum and a
    // parallel replay of independent messages must be much faster.
    Trace chain;
    chain.name = "chain";
    chain.n = 4;
    chain.messages = {
        TraceMessage{0, 0, 5, 0, 0, {}},
        TraceMessage{1, 5, 10, 0, 5, {0}},
        TraceMessage{2, 10, 15, 0, 5, {1}},
    };
    Network noc(NocConfig::hoplite(4));
    TraceReplayer replayer(noc, chain);
    const Cycle completion = replayer.run(100000);
    // Each hop-path is >= 2 cycles on a 4x4; two compute delays of 5.
    EXPECT_GE(completion, 2u * 3 + 5 + 5);
}

TEST(TraceReplay, EarliestTimestampHonored)
{
    Trace t;
    t.name = "ts";
    t.n = 4;
    t.messages = {TraceMessage{0, 0, 5, 50, 0, {}}};
    Network noc(NocConfig::hoplite(4));
    Cycle delivered = 0;
    // The replayer owns the callback; measure via completion time.
    TraceReplayer replayer(noc, t);
    delivered = replayer.run(100000);
    EXPECT_GE(delivered, 50u);
}

TEST(TraceReplay, SelfMessagesResolveDependencies)
{
    // Message 0 is node-local (src == dst); message 1 depends on it.
    Trace t;
    t.name = "self";
    t.n = 4;
    t.messages = {
        TraceMessage{0, 3, 3, 0, 0, {}},
        TraceMessage{1, 3, 9, 0, 0, {0}},
    };
    Network noc(NocConfig::hoplite(4));
    TraceReplayer replayer(noc, t);
    replayer.run(100000);
    EXPECT_TRUE(replayer.finished());
}

TEST(TraceReplayDeathTest, WrongNocSizeRejected)
{
    const Trace trace = smallTrace(); // n = 4
    Network noc(NocConfig::hoplite(8));
    EXPECT_DEATH(TraceReplayer(noc, trace), "trace is for");
}

TEST(TraceReplay, FanOutFanIn)
{
    // One producer fans out to 8 consumers; a collector depends on
    // all 8 echoes. Checks multi-dependency counting.
    Trace t;
    t.name = "fan";
    t.n = 4;
    std::vector<std::uint64_t> echo_ids;
    for (std::uint64_t i = 0; i < 8; ++i)
        t.messages.push_back(
            TraceMessage{i, 0, static_cast<NodeId>(i + 1), 0, 0, {}});
    for (std::uint64_t i = 0; i < 8; ++i) {
        t.messages.push_back(TraceMessage{8 + i,
                                          static_cast<NodeId>(i + 1),
                                          15, 0, 0, {i}});
        echo_ids.push_back(8 + i);
    }
    t.messages.push_back(TraceMessage{16, 15, 0, 0, 0, echo_ids});
    Network noc(NocConfig::hoplite(4));
    TraceReplayer replayer(noc, t);
    replayer.run(100000);
    EXPECT_TRUE(replayer.finished());
    EXPECT_EQ(replayer.deliveredMessages(), 17u);
}

TEST(Trace, CatalogTracesRoundTripThroughFiles)
{
    // Every workload family's trace survives save/load bit-exactly.
    std::vector<Trace> traces;
    {
        // Small representatives of each generator.
        MatrixParams mp;
        mp.rows = 600;
        traces.push_back(spmvTrace(generateMatrix(mp), 4));
        traces.push_back(graphPushTrace(
            rmat(8, 2048, 0.57, 0.17, 0.17, 3), 4,
            VertexPartition::hashed, 2));
        LuDagParams lp{"rt", 400, 6.0, 1.8, 2, 5};
        traces.push_back(dataflowTrace(sparseLuDag(lp), 4));
        traces.push_back(
            mpOverlayTrace(parsecCatalog().front(), 4, 12));
    }
    for (const Trace &t : traces) {
        std::stringstream ss;
        t.save(ss);
        const Trace u = Trace::load(ss);
        ASSERT_EQ(u.messages.size(), t.messages.size()) << t.name;
        for (std::size_t i = 0; i < t.messages.size(); ++i) {
            EXPECT_EQ(u.messages[i].src, t.messages[i].src);
            EXPECT_EQ(u.messages[i].dst, t.messages[i].dst);
            EXPECT_EQ(u.messages[i].earliest, t.messages[i].earliest);
            EXPECT_EQ(u.messages[i].deps, t.messages[i].deps);
        }
    }
}

} // namespace
} // namespace fasttrack
