/**
 * @file
 * NocDevice interface-contract tests, parameterized over every device
 * implementation (single Network, MultiChannelNoc, SmartNetwork): the
 * traffic and workload drivers rely on these behaviours uniformly.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "noc/buffered.hpp"
#include "noc/multichannel.hpp"
#include "noc/smart.hpp"
#include "noc/vc_torus.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

struct DeviceFactory
{
    const char *name;
    std::function<std::unique_ptr<NocDevice>()> make;
};

class DeviceContractTest : public ::testing::TestWithParam<int>
{
  protected:
    static const DeviceFactory &factory()
    {
        static const DeviceFactory factories[] = {
            {"network-hoplite",
             [] { return makeNoc(NocConfig::hoplite(4), 1); }},
            {"network-ft",
             [] { return makeNoc(NocConfig::fastTrack(4, 2, 1), 1); }},
            {"multichannel",
             [] { return makeNoc(NocConfig::hoplite(4), 3); }},
            {"smart", [] {
                 return std::unique_ptr<NocDevice>(
                     new SmartNetwork(4, 4));
             }},
            {"buffered", [] {
                 return std::unique_ptr<NocDevice>(
                     new BufferedNetwork(4, 4));
             }},
            {"vc-torus", [] {
                 return std::unique_ptr<NocDevice>(
                     new VcTorusNetwork(4, 2, 4));
             }},
        };
        return factories[::testing::TestWithParam<int>::GetParam()];
    }

    const DeviceFactory &f = factory();
};

TEST_P(DeviceContractTest, StartsQuiescentAtCycleZero)
{
    auto noc = f.make();
    EXPECT_TRUE(noc->quiescent()) << f.name;
    EXPECT_EQ(noc->now(), 0u);
    EXPECT_GT(noc->linkCount(), 0u);
    EXPECT_GE(noc->channelCount(), 1u);
}

TEST_P(DeviceContractTest, StepAdvancesTime)
{
    auto noc = f.make();
    noc->step();
    noc->step();
    EXPECT_EQ(noc->now(), 2u);
}

TEST_P(DeviceContractTest, OfferPendingUntilAccepted)
{
    auto noc = f.make();
    Packet p;
    p.id = 1;
    p.src = 0;
    p.dst = 5;
    noc->offer(p);
    EXPECT_TRUE(noc->hasPendingOffer(0));
    EXPECT_FALSE(noc->quiescent());
    noc->step(); // empty network: immediate acceptance
    EXPECT_FALSE(noc->hasPendingOffer(0));
}

TEST_P(DeviceContractTest, DeliverCallbackFiresOncePerPacket)
{
    auto noc = f.make();
    std::uint64_t calls = 0;
    noc->setDeliverCallback(
        [&](const Packet &, Cycle) { ++calls; });
    for (NodeId s = 0; s < 8; ++s) {
        Packet p;
        p.id = s + 1;
        p.src = s;
        p.dst = 15 - s;
        noc->offer(p);
    }
    ASSERT_TRUE(noc->drain(10000));
    EXPECT_EQ(calls, 8u);
    const NocStats stats = noc->statsSnapshot();
    EXPECT_EQ(stats.delivered + stats.selfDelivered, 8u);
}

TEST_P(DeviceContractTest, SelfDeliveryBypassesNetwork)
{
    auto noc = f.make();
    std::uint64_t calls = 0;
    noc->setDeliverCallback(
        [&](const Packet &, Cycle) { ++calls; });
    Packet p;
    p.id = 1;
    p.src = 7;
    p.dst = 7;
    noc->offer(p);
    EXPECT_EQ(calls, 1u);
    EXPECT_TRUE(noc->quiescent());
    EXPECT_EQ(noc->statsSnapshot().selfDelivered, 1u);
}

TEST_P(DeviceContractTest, RunsSyntheticWorkload)
{
    auto noc = f.make();
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::transpose;
    workload.injectionRate = 0.8;
    workload.packetsPerPe = 64;
    const SynthResult res = runSynthetic(*noc, workload, 1'000'000);
    EXPECT_TRUE(res.completed) << f.name;
    EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
              64ull * 16);
}

TEST_P(DeviceContractTest, DrainReturnsFalseOnGuard)
{
    auto noc = f.make();
    Packet p;
    p.id = 1;
    p.src = 0;
    p.dst = 5;
    noc->offer(p);
    EXPECT_FALSE(noc->drain(0));
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceContractTest,
                         ::testing::Range(0, 6));

} // namespace
} // namespace fasttrack
