/**
 * @file
 * Scheduler-library contract: the work-stealing pool must be invisible
 * in results (serial, pooled and stolen executions bit-identical), and
 * the sweep cache must be invisible too (hit, miss, disk and corrupt
 * paths all produce the same bytes). Also stress-tests concurrent
 * sweeps sharing the pool (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "net/wire.hpp"
#include "sched/blob_cache.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_cache.hpp"

namespace fasttrack {
namespace {

/** Content hash of a full result (every counter and histogram). */
std::uint64_t
resultHash(const SynthResult &res)
{
    const auto bytes = encodeSynthResult(res);
    sched::Fnv1a h;
    h.addBytes(bytes.data(), bytes.size());
    return h.value();
}

SyntheticWorkload
smallWorkload(double rate, std::uint64_t seed)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = rate;
    workload.packetsPerPe = 24;
    workload.seed = seed;
    return workload;
}

/** Fresh scratch directory under the test temp root. */
std::string
scratchDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + "ft_sched_" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

/**
 * A test-local pool with a forced participant count, installed as the
 * parallelMap executor for the scope. The global pool sizes itself
 * from the machine (possibly a single core, i.e. zero workers), so
 * pool-path coverage must not depend on it.
 */
struct WithPool
{
    sched::WorkStealingPool pool;
    parallel_detail::BulkExecutor *prev;

    explicit WithPool(unsigned concurrency) : pool(concurrency)
    {
        // Materialize the global holder first so its one-time
        // executor installation cannot clobber ours mid-test.
        sched::ensureGlobalPool();
        prev = parallel_detail::bulkExecutor();
        parallel_detail::setBulkExecutor(&pool);
    }
    ~WithPool() { parallel_detail::setBulkExecutor(prev); }
};

TEST(SchedPool, PooledParallelMapMatchesSerial)
{
    WithPool wp(4);
    ASSERT_EQ(wp.pool.workerCount(), 3u);

    std::vector<std::uint64_t> items(257);
    std::iota(items.begin(), items.end(), 1);
    // Skewed per-item cost so ranges drain unevenly and thieves have
    // something to split.
    auto fn = [](std::uint64_t v) {
        Rng rng(v);
        std::uint64_t acc = v;
        for (std::uint64_t i = 0; i < (v % 97) * 50; ++i)
            acc ^= rng.next();
        return acc;
    };

    const auto serial = parallelMap(items, fn, 1);
    const auto pooled = parallelMap(items, fn, 4);
    EXPECT_EQ(pooled, serial);
    const auto st = wp.pool.stats();
    EXPECT_GE(st.jobs, 1u);
    EXPECT_EQ(st.tasks, items.size());
}

TEST(SchedPool, ThievesDrainABlockedOwnersRange)
{
    // Pin the stolen path: item 0 wedges the submitter (slot 0) while
    // the rest of slot 0's contiguous range is still unclaimed, so
    // some participant must steal to finish the job — and the stolen
    // execution must be invisible in the results.
    WithPool wp(4);
    std::vector<int> items(64);
    std::iota(items.begin(), items.end(), 0);
    auto fn = [](int v) {
        if (v == 0) {
            // Relaxed atomic spin: opaque to the optimizer without
            // volatile, whose ++/assignment forms C++20 deprecates.
            std::atomic<int> spin{0};
            while (spin.fetch_add(1, std::memory_order_relaxed) <
                   20'000'000) {
            }
        }
        return v * 7 + 1;
    };
    const auto serial = parallelMap(items, fn, 1);
    const auto pooled = parallelMap(items, fn, 4);
    EXPECT_EQ(pooled, serial);
    const auto st = wp.pool.stats();
    EXPECT_GT(st.steals, 0u);
    EXPECT_GT(st.stolenTasks, 0u);
    EXPECT_EQ(st.tasks, items.size());
}

TEST(SchedPool, SpawnFallbackMatchesPool)
{
    WithPool wp(4);
    std::vector<int> items(100);
    std::iota(items.begin(), items.end(), 0);
    auto fn = [](int v) { return v * v - 3; };

    const auto pooled = parallelMap(items, fn, 4);
    parallel_detail::setBulkExecutor(nullptr);
    const auto spawned = parallelMap(items, fn, 4);
    parallel_detail::setBulkExecutor(&wp.pool);
    EXPECT_EQ(spawned, pooled);
}

TEST(SchedPool, NestedParallelMapRunsInline)
{
    WithPool wp(4);
    std::vector<int> outer(16);
    std::iota(outer.begin(), outer.end(), 0);
    const auto out = parallelMap(outer, [](int v) {
        std::vector<int> inner{v, v + 1, v + 2};
        const auto sums = parallelMap(
            inner, [](int w) { return w * 10; }, 8);
        return sums[0] + sums[1] + sums[2];
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(30 * i + 30));
}

TEST(SchedPool, ExceptionContractHoldsUnderPool)
{
    WithPool wp(4);
    std::vector<int> items(101);
    std::iota(items.begin(), items.end(), 0);
    auto fn = [](int v) -> int {
        if (v % 10 == 7)
            throw std::runtime_error("item " + std::to_string(v));
        return v;
    };
    try {
        parallelMap(items, fn, 8);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 7");
    }
}

TEST(SchedPool, ConcurrentSweepsShareThePool)
{
    // Several external threads submit sweeps at once; the pool's
    // worker set and the cache's store/lookup paths are shared. Run
    // under TSan this is the data-race stress; everywhere it pins
    // that concurrency does not change results.
    WithPool wp(4);
    const NocUnderTest nut{"ft", NocConfig::fastTrack(4, 2, 1), 1};
    const std::vector<double> rates{0.1, 0.3, 0.6};

    const auto reference =
        injectionSweep(nut, TrafficPattern::random, rates, 24);
    ASSERT_EQ(reference.size(), rates.size());

    std::vector<std::vector<SweepPoint>> sweeps(4);
    std::vector<std::thread> threads;
    for (auto &slot : sweeps)
        threads.emplace_back([&nut, &rates, &slot] {
            slot = injectionSweep(nut, TrafficPattern::random, rates,
                                  24);
        });
    for (auto &t : threads)
        t.join();

    for (const auto &sweep : sweeps) {
        ASSERT_EQ(sweep.size(), reference.size());
        for (std::size_t i = 0; i < sweep.size(); ++i)
            EXPECT_EQ(resultHash(sweep[i].result),
                      resultHash(reference[i].result))
                << "point " << i;
    }
}

TEST(SweepCache, CacheOnAndOffAreBitIdentical)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload workload = smallWorkload(0.4, 11);

    setSweepCacheEnabled(false);
    const SynthResult uncached =
        cachedRunSynthetic(cfg, 1, workload);
    setSweepCacheEnabled(true);
    const SynthResult miss = cachedRunSynthetic(cfg, 1, workload);

    const auto before = sweepCache().stats();
    const SynthResult hit = cachedRunSynthetic(cfg, 1, workload);
    const auto after = sweepCache().stats();

    EXPECT_EQ(resultHash(uncached), resultHash(miss));
    EXPECT_EQ(resultHash(uncached), resultHash(hit));
    EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(SweepCache, CodecRoundTripsAndRejectsTruncation)
{
    const SynthResult res = runSynthetic(
        NocConfig::hoplite(4), 1, smallWorkload(0.5, 3));
    const auto bytes = encodeSynthResult(res);

    SynthResult decoded;
    ASSERT_TRUE(decodeSynthResult(bytes, decoded));
    EXPECT_EQ(resultHash(decoded), resultHash(res));
    EXPECT_EQ(decoded.completed, res.completed);
    EXPECT_EQ(decoded.cycles, res.cycles);

    for (std::size_t cut : {std::size_t{0}, std::size_t{1},
                            bytes.size() / 2, bytes.size() - 1}) {
        std::vector<std::uint8_t> truncated(bytes.begin(),
                                            bytes.begin() + cut);
        SynthResult sink;
        EXPECT_FALSE(decodeSynthResult(truncated, sink))
            << "cut=" << cut;
    }
    auto padded = bytes;
    padded.push_back(0);
    SynthResult sink;
    EXPECT_FALSE(decodeSynthResult(padded, sink));
}

TEST(SweepCache, KeySeparatesEveryInput)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload base = smallWorkload(0.4, 11);
    const std::uint64_t key = sweepKey(cfg, 1, base);

    SyntheticWorkload w = base;
    w.seed = 12;
    EXPECT_NE(sweepKey(cfg, 1, w), key);
    w = base;
    w.injectionRate = 0.40001;
    EXPECT_NE(sweepKey(cfg, 1, w), key);
    w = base;
    w.packetsPerPe += 1;
    EXPECT_NE(sweepKey(cfg, 1, w), key);

    EXPECT_NE(sweepKey(cfg, 2, base), key);
    EXPECT_NE(sweepKey(NocConfig::fastTrack(4, 2, 2), 1, base), key);
    EXPECT_NE(sweepKey(cfg, 1, base, 12345), key);
}

TEST(BlobCache, DiskRoundTrip)
{
    const std::string dir = scratchDir("roundtrip");
    sched::BlobCache cache("test_cache", 7);
    cache.setDir(dir);

    const std::uint64_t key = 0x1234abcdull;
    cache.store(key, {1, 2, 3, 4, 5});
    ASSERT_TRUE(std::filesystem::exists(cache.entryPath(key)));

    cache.clearMemory();
    const auto loaded = cache.lookup(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
    EXPECT_EQ(cache.stats().diskHits, 1u);

    // A second lookup is served from memory again.
    ASSERT_TRUE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().diskHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(BlobCache, CorruptAndTruncatedEntriesAreRejected)
{
    const std::string dir = scratchDir("corrupt");
    sched::BlobCache cache("test_cache", 7);
    cache.setDir(dir);

    const std::uint64_t key = 42;
    cache.store(key, {9, 8, 7, 6});
    const std::string path = cache.entryPath(key);

    // Flip one payload byte: the trailing self-check hash must catch
    // it.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(24);
        const char zero = 0;
        f.write(&zero, 1);
    }
    cache.clearMemory();
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 1u);

    // Rewrite, then truncate mid-payload.
    cache.store(key, {9, 8, 7, 6});
    cache.clearMemory();
    std::filesystem::resize_file(path, 26);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().corrupt, 2u);

    // Rewrite, then read through a cache with a newer schema: the
    // stale entry must be rejected, not mis-decoded.
    cache.store(key, {9, 8, 7, 6});
    sched::BlobCache newer("test_cache", 8);
    newer.setDir(dir);
    EXPECT_FALSE(newer.lookup(key).has_value());
    EXPECT_EQ(newer.stats().corrupt, 1u);
    std::filesystem::remove_all(dir);
}

TEST(SweepCache, CorruptDiskEntryIsRecomputed)
{
    const std::string dir = scratchDir("recompute");
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload workload = smallWorkload(0.3, 5);

    sweepCache().setDir(dir);
    setSweepCacheEnabled(true);
    const SynthResult first = cachedRunSynthetic(cfg, 1, workload);
    const std::string path =
        sweepCache().entryPath(sweepKey(cfg, 1, workload));
    ASSERT_TRUE(std::filesystem::exists(path));

    // Corrupt the persisted entry and drop the memory copy: the next
    // cached run must detect the damage, recompute, and still return
    // the same bytes.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(30);
        const char junk = 0x5a;
        f.write(&junk, 1);
    }
    sweepCache().clearMemory();
    const auto before = sweepCache().stats();
    const SynthResult second = cachedRunSynthetic(cfg, 1, workload);
    const auto after = sweepCache().stats();

    EXPECT_EQ(resultHash(second), resultHash(first));
    EXPECT_EQ(after.corrupt, before.corrupt + 1);
    sweepCache().setDir("");
    std::filesystem::remove_all(dir);
}

TEST(BlobCache, EvictionKeepsDiskStoreUnderCap)
{
    const std::string dir = scratchDir("evict");
    sched::BlobCache cache("test_cache", 7);
    cache.setDir(dir);
    // Each entry is 24 (header) + 68 (payload) + 8 (trailer) = 100
    // bytes on disk; a 250-byte cap holds two.
    cache.setMaxDiskBytes(250);
    const std::vector<std::uint8_t> payload(68, 0xa5);

    // Eviction is oldest-write-first with the entry path as the
    // tie-break, so ascending keys + spaced writes pin the order.
    for (std::uint64_t key : {1ull, 2ull}) {
        cache.store(key, payload);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(cache.diskBytes(), 200u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // The third write overflows the cap: the oldest entry goes, the
    // one just written is never a victim.
    cache.store(3, payload);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.diskBytes(), 200u);
    EXPECT_FALSE(std::filesystem::exists(cache.entryPath(1)));
    EXPECT_TRUE(std::filesystem::exists(cache.entryPath(2)));
    EXPECT_TRUE(std::filesystem::exists(cache.entryPath(3)));

    // The evicted entry is gone for real (memory dropped too), the
    // survivors still load from disk.
    cache.clearMemory();
    EXPECT_FALSE(cache.lookup(1).has_value());
    ASSERT_TRUE(cache.lookup(2).has_value());
    EXPECT_EQ(*cache.lookup(2), payload);

    // Raising the cap stops eviction.
    cache.setMaxDiskBytes(0);
    cache.store(4, payload);
    cache.store(5, payload);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.diskBytes(), 400u);
    std::filesystem::remove_all(dir);
}

TEST(BlobCache, ForeignHostEntryValidates)
{
    // Build an entry file byte by byte from the documented on-disk
    // format (sched/blob_cache.hpp) — exactly what a different
    // machine, of any endianness, would have produced — and require
    // this host to load it. This is the portability contract the
    // distributed fabric's cross-node cache sharing rests on.
    const std::string dir = scratchDir("foreign");
    std::filesystem::create_directories(dir);
    sched::BlobCache cache("test_cache", 7);
    cache.setDir(dir);

    const std::uint64_t key = 0x0123456789abcdefull;
    const std::vector<std::uint8_t> payload = {0x10, 0x20, 0x30,
                                               0x40, 0x50};
    net::WireWriter w;
    w.u32(0x43525446u); // 'FTRC'
    w.u32(7);           // schema
    w.u64(key);
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    sched::Fnv1a check;
    check.addBytes(payload.data(), payload.size());
    w.u64(check.value());
    {
        std::ofstream f(cache.entryPath(key), std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.write(reinterpret_cast<const char *>(w.buffer().data()),
                static_cast<std::streamsize>(w.size()));
    }

    const auto loaded = cache.lookup(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);
    EXPECT_EQ(cache.stats().corrupt, 0u);
    EXPECT_EQ(cache.stats().diskHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(SweepCache, KeyAndEntryBytesArePinned)
{
    // Golden values for the v2 (explicitly little-endian) schema. If
    // either of these ever changes, blobs written by released builds
    // would mis-validate across the fleet: bump kSweepCacheSchema
    // and re-pin, never silently repurpose the old schema number.
    EXPECT_EQ(kSweepCacheSchema, 2u);

    const NocConfig cfg = NocConfig::fastTrack(8, 4, 2);
    SyntheticWorkload w;
    w.pattern = TrafficPattern::transpose;
    w.injectionRate = 0.125; // exact in binary
    w.packetsPerPe = 512;
    w.localRadius = 2;
    w.seed = 77;
    EXPECT_EQ(sweepKey(cfg, 2, w, 1'000'000),
              UINT64_C(0xbf78f7256ffa4021));

    // The FNV-1a stream itself feeds words as little-endian bytes, so
    // the same key falls out on any host; pin one primitive case too.
    sched::Fnv1a h;
    h.add(UINT64_C(0x0123456789abcdef));
    EXPECT_EQ(h.value(), UINT64_C(0x37eb3f3347761c55));
}

} // namespace
} // namespace fasttrack
