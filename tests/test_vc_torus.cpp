/**
 * @file
 * Tests for the VC-torus (OpenSMART-class) baseline: shortest-path
 * wrap routing, dateline deadlock freedom under adversarial
 * saturation, and conservation.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/vc_torus.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id = 1)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(VcTorus, ShortestPathUsesWraparound)
{
    VcTorusNetwork noc(8, 2, 4);
    std::optional<Packet> got;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { got = p; });
    // (7,0) -> (0,0): one wrap hop East, not seven West.
    noc.offer(pkt(toNodeId({7, 0}, 8), toNodeId({0, 0}, 8)));
    ASSERT_TRUE(noc.drain(1000));
    EXPECT_EQ(got->totalHops(), 1u);
    EXPECT_EQ(noc.datelineCrossings(), 1u);
}

TEST(VcTorus, ShortestPathBothDirections)
{
    VcTorusNetwork noc(8, 2, 4);
    std::optional<Packet> got;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { got = p; });
    // (0,0) -> (3,5): 3 East + 3 North (wrap via y=7) = 6 hops.
    noc.offer(pkt(toNodeId({0, 0}, 8), toNodeId({3, 5}, 8)));
    ASSERT_TRUE(noc.drain(1000));
    EXPECT_EQ(got->totalHops(), 6u);
}

TEST(VcTorus, DeadlockFreeUnderRingSaturation)
{
    // The classic torus deadlock: every node floods its own row with
    // half-ring transfers so the wraparound cycle fills. The dateline
    // VCs must keep it live.
    VcTorusNetwork noc(8, 2, 2);
    std::map<std::uint64_t, int> seen;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { ++seen[p.id]; });
    std::uint64_t id = 0;
    for (int round = 0; round < 300; ++round) {
        for (NodeId s = 0; s < 64; ++s) {
            if (!noc.hasPendingOffer(s)) {
                const Coord c = toCoord(s, 8);
                const Coord d{static_cast<std::uint16_t>(
                                  (c.x + 4) % 8), c.y};
                noc.offer(pkt(s, toNodeId(d, 8), ++id));
            }
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(200000));
    EXPECT_EQ(seen.size(), id);
    EXPECT_GT(noc.datelineCrossings(), 0u);
}

TEST(VcTorus, SaturatedRandomConserves)
{
    for (std::uint32_t vcs : {2u, 4u}) {
        VcTorusNetwork noc(8, vcs, 2);
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 200;
        const SynthResult res = runSynthetic(noc, workload, 5'000'000);
        ASSERT_TRUE(res.completed) << "VCs=" << vcs;
        EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
                  200ull * 64);
    }
}

TEST(VcTorus, BeatsMeshOnWrapHeavyTraffic)
{
    // The torus' raison d'etre: average distance is nearly halved, so
    // on uniform random it beats both Hoplite (deflections) and
    // should show the highest packets/cycle of all baselines.
    VcTorusNetwork torus(8, 2, 8);
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 256;
    const SynthResult t = runSynthetic(torus, workload, 5'000'000);
    const SynthResult h =
        runSynthetic(NocConfig::hoplite(8), 1, workload, 5'000'000);
    ASSERT_TRUE(t.completed && h.completed);
    EXPECT_GT(t.sustainedRate(), 2.0 * h.sustainedRate());
}

TEST(VcTorus, ZeroLoadLatencyNearDistance)
{
    VcTorusNetwork noc(8, 2, 4);
    Cycle when = 0;
    Packet seen;
    noc.setDeliverCallback([&](const Packet &p, Cycle c) {
        seen = p;
        when = c;
    });
    noc.offer(pkt(toNodeId({1, 1}, 8), toNodeId({4, 3}, 8)));
    ASSERT_TRUE(noc.drain(1000));
    EXPECT_EQ(seen.totalHops(), 5u);
    // 1 injection + 5 hops + 1 delivery arbitration step each.
    EXPECT_LE(when, 9u);
}

TEST(VcTorusDeathTest, NeedsEscapeVc)
{
    EXPECT_DEATH(VcTorusNetwork(8, 1, 4), "2 VCs");
}

} // namespace
} // namespace fasttrack
