/**
 * @file
 * Network-level tests: conservation, zero-load routing against the
 * topology golden model, offer semantics, determinism, and per-packet
 * accounting.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/network.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(Network, ZeroLoadHopsMatchGoldenModel)
{
    // Every (src, dst) pair in isolation must take exactly the
    // minimal FastTrack path.
    for (const NocConfig &cfg :
         {NocConfig::hoplite(6), NocConfig::fastTrack(8, 2, 1),
          NocConfig::fastTrack(8, 2, 2),
          NocConfig::fastTrack(8, 4, 1)}) {
        Network noc(cfg);
        const std::uint32_t nodes = cfg.pes();
        std::uint64_t id = 0;
        for (NodeId s = 0; s < nodes; ++s) {
            for (NodeId d = 0; d < nodes; ++d) {
                if (s == d)
                    continue;
                std::optional<Packet> got;
                noc.setDeliverCallback(
                    [&](const Packet &p, Cycle) { got = p; });
                noc.offer(pkt(s, d, ++id));
                ASSERT_TRUE(noc.drain(1000)) << cfg.describe();
                ASSERT_TRUE(got.has_value());
                const std::uint32_t expect =
                    noc.topology().minimalHops(toCoord(s, cfg.n),
                                               toCoord(d, cfg.n));
                EXPECT_EQ(got->totalHops(), expect)
                    << cfg.describe() << " " << s << "->" << d;
                EXPECT_EQ(got->deflections, 0u);
            }
        }
    }
}

TEST(Network, ConservationUnderRandomLoad)
{
    NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
    Network noc(cfg);
    Rng rng(99);
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });

    std::uint64_t id = 0;
    std::uint64_t offered = 0;
    for (int cycle = 0; cycle < 2000; ++cycle) {
        for (NodeId node = 0; node < cfg.pes(); ++node) {
            if (!noc.hasPendingOffer(node) && rng.nextBool(0.6)) {
                NodeId dst = static_cast<NodeId>(
                    rng.nextBelow(cfg.pes() - 1));
                if (dst >= node)
                    ++dst;
                noc.offer(pkt(node, dst, ++id));
                ++offered;
            }
        }
        noc.step();
        // Conservation each cycle: everything offered is pending,
        // in flight, or delivered.
        EXPECT_EQ(offered, noc.pendingOffers() + noc.inFlight() +
                               delivered);
    }
    ASSERT_TRUE(noc.drain(100000));
    EXPECT_EQ(offered, delivered);
    EXPECT_EQ(noc.stats().delivered, delivered);
    EXPECT_EQ(noc.stats().injected, delivered);
}

TEST(Network, NoDuplicationOrLoss)
{
    NocConfig cfg = NocConfig::fastTrack(8, 2, 2);
    Network noc(cfg);
    std::map<std::uint64_t, int> seen;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { ++seen[p.id]; });

    Rng rng(7);
    std::uint64_t id = 0;
    for (int cycle = 0; cycle < 500; ++cycle) {
        for (NodeId node = 0; node < cfg.pes(); ++node) {
            if (!noc.hasPendingOffer(node)) {
                NodeId dst = static_cast<NodeId>(
                    rng.nextBelow(cfg.pes() - 1));
                if (dst >= node)
                    ++dst;
                noc.offer(pkt(node, dst, ++id));
            }
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(100000));
    EXPECT_EQ(seen.size(), id);
    for (const auto &[packet_id, count] : seen)
        EXPECT_EQ(count, 1) << "packet " << packet_id;
}

TEST(Network, SelfAddressedDeliversImmediately)
{
    Network noc(NocConfig::hoplite(4));
    std::optional<Packet> got;
    noc.setDeliverCallback([&](const Packet &p, Cycle) { got = p; });
    noc.offer(pkt(5, 5, 1));
    EXPECT_TRUE(got.has_value());
    EXPECT_EQ(noc.stats().selfDelivered, 1u);
    EXPECT_EQ(noc.stats().injected, 0u);
    EXPECT_TRUE(noc.quiescent());
}

TEST(Network, OfferSemantics)
{
    Network noc(NocConfig::hoplite(4));
    EXPECT_FALSE(noc.hasPendingOffer(0));
    noc.offer(pkt(0, 5, 1));
    EXPECT_TRUE(noc.hasPendingOffer(0));
    EXPECT_EQ(noc.pendingOffers(), 1u);
    // Offer is consumed on acceptance.
    noc.step();
    EXPECT_FALSE(noc.hasPendingOffer(0));
    EXPECT_EQ(noc.inFlight(), 1u);
}

TEST(NetworkDeathTest, DoubleOfferPanics)
{
    Network noc(NocConfig::hoplite(4));
    noc.offer(pkt(0, 5, 1));
    EXPECT_DEATH(noc.offer(pkt(0, 6, 2)), "pending offer");
}

TEST(NetworkDeathTest, BadNodesPanic)
{
    Network noc(NocConfig::hoplite(4));
    EXPECT_DEATH(noc.offer(pkt(99, 0, 1)), "bad source");
    EXPECT_DEATH(noc.offer(pkt(0, 99, 1)), "bad destination");
}

TEST(Network, WithdrawOffer)
{
    Network noc(NocConfig::hoplite(4));
    noc.offer(pkt(0, 5, 7));
    const Packet p = noc.withdrawOffer(0);
    EXPECT_EQ(p.id, 7u);
    EXPECT_FALSE(noc.hasPendingOffer(0));
    EXPECT_TRUE(noc.quiescent());
}

TEST(Network, DeterministicAcrossRuns)
{
    auto run = [] {
        Network noc(NocConfig::fastTrack(8, 2, 1));
        std::vector<std::pair<std::uint64_t, Cycle>> log;
        noc.setDeliverCallback([&](const Packet &p, Cycle c) {
            log.emplace_back(p.id, c);
        });
        Rng rng(1);
        std::uint64_t id = 0;
        for (int cycle = 0; cycle < 300; ++cycle) {
            for (NodeId node = 0; node < 64; ++node) {
                if (!noc.hasPendingOffer(node) && rng.nextBool(0.5)) {
                    NodeId dst =
                        static_cast<NodeId>(rng.nextBelow(63));
                    if (dst >= node)
                        ++dst;
                    noc.offer(pkt(node, dst, ++id));
                }
            }
            noc.step();
        }
        noc.drain(100000);
        return log;
    };
    EXPECT_EQ(run(), run());
}

TEST(Network, LatencyAccountingZeroLoad)
{
    Network noc(NocConfig::hoplite(4));
    Cycle delivered_at = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle c) { delivered_at = c; });
    Packet p = pkt(0, 3, 1); // dx=3, dy=0 -> 3 hops
    p.created = 0;
    noc.offer(p);
    ASSERT_TRUE(noc.drain(100));
    EXPECT_EQ(delivered_at, 3u);
    EXPECT_EQ(noc.stats().networkLatency.max(), 3u);
    EXPECT_EQ(noc.stats().totalLatency.max(), 3u);
    EXPECT_EQ(noc.stats().hopCount.max(), 3u);
}

TEST(Network, LinkCountFormula)
{
    // 2N rings x N short links + 2N x N/R express links.
    EXPECT_EQ(Network(NocConfig::hoplite(8)).linkCount(), 16u * 8);
    EXPECT_EQ(Network(NocConfig::fastTrack(8, 2, 1)).linkCount(),
              16u * 8 + 16u * 8);
    EXPECT_EQ(Network(NocConfig::fastTrack(8, 2, 2)).linkCount(),
              16u * 8 + 16u * 4);
}

TEST(Network, ExpressAlignmentInvariantObserved)
{
    // In a fully populated aligned NoC under moderate load, delivered
    // packets' express hops always advanced them by exact multiples
    // of D: check total distance accounting: shortHops + D*expressHops
    // >= minimal Manhattan distance and congruent modulo the torus.
    NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
    Network noc(cfg);
    noc.setDeliverCallback([&](const Packet &p, Cycle) {
        const Coord s = toCoord(p.src, 8);
        const Coord d = toCoord(p.dst, 8);
        const std::uint32_t manhattan =
            ringDistance(s.x, d.x, 8) + ringDistance(s.y, d.y, 8);
        const std::uint32_t travelled =
            p.shortHops + 2u * p.expressHops;
        EXPECT_GE(travelled, manhattan);
        // On a unidirectional torus every walk's per-dimension step
        // count is congruent to the ring distance mod N, so any
        // detour (deflections included) costs whole-ring multiples.
        EXPECT_EQ((travelled - manhattan) % 8, 0u);
    });
    Rng rng(3);
    std::uint64_t id = 0;
    for (int cycle = 0; cycle < 400; ++cycle) {
        for (NodeId node = 0; node < 64; ++node) {
            if (!noc.hasPendingOffer(node) && rng.nextBool(0.3)) {
                NodeId dst = static_cast<NodeId>(rng.nextBelow(63));
                if (dst >= node)
                    ++dst;
                noc.offer(pkt(node, dst, ++id));
            }
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(100000));
}

} // namespace
} // namespace fasttrack
