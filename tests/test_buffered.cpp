/**
 * @file
 * Tests for the buffered (CONNECT-class) baseline router.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/buffered.hpp"
#include "sim/simulation.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id = 1)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(Buffered, ZeroLoadXyPath)
{
    BufferedNetwork noc(8, 4);
    std::optional<Packet> got;
    Cycle when = 0;
    noc.setDeliverCallback([&](const Packet &p, Cycle c) {
        got = p;
        when = c;
    });
    // (1,1) -> (5,4): |dx|=4, |dy|=3 -> 7 link hops on the mesh.
    noc.offer(pkt(toNodeId({1, 1}, 8), toNodeId({5, 4}, 8)));
    ASSERT_TRUE(noc.drain(1000));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->totalHops(), 7u);
    // Injection + 7 hops + delivery arbitration, one cycle each.
    EXPECT_LE(when, 12u);
}

TEST(Buffered, MeshHasNoWraparound)
{
    BufferedNetwork noc(4, 2);
    std::optional<Packet> got;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { got = p; });
    // (3,0) -> (0,0) must go 3 hops west, not 1 hop east-wrap.
    noc.offer(pkt(toNodeId({3, 0}, 4), toNodeId({0, 0}, 4)));
    ASSERT_TRUE(noc.drain(1000));
    EXPECT_EQ(got->totalHops(), 3u);
}

TEST(Buffered, NeverDropsUnderSaturation)
{
    for (std::uint32_t depth : {1u, 2u, 8u}) {
        BufferedNetwork noc(8, depth);
        std::map<std::uint64_t, int> seen;
        noc.setDeliverCallback(
            [&](const Packet &p, Cycle) { ++seen[p.id]; });
        Rng rng(51);
        std::uint64_t id = 0;
        for (int cycle = 0; cycle < 400; ++cycle) {
            for (NodeId s = 0; s < 64; ++s) {
                if (!noc.hasPendingOffer(s)) {
                    NodeId d =
                        static_cast<NodeId>(rng.nextBelow(63));
                    if (d >= s)
                        ++d;
                    noc.offer(pkt(s, d, ++id));
                }
            }
            noc.step();
        }
        ASSERT_TRUE(noc.drain(200000)) << "depth " << depth;
        EXPECT_EQ(seen.size(), id);
        for (const auto &[packet_id, count] : seen)
            EXPECT_EQ(count, 1) << packet_id;
    }
}

TEST(Buffered, BackpressureBlocksInjection)
{
    // Hotspot: everyone sends to one corner; with depth-1 FIFOs the
    // network must assert backpressure rather than lose packets.
    BufferedNetwork noc(4, 1);
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });
    std::uint64_t id = 0;
    for (int round = 0; round < 50; ++round) {
        for (NodeId s = 1; s < 16; ++s) {
            if (!noc.hasPendingOffer(s))
                noc.offer(pkt(s, 0, ++id));
        }
        noc.step();
    }
    EXPECT_GT(noc.statsSnapshot().injectionBlockedCycles, 0u);
    ASSERT_TRUE(noc.drain(100000));
    EXPECT_EQ(delivered, id);
}

TEST(Buffered, HigherSaturationThanHoplite)
{
    // Buffered routers avoid deflection waste: packets/cycle at
    // saturation beats bufferless Hoplite (the Fig 1 premise - they
    // pay for it in area and clock instead).
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 256;

    BufferedNetwork buffered(8, 8);
    const SynthResult b = runSynthetic(buffered, workload, 5'000'000);
    const SynthResult h =
        runSynthetic(NocConfig::hoplite(8), 1, workload, 5'000'000);
    ASSERT_TRUE(b.completed && h.completed);
    EXPECT_GT(b.sustainedRate(), h.sustainedRate() * 1.5);
}

TEST(Buffered, DeeperFifosHelpThroughput)
{
    auto rate = [](std::uint32_t depth) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 200;
        BufferedNetwork noc(8, depth);
        return runSynthetic(noc, workload, 5'000'000).sustainedRate();
    };
    EXPECT_GT(rate(8), rate(1));
}

TEST(Buffered, FairRoundRobinUnderContention)
{
    // Two streams crossing one output: deliveries should interleave
    // roughly evenly.
    BufferedNetwork noc(4, 4);
    std::map<NodeId, std::uint64_t> by_src;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { ++by_src[p.src]; });
    std::uint64_t id = 0;
    const NodeId a = toNodeId({0, 1}, 4);
    const NodeId b = toNodeId({1, 0}, 4);
    const NodeId dst = toNodeId({3, 1}, 4);
    for (int cycle = 0; cycle < 300; ++cycle) {
        if (!noc.hasPendingOffer(a))
            noc.offer(pkt(a, dst, ++id));
        if (!noc.hasPendingOffer(b))
            noc.offer(pkt(b, dst, ++id));
        noc.step();
    }
    ASSERT_TRUE(noc.drain(10000));
    const double ratio = static_cast<double>(by_src[a]) /
                         static_cast<double>(by_src[b]);
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Buffered, WorksWithTraceReplay)
{
    Trace t;
    t.name = "buffered";
    t.n = 4;
    t.messages = {
        TraceMessage{0, 0, 15, 0, 0, {}},
        TraceMessage{1, 15, 0, 0, 2, {0}},
    };
    BufferedNetwork noc(4, 4);
    TraceReplayer replayer(noc, t);
    replayer.run(10000);
    EXPECT_TRUE(replayer.finished());
}

} // namespace
} // namespace fasttrack
