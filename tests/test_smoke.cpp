/**
 * @file
 * End-to-end smoke tests: single-packet delivery, zero-load express
 * usage, and full random workloads on representative configurations.
 */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

Packet
makePacket(NodeId src, NodeId dst, std::uint64_t id = 1)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(Smoke, HopliteSinglePacketZeroLoad)
{
    Network noc(NocConfig::hoplite(4));
    std::optional<Packet> got;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { got = p; });
    // (0,0) -> (3,2): dx=3, dy=2 -> 5 hops.
    noc.offer(makePacket(toNodeId({0, 0}, 4), toNodeId({3, 2}, 4)));
    ASSERT_TRUE(noc.drain(100));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->totalHops(), 5u);
    EXPECT_EQ(got->deflections, 0u);
    EXPECT_EQ(noc.stats().delivered, 1u);
}

TEST(Smoke, FastTrackZeroLoadUsesExpress)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    std::optional<Packet> got;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { got = p; });
    // (0,0) -> (4,4): dx=4, dy=4, all express: 2 + 2 hops.
    noc.offer(makePacket(toNodeId({0, 0}, 8), toNodeId({4, 4}, 8)));
    ASSERT_TRUE(noc.drain(100));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->expressHops, 4u);
    EXPECT_EQ(got->shortHops, 0u);
    EXPECT_EQ(got->totalHops(), noc.topology().minimalHops(
                                    {0, 0}, {4, 4}));
}

TEST(Smoke, FastTrackMisalignedUpgradesLater)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    std::optional<Packet> got;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { got = p; });
    // Paper Fig 8 analogue: dx=3, dy=3 with D=2: one short + one
    // express per dimension.
    noc.offer(makePacket(toNodeId({0, 0}, 8), toNodeId({3, 3}, 8)));
    ASSERT_TRUE(noc.drain(100));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->shortHops, 2u);
    EXPECT_EQ(got->expressHops, 2u);
}

TEST(Smoke, RandomWorkloadDrainsOnAllVariants)
{
    const NocConfig configs[] = {
        NocConfig::hoplite(4),
        NocConfig::fastTrack(8, 2, 1),
        NocConfig::fastTrack(8, 2, 2),
        NocConfig::fastTrack(8, 2, 2, NocVariant::ftInject),
    };
    for (const NocConfig &cfg : configs) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 0.5;
        workload.packetsPerPe = 64;
        SynthResult res = runSynthetic(cfg, 1, workload, 1'000'000);
        EXPECT_TRUE(res.completed) << cfg.describe();
        EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
                  static_cast<std::uint64_t>(cfg.pes()) * 64)
            << cfg.describe();
    }
}

TEST(Smoke, MultiChannelDrains)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 64;
    SynthResult res =
        runSynthetic(NocConfig::hoplite(8), 3, workload, 1'000'000);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.stats.delivered, 64ull * 64);
}

} // namespace
} // namespace fasttrack
