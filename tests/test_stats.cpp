/**
 * @file
 * Unit tests for RunningStat and Histogram.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace fasttrack {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Sample variance of the classic sequence: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, MergeMatchesSequential)
{
    Rng rng(5);
    RunningStat whole, a, b;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextDouble() * 100.0;
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, MeanMinMax)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(3);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.25);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 3u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(10, 5);
    h.add(20, 5);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, ExactPercentiles)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(1), 1u);
    EXPECT_EQ(h.percentile(50), 50u);
    EXPECT_EQ(h.percentile(99), 99u);
    EXPECT_EQ(h.percentile(100), 100u);
    EXPECT_EQ(h.percentile(0), 1u);
}

TEST(Histogram, PercentileOnSkewedData)
{
    Histogram h;
    h.add(1, 99);
    h.add(1000, 1);
    EXPECT_EQ(h.percentile(50), 1u);
    EXPECT_EQ(h.percentile(99), 1u);
    EXPECT_EQ(h.percentile(100), 1000u);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a, b;
    a.add(1, 3);
    b.add(1, 2);
    b.add(7);
    a.merge(b);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_EQ(a.bins().at(1), 5u);
    EXPECT_EQ(a.bins().at(7), 1u);
}

TEST(Histogram, LogBucketsCoverEverything)
{
    Histogram h;
    for (std::uint64_t v : {1ull, 2ull, 3ull, 6ull, 100ull, 1000ull})
        h.add(v);
    const auto buckets = h.logBuckets();
    std::uint64_t total = 0;
    std::uint64_t prev_bound = 0;
    for (const auto &[bound, count] : buckets) {
        EXPECT_GT(bound, prev_bound);
        prev_bound = bound;
        total += count;
    }
    EXPECT_EQ(total, h.count());
    // Upper bound of the last bucket must exceed the max sample.
    EXPECT_GT(buckets.back().first, h.max());
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.add(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(h.bins().empty());
}

TEST(Histogram, LerpPercentileEmptyIsZeroNotNaN)
{
    const Histogram h;
    for (double p : {0.0, 50.0, 99.9, 100.0}) {
        const double v = h.percentileLerp(p);
        EXPECT_EQ(v, 0.0);
        EXPECT_FALSE(std::isnan(v));
    }
}

TEST(Histogram, LerpPercentileSingleSample)
{
    Histogram h;
    h.add(42);
    // Every percentile of a one-sample distribution is that sample.
    for (double p : {0.0, 25.0, 50.0, 95.0, 100.0})
        EXPECT_EQ(h.percentileLerp(p), 42.0);
}

TEST(Histogram, LerpPercentileInterpolates)
{
    Histogram h;
    for (std::uint64_t v : {10, 20, 30, 40}) // ranks 0..3
        h.add(v);
    // numpy.percentile(..., interpolation="linear") reference values.
    EXPECT_DOUBLE_EQ(h.percentileLerp(0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentileLerp(50), 25.0);
    EXPECT_DOUBLE_EQ(h.percentileLerp(75), 32.5);
    EXPECT_DOUBLE_EQ(h.percentileLerp(100), 40.0);
}

TEST(Histogram, LerpPercentileClampsAndRepeats)
{
    Histogram h;
    h.add(1, 99);
    h.add(1000);
    // Out-of-range p clamps instead of reading out of bounds.
    EXPECT_DOUBLE_EQ(h.percentileLerp(-5), 1.0);
    EXPECT_DOUBLE_EQ(h.percentileLerp(250), 1000.0);
    EXPECT_DOUBLE_EQ(h.percentileLerp(50), 1.0);
    // rank = 0.99 * 99 = 98.01: between rank 98 (value 1) and rank
    // 99 (value 1000), so 1 + 0.01 * 999.
    EXPECT_NEAR(h.percentileLerp(99), 10.99, 1e-6);
}

} // namespace
} // namespace fasttrack
