/**
 * @file
 * Direct unit coverage of the frame-ring link registers: the scalar
 * LinkSlab and the replica-major BatchedLinkSlab. Until now these
 * were exercised only indirectly through whole-network golden hashes;
 * here the ring arithmetic, occupancy-mask edges (full rows, express
 * ports), single-router geometry and the batched lane layout are
 * pinned on their own.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "noc/batched_link_slab.hpp"
#include "noc/link_slab.hpp"

namespace fasttrack {
namespace {

Packet
makePacket(std::uint64_t id, NodeId dst)
{
    Packet p;
    p.id = id;
    p.src = 0;
    p.dst = dst;
    return p;
}

TEST(LinkSlab, FrameRingWrapsAroundDepth)
{
    LinkSlab slab;
    slab.init(4, 3);
    EXPECT_EQ(slab.depth(), 3u);

    // frameOf is cycle mod depth, including cycles far past the first
    // ring revolution.
    EXPECT_EQ(slab.frameOf(0), 0u);
    EXPECT_EQ(slab.frameOf(2), 2u);
    EXPECT_EQ(slab.frameOf(3), 0u);
    EXPECT_EQ(slab.frameOf((Cycle{1} << 40) + 5),
              static_cast<std::uint32_t>(((Cycle{1} << 40) + 5) % 3));

    // A latency-2 forward issued at cycle 4 lands in frame (4+2)%3=0;
    // consuming frame 0 at cycle 6 sees exactly that packet.
    const std::uint32_t land = slab.frameOf(4 + 2);
    slab.place(land, 1, InPort::wSh, makePacket(7, 3));
    EXPECT_EQ(slab.frameOf(6), land);
    EXPECT_EQ(slab.mask(land, 1),
              1u << static_cast<unsigned>(InPort::wSh));
    EXPECT_EQ(slab.row(land, 1)[static_cast<unsigned>(InPort::wSh)].id,
              7u);

    slab.clearMask(land, 1);
    EXPECT_EQ(slab.mask(land, 1), 0u);
    EXPECT_EQ(slab.occupied(), 0u);
}

TEST(LinkSlab, ExpressAndShortPortBitsAreDistinct)
{
    LinkSlab slab;
    slab.init(2, 2);
    // All four input ports of one router in one frame: express lanes
    // (wEx, nEx) and short lanes (wSh, nSh) each own a mask bit.
    slab.place(0, 0, InPort::wEx, makePacket(1, 1));
    EXPECT_EQ(slab.mask(0, 0), 0b0001u);
    slab.place(0, 0, InPort::nEx, makePacket(2, 1));
    EXPECT_EQ(slab.mask(0, 0), 0b0011u);
    slab.place(0, 0, InPort::wSh, makePacket(3, 1));
    EXPECT_EQ(slab.mask(0, 0), 0b0111u);
    slab.place(0, 0, InPort::nSh, makePacket(4, 1));
    EXPECT_EQ(slab.mask(0, 0), 0b1111u); // full row
    EXPECT_EQ(slab.occupied(), 4u);

    // Each port's packet landed in its own slot.
    const Packet *row = slab.row(0, 0);
    EXPECT_EQ(row[static_cast<unsigned>(InPort::wEx)].id, 1u);
    EXPECT_EQ(row[static_cast<unsigned>(InPort::nEx)].id, 2u);
    EXPECT_EQ(row[static_cast<unsigned>(InPort::wSh)].id, 3u);
    EXPECT_EQ(row[static_cast<unsigned>(InPort::nSh)].id, 4u);

    // The other frame and the other router are untouched.
    EXPECT_EQ(slab.mask(1, 0), 0u);
    EXPECT_EQ(slab.mask(0, 1), 0u);
}

TEST(LinkSlab, DoubleDriverTripsSingleDriverAssert)
{
    LinkSlab slab;
    slab.init(1, 2);
    slab.place(0, 0, InPort::nSh, makePacket(1, 0));
    EXPECT_DEATH(slab.place(0, 0, InPort::nSh, makePacket(2, 0)),
                 "collision");
}

TEST(LinkSlab, FullSlabSingleRouterGeometry)
{
    // Smallest geometry: one router, minimum depth. Fill every slot
    // of every frame, then drain frame by frame.
    LinkSlab slab;
    slab.init(1, 2);
    std::uint64_t id = 0;
    for (std::uint32_t frame = 0; frame < 2; ++frame)
        for (unsigned port = 0; port < LinkSlab::kPorts; ++port)
            slab.place(frame, 0, static_cast<InPort>(port),
                       makePacket(++id, 0));
    EXPECT_EQ(slab.occupied(), 2u * LinkSlab::kPorts);
    EXPECT_EQ(slab.mask(0, 0), 0b1111u);
    EXPECT_EQ(slab.mask(1, 0), 0b1111u);

    slab.clearMask(0, 0);
    EXPECT_EQ(slab.occupied(), LinkSlab::kPorts);
    // The cleared frame is immediately reusable (the ring wrapped).
    slab.place(0, 0, InPort::wEx, makePacket(99, 0));
    EXPECT_EQ(slab.mask(0, 0), 0b0001u);
}

TEST(BatchedLinkSlab, LaneRowsAreIndependentAndContiguous)
{
    BatchedLinkSlab slab;
    const std::uint32_t lanes = 5; // deliberately not a power of two
    slab.init(3, 2, lanes);
    EXPECT_EQ(slab.lanes(), lanes);

    // Same (frame, router, port) across three lanes: own slots, own
    // mask bytes.
    slab.place(1, 2, 0, InPort::wEx, makePacket(10, 1));
    slab.place(1, 2, 3, InPort::nSh, makePacket(11, 1));
    slab.place(1, 2, 4, InPort::wEx, makePacket(12, 1));
    EXPECT_EQ(slab.mask(1, 2, 0), 0b0001u);
    EXPECT_EQ(slab.mask(1, 2, 1), 0u);
    EXPECT_EQ(slab.mask(1, 2, 3), 0b1000u);
    EXPECT_EQ(slab.mask(1, 2, 4), 0b0001u);
    EXPECT_EQ(slab.row(1, 2, 0)[static_cast<unsigned>(InPort::wEx)].id,
              10u);
    EXPECT_EQ(slab.row(1, 2, 4)[static_cast<unsigned>(InPort::wEx)].id,
              12u);

    // maskRow is the contiguous per-lane byte row the stepping core
    // scans with wide loads.
    const std::uint8_t *mrow = slab.maskRow(1, 2);
    EXPECT_EQ(mrow[0], 0b0001u);
    EXPECT_EQ(mrow[3], 0b1000u);
    EXPECT_EQ(mrow[4], 0b0001u);
    // Lane rows are kPorts apart: lane L's row is row(lane 0) offset
    // by L * kPorts.
    EXPECT_EQ(slab.row(1, 2, 4),
              slab.row(1, 2, 0) + 4 * BatchedLinkSlab::kPorts);

    slab.clearMaskRow(1, 2);
    for (std::uint32_t lane = 0; lane < lanes; ++lane)
        EXPECT_EQ(slab.mask(1, 2, lane), 0u);
    EXPECT_EQ(slab.occupied(), 0u);
}

TEST(BatchedLinkSlab, FrameRingWrapsPerLane)
{
    BatchedLinkSlab slab;
    slab.init(2, 3, 2);
    // Latency-4 forward from cycle 5 lands in frame (5+4)%3 = 0.
    const std::uint32_t land = slab.frameOf(5 + 4);
    EXPECT_EQ(land, 0u);
    slab.place(land, 1, 1, InPort::nEx, makePacket(21, 0));
    EXPECT_EQ(slab.mask(land, 1, 1),
              1u << static_cast<unsigned>(InPort::nEx));
    // Lane 0 of the same slot stays empty.
    EXPECT_EQ(slab.mask(land, 1, 0), 0u);
}

TEST(BatchedLinkSlab, FullSlabAllLanesAllPorts)
{
    BatchedLinkSlab slab;
    const std::uint32_t routers = 2, depth = 2, lanes = 8;
    slab.init(routers, depth, lanes);
    std::uint64_t id = 0;
    for (std::uint32_t f = 0; f < depth; ++f)
        for (std::uint32_t r = 0; r < routers; ++r)
            for (std::uint32_t l = 0; l < lanes; ++l)
                for (unsigned port = 0;
                     port < BatchedLinkSlab::kPorts; ++port)
                    slab.place(f, r, l, static_cast<InPort>(port),
                               makePacket(++id, 0));
    EXPECT_EQ(slab.occupied(),
              std::uint64_t{routers} * depth * lanes *
                  BatchedLinkSlab::kPorts);
    for (std::uint32_t f = 0; f < depth; ++f)
        for (std::uint32_t r = 0; r < routers; ++r)
            for (std::uint32_t l = 0; l < lanes; ++l)
                EXPECT_EQ(slab.mask(f, r, l), 0b1111u);
}

TEST(BatchedLinkSlab, DoubleDriverTripsPerLane)
{
    BatchedLinkSlab slab;
    slab.init(1, 2, 2);
    slab.place(0, 0, 0, InPort::wSh, makePacket(1, 0));
    // The same port on the *other* lane is fine...
    slab.place(0, 0, 1, InPort::wSh, makePacket(2, 0));
    // ...but re-driving an occupied (lane, port) slot dies.
    EXPECT_DEATH(slab.place(0, 0, 0, InPort::wSh, makePacket(3, 0)),
                 "collision");
}

TEST(BatchedLinkSlab, MaskRowPaddingSupportsWideLoads)
{
    // The stepping core reads mask rows 8 bytes at a time; the very
    // last row of the buffer must tolerate that (init pads by 8).
    BatchedLinkSlab slab;
    const std::uint32_t routers = 3, depth = 2, lanes = 3;
    slab.init(routers, depth, lanes);
    slab.place(depth - 1, routers - 1, lanes - 1, InPort::nSh,
               makePacket(1, 0));
    std::uint64_t w = 0;
    std::memcpy(&w, slab.maskRow(depth - 1, routers - 1), 8);
    // Only this row's own lanes may carry bits once the tail mask is
    // applied (the engine masks bytes >= lanes).
    const std::uint64_t keep =
        (std::uint64_t{1} << (lanes * 8)) - 1;
    EXPECT_EQ(w & keep,
              std::uint64_t{1u << static_cast<unsigned>(InPort::nSh)}
                  << ((lanes - 1) * 8));
}

} // namespace
} // namespace fasttrack
