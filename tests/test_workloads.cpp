/**
 * @file
 * Tests for the workload synthesizers: sparse matrices, graphs, LU
 * dataflow DAGs and multiprocessor overlay traces.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "workloads/dataflow.hpp"
#include "workloads/graph.hpp"
#include "workloads/graph_analytics.hpp"
#include "workloads/mp_overlay.hpp"
#include "workloads/sparse_matrix.hpp"
#include "workloads/spmv.hpp"

namespace fasttrack {
namespace {

// --- sparse matrices ---

TEST(SparseMatrix, DiagonalAlwaysPresent)
{
    MatrixParams params;
    params.rows = 500;
    const SparseMatrix m = generateMatrix(params);
    for (std::uint32_t i = 0; i < m.rows; ++i) {
        bool diag = false;
        for (std::uint32_t k = m.rowPtr[i]; k < m.rowPtr[i + 1]; ++k)
            diag |= m.colIdx[k] == i;
        EXPECT_TRUE(diag) << "row " << i;
    }
}

TEST(SparseMatrix, RowsSortedAndUnique)
{
    MatrixParams params;
    params.rows = 300;
    params.avgNnzPerRow = 8.0;
    const SparseMatrix m = generateMatrix(params);
    for (std::uint32_t i = 0; i < m.rows; ++i) {
        for (std::uint32_t k = m.rowPtr[i] + 1; k < m.rowPtr[i + 1];
             ++k) {
            EXPECT_LT(m.colIdx[k - 1], m.colIdx[k]);
        }
    }
}

TEST(SparseMatrix, DensityNearTarget)
{
    MatrixParams params;
    params.rows = 4000;
    params.avgNnzPerRow = 6.0;
    const SparseMatrix m = generateMatrix(params);
    const double avg =
        static_cast<double>(m.nnz()) / m.rows;
    EXPECT_NEAR(avg, 6.0, 1.5);
}

TEST(SparseMatrix, LocalityKnobControlsBandedness)
{
    MatrixParams local;
    local.rows = 2000;
    local.localFraction = 0.95;
    local.bandFraction = 0.01;
    MatrixParams global = local;
    global.localFraction = 0.05;
    const SparseMatrix lm = generateMatrix(local);
    const SparseMatrix gm = generateMatrix(global);
    const auto band = static_cast<std::uint32_t>(0.01 * 2000);
    EXPECT_GT(lm.bandedFraction(band), gm.bandedFraction(band) + 0.3);
}

TEST(SparseMatrix, CatalogGeneratesAllEntries)
{
    for (const MatrixParams &params : spmvCatalog()) {
        const SparseMatrix m = generateMatrix(params);
        EXPECT_EQ(m.rows, params.rows) << params.name;
        EXPECT_GT(m.nnz(), m.rows) << params.name;
    }
}

// --- SpMV traces ---

TEST(Spmv, TraceIsValidAndDeduplicated)
{
    MatrixParams params;
    params.rows = 1000;
    const SparseMatrix m = generateMatrix(params);
    const Trace trace = spmvTrace(m, 4);
    trace.validate();
    EXPECT_GT(trace.messages.size(), 0u);
    // No duplicate (src, dst) pair may originate from one column:
    // total messages <= cols * PEs.
    EXPECT_LE(trace.messages.size(), 1000ull * 16);
}

TEST(Spmv, BlockMappingKeepsBandsLocal)
{
    MatrixParams params;
    params.rows = 4096;
    params.localFraction = 0.95;
    params.bandFraction = 0.005;
    const SparseMatrix m = generateMatrix(params);
    const Trace block = spmvTrace(m, 8, RowMapping::block);
    const Trace cyclic = spmvTrace(m, 8, RowMapping::cyclic);
    auto self_fraction = [](const Trace &t) {
        std::uint64_t self = 0;
        for (const auto &msg : t.messages)
            self += msg.src == msg.dst;
        return static_cast<double>(self) /
               static_cast<double>(t.messages.size());
    };
    // Block mapping turns most banded communication into local
    // (self) messages; cyclic spreads it across PEs.
    EXPECT_GT(self_fraction(block), self_fraction(cyclic) + 0.2);
}

// --- graphs ---

TEST(Graph, RmatHasPowerLawSkew)
{
    const Graph g = rmat(10, 8192, 0.6, 0.16, 0.16, 5);
    EXPECT_EQ(g.nodes, 1024u);
    const auto deg = g.outDegrees();
    const std::uint32_t max_deg =
        *std::max_element(deg.begin(), deg.end());
    const double mean =
        static_cast<double>(g.edges.size()) / g.nodes;
    // Power-law: the hub degree dwarfs the mean.
    EXPECT_GT(max_deg, mean * 8);
}

TEST(Graph, RoadNetworkIsNearlyRegular)
{
    const Graph g = roadNetwork(20, 0.01, 6);
    EXPECT_EQ(g.nodes, 400u);
    const auto deg = g.outDegrees();
    const std::uint32_t max_deg =
        *std::max_element(deg.begin(), deg.end());
    EXPECT_LE(max_deg, 6u); // 4 street edges + rare shortcuts
}

TEST(Graph, EdgesStayInRange)
{
    for (const GraphBenchmark &bench : graphCatalog()) {
        const Graph g = bench.build();
        for (const auto &[u, v] : g.edges) {
            EXPECT_LT(u, g.nodes);
            EXPECT_LT(v, g.nodes);
            EXPECT_NE(u, v);
        }
    }
}

TEST(GraphAnalytics, SpatialPartitionLocalizesRoadTraffic)
{
    const Graph road = roadNetwork(64, 0.01, 7);
    const Trace spatial =
        graphPushTrace(road, 8, VertexPartition::spatialBlocks);
    const Trace hashed =
        graphPushTrace(road, 8, VertexPartition::hashed);
    auto avg_distance = [](const Trace &t, std::uint32_t n) {
        double sum = 0;
        for (const auto &m : t.messages) {
            const Coord s = toCoord(m.src, n);
            const Coord d = toCoord(m.dst, n);
            sum += ringDistance(s.x, d.x, n) +
                   ringDistance(s.y, d.y, n);
        }
        return sum / static_cast<double>(t.messages.size());
    };
    EXPECT_LT(avg_distance(spatial, 8), avg_distance(hashed, 8) * 0.6);
}

TEST(GraphAnalytics, SuperstepsChainDependencies)
{
    const Graph g = rmat(8, 1024, 0.57, 0.17, 0.17, 8);
    const Trace two = graphPushTrace(g, 4,
                                     VertexPartition::hashed, 2);
    two.validate();
    EXPECT_EQ(two.messages.size(), g.edges.size() * 2);
    bool any_dep = false;
    for (const auto &m : two.messages)
        any_dep |= !m.deps.empty();
    EXPECT_TRUE(any_dep);
}

// --- dataflow DAGs ---

TEST(Dataflow, DagIsAcyclicTopological)
{
    LuDagParams params{"t", 2000, 10.0, 1.8, 3, 9};
    const DataflowDag dag = sparseLuDag(params);
    EXPECT_EQ(dag.nodeCount, 2000u);
    for (std::uint32_t u = 0; u < dag.nodeCount; ++u) {
        for (std::uint32_t v : dag.succs[u]) {
            EXPECT_GT(v, u); // ids are topologically ordered
            EXPECT_GT(dag.level[v], dag.level[u]);
        }
    }
}

TEST(Dataflow, EveryNonRootHasPredecessor)
{
    LuDagParams params{"t", 1500, 8.0, 1.8, 3, 10};
    const DataflowDag dag = sparseLuDag(params);
    const auto indeg = dag.inDegrees();
    for (std::uint32_t v = 0; v < dag.nodeCount; ++v) {
        if (dag.level[v] > 0) {
            EXPECT_GE(indeg[v], 1u) << "node " << v;
        }
    }
}

TEST(Dataflow, WidthProfileIsLowIlp)
{
    LuDagParams params{"t", 4000, 12.0, 1.8, 3, 11};
    const DataflowDag dag = sparseLuDag(params);
    EXPECT_NEAR(dag.avgWidth(), 12.0, 4.0);
    EXPECT_GT(dag.depth(), 200u);
}

TEST(Dataflow, TraceDependenciesMirrorDag)
{
    LuDagParams params{"t", 300, 6.0, 1.8, 2, 12};
    const DataflowDag dag = sparseLuDag(params);
    const Trace trace = dataflowTrace(dag, 4, 3);
    trace.validate();
    EXPECT_EQ(trace.messages.size(), dag.edgeCount());
    // A root node's outgoing tokens must have no dependencies.
    const auto indeg = dag.inDegrees();
    std::size_t idx = 0;
    for (std::uint32_t u = 0; u < dag.nodeCount; ++u) {
        for (std::size_t e = 0; e < dag.succs[u].size(); ++e, ++idx) {
            EXPECT_EQ(trace.messages[idx].deps.size(), indeg[u])
                << "message " << idx;
            EXPECT_EQ(trace.messages[idx].delayAfterDeps, 3u);
        }
    }
}

TEST(Dataflow, CatalogSizesMatchNames)
{
    for (const LuDagParams &params : luCatalog()) {
        const DataflowDag dag = sparseLuDag(params);
        EXPECT_EQ(dag.nodeCount, params.nodes) << params.name;
        EXPECT_GT(dag.edgeCount(), dag.nodeCount / 2) << params.name;
    }
}

// --- multiprocessor overlay ---

TEST(MpOverlay, TimestampsSortedAndActiveOnly)
{
    const ParsecBenchmark bench = parsecCatalog()[0];
    const Trace trace = mpOverlayTrace(bench, 6, 32);
    trace.validate();
    Cycle prev = 0;
    for (const auto &m : trace.messages) {
        EXPECT_GE(m.earliest, prev);
        prev = m.earliest;
        EXPECT_LT(m.src, 32u);
        EXPECT_LT(m.dst, 32u);
    }
    EXPECT_EQ(trace.messages.size(),
              static_cast<std::size_t>(bench.msgsPerPe) * 32);
}

TEST(MpOverlay, CommIntensityOrdersMakespanPotential)
{
    // A smaller compute gap compresses the timestamp span.
    ParsecBenchmark chatty = parsecCatalog()[5];  // x264
    ParsecBenchmark quiet = parsecCatalog()[0];   // blackscholes
    chatty.msgsPerPe = quiet.msgsPerPe = 512;
    const Trace a = mpOverlayTrace(chatty, 6, 32);
    const Trace b = mpOverlayTrace(quiet, 6, 32);
    EXPECT_LT(a.messages.back().earliest,
              b.messages.back().earliest);
}

TEST(MpOverlay, HubTrafficShare)
{
    ParsecBenchmark bench = parsecCatalog()[1]; // dedup, hub-heavy
    const Trace trace = mpOverlayTrace(bench, 6, 32);
    std::map<NodeId, std::uint64_t> by_dst;
    for (const auto &m : trace.messages)
        ++by_dst[m.dst];
    std::vector<std::uint64_t> counts;
    for (const auto &[node, c] : by_dst)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    const double top4 = static_cast<double>(
        counts[0] + counts[1] + counts[2] + counts[3]);
    EXPECT_GT(top4 / static_cast<double>(trace.messages.size()), 0.35);
}

} // namespace
} // namespace fasttrack
