/**
 * @file
 * Tests for the SMART virtual-bypass baseline.
 */

#include <gtest/gtest.h>

#include "noc/smart.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id = 1)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(Smart, HpcOneDegeneratesToHoplite)
{
    SmartNetwork smart(8, 1);
    Network hoplite(NocConfig::hoplite(8));

    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.5;
    workload.packetsPerPe = 200;
    const SynthResult a = runSynthetic(smart, workload);
    const SynthResult b = runSynthetic(hoplite, workload);
    ASSERT_TRUE(a.completed && b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.delivered, b.stats.delivered);
    EXPECT_EQ(a.stats.totalLatency.mean(), b.stats.totalLatency.mean());
}

TEST(Smart, ZeroLoadTunnelsWholeRowInOneCycle)
{
    SmartNetwork noc(8, 8);
    Cycle delivered_at = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle c) { delivered_at = c; });
    // (0,0) -> (7,0): dx=7 tunnels in a single cycle; exit takes one
    // more arbitration cycle.
    noc.offer(pkt(toNodeId({0, 0}, 8), toNodeId({7, 0}, 8)));
    ASSERT_TRUE(noc.drain(100));
    EXPECT_LE(delivered_at, 2u);
}

TEST(Smart, BypassBoundedByHpcMax)
{
    SmartNetwork noc(8, 3);
    Cycle delivered_at = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle c) { delivered_at = c; });
    // dx=7 with HPC=3: ceil(7/3) = 3 cycles of X travel + exit.
    noc.offer(pkt(toNodeId({0, 0}, 8), toNodeId({7, 0}, 8)));
    ASSERT_TRUE(noc.drain(100));
    EXPECT_GE(delivered_at, 3u);
    EXPECT_LE(delivered_at, 4u);
    const auto &hist = noc.bypassHistogram();
    ASSERT_EQ(hist.size(), 3u);
    EXPECT_GT(hist[2], 0u); // at least one full-length tunnel
}

TEST(Smart, SaturatedWorkloadsDrainAndConserve)
{
    for (std::uint32_t hpc : {2u, 4u, 8u}) {
        SmartNetwork noc(8, hpc);
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 200;
        const SynthResult res = runSynthetic(noc, workload, 5'000'000);
        ASSERT_TRUE(res.completed) << "HPC=" << hpc;
        EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
                  200ull * 64);
    }
}

TEST(Smart, MoreBypassNeverHurtsCycleLatency)
{
    auto avg_latency = [](std::uint32_t hpc) {
        SmartNetwork noc(8, hpc);
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 0.05;
        workload.packetsPerPe = 256;
        return runSynthetic(noc, workload).avgLatency();
    };
    const double l1 = avg_latency(1);
    const double l4 = avg_latency(4);
    const double l8 = avg_latency(8);
    EXPECT_LT(l4, l1);
    EXPECT_LE(l8, l4 * 1.05);
}

TEST(Smart, ContentionBlocksTunnelling)
{
    // Two packets launched the same cycle through overlapping row
    // segments: link-use arbitration must truncate one tunnel; both
    // still arrive.
    SmartNetwork noc(8, 8);
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });
    noc.offer(pkt(toNodeId({0, 0}, 8), toNodeId({6, 0}, 8), 1));
    noc.offer(pkt(toNodeId({2, 0}, 8), toNodeId({7, 0}, 8), 2));
    ASSERT_TRUE(noc.drain(100));
    EXPECT_EQ(delivered, 2u);
}

TEST(Smart, TracksBypassHistogramTotals)
{
    SmartNetwork noc(8, 4);
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.3;
    workload.packetsPerPe = 100;
    runSynthetic(noc, workload);
    std::uint64_t chains = 0;
    for (std::uint64_t c : noc.bypassHistogram())
        chains += c;
    EXPECT_GT(chains, 0u);
}

} // namespace
} // namespace fasttrack
