/**
 * @file
 * Tests for the ASCII chart renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/ascii_chart.hpp"

namespace fasttrack {
namespace {

TEST(AsciiChart, RendersGlyphsAndLegend)
{
    AsciiChart chart("demo", 20, 6);
    chart.addSeries("up", {{0, 0}, {1, 1}});
    chart.addSeries("down", {{0, 1}, {1, 0}});
    std::ostringstream os;
    chart.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("*=up"), std::string::npos);
    EXPECT_NE(out.find("o=down"), std::string::npos);
}

TEST(AsciiChart, ExtremesLandOnCorners)
{
    AsciiChart chart("", 20, 5);
    chart.addSeries("s", {{0, 0}, {10, 100}});
    std::ostringstream os;
    chart.print(os);
    std::vector<std::string> lines;
    std::string line;
    std::istringstream is(os.str());
    while (std::getline(is, line))
        lines.push_back(line);
    // First plot row (after the y-max header) has the max point at
    // the right edge; last plot row has the min at the left edge.
    EXPECT_EQ(lines[1].back(), '*');
    EXPECT_EQ(lines[5][3], '*'); // after the "  |" prefix
}

TEST(AsciiChart, EmptyChartPrintsNothing)
{
    AsciiChart chart("empty");
    std::ostringstream os;
    chart.print(os);
    EXPECT_TRUE(os.str().empty());
}

TEST(AsciiChart, DegenerateRangesDoNotDivideByZero)
{
    AsciiChart chart("flat", 20, 5);
    chart.addSeries("s", {{1, 5}, {1, 5}, {1, 5}});
    std::ostringstream os;
    chart.print(os);
    EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiChart, LogScalesAcceptZeros)
{
    AsciiChart chart("log", 30, 6);
    chart.setLogX(true);
    chart.setLogY(true);
    chart.addSeries("s", {{0.01, 0.0}, {1.0, 100.0}});
    std::ostringstream os;
    chart.print(os);
    EXPECT_FALSE(os.str().empty());
}

TEST(AsciiChartDeathTest, RejectsTinyCanvas)
{
    EXPECT_DEATH(AsciiChart("x", 2, 2), "chart area");
}

} // namespace
} // namespace fasttrack
