/**
 * @file
 * Cross-cutting interoperability tests: every NoC device class runs
 * every workload machinery (traces, segmentation, steady state),
 * link counters reconcile with global stats, and unusual but legal
 * compositions (replicated FastTrack channels) behave.
 */

#include <gtest/gtest.h>

#include "noc/buffered.hpp"
#include "noc/network.hpp"
#include "noc/smart.hpp"
#include "noc/vc_torus.hpp"
#include "sim/simulation.hpp"
#include "sim/steady_state.hpp"
#include "traffic/segmentation.hpp"
#include "traffic/trace_replay.hpp"
#include "workloads/dataflow.hpp"

namespace fasttrack {
namespace {

Trace
sampleTrace(std::uint32_t n)
{
    LuDagParams params{"interop", 500, 6.0, 1.8, 2, 99};
    return dataflowTrace(sparseLuDag(params), n);
}

TEST(Interop, EveryDeviceReplaysTheSameTrace)
{
    const Trace trace = sampleTrace(4);
    std::vector<std::unique_ptr<NocDevice>> devices;
    devices.push_back(makeNoc(NocConfig::hoplite(4), 1));
    devices.push_back(makeNoc(NocConfig::fastTrack(4, 2, 1), 1));
    devices.push_back(makeNoc(NocConfig::hoplite(4), 2));
    devices.emplace_back(new SmartNetwork(4, 4));
    devices.emplace_back(new BufferedNetwork(4, 4));
    devices.emplace_back(new VcTorusNetwork(4, 2, 4));

    for (auto &dev : devices) {
        TraceReplayer replayer(*dev, trace);
        replayer.run(1'000'000);
        EXPECT_TRUE(replayer.finished());
    }
}

TEST(Interop, SegmentedTraceOnFastTrack)
{
    const Trace trace =
        segmentTrace(sampleTrace(4), /*message_bits=*/512,
                     /*datawidth=*/128);
    auto noc = makeNoc(NocConfig::fastTrack(4, 2, 2), 1);
    TraceReplayer replayer(*noc, trace);
    replayer.run(2'000'000);
    EXPECT_TRUE(replayer.finished());
}

TEST(Interop, LinkCountersReconcileWithStats)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.6;
    workload.packetsPerPe = 64;
    ASSERT_TRUE(runSynthetic(noc, workload, 1'000'000).completed);

    std::uint64_t short_links = 0, express_links = 0;
    for (const auto &per_router : noc.linkTraversals()) {
        express_links +=
            per_router[static_cast<int>(OutPort::eEx)] +
            per_router[static_cast<int>(OutPort::sEx)];
        short_links += per_router[static_cast<int>(OutPort::eSh)] +
                       per_router[static_cast<int>(OutPort::sSh)];
    }
    // Exits consume an output port but traverse no link; both the
    // per-link counters and the global hop counters exclude them, so
    // the two views must agree exactly.
    EXPECT_EQ(short_links, noc.stats().shortHopTraversals);
    EXPECT_EQ(express_links, noc.stats().expressHopTraversals);
}

TEST(Interop, ReplicatedFastTrackChannels)
{
    // Not a paper configuration, but the composition must be sound:
    // two independent FastTrack channels behind one client interface.
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 128;
    const SynthResult two =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 2, workload,
                     2'000'000);
    const SynthResult one =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 1, workload,
                     2'000'000);
    ASSERT_TRUE(two.completed && one.completed);
    EXPECT_GT(two.sustainedRate(), one.sustainedRate());
}

TEST(Interop, SteadyStateAcrossDeviceClasses)
{
    SteadyStateConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 3000;

    for (int kind = 0; kind < 3; ++kind) {
        std::unique_ptr<NocDevice> dev;
        switch (kind) {
          case 0: dev = makeNoc(NocConfig::fastTrack(8, 2, 1), 1); break;
          case 1: dev.reset(new BufferedNetwork(8, 4)); break;
          default: dev.reset(new VcTorusNetwork(8, 2, 4)); break;
        }
        const SteadyStateResult res = measureSteadyState(*dev, cfg);
        EXPECT_NEAR(res.throughput, 0.05, 0.008) << kind;
        EXPECT_FALSE(res.saturated) << kind;
    }
}

TEST(Interop, ZeroLoadLatencyOrderingAcrossClasses)
{
    // At near-zero load: FastTrack < Hoplite (express shortcuts);
    // VC torus < buffered mesh (wraparound halves distances).
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.02;
    workload.packetsPerPe = 128;

    const double ft = runSynthetic(NocConfig::fastTrack(8, 2, 1), 1,
                                   workload).avgLatency();
    const double hop =
        runSynthetic(NocConfig::hoplite(8), 1, workload).avgLatency();
    BufferedNetwork mesh(8, 4);
    const double mesh_lat = runSynthetic(mesh, workload).avgLatency();
    VcTorusNetwork torus(8, 2, 4);
    const double torus_lat =
        runSynthetic(torus, workload).avgLatency();

    EXPECT_LT(ft, hop);
    EXPECT_LT(torus_lat, mesh_lat);
}

} // namespace
} // namespace fasttrack
