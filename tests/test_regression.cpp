/**
 * @file
 * Pinned-value regression tests: exact results for fixed seeds. The
 * simulator is deterministic and platform-independent (portable RNG,
 * ordered evaluation), so these values must never drift silently. If
 * an intentional routing/model change moves them, re-pin the values
 * in the same commit and justify the delta in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "workloads/dataflow.hpp"
#include "workloads/spmv.hpp"

namespace fasttrack {
namespace {

TEST(Regression, HopliteSaturationPoint)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 256;
    workload.seed = 1;
    const SynthResult res =
        runSynthetic(NocConfig::hoplite(8), 1, workload);
    ASSERT_TRUE(res.completed);
    // Saturation throughput of the bufferless torus: the single most
    // load-bearing number in the whole reproduction.
    EXPECT_NEAR(res.sustainedRate(), 0.110, 0.010);
}

TEST(Regression, FastTrackHeadlineRatioPinned)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 256;
    workload.seed = 1;
    const SynthResult ft =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 1, workload);
    const SynthResult hop =
        runSynthetic(NocConfig::hoplite(8), 1, workload);
    EXPECT_NEAR(ft.sustainedRate() / hop.sustainedRate(), 2.9, 0.3);
}

TEST(Regression, DataflowTraceExactCompletion)
{
    // Bit-exact pin: same DAG seed, same NoC, same completion cycle.
    LuDagParams params{"pin", 2000, 10.0, 1.8, 3, 77};
    const DataflowDag dag = sparseLuDag(params);
    const Trace trace = dataflowTrace(dag, 8);
    const TraceResult hop = runTrace(NocConfig::hoplite(8), 1, trace);
    const TraceResult ft =
        runTrace(NocConfig::fastTrack(8, 2, 1), 1, trace);
    const TraceResult rerun =
        runTrace(NocConfig::fastTrack(8, 2, 1), 1, trace);
    EXPECT_EQ(ft.completion, rerun.completion);
    // The speedup direction and rough size must hold.
    const double speedup = static_cast<double>(hop.completion) /
                           static_cast<double>(ft.completion);
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 2.2);
}

TEST(Regression, SpmvTraceSizePinned)
{
    // Generator regression: exact trace size for a fixed seed.
    const SparseMatrix m = generateMatrix(spmvCatalog().front());
    EXPECT_EQ(m.rows, 2395u);
    const Trace t = spmvTrace(m, 8);
    const Trace t2 = spmvTrace(generateMatrix(spmvCatalog().front()), 8);
    EXPECT_EQ(t.messages.size(), t2.messages.size());
    EXPECT_GT(t.messages.size(), 1000u);
}

TEST(Regression, ScalesTo1024ProcessingElements)
{
    // 32x32 torus: beyond anything the paper maps, but the simulator
    // must stay correct and tractable at this scale.
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.3;
    workload.packetsPerPe = 16;
    const SynthResult res = runSynthetic(
        NocConfig::fastTrack(32, 4, 2), 1, workload, 1'000'000);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
              16ull * 1024);
}

TEST(Regression, MultiChannelTraceReplay)
{
    // Trace replay over a replicated-channel device (exercises the
    // delivery-arbitration + dependency interaction).
    LuDagParams params{"mc", 600, 8.0, 1.8, 2, 78};
    const Trace trace = dataflowTrace(sparseLuDag(params), 4);
    const TraceResult one = runTrace(NocConfig::hoplite(4), 1, trace);
    const TraceResult two = runTrace(NocConfig::hoplite(4), 2, trace);
    EXPECT_EQ(one.stats.delivered + one.stats.selfDelivered,
              trace.messages.size());
    EXPECT_EQ(two.stats.delivered + two.stats.selfDelivered,
              trace.messages.size());
    // Extra channels cannot make a latency-bound workload slower by
    // more than noise.
    EXPECT_LE(two.completion, one.completion * 11 / 10);
}

} // namespace
} // namespace fasttrack
