/**
 * @file
 * Section IV-D of the paper, sentence by sentence, as router-level
 * tests: each check quotes the rule it verifies.
 */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/router.hpp"

namespace fasttrack {
namespace {

constexpr std::uint32_t kN = 8;

Packet
pkt(Coord dst, std::uint64_t id, bool express_class = false)
{
    Packet p;
    p.id = id;
    p.src = 0;
    p.dst = toNodeId(dst, kN);
    p.expressClass = express_class;
    return p;
}

class Section4D : public ::testing::Test
{
  protected:
    Router makeRouter(const NocConfig &cfg, Coord pos)
    {
        topo_ = std::make_unique<Topology>(cfg);
        return Router(*topo_, pos);
    }
    std::unique_ptr<Topology> topo_;
    NocStats stats_;
};

TEST_F(Section4D, TurnCanDeflectColumnTrafficEast)
{
    // "Thus W -> S turn has higher priority and can cause N packet to
    // get deflected E, a turn that is not normally possible."
    Router router = makeRouter(NocConfig::hoplite(kN), {2, 2});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({2, 5}, 1); // turning
    in[static_cast<int>(InPort::nSh)] = pkt({2, 6}, 2); // column
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::sSh)]->id, 1u);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eSh)]->id, 2u);
}

TEST_F(Section4D, ExpressToShortOnlyAtTurns)
{
    // "we ensure that Express to Short transitions are only possible
    // at a turn from WEx -> SSh or NEx -> ESh ports."
    const NocConfig cfg = NocConfig::fastTrack(kN, 2, 1);
    Topology topo(cfg);
    RouterSite site;
    site.n = kN;
    site.d = 2;
    site.variant = NocVariant::ftFull;
    site.hasEx = site.hasEy = true;
    site.wrapAligned = true;
    EXPECT_TRUE(physicallyReachable(site, InPort::wEx, OutPort::sSh));
    EXPECT_TRUE(physicallyReachable(site, InPort::nEx, OutPort::eSh));
    EXPECT_FALSE(physicallyReachable(site, InPort::wEx, OutPort::eSh));
    EXPECT_FALSE(physicallyReachable(site, InPort::nEx, OutPort::sSh));
}

TEST_F(Section4D, WexTurnHasHighestPriority)
{
    // "This assigns the highest priority to the WEx or NEx ports..."
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {4, 4});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wEx)] = pkt({4, 5}, 1);  // turn S_SH
    in[static_cast<int>(InPort::wSh)] = pkt({4, 6}, 2);  // also wants S
    in[static_cast<int>(InPort::nSh)] = pkt({4, 7}, 3);  // also wants S
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::sSh)]->id, 1u);
}

TEST_F(Section4D, DeflectedWshReturnsAsExpress)
{
    // "WSh packets that are deflected by WEx -> SSh turn may use EEx
    // port and return as a higher priority WEx packet after exactly
    // one traversal around the ring."
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {4, 4});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wEx)] = pkt({4, 5}, 1); // takes S_SH
    in[static_cast<int>(InPort::wSh)] = pkt({4, 5}, 2); // deflected
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    // The deflected W_SH leaves on E_EX (wrap-aligned 8x8, D=2).
    ASSERT_TRUE(res.out[static_cast<int>(OutPort::eEx)]);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eEx)]->id, 2u);
    // Full-network check of "exactly one traversal around the ring":
    // dx becomes N - D and it stays express-aligned.
}

TEST_F(Section4D, NexDeflectsToEExAndReturns)
{
    // "A NEx packet that want to go SEx can be deflected to EEx and
    // will return as WEx packets with high priority."
    NocConfig cfg = NocConfig::fastTrack(kN, 2, 1);
    cfg.allowExpressTurn = true;
    Router router = makeRouter(cfg, {4, 4});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wEx)] = pkt({4, 6}, 1);  // S_EX turn
    in[static_cast<int>(InPort::nEx)] = pkt({4, 6}, 2);  // S_EX too
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::sEx)]->id, 1u);
    ASSERT_TRUE(res.out[static_cast<int>(OutPort::eEx)]);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eEx)]->id, 2u);
}

TEST_F(Section4D, NPacketsMayTakeEitherEastPort)
{
    // "To avoid livelocks at exits, we must allow N packets to take
    // either E ports."
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {4, 4});
    Router::Inputs in{};
    // Both N inputs at destination; W_EX takes the short exit first.
    in[static_cast<int>(InPort::wEx)] = pkt({4, 4}, 1);  // exits S_SH
    in[static_cast<int>(InPort::nEx)] = pkt({4, 4}, 2);  // exit S_EX
    in[static_cast<int>(InPort::nSh)] = pkt({4, 4}, 3);  // blocked
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    ASSERT_TRUE(res.delivered.has_value());
    // The losers leave on the two East ports (one each).
    const bool e_sh = res.out[static_cast<int>(OutPort::eSh)]
                          .has_value();
    const bool e_ex = res.out[static_cast<int>(OutPort::eEx)]
                          .has_value();
    EXPECT_TRUE(e_sh && e_ex);
}

TEST_F(Section4D, ColumnProgressOneSwitchAtATime)
{
    // "The routing function is designed to ensure a packet is
    // deflected exactly once per ring and makes progress towards the
    // destination by dropping down the Y ring one switch at a time":
    // full-network check that a column packet's deflections never
    // exceed its southward steps + exit.
    Network noc(NocConfig::hoplite(kN));
    noc.setDeliverCallback([&](const Packet &p, Cycle) {
        const Coord s = toCoord(p.src, kN);
        const Coord d = toCoord(p.dst, kN);
        const std::uint32_t dy = ringDistance(s.y, d.y, kN);
        EXPECT_LE(p.deflections, dy + 1) << p.id;
    });
    // Saturate with pure column traffic plus turning cross traffic.
    std::uint64_t id = 0;
    for (int round = 0; round < 400; ++round) {
        for (NodeId s = 0; s < 64; ++s) {
            if (noc.hasPendingOffer(s))
                continue;
            const Coord c = toCoord(s, kN);
            // Alternate column streams and row->column turners.
            Coord dst = (s % 2 == 0)
                ? Coord{c.x, static_cast<std::uint16_t>((c.y + 3) % kN)}
                : Coord{static_cast<std::uint16_t>((c.x + 3) % kN),
                        static_cast<std::uint16_t>((c.y + 2) % kN)};
            Packet p;
            p.id = ++id;
            p.src = s;
            p.dst = toNodeId(dst, kN);
            noc.offer(p);
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(100000));
}

} // namespace
} // namespace fasttrack
