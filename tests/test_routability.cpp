/**
 * @file
 * Tests for the device routability model (Fig 10 behavior).
 */

#include <gtest/gtest.h>

#include "fpga/routability.hpp"
#include "noc/config.hpp"

namespace fasttrack {
namespace {

class RoutabilityTest : public ::testing::Test
{
  protected:
    AreaModel area;
    RoutabilityModel model{area};
};

TEST_F(RoutabilityTest, PaperAnchor4x4D2Supports512NotMore)
{
    // Section VI-B: "For 4x4 NoC, with D=2, we are able to support
    // 512b datawidths" (a full cacheline per packet).
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    EXPECT_TRUE(model.map(cfg.toSpec(512)).feasible);
    EXPECT_FALSE(model.map(cfg.toSpec(1024)).feasible);
    EXPECT_EQ(model.peakDatawidth(cfg.toSpec(8)).value_or(0), 512u);
}

TEST_F(RoutabilityTest, FeasibilityMonotoneInWidth)
{
    for (const NocConfig &cfg :
         {NocConfig::hoplite(8), NocConfig::fastTrack(8, 2, 1),
          NocConfig::fastTrack(16, 2, 1)}) {
        bool was_feasible = true;
        for (std::uint32_t w : RoutabilityModel::datawidthSweep()) {
            const bool ok = model.map(cfg.toSpec(w)).feasible;
            if (!was_feasible) {
                EXPECT_FALSE(ok) << cfg.describe() << " w=" << w;
            }
            was_feasible = ok;
        }
    }
}

TEST_F(RoutabilityTest, PeakWidthShrinksWithSystemSize)
{
    const auto peak4 = model.peakDatawidth(
        NocConfig::fastTrack(4, 2, 1).toSpec(8));
    const auto peak8 = model.peakDatawidth(
        NocConfig::fastTrack(8, 2, 1).toSpec(8));
    const auto peak16 = model.peakDatawidth(
        NocConfig::fastTrack(16, 2, 1).toSpec(8));
    ASSERT_TRUE(peak4 && peak8 && peak16);
    EXPECT_GT(*peak4, *peak8);
    EXPECT_GT(*peak8, *peak16);
}

TEST_F(RoutabilityTest, PeakWidthShrinksWithExpressTracks)
{
    const auto hoplite = model.peakDatawidth(
        NocConfig::hoplite(8).toSpec(8));
    const auto d2 = model.peakDatawidth(
        NocConfig::fastTrack(8, 2, 1).toSpec(8));
    const auto d4 = model.peakDatawidth(
        NocConfig::fastTrack(8, 4, 1).toSpec(8));
    ASSERT_TRUE(hoplite && d2 && d4);
    EXPECT_GT(*hoplite, *d2);
    EXPECT_GT(*d2, *d4);
}

TEST_F(RoutabilityTest, InfeasibleReportsLimitingResource)
{
    const MappingResult res = model.map(
        NocConfig::fastTrack(8, 4, 1).toSpec(1024));
    EXPECT_FALSE(res.feasible);
    EXPECT_NE(res.limit, MappingResult::Limit::none);
}

TEST_F(RoutabilityTest, CongestionDeratesFrequency)
{
    // A nearly-full device must clock below the uncongested estimate.
    const NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
    const MappingResult tight = model.map(cfg.toSpec(256));
    const NocCost raw = area.nocCost(cfg.toSpec(256));
    ASSERT_TRUE(tight.feasible);
    EXPECT_LT(tight.frequencyMhz, raw.frequencyMhz);
}

TEST_F(RoutabilityTest, DepopulationRecoversWiring)
{
    // R=D halves the express tracks, so it should route wider.
    const auto full = model.peakDatawidth(
        NocConfig::fastTrack(8, 4, 1).toSpec(8));
    const auto depop = model.peakDatawidth(
        NocConfig::fastTrack(8, 4, 4).toSpec(8));
    ASSERT_TRUE(full && depop);
    EXPECT_GT(*depop, *full);
}

} // namespace
} // namespace fasttrack
