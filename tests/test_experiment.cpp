/**
 * @file
 * Tests for the experiment helpers: seed stability of the headline
 * measurements and per-node fairness accounting.
 */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/experiment.hpp"

namespace fasttrack {
namespace {

TEST(Experiment, SaturationRateIsSeedStable)
{
    // Single-seed bench numbers must be representative: coefficient
    // of variation across seeds stays tight at saturation.
    const RepeatedResult rep = repeatedRuns(
        {"ft", NocConfig::fastTrack(8, 2, 1), 1},
        TrafficPattern::random, 1.0, 256, {1, 2, 3, 4, 5});
    ASSERT_EQ(rep.completedRuns, 5u);
    EXPECT_LT(rep.rateCv(), 0.05);
    EXPECT_NEAR(rep.rate.mean(), 0.32, 0.04);
}

TEST(Experiment, LowLoadLatencyIsSeedStable)
{
    const RepeatedResult rep = repeatedRuns(
        {"hop", NocConfig::hoplite(8), 1}, TrafficPattern::random,
        0.05, 256, {7, 8, 9});
    ASSERT_EQ(rep.completedRuns, 3u);
    EXPECT_LT(rep.avgLatency.stddev(), rep.avgLatency.mean() * 0.1);
}

TEST(Experiment, RepeatedRunsSkipIncomplete)
{
    // A livelock-ish setup with a tiny guard: completedRuns reports
    // honestly. (Guard small enough that 1K packets cannot drain.)
    NocConfig cfg = NocConfig::hoplite(8);
    RepeatedResult rep;
    for (std::uint64_t seed : {1ull, 2ull}) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 1024;
        workload.seed = seed;
        const SynthResult res = runSynthetic(cfg, 1, workload, 10);
        if (res.completed)
            ++rep.completedRuns;
    }
    EXPECT_EQ(rep.completedRuns, 0u);
}

TEST(Experiment, NodeCountersSumToGlobals)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.8;
    workload.packetsPerPe = 64;
    const SynthResult res = runSynthetic(noc, workload, 1'000'000);
    ASSERT_TRUE(res.completed);

    std::uint64_t injected = 0, delivered = 0, blocked = 0;
    for (const auto &c : noc.nodeCounters()) {
        injected += c.injected;
        delivered += c.delivered;
        blocked += c.blockedCycles;
    }
    EXPECT_EQ(injected, noc.stats().injected);
    EXPECT_EQ(delivered, noc.stats().delivered);
    EXPECT_EQ(blocked, noc.stats().injectionBlockedCycles);
}

TEST(Experiment, HotspotStarvesUpstreamInjectors)
{
    // Classic Hoplite unfairness: under a hotspot, nodes whose
    // injection competes with heavy through-traffic see far more
    // blocked cycles than quiet corners.
    Network noc(NocConfig::hoplite(8));
    std::uint64_t id = 0;
    for (int round = 0; round < 200; ++round) {
        for (NodeId s = 0; s < 64; ++s) {
            if (s != 27 && !noc.hasPendingOffer(s)) {
                Packet p;
                p.id = ++id;
                p.src = s;
                p.dst = 27;
                noc.offer(p);
            }
        }
        noc.step();
    }
    noc.drain(100000);
    std::uint64_t max_blocked = 0, min_blocked = ~0ull;
    for (NodeId s = 0; s < 64; ++s) {
        if (s == 27)
            continue;
        const auto &c = noc.nodeCounters()[s];
        max_blocked = std::max(max_blocked, c.blockedCycles);
        min_blocked = std::min(min_blocked, c.blockedCycles);
    }
    EXPECT_GT(max_blocked, 2 * (min_blocked + 1));
}

} // namespace
} // namespace fasttrack
