/**
 * @file
 * Tests for the experiment helpers: seed stability of the headline
 * measurements and per-node fairness accounting.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "sched/blob_cache.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_cache.hpp"

namespace fasttrack {
namespace {

std::uint64_t
resultHash(const SynthResult &res)
{
    const auto bytes = encodeSynthResult(res);
    sched::Fnv1a h;
    h.addBytes(bytes.data(), bytes.size());
    return h.value();
}

TEST(Experiment, SaturationRateIsSeedStable)
{
    // Single-seed bench numbers must be representative: coefficient
    // of variation across seeds stays tight at saturation.
    const RepeatedResult rep = repeatedRuns(
        {"ft", NocConfig::fastTrack(8, 2, 1), 1},
        TrafficPattern::random, 1.0, 256, {1, 2, 3, 4, 5});
    ASSERT_EQ(rep.completedRuns, 5u);
    EXPECT_TRUE(rep.failedSeeds.empty());
    EXPECT_LT(rep.rateCv(), 0.05);
    EXPECT_NEAR(rep.rate.mean(), 0.32, 0.04);
}

TEST(Experiment, UndersizedGuardRecordsFailedSeedsAndNaNCv)
{
    // Regression: a guard too small for any seed to drain used to
    // leave no trace of *which* runs failed, and rateCv() reported a
    // perfectly-stable 0.0 for a measurement that never happened.
    const RepeatedResult rep = repeatedRuns(
        {"hop", NocConfig::hoplite(8), 1}, TrafficPattern::random,
        1.0, 1024, {1, 2, 3}, /*max_cycles=*/10);
    EXPECT_EQ(rep.completedRuns, 0u);
    EXPECT_EQ(rep.failedSeeds,
              (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_TRUE(std::isnan(rep.rateCv()));
}

TEST(Experiment, InjectionSweepDerivesPerPointSeeds)
{
    // Regression: every rate point used to run the *same* seed, so
    // per-point noise was correlated across the sweep. Two points at
    // the same rate must now see different packet streams, and the
    // derivation is pinned to splitmix64(seed ^ pointIndex).
    const NocUnderTest nut{"ft", NocConfig::fastTrack(4, 2, 1), 1};
    const std::vector<double> rates{0.3, 0.3};
    const std::uint64_t seed = 9;
    const auto sweep = injectionSweep(nut, TrafficPattern::random,
                                      rates, 24, seed);
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_NE(resultHash(sweep[0].result),
              resultHash(sweep[1].result));

    for (std::size_t i = 0; i < sweep.size(); ++i) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = rates[i];
        workload.packetsPerPe = 24;
        workload.seed =
            splitmix64(seed ^ static_cast<std::uint64_t>(i));
        const SynthResult expect =
            runSynthetic(nut.config, nut.channels, workload);
        EXPECT_EQ(resultHash(sweep[i].result), resultHash(expect))
            << "point " << i;
    }
}

TEST(Experiment, LowLoadLatencyIsSeedStable)
{
    const RepeatedResult rep = repeatedRuns(
        {"hop", NocConfig::hoplite(8), 1}, TrafficPattern::random,
        0.05, 256, {7, 8, 9});
    ASSERT_EQ(rep.completedRuns, 3u);
    EXPECT_LT(rep.avgLatency.stddev(), rep.avgLatency.mean() * 0.1);
}

TEST(Experiment, RepeatedRunsSkipIncomplete)
{
    // A livelock-ish setup with a tiny guard: completedRuns reports
    // honestly. (Guard small enough that 1K packets cannot drain.)
    NocConfig cfg = NocConfig::hoplite(8);
    RepeatedResult rep;
    for (std::uint64_t seed : {1ull, 2ull}) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 1024;
        workload.seed = seed;
        const SynthResult res = runSynthetic(cfg, 1, workload, 10);
        if (res.completed)
            ++rep.completedRuns;
    }
    EXPECT_EQ(rep.completedRuns, 0u);
}

TEST(Experiment, NodeCountersSumToGlobals)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.8;
    workload.packetsPerPe = 64;
    const SynthResult res = runSynthetic(noc, workload, 1'000'000);
    ASSERT_TRUE(res.completed);

    std::uint64_t injected = 0, delivered = 0, blocked = 0;
    for (const auto &c : noc.nodeCounters()) {
        injected += c.injected;
        delivered += c.delivered;
        blocked += c.blockedCycles;
    }
    EXPECT_EQ(injected, noc.stats().injected);
    EXPECT_EQ(delivered, noc.stats().delivered);
    EXPECT_EQ(blocked, noc.stats().injectionBlockedCycles);
}

TEST(Experiment, HotspotStarvesUpstreamInjectors)
{
    // Classic Hoplite unfairness: under a hotspot, nodes whose
    // injection competes with heavy through-traffic see far more
    // blocked cycles than quiet corners.
    Network noc(NocConfig::hoplite(8));
    std::uint64_t id = 0;
    for (int round = 0; round < 200; ++round) {
        for (NodeId s = 0; s < 64; ++s) {
            if (s != 27 && !noc.hasPendingOffer(s)) {
                Packet p;
                p.id = ++id;
                p.src = s;
                p.dst = 27;
                noc.offer(p);
            }
        }
        noc.step();
    }
    noc.drain(100000);
    std::uint64_t max_blocked = 0, min_blocked = ~0ull;
    for (NodeId s = 0; s < 64; ++s) {
        if (s == 27)
            continue;
        const auto &c = noc.nodeCounters()[s];
        max_blocked = std::max(max_blocked, c.blockedCycles);
        min_blocked = std::min(min_blocked, c.blockedCycles);
    }
    EXPECT_GT(max_blocked, 2 * (min_blocked + 1));
}

} // namespace
} // namespace fasttrack
