/**
 * @file
 * Failure-injection tests: adversarial exit gates, offer churn, and
 * other hostile conditions the bufferless core must survive without
 * losing or duplicating packets.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/network.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(FailureInjection, ClosedExitGateCirculatesWithoutLoss)
{
    // A client that refuses every delivery: packets must keep
    // circulating (bufferless networks cannot drop), and open the
    // gate later to drain them all.
    Network noc(NocConfig::fastTrack(8, 2, 1));
    bool gate_open = false;
    noc.setExitGate([&](NodeId, const Packet &) { return gate_open; });
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });

    for (NodeId s = 0; s < 32; ++s)
        noc.offer(pkt(s, 63 - s, s + 1));
    for (int i = 0; i < 500; ++i)
        noc.step();
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(noc.inFlight(), 32u); // nothing lost, nothing delivered

    gate_open = true;
    ASSERT_TRUE(noc.drain(10000));
    EXPECT_EQ(delivered, 32u);
}

TEST(FailureInjection, FlappingExitGateEventuallyDelivers)
{
    Network noc(NocConfig::hoplite(8));
    Rng rng(41);
    noc.setExitGate(
        [&](NodeId, const Packet &) { return rng.nextBool(0.2); });
    std::map<std::uint64_t, int> seen;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { ++seen[p.id]; });

    Rng traffic(42);
    std::uint64_t id = 0;
    for (int cycle = 0; cycle < 300; ++cycle) {
        for (NodeId s = 0; s < 64; ++s) {
            if (!noc.hasPendingOffer(s) && traffic.nextBool(0.3)) {
                NodeId d = static_cast<NodeId>(traffic.nextBelow(63));
                if (d >= s)
                    ++d;
                noc.offer(pkt(s, d, ++id));
            }
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(200000));
    EXPECT_EQ(seen.size(), id);
    for (const auto &[packet_id, count] : seen)
        EXPECT_EQ(count, 1) << packet_id;
}

TEST(FailureInjection, OfferChurnDoesNotLeak)
{
    // Repeatedly withdraw and re-offer packets before acceptance;
    // accounting must stay exact.
    Network noc(NocConfig::hoplite(4));
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });

    Rng rng(43);
    std::uint64_t id = 0;
    std::uint64_t churns = 0;
    for (int cycle = 0; cycle < 400; ++cycle) {
        for (NodeId s = 0; s < 16; ++s) {
            if (noc.hasPendingOffer(s) && rng.nextBool(0.5)) {
                Packet p = noc.withdrawOffer(s);
                noc.offer(p); // immediately re-offered
                ++churns;
            } else if (!noc.hasPendingOffer(s) && rng.nextBool(0.4)) {
                NodeId d = static_cast<NodeId>(rng.nextBelow(15));
                if (d >= s)
                    ++d;
                noc.offer(pkt(s, d, ++id));
            }
        }
        noc.step();
    }
    EXPECT_GT(churns, 0u);
    ASSERT_TRUE(noc.drain(100000));
    EXPECT_EQ(delivered, id);
}

TEST(FailureInjection, HotspotDestinationSurvives)
{
    // Every node hammers a single destination: exit bandwidth is one
    // packet per cycle, so the network runs fully congested; all
    // packets must still arrive exactly once.
    Network noc(NocConfig::fastTrack(8, 2, 2));
    std::map<std::uint64_t, int> seen;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { ++seen[p.id]; });
    std::uint64_t id = 0;
    for (int round = 0; round < 30; ++round) {
        for (NodeId s = 0; s < 64; ++s) {
            if (s != 27 && !noc.hasPendingOffer(s))
                noc.offer(pkt(s, 27, ++id));
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(200000));
    EXPECT_EQ(seen.size(), id);
}

TEST(FailureInjection, AdversarialDiagonalBurst)
{
    // All nodes fire simultaneously at their transpose partner: a
    // one-shot burst with maximal turn contention on the diagonal.
    Network noc(NocConfig::fastTrack(8, 4, 1));
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });
    std::uint64_t expected = 0;
    for (NodeId s = 0; s < 64; ++s) {
        const Coord c = toCoord(s, 8);
        const NodeId d = toNodeId({c.y, c.x}, 8);
        noc.offer(pkt(s, d, s + 1));
        if (d != s)
            ++expected;
    }
    ASSERT_TRUE(noc.drain(100000));
    EXPECT_EQ(delivered, 64u); // self-deliveries included in callback
    EXPECT_EQ(noc.stats().delivered, expected);
}

} // namespace
} // namespace fasttrack
