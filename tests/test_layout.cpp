/**
 * @file
 * Tests for the folded-vs-linear torus layout model (Section V).
 */

#include <gtest/gtest.h>

#include <set>

#include "fpga/layout.hpp"
#include "noc/config.hpp"

namespace fasttrack {
namespace {

TEST(Layout, SlotsArePermutations)
{
    for (std::uint32_t n : {2u, 5u, 8u, 16u}) {
        for (TorusLayout layout :
             {TorusLayout::linear, TorusLayout::folded}) {
            std::set<std::uint32_t> slots;
            for (std::uint32_t i = 0; i < n; ++i) {
                const std::uint32_t s =
                    LayoutModel::slotOf(i, n, layout);
                EXPECT_LT(s, n);
                slots.insert(s);
            }
            EXPECT_EQ(slots.size(), n)
                << "n=" << n << " " << toString(layout);
        }
    }
}

TEST(Layout, FoldedOrderingForEight)
{
    // 0,1,...,7 land on physical slots 0,2,4,6,7,5,3,1.
    const std::uint32_t expect[] = {0, 2, 4, 6, 7, 5, 3, 1};
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(LayoutModel::slotOf(i, 8, TorusLayout::folded),
                  expect[i]);
    }
}

TEST(Layout, FoldedBoundsEveryHopByTwoTiles)
{
    LayoutModel layout;
    for (std::uint32_t n : {4u, 8u, 16u}) {
        const double tile = 256.0 / n;
        EXPECT_LE(layout.maxShortSpan(n, TorusLayout::folded),
                  2.0 * tile + 1e-9);
    }
}

TEST(Layout, LinearWraparoundDominates)
{
    LayoutModel layout;
    // Linear layout: the wraparound wire spans N-1 tiles.
    EXPECT_NEAR(layout.maxShortSpan(8, TorusLayout::linear),
                7.0 * 32.0, 1e-9);
    EXPECT_GT(layout.maxShortSpan(8, TorusLayout::linear),
              3.0 * layout.maxShortSpan(8, TorusLayout::folded));
}

TEST(Layout, ExpressSpanScalesWithD)
{
    LayoutModel layout;
    const double d2 = layout.maxExpressSpan(8, 2, TorusLayout::folded);
    const double d4 = layout.maxExpressSpan(8, 4, TorusLayout::folded);
    EXPECT_GT(d4, d2);
    // Folded express hop of D spans at most 2D tiles.
    EXPECT_LE(d2, 4.0 * 32.0 + 1e-9);
}

TEST(Layout, FoldedClocksFasterThanLinear)
{
    LayoutModel layout;
    const NocSpec hoplite = NocConfig::hoplite(8).toSpec(256);
    const NocSpec ft = NocConfig::fastTrack(8, 2, 1).toSpec(256);
    EXPECT_GT(layout.frequencyCapMhz(hoplite, TorusLayout::folded),
              layout.frequencyCapMhz(hoplite, TorusLayout::linear) *
                  1.5);
    EXPECT_GT(layout.frequencyCapMhz(ft, TorusLayout::folded),
              layout.frequencyCapMhz(ft, TorusLayout::linear));
}

TEST(Layout, CapRespectsClockCeiling)
{
    LayoutModel layout;
    const NocSpec tiny = NocConfig::hoplite(32).toSpec(32);
    EXPECT_LE(layout.frequencyCapMhz(tiny, TorusLayout::folded),
              virtex7_485t().clockCeilingMhz);
}

} // namespace
} // namespace fasttrack
