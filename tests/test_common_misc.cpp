/**
 * @file
 * Coverage for the small shared utilities: coordinates, logging
 * switches, and NocStats helper arithmetic.
 */

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/noc_stats.hpp"

namespace fasttrack {
namespace {

TEST(Types, FastDivMatchesHardwareDivide)
{
    for (std::uint32_t d :
         {1u, 2u, 3u, 5u, 7u, 8u, 12u, 16u, 31u, 32u, 33u, 255u, 256u,
          1024u, 65535u}) {
        const FastDiv f(d);
        std::vector<std::uint32_t> probes;
        for (std::uint32_t v = 0; v < 4 * d + 8; ++v)
            probes.push_back(v);
        for (std::uint32_t v :
             {0x7fffffffu, 0x80000000u, 0xfffffffeu, 0xffffffffu})
            probes.push_back(v);
        for (std::uint32_t k = 1; k <= 4; ++k) {
            probes.push_back(k * d - 1);
            probes.push_back(k * d);
            probes.push_back(k * d + 1);
        }
        for (std::uint32_t v : probes) {
            EXPECT_EQ(f.div(v), v / d) << "v=" << v << " d=" << d;
            EXPECT_EQ(f.mod(v), v % d) << "v=" << v << " d=" << d;
        }
    }
}

TEST(Types, FastMod64MatchesHardwareModulo)
{
    for (std::uint64_t d :
         {1ull, 2ull, 3ull, 7ull, 8ull, 63ull, 64ull, 255ull, 1023ull,
          4095ull, 65535ull, (1ull << 32) - 1, (1ull << 32) + 1}) {
        const FastMod64 f(d);
        std::vector<std::uint64_t> probes;
        for (std::uint64_t v = 0; v < 3 * d + 4 && v < 1000; ++v)
            probes.push_back(v);
        for (std::uint64_t v :
             {~0ull, ~0ull - 1, 1ull << 63, (1ull << 63) - 1,
              0x123456789abcdefull})
            probes.push_back(v);
        for (std::uint64_t k = 1; k <= 4; ++k) {
            probes.push_back(k * d - 1);
            probes.push_back(k * d);
            probes.push_back(k * d + 1);
        }
        for (std::uint64_t v : probes) {
            EXPECT_EQ(f.mod(v), v % d) << "v=" << v << " d=" << d;
        }
    }
}

TEST(Types, RingDistanceMatchesModuloForm)
{
    for (std::uint32_t n : {1u, 2u, 3u, 8u, 13u, 16u}) {
        for (std::uint32_t from = 0; from < n; ++from) {
            for (std::uint32_t to = 0; to < n; ++to) {
                EXPECT_EQ(ringDistance(from, to, n),
                          (to + n - from) % n)
                    << "from=" << from << " to=" << to << " n=" << n;
            }
        }
    }
}

TEST(Types, CoordRoundTrip)
{
    for (std::uint32_t n : {2u, 5u, 8u, 16u}) {
        for (NodeId id = 0; id < n * n; ++id) {
            const Coord c = toCoord(id, n);
            EXPECT_LT(c.x, n);
            EXPECT_LT(c.y, n);
            EXPECT_EQ(toNodeId(c, n), id);
        }
    }
}

TEST(Types, RingDistance)
{
    EXPECT_EQ(ringDistance(0, 0, 8), 0u);
    EXPECT_EQ(ringDistance(0, 3, 8), 3u);
    EXPECT_EQ(ringDistance(3, 0, 8), 5u); // unidirectional wrap
    EXPECT_EQ(ringDistance(7, 0, 8), 1u);
    EXPECT_EQ(ringDistance(5, 5, 8), 0u);
}

TEST(Types, CoordToString)
{
    EXPECT_EQ(coordToString({3, 7}), "(3,7)");
}

TEST(Types, CoordHashDistinguishes)
{
    std::unordered_set<std::size_t> hashes;
    std::hash<Coord> h;
    for (std::uint16_t x = 0; x < 16; ++x)
        for (std::uint16_t y = 0; y < 16; ++y)
            hashes.insert(h(Coord{x, y}));
    EXPECT_EQ(hashes.size(), 256u);
}

TEST(Logging, QuietSuppressesWarnings)
{
    // warn/inform respect the quiet flag (no crash, flag round trip).
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    FT_WARN("this should be suppressed");
    FT_INFORM("so should this");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST(NocStatsHelpers, Totals)
{
    NocStats s;
    s.deflectionsByPort[0] = 3;
    s.deflectionsByPort[3] = 4;
    s.misroutesByPort[1] = 2;
    EXPECT_EQ(s.totalDeflections(), 7u);
    EXPECT_EQ(s.totalMisroutes(), 2u);
}

TEST(NocStatsHelpers, SustainedRateAndActivity)
{
    NocStats s;
    s.delivered = 640;
    EXPECT_DOUBLE_EQ(s.sustainedRate(64, 100), 0.1);
    EXPECT_DOUBLE_EQ(s.sustainedRate(64, 0), 0.0);

    s.shortHopTraversals = 150;
    s.expressHopTraversals = 50;
    EXPECT_DOUBLE_EQ(s.linkActivity(100, 10), 0.2);
    EXPECT_DOUBLE_EQ(s.linkActivity(0, 10), 0.0);
}

TEST(NocStatsHelpers, MergeAddsEverything)
{
    NocStats a, b;
    a.injected = 1;
    a.laneDeflections = 2;
    a.totalLatency.add(10);
    b.injected = 3;
    b.exitBlocked = 5;
    b.totalLatency.add(20);
    a.merge(b);
    EXPECT_EQ(a.injected, 4u);
    EXPECT_EQ(a.laneDeflections, 2u);
    EXPECT_EQ(a.exitBlocked, 5u);
    EXPECT_EQ(a.totalLatency.count(), 2u);
    EXPECT_DOUBLE_EQ(a.totalLatency.mean(), 15.0);
}

TEST(NocStatsHelpers, ResetClears)
{
    NocStats s;
    s.injected = 7;
    s.hopCount.add(3);
    s.reset();
    EXPECT_EQ(s.injected, 0u);
    EXPECT_EQ(s.hopCount.count(), 0u);
}

TEST(Parallel, MapPreservesOrderAndValues)
{
    std::vector<int> items;
    for (int i = 0; i < 257; ++i)
        items.push_back(i);
    const auto out = parallelMap(
        items, [](int x) { return x * x; }, 8);
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 257; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, HandlesEmptyAndSingle)
{
    const std::vector<int> empty;
    EXPECT_TRUE(parallelMap(empty, [](int x) { return x; }).empty());
    const std::vector<int> one{7};
    EXPECT_EQ(parallelMap(one, [](int x) { return x + 1; })[0], 8);
}

TEST(Parallel, MatchesSerialForSimResults)
{
    // Thread count must not change simulation outputs.
    std::vector<std::uint64_t> seeds{1, 2, 3, 4};
    auto run = [&](unsigned threads) {
        return parallelMap(
            seeds,
            [](std::uint64_t seed) {
                Rng rng(seed);
                std::uint64_t acc = 0;
                for (int i = 0; i < 1000; ++i)
                    acc ^= rng.next();
                return acc;
            },
            threads);
    };
    EXPECT_EQ(run(1), run(4));
}

} // namespace
} // namespace fasttrack
