/**
 * @file
 * Tests for the worst-case in-flight latency bounds: closed-form
 * values, and the property that saturated simulations never exceed
 * them (the forward-progress guarantee of Section IV-D).
 */

#include <gtest/gtest.h>

#include "noc/analysis.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

TEST(Analysis, ClosedFormValues)
{
    const NocConfig cfg = NocConfig::hoplite(8);
    // Adjacent East neighbour: 1 hop, no southward step -> 1 + 2*8.
    EXPECT_EQ(hopliteWorstCaseInFlight(cfg, {0, 0}, {1, 0}), 1u + 8);
    // Full diagonal: (N-1)+(N-1) hops + (dy+1)*N lap cycles.
    EXPECT_EQ(hopliteWorstCaseInFlight(cfg, {0, 0}, {7, 7}),
              14u + 8 * 8);
    EXPECT_EQ(hopliteWorstCaseInFlight(cfg), 14u + 64);
    // Self traffic never enters the NoC.
    EXPECT_EQ(hopliteWorstCaseInFlight(cfg, {3, 3}, {3, 3}), 0u);
}

TEST(Analysis, BoundScalesWithLinkStages)
{
    NocConfig cfg = NocConfig::hoplite(4);
    const Cycle base = hopliteWorstCaseInFlight(cfg);
    cfg.shortLinkStages = 2;
    EXPECT_EQ(hopliteWorstCaseInFlight(cfg), base * 3);
}

TEST(AnalysisDeathTest, WrongVariantRejected)
{
    EXPECT_DEATH(
        hopliteWorstCaseInFlight(NocConfig::fastTrack(8, 2, 1)),
        "Hoplite");
    EXPECT_DEATH(fastTrackWorstCaseInFlight(NocConfig::hoplite(8)),
                 "Hoplite bound");
}

class BoundHoldsTest : public ::testing::TestWithParam<int>
{};

TEST_P(BoundHoldsTest, SaturatedHopliteNeverExceedsBound)
{
    const auto n = static_cast<std::uint32_t>(GetParam());
    const NocConfig cfg = NocConfig::hoplite(n);
    const Cycle bound = hopliteWorstCaseInFlight(cfg);

    for (TrafficPattern pattern :
         {TrafficPattern::random, TrafficPattern::transpose}) {
        SyntheticWorkload workload;
        workload.pattern = pattern;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 300;
        workload.seed = 17 + n;
        const SynthResult res =
            runSynthetic(cfg, 1, workload, 10'000'000);
        ASSERT_TRUE(res.completed);
        EXPECT_LE(res.stats.networkLatency.max(), bound)
            << "N=" << n << " " << toString(pattern);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoundHoldsTest,
                         ::testing::Values(2, 4, 6, 8));

class FtBoundHoldsTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(FtBoundHoldsTest, SaturatedFastTrackStaysUnderBound)
{
    const auto [n, d, r] = GetParam();
    const NocConfig cfg = NocConfig::fastTrack(n, d, r);
    const Cycle bound = fastTrackWorstCaseInFlight(cfg);

    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 300;
    const SynthResult res = runSynthetic(cfg, 1, workload, 10'000'000);
    ASSERT_TRUE(res.completed);
    EXPECT_LE(res.stats.networkLatency.max(), bound)
        << cfg.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FtBoundHoldsTest,
    ::testing::Values(std::tuple{4, 2, 1}, std::tuple{8, 2, 1},
                      std::tuple{8, 2, 2}, std::tuple{8, 3, 1},
                      std::tuple{8, 4, 4}));

TEST(Analysis, FastTrackBoundAboveHoplite)
{
    EXPECT_GT(fastTrackWorstCaseInFlight(NocConfig::fastTrack(8, 2, 1)),
              hopliteWorstCaseInFlight(NocConfig::hoplite(8)));
}

} // namespace
} // namespace fasttrack
