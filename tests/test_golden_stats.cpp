/**
 * @file
 * Golden-stats equivalence pins for the cycle engine: fixed-seed runs
 * of the standard lineup (Hoplite, FT(64,2,1), FT(64,2,2) and
 * multi-channel Hoplite) must reproduce recorded NocStats and latency
 * histograms bit for bit. Any engine refactor that changes routing
 * decisions, arbitration order or measurement bookkeeping trips these
 * hashes; an intentional behavior change must re-record them (run the
 * suite and copy the "actual" values printed by the failures) and
 * justify the delta in the commit message.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "noc/multichannel.hpp"
#include "noc/network.hpp"
#include "sim/simulation.hpp"
#include "traffic/injector.hpp"

#include "golden_hash.hpp"

namespace fasttrack {
namespace {

/** Run the standard closed workload on @p noc and hash the result. */
std::uint64_t
runLineup(NocDevice &noc, TrafficPattern pattern, std::uint64_t seed)
{
    SyntheticWorkload workload;
    workload.pattern = pattern;
    workload.injectionRate = 0.35;
    workload.packetsPerPe = 200;
    workload.seed = seed;
    SyntheticInjector injector(noc, workload);

    const Cycle limit = 400000;
    while (!injector.done() && noc.now() < limit) {
        injector.tick();
        noc.step();
    }
    EXPECT_TRUE(injector.done()) << "workload did not complete";
    return hashStats(noc.statsSnapshot());
}

TEST(GoldenStats, Hoplite8Random)
{
    Network noc(NocConfig::hoplite(8));
    EXPECT_EQ(runLineup(noc, TrafficPattern::random, 11),
              6920804258037780977ull);
}

TEST(GoldenStats, FastTrack8D2R1Random)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    EXPECT_EQ(runLineup(noc, TrafficPattern::random, 12),
              13018505667610585120ull);
}

TEST(GoldenStats, FastTrack8D2R2Random)
{
    Network noc(NocConfig::fastTrack(8, 2, 2));
    EXPECT_EQ(runLineup(noc, TrafficPattern::random, 13),
              1807215248422678562ull);
}

TEST(GoldenStats, FastTrack8D2R1Transpose)
{
    Network noc(NocConfig::fastTrack(8, 2, 1));
    EXPECT_EQ(runLineup(noc, TrafficPattern::transpose, 14),
              15785417443856874428ull);
}

TEST(GoldenStats, MultiChannel8x2Random)
{
    MultiChannelNoc noc(NocConfig::hoplite(8), 2);
    EXPECT_EQ(runLineup(noc, TrafficPattern::random, 15),
              11140384843414844015ull);
}

TEST(GoldenStats, InjectVariant8D2R2Random)
{
    Network noc(
        NocConfig::fastTrack(8, 2, 2, NocVariant::ftInject));
    EXPECT_EQ(runLineup(noc, TrafficPattern::random, 16),
              17854748734557977273ull);
}

} // namespace
} // namespace fasttrack
