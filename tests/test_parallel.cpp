/**
 * @file
 * parallelMap determinism contract: the sweep engine must return
 * bit-identical, input-ordered results for every thread count,
 * including the degenerate empty-input and single-item paths. Sweep
 * reproducibility (EXPERIMENTS.md) rests on exactly this property.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "noc/config.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

std::vector<unsigned>
threadCounts()
{
    std::vector<unsigned> counts{1, 2};
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 2)
        counts.push_back(hw);
    return counts;
}

TEST(ParallelMap, EmptyInputReturnsEmpty)
{
    const std::vector<int> empty;
    for (unsigned t : threadCounts()) {
        const auto out =
            parallelMap(empty, [](int v) { return v * 2; }, t);
        EXPECT_TRUE(out.empty()) << "threads=" << t;
    }
}

TEST(ParallelMap, ResultsMatchSerialForEveryThreadCount)
{
    std::vector<std::uint64_t> items(257);
    std::iota(items.begin(), items.end(), 1);

    // Work whose cost varies per item, so threads finish out of order
    // and any order-dependence in the result placement would show.
    auto fn = [](std::uint64_t v) {
        Rng rng(v);
        std::uint64_t acc = v;
        for (std::uint64_t i = 0; i < (v % 97) * 50; ++i)
            acc ^= rng.next();
        return acc;
    };

    const auto serial = parallelMap(items, fn, 1);
    ASSERT_EQ(serial.size(), items.size());
    for (unsigned t : threadCounts()) {
        const auto out = parallelMap(items, fn, t);
        EXPECT_EQ(out, serial) << "threads=" << t;
    }
}

TEST(ParallelMap, MoreThreadsThanItemsIsSafe)
{
    const std::vector<int> items{3};
    const auto out = parallelMap(
        items, [](int v) { return v + 1; }, 64);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 4);
}

TEST(ParallelMap, ZeroThreadsClampsToOne)
{
    const std::vector<int> items{1, 2, 3};
    const auto out = parallelMap(
        items, [](int v) { return v * v; }, 0);
    EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
}

TEST(ParallelMap, NonTrivialResultTypesKeepInputOrder)
{
    std::vector<int> items(64);
    std::iota(items.begin(), items.end(), 0);
    for (unsigned t : threadCounts()) {
        const auto out = parallelMap(
            items, [](int v) { return std::to_string(v); }, t);
        ASSERT_EQ(out.size(), items.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], std::to_string(i)) << "threads=" << t;
    }
}

TEST(ParallelMap, RethrowsEarliestInputOrderException)
{
    // Several items throw; no matter which worker hits one first, the
    // surfaced exception must be the serial loop's: the one from the
    // lowest input index.
    std::vector<int> items(101);
    std::iota(items.begin(), items.end(), 0);

    auto fn = [](int v) -> int {
        if (v % 10 == 7)
            throw std::runtime_error("item " + std::to_string(v));
        return v;
    };

    for (unsigned t : threadCounts()) {
        try {
            parallelMap(items, fn, t);
            FAIL() << "expected an exception, threads=" << t;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "item 7") << "threads=" << t;
        }
    }
}

TEST(ParallelMap, NoExceptionMeansAllResultsIntact)
{
    // A throwing sibling must not corrupt successfully computed slots
    // (guards against e.g. joining before every worker finished).
    std::vector<int> items(64);
    std::iota(items.begin(), items.end(), 0);
    auto fn = [](int v) -> int {
        if (v == 63)
            throw std::runtime_error("tail");
        return v * 2;
    };
    for (unsigned t : threadCounts())
        EXPECT_THROW(parallelMap(items, fn, t), std::runtime_error)
            << "threads=" << t;
}

TEST(ParallelMap, SimulationSweepIsThreadCountInvariant)
{
    // The real use case: a rate sweep must produce identical metrics
    // no matter how it is parallelized.
    std::vector<double> rates{0.05, 0.1, 0.2, 0.3};
    auto run = [](double rate) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = rate;
        workload.packetsPerPe = 20;
        const SynthResult res =
            runSynthetic(NocConfig::fastTrack(4, 2, 1), 1, workload);
        return std::make_tuple(res.cycles,
                               res.stats.totalLatency.count(),
                               res.stats.totalLatency.mean());
    };
    const auto serial = parallelMap(rates, run, 1);
    for (unsigned t : threadCounts()) {
        const auto out = parallelMap(rates, run, t);
        EXPECT_EQ(out, serial) << "threads=" << t;
    }
}

} // namespace
} // namespace fasttrack
