/**
 * @file
 * Tests for the FPGA wire-delay model against the paper's Section III
 * characterization anchors (Figs 4 and 6).
 */

#include <gtest/gtest.h>

#include "fpga/wire_model.hpp"

namespace fasttrack {
namespace {

class WireModelTest : public ::testing::Test
{
  protected:
    WireModel wires;
};

TEST_F(WireModelTest, FullChipTraversalNearPaperAnchor)
{
    // Paper: ~250 MHz at 256 SLICEs with no LUT hops.
    const double mhz = wires.virtualExpressMhz(256, 0);
    EXPECT_GT(mhz, 220.0);
    EXPECT_LT(mhz, 320.0);
}

TEST_F(WireModelTest, ShortWireIsVeryFast)
{
    // Paper plots ~2 GHz theoretical at distance 1-2, hops 0.
    EXPECT_GT(wires.virtualExpressMhz(2, 0), 1500.0);
}

TEST_F(WireModelTest, SingleHopCostsHeavily)
{
    // Any LUT hop drops frequency far below the wire-only path.
    const double no_hop = wires.virtualExpressMhz(16, 0);
    const double one_hop = wires.virtualExpressMhz(16, 1);
    EXPECT_LT(one_hop, no_hop * 0.6);
}

TEST_F(WireModelTest, MultiHopFloorsBelow250)
{
    // Paper: "with more LUT hops, ~200 MHz at almost all distances".
    for (std::uint32_t d : {4u, 16u, 64u})
        EXPECT_LT(wires.virtualExpressMhz(d, 4), 260.0);
}

TEST_F(WireModelTest, VirtualFrequencyMonotoneInDistance)
{
    for (std::uint32_t h : {0u, 1u, 2u, 4u}) {
        double prev = 1e12;
        for (std::uint32_t d = 1; d <= 256; d *= 2) {
            const double f = wires.virtualExpressMhz(d, h);
            EXPECT_LE(f, prev) << "d=" << d << " h=" << h;
            prev = f;
        }
    }
}

TEST_F(WireModelTest, VirtualFrequencyMonotoneInHops)
{
    for (std::uint32_t d : {2u, 32u, 256u}) {
        double prev = 1e12;
        for (std::uint32_t h = 0; h <= 8; ++h) {
            const double f = wires.virtualExpressMhz(d, h);
            EXPECT_LE(f, prev) << "d=" << d << " h=" << h;
            prev = f;
        }
    }
}

TEST_F(WireModelTest, ExpressBeatsVirtualForMultiHop)
{
    // The whole point of physical express links: bypassing multiple
    // stages is much faster than tunnelling through their LUTs.
    for (std::uint32_t d : {4u, 8u, 16u}) {
        for (std::uint32_t h : {2u, 4u, 8u}) {
            EXPECT_GT(wires.physicalExpressMhz(d, h),
                      wires.virtualExpressMhz(d * h, h))
                << "d=" << d << " h=" << h;
        }
    }
}

TEST_F(WireModelTest, ExpressDegradationIsGraceful)
{
    // Paper: express frequency falls roughly linearly with span
    // instead of collapsing; 32-64 SLICE spans stay fast.
    const double at32 = wires.physicalExpressMhz(16, 2);  // span 32
    const double at64 = wires.physicalExpressMhz(16, 4);  // span 64
    EXPECT_GT(at32, 300.0);
    EXPECT_GT(at64, 250.0);
}

TEST_F(WireModelTest, MaxExpressSpanInvertsTheModel)
{
    for (double target : {250.0, 400.0, 600.0}) {
        const std::uint32_t span = wires.maxExpressSpan(target);
        if (span == 0 || span >= wires.device().sliceSpan)
            continue;
        // The returned span meets the target; span+8 must not.
        EXPECT_GE(wires.physicalExpressMhz(span, 1) + 1e-9, target);
        EXPECT_LT(wires.physicalExpressMhz(span + 8, 1), target);
    }
}

TEST_F(WireModelTest, RealizableFrequencyRespectsClockCeiling)
{
    EXPECT_LE(wires.toRealizableMhz(wires.virtualPathNs(1, 0)),
              wires.device().clockCeilingMhz);
}

TEST_F(WireModelTest, PathDelayComposition)
{
    // Delay must be tReg + hops*tLutHop + per-segment wire time.
    const FpgaDevice &dev = wires.device();
    const double expect = dev.tReg + 2 * dev.tLutHop +
                          3 * (dev.tWireBase + dev.tWirePerSlice * 10.0);
    EXPECT_NEAR(wires.virtualPathNs(30, 2), expect, 1e-9);
}

} // namespace
} // namespace fasttrack
