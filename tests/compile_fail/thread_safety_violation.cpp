// Negative compile test: under clang -Wthread-safety -Werror this TU
// must FAIL to compile — it reads and writes an FT_GUARDED_BY field
// without holding the guarding mutex, and returns from a function that
// still holds a scoped lock via manual unlock misuse. The driver
// (run_compile_fail.py) asserts the failure; if this ever compiles,
// the annotations in common/thread_annotations.hpp have stopped
// protecting anything.

#include <cstdint>

#include "common/thread_annotations.hpp"

namespace {

class Counter
{
public:
    void bump()
    {
        value_ += 1; // guarded write without the lock: must warn
    }

    std::uint64_t peek() const
    {
        return value_; // guarded read without the lock: must warn
    }

private:
    mutable fasttrack::Mutex mu_;
    std::uint64_t value_ FT_GUARDED_BY(mu_) = 0;
};

} // namespace

int main()
{
    Counter c;
    c.bump();
    return static_cast<int>(c.peek());
}
