#!/usr/bin/env python3
"""Thread-safety-annotation compile test driver.

Compiles two sibling TUs with clang++ -Wthread-safety -Werror
-fsyntax-only:

  - thread_safety_ok.cpp must compile clean (proves the annotation
    wrappers in common/thread_annotations.hpp are analysis-friendly);
  - thread_safety_violation.cpp must FAIL with -Wthread-safety
    diagnostics (proves the annotations actually guard something).

Thread-safety analysis is clang-only, so the test exits 77 (ctest's
SKIP_RETURN_CODE) when no clang++ is on PATH.

Usage:
    run_compile_fail.py --include SRC_DIR [--clang PATH] [--std c++20]
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

SKIP = 77

HERE = Path(__file__).resolve().parent

CLANG_CANDIDATES = [
    "clang++", "clang++-19", "clang++-18", "clang++-17",
    "clang++-16", "clang++-15", "clang++-14",
]


def find_clang(preferred: str | None) -> str | None:
    names = [preferred] if preferred else CLANG_CANDIDATES
    for name in names:
        found = shutil.which(name)
        if found:
            return found
    return None


def compile_tu(clang: str, tu: Path, include: list[str],
               std: str) -> subprocess.CompletedProcess[str]:
    cmd = [clang, "-fsyntax-only", f"-std={std}",
           "-Wthread-safety", "-Werror"] + \
          [f"-I{d}" for d in include] + [str(tu)]
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clang", default=None,
                    help="clang++ to use (default: search PATH)")
    ap.add_argument("--include", action="append", default=[],
                    help="-I directory (repeatable)")
    ap.add_argument("--std", default="c++20")
    args = ap.parse_args()

    clang = find_clang(args.clang)
    if clang is None:
        print("SKIP: no clang++ on PATH "
              "(thread-safety analysis is clang-only)")
        return SKIP

    ok = compile_tu(clang, HERE / "thread_safety_ok.cpp",
                    args.include, args.std)
    if ok.returncode != 0:
        print("FAIL: thread_safety_ok.cpp must compile clean under "
              f"-Wthread-safety -Werror but did not:\n{ok.stderr}",
              file=sys.stderr)
        return 1

    bad = compile_tu(clang, HERE / "thread_safety_violation.cpp",
                     args.include, args.std)
    if bad.returncode == 0:
        print("FAIL: thread_safety_violation.cpp compiled clean; the "
              "FT_GUARDED_BY annotations are not being enforced",
              file=sys.stderr)
        return 1
    if "-Wthread-safety" not in bad.stderr and \
            "thread safety" not in bad.stderr:
        print("FAIL: thread_safety_violation.cpp failed for a reason "
              f"other than thread-safety analysis:\n{bad.stderr}",
              file=sys.stderr)
        return 1

    print(f"OK: annotations enforced by {clang} "
          "(ok TU clean, violation TU rejected)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
