// Positive control for the thread-safety compile-fail test: the same
// shape as thread_safety_violation.cpp but with every guarded access
// under a MutexLock, plus a CondVar wait to prove the annotated wait
// path is analysis-clean. Must compile WARNING-FREE under clang
// -Wthread-safety -Werror; if it does not, the annotation wrappers
// themselves are broken and the violation test's failure would be
// meaningless.

#include <cstdint>

#include "common/thread_annotations.hpp"

namespace {

class Counter
{
public:
    void bump()
    {
        fasttrack::MutexLock lk(mu_);
        value_ += 1;
        ready_ = true;
        cv_.notify_one();
    }

    std::uint64_t awaitNonzero() const
    {
        fasttrack::MutexLock lk(mu_);
        while (!ready_)
            cv_.wait(mu_);
        return value_;
    }

private:
    mutable fasttrack::Mutex mu_;
    mutable fasttrack::CondVar cv_;
    std::uint64_t value_ FT_GUARDED_BY(mu_) = 0;
    bool ready_ FT_GUARDED_BY(mu_) = false;
};

} // namespace

int main()
{
    Counter c;
    c.bump();
    return static_cast<int>(c.awaitNonzero()) == 1 ? 0 : 1;
}
