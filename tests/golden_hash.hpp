/**
 * @file
 * Shared FNV-1a hashing of NocStats for golden-equivalence tests.
 *
 * Used by test_golden_stats.cpp (fixed-seed pins of the scalar engine)
 * and test_batched.cpp (per-lane batched-vs-solo bit-identity). The
 * hash covers every counter and histogram the engines must agree on;
 * per-node counters and link traversal tallies are deliberately
 * excluded — the batched engine does not collect them (see
 * docs/engine.md, "Batched lockstep stepping").
 */

#ifndef FT_TESTS_GOLDEN_HASH_HPP
#define FT_TESTS_GOLDEN_HASH_HPP

#include <cstdint>

#include "noc/noc_stats.hpp"

namespace fasttrack {

/** FNV-1a over a stream of 64-bit words. */
class StatHash
{
  public:
    void add(std::uint64_t word)
    {
        hash_ ^= word;
        hash_ *= 0x100000001b3ull;
    }
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

inline std::uint64_t
hashStats(const NocStats &s)
{
    StatHash h;
    h.add(s.injected);
    h.add(s.delivered);
    h.add(s.selfDelivered);
    h.add(s.shortHopTraversals);
    h.add(s.expressHopTraversals);
    for (std::uint64_t v : s.deflectionsByPort)
        h.add(v);
    for (std::uint64_t v : s.misroutesByPort)
        h.add(v);
    h.add(s.laneDeflections);
    h.add(s.exitBlocked);
    h.add(s.injectionBlockedCycles);
    for (const Histogram *hist :
         {&s.totalLatency, &s.networkLatency, &s.hopCount,
          &s.deflectionCount}) {
        h.add(hist->count());
        for (const auto &[value, count] : hist->bins()) {
            h.add(value);
            h.add(count);
        }
    }
    return h.value();
}

} // namespace fasttrack

#endif // FT_TESTS_GOLDEN_HASH_HPP
