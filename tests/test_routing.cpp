/**
 * @file
 * Tests for the routing policy: candidate-list construction, the
 * paper's sanctioned lane transitions, express eligibility, and the
 * physical reachability matrix of each router variant.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "noc/routing.hpp"

namespace fasttrack {
namespace {

RouterSite
fullSite(std::uint32_t n = 8, std::uint32_t d = 2, bool ex = true,
         bool ey = true)
{
    RouterSite s;
    s.n = n;
    s.d = d;
    s.variant = NocVariant::ftFull;
    s.hasEx = ex;
    s.hasEy = ey;
    s.wrapAligned = n % d == 0;
    return s;
}

TEST(Reachability, HopliteOnlyShortLanes)
{
    RouterSite s;
    s.n = 8;
    s.variant = NocVariant::hoplite;
    for (InPort in : {InPort::wSh, InPort::nSh, InPort::pe}) {
        EXPECT_TRUE(physicallyReachable(s, in, OutPort::eSh));
        EXPECT_TRUE(physicallyReachable(s, in, OutPort::sSh));
        EXPECT_FALSE(physicallyReachable(s, in, OutPort::eEx));
        EXPECT_FALSE(physicallyReachable(s, in, OutPort::sEx));
    }
}

TEST(Reachability, FullVariantSanctionedTransitionsOnly)
{
    const RouterSite s = fullSite();
    // W_EX can turn to S_SH (sanctioned) but never go E_SH straight.
    EXPECT_TRUE(physicallyReachable(s, InPort::wEx, OutPort::sSh));
    EXPECT_FALSE(physicallyReachable(s, InPort::wEx, OutPort::eSh));
    // N_EX can turn to E_SH (sanctioned) but never go S_SH straight.
    EXPECT_TRUE(physicallyReachable(s, InPort::nEx, OutPort::eSh));
    EXPECT_FALSE(physicallyReachable(s, InPort::nEx, OutPort::sSh));
    // Short inputs have full lane-change freedom in the Full router.
    for (OutPort out : {OutPort::eEx, OutPort::eSh, OutPort::sEx,
                        OutPort::sSh}) {
        EXPECT_TRUE(physicallyReachable(s, InPort::wSh, out));
        EXPECT_TRUE(physicallyReachable(s, InPort::nSh, out));
        EXPECT_TRUE(physicallyReachable(s, InPort::pe, out));
    }
}

TEST(Reachability, InjectVariantForbidsLaneCrossing)
{
    RouterSite s = fullSite();
    s.variant = NocVariant::ftInject;
    EXPECT_TRUE(physicallyReachable(s, InPort::wEx, OutPort::eEx));
    EXPECT_TRUE(physicallyReachable(s, InPort::wEx, OutPort::sEx));
    EXPECT_FALSE(physicallyReachable(s, InPort::wEx, OutPort::sSh));
    EXPECT_FALSE(physicallyReachable(s, InPort::wSh, OutPort::eEx));
    EXPECT_TRUE(physicallyReachable(s, InPort::pe, OutPort::eEx));
    EXPECT_TRUE(physicallyReachable(s, InPort::pe, OutPort::eSh));
}

TEST(Reachability, DepopulationRemovesPorts)
{
    const RouterSite s = fullSite(8, 2, /*ex=*/false, /*ey=*/true);
    EXPECT_FALSE(physicallyReachable(s, InPort::wSh, OutPort::eEx));
    EXPECT_TRUE(physicallyReachable(s, InPort::wSh, OutPort::sEx));
    EXPECT_FALSE(physicallyReachable(s, InPort::wEx, OutPort::sSh));
}

TEST(ExpressEligibility, AlignmentRule)
{
    const RouterSite s = fullSite(8, 2);
    EXPECT_TRUE(expressEligible(s, true, 2));
    EXPECT_TRUE(expressEligible(s, true, 4));
    EXPECT_TRUE(expressEligible(s, true, 6));
    EXPECT_FALSE(expressEligible(s, true, 1));
    EXPECT_FALSE(expressEligible(s, true, 3)); // misaligned
    EXPECT_FALSE(expressEligible(s, true, 0)); // nothing left
}

TEST(ExpressEligibility, RequiresPorts)
{
    const RouterSite s = fullSite(8, 2, /*ex=*/false, /*ey=*/true);
    EXPECT_FALSE(expressEligible(s, true, 4));
    EXPECT_TRUE(expressEligible(s, false, 4));
}

TEST(Candidates, WexContinuesOnExpress)
{
    const auto c = routeCandidates(fullSite(), InPort::wEx, 4, 3,
                                   false);
    ASSERT_GE(c.size(), 1u);
    EXPECT_EQ(c[0].out, OutPort::eEx);
    EXPECT_FALSE(c[0].exit);
}

TEST(Candidates, WexTurnsAtColumnViaSanctionedMux)
{
    // dx == 0, dy misaligned: express turn unavailable -> S_SH.
    const auto c = routeCandidates(fullSite(), InPort::wEx, 0, 3,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::sSh);
}

TEST(Candidates, WexExpressTurnWhenAligned)
{
    const auto c = routeCandidates(fullSite(), InPort::wEx, 0, 4,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::sEx);
}

TEST(Candidates, WexExpressTurnSuppressedByPolicyFlag)
{
    RouterSite s = fullSite();
    s.allowExpressTurn = false;
    const auto c = routeCandidates(s, InPort::wEx, 0, 4, false);
    EXPECT_EQ(c[0].out, OutPort::sSh);
}

TEST(Candidates, WexExitAtDestination)
{
    const auto c = routeCandidates(fullSite(), InPort::wEx, 0, 0,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::sSh);
    EXPECT_TRUE(c[0].exit);
}

TEST(Candidates, NexExitUsesExpressTap)
{
    const auto c = routeCandidates(fullSite(), InPort::nEx, 0, 0,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::sEx);
    EXPECT_TRUE(c[0].exit);
}

TEST(Candidates, NexEscapesMisalignedViaEastShort)
{
    const auto c = routeCandidates(fullSite(), InPort::nEx, 0, 3,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::eSh);
}

TEST(Candidates, WshUpgradesWhenAligned)
{
    const auto c = routeCandidates(fullSite(), InPort::wSh, 4, 0,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::eEx);
    // And not when the upgrade flag is off.
    RouterSite s = fullSite();
    s.allowUpgrade = false;
    const auto c2 = routeCandidates(s, InPort::wSh, 4, 0, false);
    EXPECT_EQ(c2[0].out, OutPort::eSh);
}

TEST(Candidates, WshPrefersShortWhenMisaligned)
{
    const auto c = routeCandidates(fullSite(), InPort::wSh, 3, 0,
                                   false);
    EXPECT_EQ(c[0].out, OutPort::eSh);
}

TEST(Candidates, ListsAlwaysEndWithEveryPhysicalOutput)
{
    // Property: whatever the packet state, the candidate list covers
    // all physically reachable outputs (bufferless totality).
    for (std::uint32_t dx : {0u, 1u, 2u, 3u, 4u, 7u}) {
        for (std::uint32_t dy : {0u, 1u, 2u, 3u, 4u, 7u}) {
            for (InPort in : {InPort::wEx, InPort::nEx, InPort::wSh,
                              InPort::nSh}) {
                const RouterSite s = fullSite();
                const auto c = routeCandidates(s, in, dx, dy, false);
                for (OutPort out : {OutPort::eEx, OutPort::eSh,
                                    OutPort::sEx, OutPort::sSh}) {
                    if (physicallyReachable(s, in, out)) {
                        EXPECT_TRUE(c.contains(out))
                            << toString(in) << " dx=" << dx
                            << " dy=" << dy << " missing "
                            << toString(out);
                    }
                }
            }
        }
    }
}

TEST(Candidates, HopliteDeflectionOrder)
{
    RouterSite s;
    s.n = 8;
    s.variant = NocVariant::hoplite;
    // N wanting S falls back to E (the classic deflection).
    const auto c = routeCandidates(s, InPort::nSh, 0, 3, false);
    ASSERT_GE(c.size(), 2u);
    EXPECT_EQ(c[0].out, OutPort::sSh);
    EXPECT_EQ(c[1].out, OutPort::eSh);
}

TEST(Inject, ProductiveOnlyNoDeflectionEntries)
{
    bool express = false;
    const auto c = injectCandidates(fullSite(), 3, 2, express);
    for (std::size_t i = 0; i < c.size(); ++i) {
        // All entries route East (the DOR direction for dx > 0).
        EXPECT_TRUE(c[i].out == OutPort::eEx || c[i].out == OutPort::eSh);
    }
}

TEST(Inject, InjectVariantWholeTripRule)
{
    RouterSite s = fullSite(8, 2);
    s.variant = NocVariant::ftInject;
    bool express = false;

    // Fully aligned both dims -> express class.
    auto c = injectCandidates(s, 4, 2, express);
    EXPECT_TRUE(express);
    EXPECT_EQ(c[0].out, OutPort::eEx);

    // Misaligned dx -> short class.
    c = injectCandidates(s, 3, 2, express);
    EXPECT_FALSE(express);
    EXPECT_EQ(c[0].out, OutPort::eSh);

    // Pure-Y aligned trip -> express via S.
    c = injectCandidates(s, 0, 4, express);
    EXPECT_TRUE(express);
    EXPECT_EQ(c[0].out, OutPort::sEx);

    // No Y express at this router -> short (exit tap unreachable).
    RouterSite grey = s;
    grey.hasEy = false;
    c = injectCandidates(grey, 4, 0, express);
    EXPECT_FALSE(express);
}

TEST(InjectDeathTest, SelfAddressedPacketsRejected)
{
    RouterSite s = fullSite();
    bool express = false;
    EXPECT_DEATH(injectCandidates(s, 0, 0, express), "self-addressed");
}

TEST(Candidates, PortNamesRoundTrip)
{
    EXPECT_STREQ(toString(InPort::wEx), "W_EX");
    EXPECT_STREQ(toString(OutPort::sSh), "S_SH");
    EXPECT_STREQ(toString(InPort::pe), "PE");
}

void
expectSameList(const CandidateList &want, const CandidateList &got,
               const std::string &where)
{
    ASSERT_EQ(want.size(), got.size()) << where;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(static_cast<int>(want[i].out),
                  static_cast<int>(got[i].out))
            << where << " entry " << i;
        EXPECT_EQ(want[i].exit, got[i].exit) << where << " entry " << i;
    }
}

TEST(CandidateTable, MatchesDirectBuildersForEveryDistance)
{
    // The table claims the policy depends on a distance only through
    // its class. Verify exhaustively: for representative sites of
    // every variant and depopulation kind, the table entry equals the
    // directly built list for every (in, dx, dy).
    std::vector<RouterSite> sites;
    {
        RouterSite hoplite;
        hoplite.n = 8;
        hoplite.variant = NocVariant::hoplite;
        sites.push_back(hoplite);
    }
    for (NocVariant variant :
         {NocVariant::ftFull, NocVariant::ftInject}) {
        // Aligned (D | N) and misaligned spacings, all four
        // express-port depopulation kinds.
        for (auto [n, d] : {std::pair<std::uint32_t, std::uint32_t>{8, 2},
                            {12, 3},
                            {10, 3},
                            {9, 2}}) {
            for (bool ex : {false, true}) {
                for (bool ey : {false, true}) {
                    RouterSite s;
                    s.n = n;
                    s.d = d;
                    s.variant = variant;
                    s.hasEx = ex;
                    s.hasEy = ey;
                    s.wrapAligned = n % d == 0;
                    sites.push_back(s);
                }
            }
        }
    }

    for (const RouterSite &s : sites) {
        CandidateTable table;
        table.build(s);
        const std::string site_tag =
            "variant=" + std::to_string(static_cast<int>(s.variant)) +
            " n=" + std::to_string(s.n) + " d=" + std::to_string(s.d) +
            " ex=" + std::to_string(s.hasEx) +
            " ey=" + std::to_string(s.hasEy);
        for (std::uint32_t dx = 0; dx < s.n; ++dx) {
            for (std::uint32_t dy = 0; dy < s.n; ++dy) {
                const std::string at = site_tag +
                                       " dx=" + std::to_string(dx) +
                                       " dy=" + std::to_string(dy);
                for (int in = 0; in < 4; ++in) {
                    const auto port = static_cast<InPort>(in);
                    expectSameList(
                        routeCandidates(s, port, dx, dy, false),
                        table.route(port, table.cls(dx),
                                    table.cls(dy)),
                        at + " in=" + toString(port));
                }
                if (dx == 0 && dy == 0)
                    continue; // injection of self-traffic is illegal
                bool express = false;
                const CandidateList direct =
                    injectCandidates(s, dx, dy, express);
                expectSameList(direct,
                               table.inject(table.cls(dx),
                                            table.cls(dy)),
                               at + " inject");
                EXPECT_EQ(express,
                          table.injectExpress(table.cls(dx),
                                              table.cls(dy)))
                    << at;
            }
        }
    }
}

} // namespace
} // namespace fasttrack
