/**
 * @file
 * Tests for the key=value configuration parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config_file.hpp"

namespace fasttrack {
namespace {

TEST(ConfigFile, ParsesTypedValues)
{
    std::istringstream is(
        "# comment line\n"
        "n = 8\n"
        "rate = 0.25   # trailing comment\n"
        "name = ft-full\n"
        "flag = true\n"
        "\n");
    const KeyValueFile kv = KeyValueFile::parse(is);
    EXPECT_EQ(kv.size(), 4u);
    EXPECT_EQ(kv.getInt("n"), 8);
    EXPECT_DOUBLE_EQ(kv.getDouble("rate"), 0.25);
    EXPECT_EQ(kv.getString("name"), "ft-full");
    EXPECT_TRUE(kv.getBool("flag"));
}

TEST(ConfigFile, FallbacksForMissingKeys)
{
    std::istringstream is("a = 1\n");
    const KeyValueFile kv = KeyValueFile::parse(is);
    EXPECT_FALSE(kv.has("missing"));
    EXPECT_EQ(kv.getInt("missing", 42), 42);
    EXPECT_DOUBLE_EQ(kv.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(kv.getString("missing", "x"), "x");
    EXPECT_TRUE(kv.getBool("missing", true));
}

TEST(ConfigFile, LaterKeysOverride)
{
    std::istringstream is("a = 1\na = 2\n");
    EXPECT_EQ(KeyValueFile::parse(is).getInt("a"), 2);
}

TEST(ConfigFile, BooleanSpellings)
{
    std::istringstream is(
        "a = YES\nb = off\nc = 1\nd = False\n");
    const KeyValueFile kv = KeyValueFile::parse(is);
    EXPECT_TRUE(kv.getBool("a"));
    EXPECT_FALSE(kv.getBool("b"));
    EXPECT_TRUE(kv.getBool("c"));
    EXPECT_FALSE(kv.getBool("d"));
}

TEST(ConfigFileDeathTest, RejectsMalformedInput)
{
    {
        std::istringstream is("not a key value line\n");
        EXPECT_EXIT(KeyValueFile::parse(is),
                    ::testing::ExitedWithCode(1), "key = value");
    }
    {
        std::istringstream is("n = twelve\n");
        const KeyValueFile kv = KeyValueFile::parse(is);
        EXPECT_EXIT(kv.getInt("n"), ::testing::ExitedWithCode(1),
                    "not an integer");
    }
    {
        std::istringstream is("b = maybe\n");
        const KeyValueFile kv = KeyValueFile::parse(is);
        EXPECT_EXIT(kv.getBool("b"), ::testing::ExitedWithCode(1),
                    "not a boolean");
    }
    EXPECT_EXIT(KeyValueFile::parseFile("/nonexistent/path.cfg"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace fasttrack
