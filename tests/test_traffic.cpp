/**
 * @file
 * Tests for synthetic traffic patterns and the Bernoulli injector.
 */

#include <gtest/gtest.h>

#include <map>

#include "noc/network.hpp"
#include "sim/simulation.hpp"
#include "traffic/injector.hpp"

namespace fasttrack {
namespace {

TEST(Pattern, BitComplementIsInvolution)
{
    DestinationGenerator gen(TrafficPattern::bitComplement, 8);
    Rng rng(1);
    for (NodeId src = 0; src < 64; ++src) {
        const NodeId d = gen.dest(src, rng);
        EXPECT_LT(d, 64u);
        EXPECT_EQ(gen.dest(d, rng), src);
        EXPECT_NE(d, src);
    }
}

TEST(Pattern, TransposeSwapsCoordinates)
{
    DestinationGenerator gen(TrafficPattern::transpose, 8);
    Rng rng(1);
    for (NodeId src = 0; src < 64; ++src) {
        const Coord s = toCoord(src, 8);
        const Coord d = toCoord(gen.dest(src, rng), 8);
        EXPECT_EQ(d.x, s.y);
        EXPECT_EQ(d.y, s.x);
    }
}

TEST(Pattern, RandomNeverSelfAndCoversAll)
{
    DestinationGenerator gen(TrafficPattern::random, 4);
    Rng rng(2);
    std::map<NodeId, int> hits;
    for (int i = 0; i < 8000; ++i) {
        const NodeId d = gen.dest(5, rng);
        EXPECT_NE(d, 5u);
        EXPECT_LT(d, 16u);
        ++hits[d];
    }
    EXPECT_EQ(hits.size(), 15u);
    // Roughly uniform: each other node within 25% of expectation.
    for (const auto &[node, count] : hits)
        EXPECT_NEAR(count, 8000.0 / 15.0, 8000.0 / 15.0 * 0.25);
}

TEST(Pattern, LocalStaysWithinRadius)
{
    DestinationGenerator gen(TrafficPattern::local, 8, 2);
    Rng rng(3);
    for (int i = 0; i < 4000; ++i) {
        const NodeId src = static_cast<NodeId>(rng.nextBelow(64));
        const Coord s = toCoord(src, 8);
        const Coord d = toCoord(gen.dest(src, rng), 8);
        const std::uint32_t dist =
            ringDistance(s.x, d.x, 8) + ringDistance(s.y, d.y, 8);
        EXPECT_GE(dist, 1u);
        EXPECT_LE(dist, 2u);
    }
}

TEST(Pattern, LocalNeverSelfOnTinyTorus)
{
    DestinationGenerator gen(TrafficPattern::local, 2, 2);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(gen.dest(0, rng), 0u);
}

TEST(PatternDeathTest, BitComplementNeedsPowerOfTwo)
{
    EXPECT_EXIT(DestinationGenerator(TrafficPattern::bitComplement, 6),
                ::testing::ExitedWithCode(1), "power-of-two");
}

TEST(Pattern, NamesRoundTrip)
{
    for (TrafficPattern p : kAllPatterns)
        EXPECT_EQ(patternFromString(toString(p)), p);
}

TEST(Injector, GeneratesExactBudget)
{
    Network noc(NocConfig::hoplite(4));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.5;
    workload.packetsPerPe = 50;
    SyntheticInjector injector(noc, workload);
    EXPECT_EQ(injector.budget(), 16u * 50);

    for (int guard = 0; guard < 100000 && !injector.done(); ++guard) {
        injector.tick();
        noc.step();
    }
    ASSERT_TRUE(injector.done());
    EXPECT_EQ(injector.generated(), 16u * 50);
    EXPECT_EQ(noc.stats().delivered + noc.stats().selfDelivered,
              16u * 50);
}

TEST(Injector, GenerationRateMatchesConfig)
{
    Network noc(NocConfig::hoplite(8));
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.10;
    workload.packetsPerPe = 1u << 30; // effectively unbounded
    SyntheticInjector injector(noc, workload);

    constexpr int kCycles = 5000;
    for (int i = 0; i < kCycles; ++i) {
        injector.tick();
        noc.step();
    }
    const double per_pe_per_cycle =
        static_cast<double>(injector.generated()) / (64.0 * kCycles);
    EXPECT_NEAR(per_pe_per_cycle, 0.10, 0.01);
}

TEST(Injector, SustainedRateEqualsOfferedBelowSaturation)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.05;
    workload.packetsPerPe = 500;
    const SynthResult res =
        runSynthetic(NocConfig::hoplite(8), 1, workload);
    ASSERT_TRUE(res.completed);
    // Below saturation the NoC keeps up with generation; the measured
    // rate only differs from offered by the final drain tail.
    EXPECT_NEAR(res.sustainedRate(), 0.05, 0.006);
}

TEST(InjectorDeathTest, RejectsBadRate)
{
    Network noc(NocConfig::hoplite(4));
    SyntheticWorkload workload;
    workload.injectionRate = 0.0;
    EXPECT_DEATH(SyntheticInjector(noc, workload), "injection rate");
}

} // namespace
} // namespace fasttrack
