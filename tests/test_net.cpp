/**
 * @file
 * Wire/frame/endpoint contract of the distributed sweep fabric:
 * hostile input must degrade to a clean status — truncated frames,
 * oversized length prefixes, corrupted checksums, stale versions,
 * rogue handshakes and mid-stream disconnects all map to an error
 * code, never a hang, allocation blow-up or UB (the suite runs under
 * ASan/UBSan and TSan in CI). Also pins the backoff schedule and the
 * strict --remote endpoint syntax.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace fasttrack::net {
namespace {

Frame
sampleFrame()
{
    Frame frame;
    frame.type = MessageType::sweepRequest;
    frame.requestId = 0x1122334455667788ull;
    frame.payload = {1, 2, 3, 4, 5};
    return frame;
}

/** A connected loopback (client, server) socket pair. */
struct SocketPair
{
    Listener listener;
    Socket client;
    Socket server;

    SocketPair()
    {
        std::string error;
        EXPECT_TRUE(listener.open("127.0.0.1", 0, error)) << error;
        client = connectTo("127.0.0.1", listener.boundPort(), 2'000,
                           error);
        EXPECT_TRUE(client.valid()) << error;
        server = listener.accept(2'000);
        EXPECT_TRUE(server.valid());
    }
};

TEST(Wire, RoundTripsEveryFieldType)
{
    WireWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.f64(-1234.5);
    w.str("fasttrack");
    const std::vector<std::uint8_t> bytes = w.take();

    WireReader r(bytes);
    std::uint8_t a = 0;
    std::uint16_t b = 0;
    std::uint32_t c = 0;
    std::uint64_t d = 0;
    double e = 0.0;
    std::string s;
    EXPECT_TRUE(r.u8(a) && r.u16(b) && r.u32(c) && r.u64(d) &&
                r.f64(e) && r.str(s));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(a, 0xab);
    EXPECT_EQ(b, 0xbeef);
    EXPECT_EQ(c, 0xdeadbeefu);
    EXPECT_EQ(d, 0x0123456789abcdefull);
    EXPECT_EQ(e, -1234.5);
    EXPECT_EQ(s, "fasttrack");
}

TEST(Wire, EncodingIsLittleEndianByteForByte)
{
    WireWriter w;
    w.u32(0x11223344u);
    w.u64(0x0102030405060708ull);
    const std::vector<std::uint8_t> expected = {
        0x44, 0x33, 0x22, 0x11, //
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
    EXPECT_EQ(w.buffer(), expected);
}

TEST(Wire, TruncatedReadsFailCleanly)
{
    WireWriter w;
    w.u32(7);
    const std::vector<std::uint8_t> bytes = w.take();
    WireReader r(bytes);
    std::uint64_t v = 0;
    EXPECT_FALSE(r.u64(v)); // only 4 bytes available
}

TEST(Wire, StringLengthPastBufferIsRejectedBeforeAllocating)
{
    // A length prefix of ~4 GiB with a 4-byte buffer: the reader must
    // reject it from the bounds check alone.
    WireWriter w;
    w.u32(0xfffffff0u);
    const std::vector<std::uint8_t> bytes = w.take();
    WireReader r(bytes);
    std::string s;
    EXPECT_FALSE(r.str(s));
    EXPECT_TRUE(s.empty());
}

TEST(Frame, EncodeDecodeRoundTrips)
{
    const Frame frame = sampleFrame();
    Frame decoded;
    ASSERT_EQ(decodeFrame(encodeFrame(frame), decoded),
              FrameStatus::ok);
    EXPECT_EQ(decoded.type, frame.type);
    EXPECT_EQ(decoded.requestId, frame.requestId);
    EXPECT_EQ(decoded.payload, frame.payload);
    EXPECT_FALSE(decoded.partial);

    // The fragmentation flag survives the trip (message chaining).
    Frame fragment = frame;
    fragment.partial = true;
    ASSERT_EQ(decodeFrame(encodeFrame(fragment), decoded),
              FrameStatus::ok);
    EXPECT_TRUE(decoded.partial);
}

TEST(Frame, TruncationAtEveryBoundaryIsDetected)
{
    const std::vector<std::uint8_t> bytes =
        encodeFrame(sampleFrame());
    Frame out;
    // Shorter than a header: truncated. Shorter than the declared
    // payload: truncated. Longer than the frame: malformed.
    for (std::size_t keep : {std::size_t{0}, std::size_t{10},
                             kFrameHeaderBytes, bytes.size() - 1}) {
        std::vector<std::uint8_t> cut(bytes.begin(),
                                      bytes.begin() +
                                          static_cast<std::ptrdiff_t>(
                                              keep));
        EXPECT_EQ(decodeFrame(cut, out), FrameStatus::truncated)
            << "kept " << keep;
    }
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_EQ(decodeFrame(padded, out), FrameStatus::malformed);
}

TEST(Frame, HostileHeadersAreRejectedWithoutPayloadReads)
{
    const std::vector<std::uint8_t> good =
        encodeFrame(sampleFrame());
    Frame out;

    std::vector<std::uint8_t> badMagic = good;
    badMagic[0] ^= 0xff;
    EXPECT_EQ(decodeFrame(badMagic, out), FrameStatus::badMagic);

    std::vector<std::uint8_t> staleVersion = good;
    staleVersion[4] = static_cast<std::uint8_t>(kWireVersion + 1);
    EXPECT_EQ(decodeFrame(staleVersion, out),
              FrameStatus::badVersion);

    std::vector<std::uint8_t> flags = good;
    flags[10] = 2; // reserved flag bits (all but kFlagPartial) zero
    EXPECT_EQ(decodeFrame(flags, out), FrameStatus::malformed);
    flags[10] = 0x80;
    EXPECT_EQ(decodeFrame(flags, out), FrameStatus::malformed);
    flags[11] = 1; // high flag byte is entirely reserved
    flags[10] = 0;
    EXPECT_EQ(decodeFrame(flags, out), FrameStatus::malformed);

    // Length prefix beyond kMaxFramePayload: malformed, regardless
    // of how many bytes follow — the length is never trusted.
    std::vector<std::uint8_t> oversized = good;
    oversized[20] = 0xff;
    oversized[21] = 0xff;
    oversized[22] = 0xff;
    oversized[23] = 0xff;
    EXPECT_EQ(decodeFrame(oversized, out), FrameStatus::malformed);
}

TEST(Frame, CorruptedChecksumAndPayloadAreRejected)
{
    const std::vector<std::uint8_t> good =
        encodeFrame(sampleFrame());
    Frame out;

    std::vector<std::uint8_t> corruptTrailer = good;
    corruptTrailer.back() ^= 0x01;
    EXPECT_EQ(decodeFrame(corruptTrailer, out),
              FrameStatus::badChecksum);

    std::vector<std::uint8_t> corruptPayload = good;
    corruptPayload[kFrameHeaderBytes] ^= 0x80;
    EXPECT_EQ(decodeFrame(corruptPayload, out),
              FrameStatus::badChecksum);
}

TEST(Frame, ErrorFrameRoundTrips)
{
    const Frame frame = makeErrorFrame(42, kErrBadSchema, "stale");
    std::uint32_t code = 0;
    std::string message;
    ASSERT_TRUE(parseErrorFrame(frame, code, message));
    EXPECT_EQ(code, kErrBadSchema);
    EXPECT_EQ(message, "stale");

    Frame notError = sampleFrame();
    EXPECT_FALSE(parseErrorFrame(notError, code, message));
}

TEST(FrameSocket, SendRecvRoundTripsOverLoopback)
{
    SocketPair pair;
    const Frame frame = sampleFrame();
    ASSERT_EQ(sendFrame(pair.client, frame, 2'000), FrameStatus::ok);
    Frame received;
    ASSERT_EQ(recvFrame(pair.server, received, 2'000, 2'000),
              FrameStatus::ok);
    EXPECT_EQ(received.payload, frame.payload);
    EXPECT_EQ(received.requestId, frame.requestId);
}

TEST(FrameSocket, MidFrameDisconnectIsTruncatedNotAHang)
{
    SocketPair pair;
    const std::vector<std::uint8_t> bytes =
        encodeFrame(sampleFrame());
    // Send the header plus one payload byte, then vanish.
    ASSERT_EQ(pair.client.sendAll(bytes.data(),
                                  kFrameHeaderBytes + 1, 2'000),
              IoStatus::ok);
    pair.client.close();
    Frame out;
    EXPECT_EQ(recvFrame(pair.server, out, 2'000, 2'000),
              FrameStatus::truncated);
}

TEST(FrameSocket, HeaderOnlyDisconnectIsClosed)
{
    SocketPair pair;
    pair.client.close();
    Frame out;
    EXPECT_EQ(recvFrame(pair.server, out, 2'000, 2'000),
              FrameStatus::closed);
}

TEST(FrameSocket, SilentPeerTimesOutInsteadOfHanging)
{
    SocketPair pair;
    Frame out;
    EXPECT_EQ(recvFrame(pair.server, out, 50, 50),
              FrameStatus::timeout);
}

TEST(FrameSocket, OversizedLengthPrefixRejectedBeforePayload)
{
    SocketPair pair;
    // Hand-build a header whose length prefix is 4 GiB-ish; the
    // receiver must reject it from the header alone (no allocation,
    // no read of the "payload").
    WireWriter w;
    w.u32(kFrameMagic);
    w.u32(kWireVersion);
    w.u16(static_cast<std::uint16_t>(MessageType::sweepRequest));
    w.u16(0);
    w.u64(7);
    w.u32(0xffffff00u);
    ASSERT_EQ(pair.client.sendAll(w.buffer().data(), w.size(), 2'000),
              IoStatus::ok);
    Frame out;
    EXPECT_EQ(recvFrame(pair.server, out, 2'000, 2'000),
              FrameStatus::malformed);
}

TEST(FrameSocket, CorruptChecksumOverTheWireIsRejected)
{
    SocketPair pair;
    std::vector<std::uint8_t> bytes = encodeFrame(sampleFrame());
    bytes.back() ^= 0x40;
    ASSERT_EQ(pair.client.sendAll(bytes.data(), bytes.size(), 2'000),
              IoStatus::ok);
    Frame out;
    EXPECT_EQ(recvFrame(pair.server, out, 2'000, 2'000),
              FrameStatus::badChecksum);
}

TEST(Endpoint, ParsesHostPortAndIpv6Brackets)
{
    Endpoint ep;
    std::string error;
    ASSERT_TRUE(parseEndpoint("node7:9000", ep, error)) << error;
    EXPECT_EQ(ep.host, "node7");
    EXPECT_EQ(ep.port, 9000);
    EXPECT_EQ(ep.label(), "node7:9000");

    ASSERT_TRUE(parseEndpoint("[::1]:7441", ep, error)) << error;
    EXPECT_EQ(ep.host, "::1");
    EXPECT_EQ(ep.port, 7441);
}

TEST(Endpoint, RejectsMalformedSpecs)
{
    Endpoint ep;
    std::string error;
    for (const char *bad :
         {"", "host", ":9000", "host:", "host:0", "host:65536",
          "host:-1", "host:12x", "host:999999999999", "[::1]",
          "[::1]9000"}) {
        EXPECT_FALSE(parseEndpoint(bad, ep, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Endpoint, ListParsingIsStrict)
{
    std::vector<Endpoint> endpoints;
    std::string error;
    ASSERT_TRUE(
        parseEndpointList("a:1,b:2,c:65535", endpoints, error))
        << error;
    ASSERT_EQ(endpoints.size(), 3u);
    EXPECT_EQ(endpoints[2].port, 65535);

    for (const char *bad : {"", "a:1,,b:2", "a:1,", ",a:1", "a:0,b:2"})
        EXPECT_FALSE(parseEndpointList(bad, endpoints, error)) << bad;
}

TEST(Endpoint, BackoffScheduleIsExponentialAndCapped)
{
    EXPECT_EQ(backoffDelayMs(0, 50, 2'000), 0);
    EXPECT_EQ(backoffDelayMs(1, 50, 2'000), 50);
    EXPECT_EQ(backoffDelayMs(2, 50, 2'000), 100);
    EXPECT_EQ(backoffDelayMs(3, 50, 2'000), 200);
    EXPECT_EQ(backoffDelayMs(6, 50, 2'000), 1'600);
    EXPECT_EQ(backoffDelayMs(7, 50, 2'000), 2'000);
    EXPECT_EQ(backoffDelayMs(60, 50, 2'000), 2'000); // shift-safe
}

TEST(FrameServer, RejectsRogueHandshakes)
{
    ServerConfig config;
    config.schemaVersion = 5;
    FrameServer server(std::move(config),
                       [](std::vector<Frame> &&) {
                           return std::vector<Frame>{};
                       });
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    const auto dial = [&] {
        Socket s = connectTo("127.0.0.1", server.boundPort(), 2'000,
                             error);
        EXPECT_TRUE(s.valid()) << error;
        return s;
    };
    const auto expectError = [](Socket &s, std::uint32_t want) {
        Frame reply;
        ASSERT_EQ(recvFrame(s, reply, 2'000, 2'000), FrameStatus::ok);
        ASSERT_EQ(reply.type, MessageType::error);
        std::uint32_t code = 0;
        std::string message;
        ASSERT_TRUE(parseErrorFrame(reply, code, message));
        EXPECT_EQ(code, want);
    };

    {
        // Wrong wire version in the hello payload.
        Socket s = dial();
        Frame hello;
        hello.type = MessageType::hello;
        WireWriter w;
        w.u32(kWireVersion + 9);
        w.u32(5);
        w.u32(8);
        hello.payload = w.take();
        ASSERT_EQ(sendFrame(s, hello, 2'000), FrameStatus::ok);
        expectError(s, kErrBadVersion);
    }
    {
        // Stale sweep schema.
        Socket s = dial();
        Frame hello;
        hello.type = MessageType::hello;
        WireWriter w;
        w.u32(kWireVersion);
        w.u32(4);
        w.u32(8);
        hello.payload = w.take();
        ASSERT_EQ(sendFrame(s, hello, 2'000), FrameStatus::ok);
        expectError(s, kErrBadSchema);
    }
    {
        // First frame is not a hello at all.
        Socket s = dial();
        ASSERT_EQ(sendFrame(s, sampleFrame(), 2'000),
                  FrameStatus::ok);
        expectError(s, kErrBadRequest);
    }

    server.stop();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.protocolErrors, 3u);
    EXPECT_EQ(stats.requestsServed, 0u);
}

TEST(FrameServer, SessionCapCountsLiveSessionsNotLifetimeTotal)
{
    // maxSessions bounds concurrent sessions; a finished session
    // must free its slot. Open far more sequential sessions than the
    // cap — every one must be served.
    ServerConfig config;
    config.schemaVersion = 1;
    config.maxSessions = 2;
    FrameServer server(std::move(config),
                       [](std::vector<Frame> &&) {
                           return std::vector<Frame>{};
                       });
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    for (int i = 0; i < 5; ++i) {
        Socket s = connectTo("127.0.0.1", server.boundPort(), 2'000,
                             error);
        ASSERT_TRUE(s.valid()) << error;
        Frame hello;
        hello.type = MessageType::hello;
        WireWriter w;
        w.u32(kWireVersion);
        w.u32(1);
        w.u32(1);
        hello.payload = w.take();
        ASSERT_EQ(sendFrame(s, hello, 2'000), FrameStatus::ok) << i;
        Frame ack;
        ASSERT_EQ(recvFrame(s, ack, 2'000, 2'000), FrameStatus::ok)
            << i;
        ASSERT_EQ(ack.type, MessageType::helloAck) << i;
        Frame goodbye;
        goodbye.type = MessageType::goodbye;
        ASSERT_EQ(sendFrame(s, goodbye, 2'000), FrameStatus::ok);
        // Wait for the session to wind down so the next iteration
        // observes a freed slot even on a single-core runner.
        Frame eof;
        recvFrame(s, eof, 2'000, 2'000); // EOF when the server closes
    }
    server.stop();
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.sessionsAccepted, 5u);
    EXPECT_EQ(stats.sessionsRejected, 0u);
}

TEST(FrameServer, ServesAnEchoHandlerThroughHandshake)
{
    ServerConfig config;
    config.schemaVersion = 2;
    FrameServer server(
        std::move(config), [](std::vector<Frame> &&batch) {
            std::vector<Frame> replies;
            for (Frame &frame : batch) {
                Frame reply;
                reply.type = MessageType::sweepResult;
                reply.requestId = frame.requestId;
                reply.payload = std::move(frame.payload);
                replies.push_back(std::move(reply));
            }
            return replies;
        });
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    Socket s =
        connectTo("127.0.0.1", server.boundPort(), 2'000, error);
    ASSERT_TRUE(s.valid()) << error;
    Frame hello;
    hello.type = MessageType::hello;
    WireWriter w;
    w.u32(kWireVersion);
    w.u32(2);
    w.u32(4);
    hello.payload = w.take();
    ASSERT_EQ(sendFrame(s, hello, 2'000), FrameStatus::ok);
    Frame ack;
    ASSERT_EQ(recvFrame(s, ack, 2'000, 2'000), FrameStatus::ok);
    ASSERT_EQ(ack.type, MessageType::helloAck);
    std::uint32_t version = 0, schema = 0, granted = 0;
    WireReader r(ack.payload);
    ASSERT_TRUE(r.u32(version) && r.u32(schema) && r.u32(granted) &&
                r.atEnd());
    EXPECT_EQ(version, kWireVersion);
    EXPECT_EQ(schema, 2u);
    EXPECT_EQ(granted, 4u); // min(requested 4, maxPending)

    for (std::uint64_t id : {7ull, 8ull}) {
        Frame request = sampleFrame();
        request.requestId = id;
        ASSERT_EQ(sendFrame(s, request, 2'000), FrameStatus::ok);
        Frame reply;
        ASSERT_EQ(recvFrame(s, reply, 2'000, 2'000),
                  FrameStatus::ok);
        EXPECT_EQ(reply.requestId, id);
        EXPECT_EQ(reply.payload, sampleFrame().payload);
    }
    Frame goodbye;
    goodbye.type = MessageType::goodbye;
    ASSERT_EQ(sendFrame(s, goodbye, 2'000), FrameStatus::ok);
    server.stop();
    EXPECT_EQ(server.stats().requestsServed, 2u);
}

} // namespace
} // namespace fasttrack::net
