/**
 * @file
 * Tests for the link-pipelining extension: multi-cycle links must
 * preserve every delivery guarantee, scale zero-load latency by the
 * per-hop latency, and be reflected by the cost models.
 */

#include <gtest/gtest.h>

#include "fpga/area_model.hpp"
#include "noc/network.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id = 1)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(Pipelining, ZeroLoadLatencyScalesWithStages)
{
    for (std::uint32_t stages : {0u, 1u, 3u}) {
        NocConfig cfg = NocConfig::hoplite(4);
        cfg.shortLinkStages = stages;
        Network noc(cfg);
        Cycle delivered_at = 0;
        noc.setDeliverCallback(
            [&](const Packet &, Cycle c) { delivered_at = c; });
        noc.offer(pkt(0, 3)); // 3 hops East
        ASSERT_TRUE(noc.drain(1000));
        EXPECT_EQ(delivered_at, 3u * (1 + stages)) << stages;
    }
}

TEST(Pipelining, ExpressStagesOnlyAffectExpressHops)
{
    NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
    cfg.expressLinkStages = 2;
    Network noc(cfg);
    Cycle delivered_at = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle c) { delivered_at = c; });
    // (0,0)->(4,0): two express hops, each 3 cycles.
    noc.offer(pkt(toNodeId({0, 0}, 8), toNodeId({4, 0}, 8)));
    ASSERT_TRUE(noc.drain(1000));
    EXPECT_EQ(delivered_at, 6u);
}

TEST(Pipelining, MixedStagesChangeRoutePreferenceEconomics)
{
    // Stages do not change the routing decision (the router is
    // latency-oblivious), but deliveries must still all happen.
    NocConfig cfg = NocConfig::fastTrack(8, 2, 2);
    cfg.shortLinkStages = 1;
    cfg.expressLinkStages = 2;
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 100;
    const SynthResult res = runSynthetic(cfg, 1, workload, 5'000'000);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
              100ull * 64);
}

TEST(Pipelining, SaturatedDrainAcrossVariantsAndStages)
{
    for (std::uint32_t stages : {1u, 2u}) {
        for (const NocConfig &base :
             {NocConfig::hoplite(4), NocConfig::fastTrack(8, 2, 1),
              NocConfig::fastTrack(8, 2, 2, NocVariant::ftInject)}) {
            NocConfig cfg = base;
            cfg.shortLinkStages = stages;
            cfg.expressLinkStages = stages;
            SyntheticWorkload workload;
            workload.pattern = TrafficPattern::random;
            workload.injectionRate = 1.0;
            workload.packetsPerPe = 100;
            const SynthResult res =
                runSynthetic(cfg, 1, workload, 5'000'000);
            EXPECT_TRUE(res.completed)
                << cfg.describe() << " stages=" << stages;
        }
    }
}

TEST(Pipelining, ThroughputInPacketsPerCycleUnharmed)
{
    // Pipeline registers are wires, not contention points: packets
    // per cycle at saturation should stay within ~15% of unpipelined.
    auto rate = [](std::uint32_t stages) {
        NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
        cfg.shortLinkStages = stages;
        cfg.expressLinkStages = stages;
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 1.0;
        workload.packetsPerPe = 256;
        return runSynthetic(cfg, 1, workload).sustainedRate();
    };
    const double base = rate(0);
    EXPECT_NEAR(rate(2), base, base * 0.20);
}

TEST(Pipelining, AreaModelAddsLinkRegisters)
{
    AreaModel area;
    NocConfig base = NocConfig::hoplite(8);
    NocConfig piped = base;
    piped.shortLinkStages = 2;
    const NocCost c0 = area.nocCost(base.toSpec(256));
    const NocCost c2 = area.nocCost(piped.toSpec(256));
    // 2N*N short links x 2 stages x 256 bits extra flops.
    EXPECT_EQ(c2.ffs - c0.ffs, 2ull * 8 * 8 * 2 * 256);
    EXPECT_EQ(c2.luts, c0.luts);
}

TEST(Pipelining, FrequencyRisesTowardRouterLimit)
{
    AreaModel area;
    NocConfig cfg = NocConfig::hoplite(8);
    double prev = area.frequencyMhz(cfg.toSpec(256));
    const double limit = 1000.0 / (0.60 * (1000.0 / prev));
    for (std::uint32_t stages : {1u, 2u, 4u}) {
        cfg.shortLinkStages = stages;
        const double f = area.frequencyMhz(cfg.toSpec(256));
        EXPECT_GT(f, prev);
        EXPECT_LT(f, limit + 1.0);
        prev = f;
    }
}

TEST(Pipelining, UnpipelinedExpressBindsTheClock)
{
    // Pipelining only the short links of a FastTrack NoC leaves the
    // express wires as the critical path: no clock gain.
    AreaModel area;
    NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
    const double f0 = area.frequencyMhz(cfg.toSpec(256));
    cfg.shortLinkStages = 2;
    EXPECT_NEAR(area.frequencyMhz(cfg.toSpec(256)), f0, 1e-9);
    cfg.expressLinkStages = 2;
    EXPECT_GT(area.frequencyMhz(cfg.toSpec(256)), f0);
}

TEST(PipeliningDeathTest, RejectsAbsurdStageCounts)
{
    NocConfig cfg = NocConfig::hoplite(8);
    cfg.shortLinkStages = 9;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "link stages");
}

} // namespace
} // namespace fasttrack
