/**
 * @file
 * Tests for the dynamic power/energy model against Table II anchors.
 */

#include <gtest/gtest.h>

#include "fpga/power_model.hpp"
#include "noc/config.hpp"

namespace fasttrack {
namespace {

class PowerModelTest : public ::testing::Test
{
  protected:
    AreaModel area;
    PowerModel power{area};
};

TEST_F(PowerModelTest, TableIIAnchorsWithinFifteenPercent)
{
    struct Anchor
    {
        NocConfig cfg;
        double watts;
    };
    const Anchor anchors[] = {
        {NocConfig::hoplite(8), 9.8},
        {NocConfig::fastTrack(8, 2, 1), 25.1},
        {NocConfig::fastTrack(8, 2, 2), 19.9},
    };
    for (const Anchor &a : anchors) {
        EXPECT_NEAR(power.dynamicPowerW(a.cfg.toSpec(256)), a.watts,
                    a.watts * 0.15)
            << a.cfg.describe();
    }
}

TEST_F(PowerModelTest, PaperPowerRatioHolds)
{
    // Paper: FastTrack is 2-2.5x more power hungry than Hoplite.
    const double hop =
        power.dynamicPowerW(NocConfig::hoplite(8).toSpec(256));
    const double ft =
        power.dynamicPowerW(NocConfig::fastTrack(8, 2, 1).toSpec(256));
    EXPECT_GT(ft / hop, 2.0);
    EXPECT_LT(ft / hop, 2.8);
}

TEST_F(PowerModelTest, PowerLinearInActivity)
{
    const NocSpec spec = NocConfig::hoplite(8).toSpec(256);
    const double half = power.dynamicPowerW(spec, 0.25);
    const double full = power.dynamicPowerW(spec, 0.50);
    EXPECT_NEAR(full, 2.0 * half, 1e-9);
}

TEST_F(PowerModelTest, ZeroActivityZeroPower)
{
    EXPECT_EQ(power.dynamicPowerW(NocConfig::hoplite(8).toSpec(256),
                                  0.0), 0.0);
}

TEST_F(PowerModelTest, EnergyIsPowerTimesTime)
{
    const NocSpec spec = NocConfig::fastTrack(8, 2, 1).toSpec(256);
    const NocCost cost = area.nocCost(spec);
    const double cycles = 1e6;
    const double expect = power.dynamicPowerW(spec, 0.4) * cycles /
                          (cost.frequencyMhz * 1e6);
    EXPECT_NEAR(power.energyJ(spec, cycles, 0.4), expect, 1e-12);
}

TEST_F(PowerModelTest, WiderNoCsBurnMore)
{
    const double narrow =
        power.dynamicPowerW(NocConfig::hoplite(8).toSpec(64));
    const double wide =
        power.dynamicPowerW(NocConfig::hoplite(8).toSpec(512));
    EXPECT_GT(wide, narrow * 2.0);
}

TEST_F(PowerModelTest, ActivityOutOfRangePanics)
{
    EXPECT_DEATH(power.dynamicPowerW(NocConfig::hoplite(4).toSpec(32),
                                     1.5),
                 "activity");
}

} // namespace
} // namespace fasttrack
