/**
 * @file
 * Tests for FT(N^2, D, R) topology geometry: express-port placement,
 * link landing sites, wiring bill and the minimal-hop golden model.
 */

#include <gtest/gtest.h>

#include "noc/topology.hpp"

namespace fasttrack {
namespace {

TEST(Topology, HopliteHasNoExpress)
{
    Topology t(NocConfig::hoplite(8));
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_FALSE(t.hasExpressX(i));
        EXPECT_FALSE(t.hasExpressY(i));
    }
    EXPECT_EQ(t.tracksPerRing(), 1u);
    EXPECT_EQ(t.expressLinksPerRing(), 0u);
}

TEST(Topology, FullyPopulatedExpressEverywhere)
{
    Topology t(NocConfig::fastTrack(8, 2, 1));
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_TRUE(t.hasExpressX(i));
        EXPECT_TRUE(t.hasExpressY(i));
    }
    EXPECT_EQ(t.tracksPerRing(), 3u); // D/R + 1
    EXPECT_EQ(t.expressLinksPerRing(), 8u);
}

TEST(Topology, DepopulatedExpressAtMultiplesOfR)
{
    Topology t(NocConfig::fastTrack(8, 2, 2));
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(t.hasExpressX(i), i % 2 == 0);
        EXPECT_EQ(t.hasExpressY(i), i % 2 == 0);
    }
    EXPECT_EQ(t.tracksPerRing(), 2u);
    EXPECT_EQ(t.expressLinksPerRing(), 4u);
}

TEST(Topology, RouterKindsMatchFig7)
{
    // FT(16,2,2) on a 4x4: Black at (even,even), Grey at mixed,
    // White at (odd,odd) - Fig 7b.
    Topology t(NocConfig::fastTrack(4, 2, 2));
    EXPECT_EQ(t.kindAt({0, 0}), RouterArch::ftFull);
    EXPECT_EQ(t.kindAt({2, 2}), RouterArch::ftFull);
    EXPECT_EQ(t.kindAt({1, 0}), RouterArch::ftGrey);
    EXPECT_EQ(t.kindAt({0, 3}), RouterArch::ftGrey);
    EXPECT_EQ(t.kindAt({1, 1}), RouterArch::hoplite);
    EXPECT_EQ(t.kindAt({3, 3}), RouterArch::hoplite);
}

TEST(Topology, InjectVariantBlackRoutersAreInjectKind)
{
    Topology t(NocConfig::fastTrack(8, 2, 2, NocVariant::ftInject));
    EXPECT_EQ(t.kindAt({0, 0}), RouterArch::ftInject);
    EXPECT_EQ(t.kindAt({1, 1}), RouterArch::hoplite);
}

TEST(Topology, LinkLandingSites)
{
    Topology t(NocConfig::fastTrack(8, 2, 1));
    EXPECT_EQ(t.eastShort({7, 3}), (Coord{0, 3}));   // wraps
    EXPECT_EQ(t.southShort({2, 7}), (Coord{2, 0}));  // wraps
    EXPECT_EQ(t.eastExpress({6, 1}), (Coord{0, 1})); // D=2 wrap
    EXPECT_EQ(t.southExpress({5, 6}), (Coord{5, 0}));
}

TEST(Topology, ExpressLandingSitesStayOnExpressRouters)
{
    for (auto [n, d, r] : {std::tuple{8u, 2u, 2u}, {8u, 4u, 2u},
                           {16u, 4u, 4u}, {12u, 3u, 3u}}) {
        Topology t(NocConfig::fastTrack(n, d, r));
        for (std::uint32_t x = 0; x < n; ++x) {
            if (!t.hasExpressX(x))
                continue;
            const Coord land = t.eastExpress(
                {static_cast<std::uint16_t>(x), 0});
            EXPECT_TRUE(t.hasExpressX(land.x))
                << "n=" << n << " d=" << d << " r=" << r << " x=" << x;
        }
    }
}

TEST(TopologyDeathTest, ExpressLinkQueriesRequirePorts)
{
    Topology t(NocConfig::fastTrack(8, 2, 2));
    EXPECT_DEATH(t.eastExpress({1, 0}), "no X express");
    EXPECT_DEATH(t.southExpress({0, 1}), "no Y express");
}

TEST(Topology, WrapAlignment)
{
    EXPECT_TRUE(Topology(NocConfig::fastTrack(8, 2, 1)).wrapAligned());
    EXPECT_TRUE(Topology(NocConfig::fastTrack(8, 4, 1)).wrapAligned());
    EXPECT_FALSE(Topology(NocConfig::fastTrack(8, 3, 1)).wrapAligned());
    EXPECT_FALSE(Topology(NocConfig::hoplite(8)).wrapAligned());
}

TEST(Topology, MinimalHopsHopliteIsManhattan)
{
    Topology t(NocConfig::hoplite(8));
    EXPECT_EQ(t.minimalHops({0, 0}, {3, 5}), 8u);
    EXPECT_EQ(t.minimalHops({7, 7}, {0, 0}), 2u); // wraps
    EXPECT_EQ(t.minimalHops({2, 2}, {2, 2}), 0u);
}

TEST(Topology, MinimalHopsUsesExpress)
{
    Topology t(NocConfig::fastTrack(8, 2, 1));
    // dx=4 aligned: 2 express hops; dy=4: 2 express hops.
    EXPECT_EQ(t.minimalHops({0, 0}, {4, 4}), 4u);
    // dx=3: 1 short + 1 express; dy=3 same (Fig 8).
    EXPECT_EQ(t.minimalHops({0, 0}, {3, 3}), 4u);
    // dx=1: short only.
    EXPECT_EQ(t.minimalHops({0, 0}, {1, 0}), 1u);
}

TEST(Topology, MinimalHopsRespectsDepopulation)
{
    Topology t(NocConfig::fastTrack(8, 2, 2));
    // From x=1 (no express) with dx=4: ride short to x=3? x=1+k with
    // (1+k)%2==0 and rem%2==0: k=1 rem=3 no; k=3, rem=1 no... so all
    // short in the worst case: check against the golden rule directly.
    const std::uint32_t hops = t.minimalHops({1, 0}, {5, 0});
    EXPECT_EQ(hops, 4u); // dx=4 but never express-aligned from odd x
    // From x=0, dx=4: two express hops.
    EXPECT_EQ(t.minimalHops({0, 0}, {4, 0}), 2u);
}

TEST(Topology, MinimalHopsNeverWorseThanManhattan)
{
    Topology t(NocConfig::fastTrack(8, 3, 1));
    for (std::uint16_t sx = 0; sx < 8; ++sx) {
        for (std::uint16_t dx = 0; dx < 8; ++dx) {
            const std::uint32_t manhattan =
                ringDistance(sx, dx, 8) + ringDistance(0, 5, 8);
            EXPECT_LE(t.minimalHops({sx, 0}, {dx, 5}), manhattan);
        }
    }
}

TEST(TopologyDeathTest, InvalidConfigsRejected)
{
    EXPECT_EXIT(NocConfig::fastTrack(8, 5, 1),
                ::testing::ExitedWithCode(1), "express length");
    EXPECT_EXIT(NocConfig::fastTrack(8, 4, 3),
                ::testing::ExitedWithCode(1), "R must divide D");
    EXPECT_EXIT(NocConfig::fastTrack(10, 4, 4),
                ::testing::ExitedWithCode(1), "R | N");
    EXPECT_EXIT(NocConfig::fastTrack(8, 3, 1, NocVariant::ftInject),
                ::testing::ExitedWithCode(1), "D | N");
    EXPECT_EXIT(NocConfig::hoplite(1), ::testing::ExitedWithCode(1),
                "side");
}

} // namespace
} // namespace fasttrack
