/**
 * @file
 * Tests for the open-loop steady-state measurement protocol.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "sim/steady_state.hpp"

namespace fasttrack {
namespace {

TEST(SteadyState, BelowSaturationThroughputTracksOffered)
{
    auto noc = makeNoc(NocConfig::hoplite(8), 1);
    SteadyStateConfig cfg;
    cfg.injectionRate = 0.05;
    const SteadyStateResult res = measureSteadyState(*noc, cfg);
    EXPECT_FALSE(res.saturated);
    EXPECT_NEAR(res.throughput, 0.05, 0.006);
    EXPECT_GT(res.avgLatency, 4.0);
    EXPECT_LT(res.avgLatency, 20.0);
}

TEST(SteadyState, SaturationFlagAndPlateau)
{
    auto noc = makeNoc(NocConfig::hoplite(8), 1);
    SteadyStateConfig cfg;
    cfg.injectionRate = 1.0;
    const SteadyStateResult res = measureSteadyState(*noc, cfg);
    EXPECT_TRUE(res.saturated);
    // The window estimate of Hoplite saturation matches the closed-
    // workload estimate used everywhere else.
    EXPECT_NEAR(res.throughput, 0.11, 0.02);
}

TEST(SteadyState, AgreesWithClosedRunsAtSaturation)
{
    auto noc = makeNoc(NocConfig::fastTrack(8, 2, 1), 1);
    SteadyStateConfig cfg;
    cfg.injectionRate = 1.0;
    const SteadyStateResult open = measureSteadyState(*noc, cfg);

    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 512;
    const SynthResult closed =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 1, workload);

    EXPECT_NEAR(open.throughput, closed.sustainedRate(),
                closed.sustainedRate() * 0.10);
}

TEST(SteadyState, WindowAccountingConsistent)
{
    auto noc = makeNoc(NocConfig::hoplite(4), 1);
    SteadyStateConfig cfg;
    cfg.injectionRate = 0.2;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    const SteadyStateResult res = measureSteadyState(*noc, cfg);
    EXPECT_GT(res.windowCreated, 0u);
    // Below saturation nearly everything created in the window also
    // delivers in it.
    EXPECT_GE(res.windowDelivered + res.windowCreated / 10,
              res.windowCreated);
}

TEST(SteadyStateDeathTest, RequiresFreshDevice)
{
    auto noc = makeNoc(NocConfig::hoplite(4), 1);
    noc->step();
    SteadyStateConfig cfg;
    EXPECT_DEATH(measureSteadyState(*noc, cfg), "fresh device");
}

} // namespace
} // namespace fasttrack
