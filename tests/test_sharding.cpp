/**
 * @file
 * Temporal sharding: one long run executed as checkpoint slices
 * across ftd daemons (docs/distributed.md, "Temporal sharding").
 * Pins the slice payload codecs against hostile input, message
 * fragmentation over the frame layer, the daemon's slice handler
 * (typed rejections, never a crash), and the end-to-end driver
 * contract — a sharded run's merged stats are bit-identical to the
 * uninterrupted local run, and any fleet failure degrades to local
 * completion, never to a wrong or partial result.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "golden_hash.hpp"
#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "sim/checkpoint.hpp"
#include "sim/ftd_server.hpp"
#include "sim/remote.hpp"
#include "sim/simulation.hpp"
#include "sim/sweep_cache.hpp"
#include "workloads/dataflow.hpp"

namespace fasttrack {
namespace {

SyntheticWorkload
shardWorkload()
{
    SyntheticWorkload w;
    w.pattern = TrafficPattern::random;
    w.injectionRate = 0.5;
    w.packetsPerPe = 192;
    w.seed = 11;
    return w;
}

Trace
shardTrace()
{
    LuDagParams params{"shard_lu", 600, 8.0, 1.8, 3, 13};
    return dataflowTrace(sparseLuDag(params), 4);
}

/** Install a remote config for the scope, clear it on exit. */
struct WithRemote
{
    explicit WithRemote(RemoteConfig config)
    {
        setRemoteConfig(std::move(config));
    }
    ~WithRemote() { clearRemoteConfig(); }
};

RemoteConfig
loopbackConfig(std::initializer_list<std::uint16_t> ports)
{
    RemoteConfig config;
    for (std::uint16_t port : ports)
        config.endpoints.push_back(net::Endpoint{"127.0.0.1", port});
    config.useLocalCache = false;
    config.backoffInitialMs = 1;
    config.backoffCapMs = 20;
    config.connectTimeoutMs = 2'000;
    return config;
}

/** A started FtdServer on an ephemeral loopback port. */
struct WithDaemon
{
    FtdServer server;
    explicit WithDaemon(net::ServerConfig config = {})
        : server(std::move(config))
    {
        std::string error;
        EXPECT_TRUE(server.start(error)) << error;
    }
    ~WithDaemon() { server.stop(); }
    std::uint16_t port() { return server.boundPort(); }
};

/**
 * A hostile daemon: speaks the handshake correctly, then answers
 * every slice request on every connection with one canned
 * snapshotResult payload — the wire-level adversary the client's
 * answer validation must survive.
 */
class HostileDaemon
{
  public:
    explicit HostileDaemon(std::vector<std::uint8_t> result_payload)
        : payload_(std::move(result_payload))
    {
        std::string error;
        EXPECT_TRUE(listener_.open("127.0.0.1", 0, error)) << error;
        thread_ = std::thread([this] { serve(); });
    }
    ~HostileDaemon()
    {
        // Let the accept timeout expire rather than closing the
        // listener under the serve thread's feet.
        stop_.store(true);
        if (thread_.joinable())
            thread_.join();
        listener_.close();
    }
    std::uint16_t port() { return listener_.boundPort(); }

  private:
    void serve()
    {
        while (!stop_.load()) {
            net::Socket session = listener_.accept(100);
            if (!session.valid())
                continue;
            net::Frame hello;
            if (net::recvFrame(session, hello, 2'000, 2'000) !=
                net::FrameStatus::ok)
                continue;
            net::Frame ack;
            ack.type = net::MessageType::helloAck;
            net::WireWriter w;
            w.u32(net::kWireVersion);
            w.u32(kSweepCacheSchema);
            w.u32(8);
            ack.payload = w.take();
            if (net::sendFrame(session, ack, 2'000) !=
                net::FrameStatus::ok)
                continue;
            net::Frame request;
            if (net::recvMessage(session, request, 5'000, 2'000) !=
                net::FrameStatus::ok)
                continue;
            net::Frame reply;
            reply.type = net::MessageType::snapshotResult;
            reply.requestId = request.requestId;
            reply.payload = payload_;
            (void)net::sendMessage(session, reply, 2'000);
        }
    }

    net::Listener listener_;
    std::vector<std::uint8_t> payload_;
    std::thread thread_;
    std::atomic<bool> stop_{false};
};

/** An ephemeral port with nothing listening on it. */
std::uint16_t
deadPort()
{
    net::Listener listener;
    std::string error;
    EXPECT_TRUE(listener.open("127.0.0.1", 0, error)) << error;
    const std::uint16_t port = listener.boundPort();
    listener.close();
    return port;
}

/** A first-slice request for the standard synthetic shard run. */
ShardSliceRequest
sampleSliceRequest()
{
    ShardSliceRequest request;
    request.kind = SnapshotKind::synthetic;
    request.config = NocConfig::fastTrack(4, 2, 1);
    request.channels = 1;
    request.workload = shardWorkload();
    request.sliceCycles = 64;
    request.runMaxCycles = 100'000;
    request.key = checkpointKey(request.config, 1, request.workload);
    return request;
}

/** Capture a real mid-run snapshot to embed in wire payloads. */
Snapshot
capturedSnapshot(const ShardSliceRequest &request)
{
    auto noc = makeNoc(request.config, 1);
    Snapshot snap;
    RunRequest run;
    run.device = noc.get();
    run.workload = &request.workload;
    run.sim.maxCycles = request.sliceCycles;
    run.sim.captureFinal = &snap;
    const RunResult res = runSim(run);
    EXPECT_TRUE(res.finalCaptured);
    EXPECT_FALSE(res.synth.completed);
    snap.trimState();
    return snap;
}

TEST(ShardingCodec, SliceRequestRoundTripsSynthetic)
{
    ShardSliceRequest request = sampleSliceRequest();
    request.hasSnapshot = true;
    request.snapshot = capturedSnapshot(request);

    ShardSliceRequest decoded;
    ASSERT_TRUE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(request), decoded));
    EXPECT_EQ(decoded.kind, request.kind);
    EXPECT_EQ(decoded.config.n, request.config.n);
    EXPECT_EQ(decoded.config.d, request.config.d);
    EXPECT_EQ(decoded.channels, 1u);
    EXPECT_EQ(decoded.workload.seed, request.workload.seed);
    EXPECT_EQ(decoded.sliceCycles, request.sliceCycles);
    EXPECT_EQ(decoded.runMaxCycles, request.runMaxCycles);
    EXPECT_EQ(decoded.key, request.key);
    ASSERT_TRUE(decoded.hasSnapshot);
    EXPECT_EQ(decoded.snapshot.cycle(), request.snapshot.cycle());
    // The daemon re-derives the key from the decoded inputs and must
    // agree — the trust anchor of the handoff.
    EXPECT_EQ(checkpointKey(decoded.config, decoded.channels,
                            decoded.workload),
              request.key);
}

TEST(ShardingCodec, SliceRequestRoundTripsTrace)
{
    ShardSliceRequest request;
    request.kind = SnapshotKind::trace;
    request.config = NocConfig::hoplite(4);
    request.channels = 1;
    request.trace = shardTrace();
    request.sliceCycles = 100;
    request.runMaxCycles = 50'000;
    request.key = checkpointKey(request.config, 1, request.trace);

    ShardSliceRequest decoded;
    ASSERT_TRUE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(request), decoded));
    EXPECT_EQ(decoded.kind, SnapshotKind::trace);
    EXPECT_EQ(decoded.trace.name, request.trace.name);
    EXPECT_EQ(decoded.trace.n, request.trace.n);
    ASSERT_EQ(decoded.trace.messages.size(),
              request.trace.messages.size());
    const TraceMessage &a = request.trace.messages.back();
    const TraceMessage &b = decoded.trace.messages.back();
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(b.src, a.src);
    EXPECT_EQ(b.dst, a.dst);
    EXPECT_EQ(b.deps, a.deps);
    EXPECT_FALSE(decoded.hasSnapshot);
    EXPECT_EQ(checkpointKey(decoded.config, decoded.channels,
                            decoded.trace),
              request.key);
}

TEST(ShardingCodec, SliceRequestRejectsHostilePayloads)
{
    ShardSliceRequest request = sampleSliceRequest();
    request.hasSnapshot = true;
    request.snapshot = capturedSnapshot(request);
    const std::vector<std::uint8_t> good =
        encodeShardSliceRequestPayload(request);
    ShardSliceRequest out;

    // Truncation at every boundary fails cleanly (never crashes,
    // never over-allocates).
    for (std::size_t keep = 0; keep < good.size();
         keep += (keep < 128 ? 1 : 97)) {
        const std::vector<std::uint8_t> cut(
            good.begin(),
            good.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_FALSE(decodeShardSliceRequestPayload(cut, out)) << keep;
    }
    // Trailing junk fails (payloads decode exactly).
    std::vector<std::uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(decodeShardSliceRequestPayload(padded, out));

    // Unknown snapshot kind.
    std::vector<std::uint8_t> badKind = good;
    badKind[0] = 0x7f;
    EXPECT_FALSE(decodeShardSliceRequestPayload(badKind, out));

    // Multi-channel slices are impossible (engine-state capture is
    // single-channel); must be a decode rejection, not a daemon abort.
    ShardSliceRequest multi = sampleSliceRequest();
    multi.channels = 2;
    EXPECT_FALSE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(multi), out));

    // Zero budgets.
    ShardSliceRequest zero = sampleSliceRequest();
    zero.sliceCycles = 0;
    EXPECT_FALSE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(zero), out));
    zero = sampleSliceRequest();
    zero.runMaxCycles = 0;
    EXPECT_FALSE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(zero), out));
}

TEST(ShardingCodec, SliceRequestRejectsOversizedBudget)
{
    // The daemon runs a slice synchronously in its frame handler, so
    // the decoder caps the budget: without it a single frame could
    // demand up to ~2^64 cycles of compute.
    ShardSliceRequest request = sampleSliceRequest();
    request.sliceCycles = kMaxSliceCycles;
    ShardSliceRequest out;
    EXPECT_TRUE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(request), out));
    EXPECT_EQ(out.sliceCycles, kMaxSliceCycles);

    request.sliceCycles = kMaxSliceCycles + 1;
    EXPECT_FALSE(decodeShardSliceRequestPayload(
        encodeShardSliceRequestPayload(request), out));
}

TEST(ShardingCodec, TracePayloadRejectsForgedCounts)
{
    // A forged message count larger than the bytes backing it must be
    // rejected before any allocation happens.
    net::WireWriter w;
    w.u8(static_cast<std::uint8_t>(SnapshotKind::trace));
    const NocConfig cfg = NocConfig::hoplite(4);
    w.u32(cfg.n);
    w.u32(cfg.d);
    w.u32(cfg.r);
    w.u32(static_cast<std::uint32_t>(cfg.variant));
    w.u8(0);
    w.u8(0);
    w.u8(0);
    w.u32(cfg.shortLinkStages);
    w.u32(cfg.expressLinkStages);
    w.u32(1); // channels
    w.str("forged");
    w.u32(4);                       // trace.n
    w.u64(0xffff'ffff'ffff'ffffull); // message count >> payload
    ShardSliceRequest out;
    EXPECT_FALSE(decodeShardSliceRequestPayload(w.take(), out));

    // Same for a forged per-message dependency count.
    net::WireWriter d;
    d.u8(static_cast<std::uint8_t>(SnapshotKind::trace));
    d.u32(cfg.n);
    d.u32(cfg.d);
    d.u32(cfg.r);
    d.u32(static_cast<std::uint32_t>(cfg.variant));
    d.u8(0);
    d.u8(0);
    d.u8(0);
    d.u32(cfg.shortLinkStages);
    d.u32(cfg.expressLinkStages);
    d.u32(1);
    d.str("forged");
    d.u32(4);
    d.u64(1);          // one message...
    d.u64(0);          // id
    d.u32(0);          // src
    d.u32(1);          // dst
    d.u64(0);          // earliest
    d.u64(0);          // delayAfterDeps
    d.u32(0xffffffff); // ...claiming 4 billion deps
    EXPECT_FALSE(decodeShardSliceRequestPayload(d.take(), out));
}

TEST(ShardingCodec, SliceResultRoundTripsAndRejectsLyingPeer)
{
    const ShardSliceRequest request = sampleSliceRequest();

    // An unfinished slice: stats + handoff snapshot.
    ShardSliceResult unfinished;
    unfinished.kind = SnapshotKind::synthetic;
    unfinished.done = false;
    unfinished.synth = runSynthetic(request.config, 1, request.workload,
                                    SimConfig{.maxCycles = 64});
    unfinished.hasSnapshot = true;
    unfinished.snapshot = capturedSnapshot(request);

    ShardSliceResult decoded;
    ASSERT_TRUE(decodeShardSliceResultPayload(
        encodeShardSliceResultPayload(unfinished), decoded));
    EXPECT_FALSE(decoded.done);
    ASSERT_TRUE(decoded.hasSnapshot);
    EXPECT_EQ(hashStats(decoded.synth.stats),
              hashStats(unfinished.synth.stats));
    EXPECT_EQ(decoded.snapshot.cycle(), unfinished.snapshot.cycle());

    // A finished slice: stats only.
    ShardSliceResult finished = unfinished;
    finished.done = true;
    finished.hasSnapshot = false;
    finished.snapshot = Snapshot{};
    ASSERT_TRUE(decodeShardSliceResultPayload(
        encodeShardSliceResultPayload(finished), decoded));
    EXPECT_TRUE(decoded.done);
    EXPECT_FALSE(decoded.hasSnapshot);

    // A lying peer: done with a snapshot, or unfinished without one —
    // both violate the handoff contract and must not decode.
    ShardSliceResult lying = unfinished;
    lying.done = true; // done == hasSnapshot == true
    EXPECT_FALSE(decodeShardSliceResultPayload(
        encodeShardSliceResultPayload(lying), decoded));
    lying = finished;
    lying.done = false; // done == hasSnapshot == false
    EXPECT_FALSE(decodeShardSliceResultPayload(
        encodeShardSliceResultPayload(lying), decoded));

    // Truncation battery over the unfinished (snapshot-bearing) form.
    const std::vector<std::uint8_t> good =
        encodeShardSliceResultPayload(unfinished);
    for (std::size_t keep = 0; keep < good.size();
         keep += (keep < 128 ? 1 : 97)) {
        const std::vector<std::uint8_t> cut(
            good.begin(),
            good.begin() + static_cast<std::ptrdiff_t>(keep));
        EXPECT_FALSE(decodeShardSliceResultPayload(cut, decoded))
            << keep;
    }
    std::vector<std::uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(decodeShardSliceResultPayload(padded, decoded));
}

TEST(FrameMessage, FragmentsAndReassembles)
{
    net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.open("127.0.0.1", 0, error)) << error;
    net::Socket client = net::connectTo(
        "127.0.0.1", listener.boundPort(), 2'000, error);
    ASSERT_TRUE(client.valid()) << error;
    net::Socket server = listener.accept(2'000);
    ASSERT_TRUE(server.valid());

    // A payload forced through tiny fragments reassembles exactly.
    net::Frame big;
    big.type = net::MessageType::snapshotRequest;
    big.requestId = 77;
    big.payload.resize(64 * 1024);
    for (std::size_t i = 0; i < big.payload.size(); ++i)
        big.payload[i] = static_cast<std::uint8_t>(i * 131);
    ASSERT_EQ(net::sendMessage(client, big, 2'000,
                               /*max_fragment=*/4096),
              net::FrameStatus::ok);
    net::Frame out;
    ASSERT_EQ(net::recvMessage(server, out, 2'000, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(out.type, big.type);
    EXPECT_EQ(out.requestId, big.requestId);
    EXPECT_FALSE(out.partial);
    EXPECT_EQ(out.payload, big.payload);

    // The receiver bounds total reassembled size: the same message
    // against a small budget is malformed, not an allocation.
    ASSERT_EQ(net::sendMessage(client, big, 2'000, 4096),
              net::FrameStatus::ok);
    EXPECT_EQ(net::recvMessage(server, out, 2'000, 2'000,
                               /*max_message_bytes=*/16 * 1024),
              net::FrameStatus::malformed);
}

TEST(FrameMessage, RejectsBrokenFragmentChains)
{
    net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.open("127.0.0.1", 0, error)) << error;
    net::Socket client = net::connectTo(
        "127.0.0.1", listener.boundPort(), 2'000, error);
    ASSERT_TRUE(client.valid()) << error;
    net::Socket server = listener.accept(2'000);
    ASSERT_TRUE(server.valid());

    // Mid-chain type switch: first fragment says snapshotRequest,
    // continuation claims sweepRequest — malformed.
    net::Frame head;
    head.type = net::MessageType::snapshotRequest;
    head.requestId = 5;
    head.partial = true;
    head.payload = {1, 2, 3};
    ASSERT_EQ(net::sendFrame(client, head, 2'000),
              net::FrameStatus::ok);
    net::Frame rogue;
    rogue.type = net::MessageType::sweepRequest;
    rogue.requestId = 5;
    rogue.payload = {4, 5, 6};
    ASSERT_EQ(net::sendFrame(client, rogue, 2'000),
              net::FrameStatus::ok);
    net::Frame out;
    EXPECT_EQ(net::recvMessage(server, out, 2'000, 2'000),
              net::FrameStatus::malformed);

    // Mid-chain requestId switch on a fresh connection.
    net::Socket client2 = net::connectTo(
        "127.0.0.1", listener.boundPort(), 2'000, error);
    ASSERT_TRUE(client2.valid()) << error;
    net::Socket server2 = listener.accept(2'000);
    ASSERT_TRUE(server2.valid());
    ASSERT_EQ(net::sendFrame(client2, head, 2'000),
              net::FrameStatus::ok);
    net::Frame other = head;
    other.requestId = 6;
    other.partial = false;
    ASSERT_EQ(net::sendFrame(client2, other, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(net::recvMessage(server2, out, 2'000, 2'000),
              net::FrameStatus::malformed);

    // Chain cut by connection close — truncated, not a hang.
    net::Socket client3 = net::connectTo(
        "127.0.0.1", listener.boundPort(), 2'000, error);
    ASSERT_TRUE(client3.valid()) << error;
    net::Socket server3 = listener.accept(2'000);
    ASSERT_TRUE(server3.valid());
    ASSERT_EQ(net::sendFrame(client3, head, 2'000),
              net::FrameStatus::ok);
    client3.close();
    EXPECT_EQ(net::recvMessage(server3, out, 2'000, 2'000),
              net::FrameStatus::truncated);
}

TEST(FrameMessage, RejectsEmptyPartialFragments)
{
    net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.open("127.0.0.1", 0, error)) << error;
    net::Socket client = net::connectTo(
        "127.0.0.1", listener.boundPort(), 2'000, error);
    ASSERT_TRUE(client.valid()) << error;
    net::Socket server = listener.accept(2'000);
    ASSERT_TRUE(server.valid());

    // An empty head fragment claiming a continuation — the opener of
    // the endless empty-partial chain that would otherwise pin the
    // receiving thread forever (each empty fragment adds zero bytes,
    // so the reassembly budget alone never trips).
    net::Frame empty;
    empty.type = net::MessageType::snapshotRequest;
    empty.requestId = 9;
    empty.partial = true;
    ASSERT_EQ(net::sendFrame(client, empty, 2'000),
              net::FrameStatus::ok);
    net::Frame out;
    EXPECT_EQ(net::recvMessage(server, out, 2'000, 2'000),
              net::FrameStatus::malformed);

    // Same mid-chain: a non-empty head, then an empty non-final
    // continuation.
    net::Socket client2 = net::connectTo(
        "127.0.0.1", listener.boundPort(), 2'000, error);
    ASSERT_TRUE(client2.valid()) << error;
    net::Socket server2 = listener.accept(2'000);
    ASSERT_TRUE(server2.valid());
    net::Frame head = empty;
    head.payload = {1, 2, 3};
    ASSERT_EQ(net::sendFrame(client2, head, 2'000),
              net::FrameStatus::ok);
    ASSERT_EQ(net::sendFrame(client2, empty, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(net::recvMessage(server2, out, 2'000, 2'000),
              net::FrameStatus::malformed);

    // An empty *message* (single non-partial frame, goodbye-style)
    // still passes: only non-final fragments must carry payload.
    net::Frame bare;
    bare.type = net::MessageType::goodbye;
    bare.requestId = 10;
    ASSERT_EQ(net::sendFrame(client, bare, 2'000),
              net::FrameStatus::ok);
    ASSERT_EQ(net::recvMessage(server, out, 2'000, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(out.type, net::MessageType::goodbye);
    EXPECT_TRUE(out.payload.empty());
}

/** Raw-socket handshake against a daemon (hostile-input idiom). */
net::Socket
rawHandshake(std::uint16_t port)
{
    std::string error;
    net::Socket sock = net::connectTo("127.0.0.1", port, 2'000, error);
    EXPECT_TRUE(sock.valid()) << error;
    if (!sock.valid())
        return sock;
    net::Frame hello;
    hello.type = net::MessageType::hello;
    net::WireWriter hw;
    hw.u32(net::kWireVersion);
    hw.u32(kSweepCacheSchema);
    hw.u32(8);
    hello.payload = hw.take();
    EXPECT_EQ(net::sendFrame(sock, hello, 2'000), net::FrameStatus::ok);
    net::Frame ack;
    EXPECT_EQ(net::recvFrame(sock, ack, 2'000, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(ack.type, net::MessageType::helloAck);
    return sock;
}

/** Send one snapshotRequest payload, expect a kErrBadRequest reply. */
void
expectSliceRejected(net::Socket &sock,
                    const std::vector<std::uint8_t> &payload,
                    std::uint64_t request_id)
{
    net::Frame bad;
    bad.type = net::MessageType::snapshotRequest;
    bad.requestId = request_id;
    bad.payload = payload;
    ASSERT_EQ(net::sendMessage(sock, bad, 2'000), net::FrameStatus::ok);
    net::Frame reply;
    ASSERT_EQ(net::recvMessage(sock, reply, 10'000, 2'000),
              net::FrameStatus::ok);
    ASSERT_EQ(reply.type, net::MessageType::error);
    EXPECT_EQ(reply.requestId, request_id);
    std::uint32_t code = 0;
    std::string message;
    ASSERT_TRUE(net::parseErrorFrame(reply, code, message));
    EXPECT_EQ(code, net::kErrBadRequest);
    // The batch's telemetry epoch still follows.
    ASSERT_EQ(net::recvMessage(sock, reply, 10'000, 2'000),
              net::FrameStatus::ok);
    EXPECT_EQ(reply.type, net::MessageType::metricsEpoch);
}

TEST(Sharding, HostileSliceRequestsGetTypedErrorsAndDaemonSurvives)
{
    WithDaemon daemon;
    net::Socket sock = rawHandshake(daemon.port());
    ASSERT_TRUE(sock.valid());

    // Garbage payload.
    expectSliceRejected(sock, {0xde, 0xad, 0xbe, 0xef}, 60);

    // Well-formed request whose key does not match its inputs.
    ShardSliceRequest forged = sampleSliceRequest();
    forged.key ^= 0x1;
    expectSliceRejected(sock, encodeShardSliceRequestPayload(forged),
                        61);

    // Slice that claims to start at/past the whole-run guard.
    ShardSliceRequest spent = sampleSliceRequest();
    spent.hasSnapshot = true;
    spent.snapshot = capturedSnapshot(spent);
    spent.runMaxCycles =
        spent.snapshot.cycle() - spent.snapshot.runStart;
    spent.key = checkpointKey(spent.config, 1, spent.workload);
    expectSliceRejected(sock, encodeShardSliceRequestPayload(spent),
                        62);

    // Slice demanding a cycle budget past kMaxSliceCycles (the slice
    // runs synchronously in the frame handler; the cap bounds what
    // one frame can make the daemon compute).
    ShardSliceRequest greedy = sampleSliceRequest();
    greedy.sliceCycles = kMaxSliceCycles + 1;
    expectSliceRejected(sock, encodeShardSliceRequestPayload(greedy),
                        63);

    // The same session then serves a valid first slice.
    ShardSliceRequest good = sampleSliceRequest();
    net::Frame frame;
    frame.type = net::MessageType::snapshotRequest;
    frame.requestId = 64;
    frame.payload = encodeShardSliceRequestPayload(good);
    ASSERT_EQ(net::sendMessage(sock, frame, 2'000),
              net::FrameStatus::ok);
    net::Frame reply;
    ASSERT_EQ(net::recvMessage(sock, reply, 60'000, 10'000),
              net::FrameStatus::ok);
    ASSERT_EQ(reply.type, net::MessageType::snapshotResult);
    EXPECT_EQ(reply.requestId, 64u);
    ShardSliceResult result;
    ASSERT_TRUE(decodeShardSliceResultPayload(reply.payload, result));
    EXPECT_FALSE(result.done); // 64 cycles cannot drain the workload
    ASSERT_TRUE(result.hasSnapshot);
    EXPECT_TRUE(result.snapshot.engine.trimmed);
    EXPECT_GT(result.snapshot.cycle() - result.snapshot.runStart, 0u);

    net::Frame goodbye;
    goodbye.type = net::MessageType::goodbye;
    (void)net::recvMessage(sock, reply, 10'000, 2'000); // epoch
    ASSERT_EQ(net::sendFrame(sock, goodbye, 2'000),
              net::FrameStatus::ok);
    sock.close();

    daemon.server.stop();
    EXPECT_EQ(daemon.server.stats().badRequests, 4u);
    EXPECT_EQ(daemon.server.stats().slicesServed, 1u);
    EXPECT_EQ(daemon.server.netStats().protocolErrors, 0u);
}

TEST(Sharding, ShardedSyntheticRunMatchesLocalBitForBit)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload w = shardWorkload();
    const RunResult whole = runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);
    ASSERT_GT(whole.synth.cycles, 16u);

    WithDaemon a, b;
    const Cycle shard = whole.synth.cycles / 4 + 1; // >= 4 slices
    RunResult sharded;
    {
        WithRemote wr(loopbackConfig({a.port(), b.port()}));
        RunRequest request;
        request.config = &cfg;
        request.workload = &w;
        sharded = runShardedSim(request, shard);
    }

    EXPECT_TRUE(sharded.synth.completed);
    EXPECT_EQ(sharded.synth.cycles, whole.synth.cycles);
    EXPECT_EQ(hashStats(sharded.synth.stats),
              hashStats(whole.synth.stats));

    // Every slice travelled the wire, spread over both daemons.
    const RemoteStats stats = remoteStats();
    EXPECT_GE(stats.slicesRemote, 3u);
    EXPECT_EQ(stats.slicesFallback, 0u);
    EXPECT_GT(a.server.stats().slicesServed, 0u);
    EXPECT_GT(b.server.stats().slicesServed, 0u);
    EXPECT_EQ(a.server.stats().slicesServed +
                  b.server.stats().slicesServed,
              stats.slicesRemote);
}

TEST(Sharding, ShardedTraceRunMatchesLocalBitForBit)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const Trace trace = shardTrace();
    const RunResult whole = runSim({.config = &cfg, .trace = &trace});
    ASSERT_TRUE(whole.trace.completed);

    WithDaemon daemon;
    const Cycle shard = whole.trace.completion / 4 + 1;
    RunResult sharded;
    {
        WithRemote wr(loopbackConfig({daemon.port()}));
        RunRequest request;
        request.config = &cfg;
        request.trace = &trace;
        sharded = runShardedSim(request, shard);
    }

    EXPECT_TRUE(sharded.trace.completed);
    EXPECT_TRUE(sharded.isTrace);
    EXPECT_EQ(sharded.trace.completion, whole.trace.completion);
    EXPECT_EQ(hashStats(sharded.trace.stats),
              hashStats(whole.trace.stats));
    EXPECT_GE(remoteStats().slicesRemote, 3u);
    EXPECT_EQ(remoteStats().slicesFallback, 0u);
    EXPECT_GE(daemon.server.stats().slicesServed, 3u);
}

TEST(Sharding, DeadFleetDegradesToLocalCompletion)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload w = shardWorkload();
    const RunResult whole = runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);

    RemoteConfig remote = loopbackConfig({deadPort()});
    remote.maxAttempts = 2;
    remote.connectTimeoutMs = 200;
    const Cycle shard = whole.synth.cycles / 4 + 1;
    RunResult sharded;
    {
        WithRemote wr(std::move(remote));
        RunRequest request;
        request.config = &cfg;
        request.workload = &w;
        sharded = runShardedSim(request, shard);
    }

    // The run completes locally, bit-identically.
    EXPECT_TRUE(sharded.synth.completed);
    EXPECT_EQ(sharded.synth.cycles, whole.synth.cycles);
    EXPECT_EQ(hashStats(sharded.synth.stats),
              hashStats(whole.synth.stats));

    const RemoteStats stats = remoteStats();
    EXPECT_EQ(stats.slicesRemote, 0u);
    EXPECT_GE(stats.slicesFallback, 3u);
    // The fleet is declared dead after the first slice's budget, not
    // re-probed once per slice.
    EXPECT_LE(stats.connectFailures, 2u);
}

TEST(Sharding, HostileSnapshotAnswersFallBackToLocal)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload w = shardWorkload();
    const RunResult whole = runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);
    const Cycle shard = whole.synth.cycles / 4 + 1;

    // (a) A decodable, internally consistent snapshot for a
    // *different* geometry: it passes every cycle-range check and is
    // only caught by the client's restore probe. Before the probe it
    // was committed as the next slice's handoff, every daemon then
    // rejected the chain, and the local fallback aborted the process.
    ShardSliceRequest foreign = sampleSliceRequest();
    foreign.config = NocConfig::fastTrack(6, 2, 1);
    foreign.workload = w;
    foreign.sliceCycles = shard;
    foreign.key = checkpointKey(foreign.config, 1, foreign.workload);
    ShardSliceResult wrong_geometry;
    wrong_geometry.kind = SnapshotKind::synthetic;
    wrong_geometry.done = false;
    wrong_geometry.hasSnapshot = true;
    wrong_geometry.snapshot = capturedSnapshot(foreign);

    // (b) A snapshot whose runStart lies beyond its cycle: the
    // unsigned cycle() - runStart delta wraps huge, which used to
    // sail past the anti-spin progress check unchecked.
    ShardSliceRequest own = sampleSliceRequest();
    own.workload = w;
    own.sliceCycles = shard;
    own.key = checkpointKey(own.config, 1, own.workload);
    ShardSliceResult underflow;
    underflow.kind = SnapshotKind::synthetic;
    underflow.done = false;
    underflow.hasSnapshot = true;
    underflow.snapshot = capturedSnapshot(own);
    underflow.snapshot.runStart = underflow.snapshot.cycle() + 1;

    for (const ShardSliceResult *hostile :
         {&wrong_geometry, &underflow}) {
        HostileDaemon daemon(encodeShardSliceResultPayload(*hostile));
        RemoteConfig remote = loopbackConfig({daemon.port()});
        remote.maxAttempts = 2;
        RunResult sharded;
        {
            WithRemote wr(std::move(remote));
            RunRequest request;
            request.config = &cfg;
            request.workload = &w;
            sharded = runShardedSim(request, shard);
        }
        // No crash, no infinite slice loop, no poisoned chain: the
        // hostile answers are rejected on receipt and the run
        // completes locally, bit-identical.
        EXPECT_TRUE(sharded.synth.completed);
        EXPECT_EQ(sharded.synth.cycles, whole.synth.cycles);
        EXPECT_EQ(hashStats(sharded.synth.stats),
                  hashStats(whole.synth.stats));
        EXPECT_EQ(remoteStats().slicesRemote, 0u);
        EXPECT_GE(remoteStats().slicesFallback, 3u);
    }
}

TEST(Sharding, MidRunDaemonLossFallsBackAndStaysCorrect)
{
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload w = shardWorkload();
    const RunResult whole = runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);

    // One live daemon, one dead endpoint: round-robin lands slices on
    // both, so the driver exercises retry-and-rotate mid-run. Every
    // slice is still served (by the live daemon) or — once the retry
    // budget trips on a dead pick without rotation luck — locally.
    RemoteConfig remote;
    WithDaemon daemon;
    remote = loopbackConfig({daemon.port(), deadPort()});
    remote.maxAttempts = 3;
    remote.connectTimeoutMs = 200;
    const Cycle shard = whole.synth.cycles / 4 + 1;
    RunResult sharded;
    {
        WithRemote wr(std::move(remote));
        RunRequest request;
        request.config = &cfg;
        request.workload = &w;
        sharded = runShardedSim(request, shard);
    }

    EXPECT_TRUE(sharded.synth.completed);
    EXPECT_EQ(sharded.synth.cycles, whole.synth.cycles);
    EXPECT_EQ(hashStats(sharded.synth.stats),
              hashStats(whole.synth.stats));
    const RemoteStats stats = remoteStats();
    EXPECT_GE(stats.slicesRemote + stats.slicesFallback, 3u);
    EXPECT_GE(stats.slicesRemote, 1u);
    EXPECT_GE(stats.connectFailures, 1u);
}

} // namespace
} // namespace fasttrack
