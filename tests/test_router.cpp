/**
 * @file
 * Single-router arbitration tests: priority order, deflection
 * accounting, injection gating, and the bufferless permutation
 * property under randomized full-load inputs.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "noc/router.hpp"

namespace fasttrack {
namespace {

Packet
pkt(Coord dst, std::uint32_t n, std::uint64_t id = 1,
    bool express_class = false)
{
    Packet p;
    p.id = id;
    p.src = 0;
    p.dst = toNodeId(dst, n);
    p.expressClass = express_class;
    return p;
}

class RouterTest : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kN = 8;

    Router makeRouter(const NocConfig &cfg, Coord pos)
    {
        topo_ = std::make_unique<Topology>(cfg);
        return Router(*topo_, pos);
    }

    std::unique_ptr<Topology> topo_;
    NocStats stats_;
};

TEST_F(RouterTest, TurnBeatsRingTraffic)
{
    // W wants to turn South; N wants to continue South. The paper's
    // livelock rule: the turn wins, N deflects East.
    Router router = makeRouter(NocConfig::hoplite(kN), {3, 3});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({3, 6}, kN, 1); // turn S
    in[static_cast<int>(InPort::nSh)] = pkt({3, 7}, kN, 2); // continue

    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    ASSERT_TRUE(res.out[static_cast<int>(OutPort::sSh)]);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::sSh)]->id, 1u);
    ASSERT_TRUE(res.out[static_cast<int>(OutPort::eSh)]);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eSh)]->id, 2u);
    // The deflected N packet is charged a deflection.
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eSh)]->deflections, 1u);
    EXPECT_EQ(stats_.deflectionsByPort[static_cast<int>(InPort::nSh)],
              1u);
}

TEST_F(RouterTest, RingFirstPriorityFlipsTheOutcome)
{
    NocConfig cfg = NocConfig::hoplite(kN);
    cfg.turnPriority = false;
    Router router = makeRouter(cfg, {3, 3});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({3, 6}, kN, 1);
    in[static_cast<int>(InPort::nSh)] = pkt({3, 7}, kN, 2);

    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::sSh)]->id, 2u);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eSh)]->id, 1u);
}

TEST_F(RouterTest, WexBeatsEveryone)
{
    // W_EX turning to S_SH displaces even a W_SH exit.
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {3, 3});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wEx)] = pkt({3, 4}, kN, 1); // turn S_SH
    in[static_cast<int>(InPort::wSh)] = pkt({3, 3}, kN, 2); // exit here

    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    // dy=1 is express-misaligned, so W_EX takes S_SH; the exiting W_SH
    // is deflected (exit shares S_SH).
    ASSERT_TRUE(res.out[static_cast<int>(OutPort::sSh)]);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::sSh)]->id, 1u);
    EXPECT_FALSE(res.delivered.has_value());
    EXPECT_GE(stats_.exitBlocked, 0u);
}

TEST_F(RouterTest, DeliveryAtDestination)
{
    Router router = makeRouter(NocConfig::hoplite(kN), {2, 5});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({2, 5}, kN, 9);
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    ASSERT_TRUE(res.delivered.has_value());
    EXPECT_EQ(res.delivered->id, 9u);
    EXPECT_EQ(res.deliveredFrom, InPort::wSh);
    // The exit consumed S_SH: nothing forwarded on it.
    EXPECT_FALSE(res.out[static_cast<int>(OutPort::sSh)]);
}

TEST_F(RouterTest, ExitGateForcesDeflection)
{
    Router router = makeRouter(NocConfig::hoplite(kN), {2, 5});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({2, 5}, kN, 9);
    const auto res = router.route(in, std::nullopt, /*exit_ok=*/false,
                                  0, stats_);
    EXPECT_FALSE(res.delivered.has_value());
    // Packet must still be forwarded somewhere.
    int forwarded = 0;
    for (const auto &o : res.out)
        forwarded += o.has_value();
    EXPECT_EQ(forwarded, 1);
    EXPECT_GE(stats_.exitBlocked, 1u);
}

TEST_F(RouterTest, OnlyOneExitPerCycle)
{
    // Two packets at destination: one exits, the other deflects.
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {2, 4});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({2, 4}, kN, 1);
    in[static_cast<int>(InPort::nSh)] = pkt({2, 4}, kN, 2);
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    ASSERT_TRUE(res.delivered.has_value());
    int forwarded = 0;
    for (const auto &o : res.out)
        forwarded += o.has_value();
    EXPECT_EQ(forwarded, 1);
}

TEST_F(RouterTest, InjectionBlockedWhenOutputBusy)
{
    Router router = makeRouter(NocConfig::hoplite(kN), {0, 0});
    Router::Inputs in{};
    // In-flight W packet continues East...
    in[static_cast<int>(InPort::wSh)] = pkt({5, 0}, kN, 1);
    // ...and the PE wants to inject Eastbound too.
    const auto offer = std::optional<Packet>(pkt({3, 0}, kN, 2));
    const auto res = router.route(in, offer, true, 0, stats_);
    EXPECT_FALSE(res.peAccepted);
    EXPECT_EQ(stats_.injectionBlockedCycles, 1u);
    // PE never steals from in-flight traffic.
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eSh)]->id, 1u);
}

TEST_F(RouterTest, InjectionTakesExpressWhenEligible)
{
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {0, 0});
    Router::Inputs in{};
    const auto offer = std::optional<Packet>(pkt({4, 0}, kN, 2));
    const auto res = router.route(in, offer, true, 0, stats_);
    EXPECT_TRUE(res.peAccepted);
    ASSERT_TRUE(res.out[static_cast<int>(OutPort::eEx)]);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eEx)]->expressHops, 1u);
}

TEST_F(RouterTest, HopCountersTrackLaneClasses)
{
    Router router = makeRouter(NocConfig::fastTrack(kN, 2, 1), {0, 0});
    Router::Inputs in{};
    in[static_cast<int>(InPort::wSh)] = pkt({1, 0}, kN, 1); // short E
    in[static_cast<int>(InPort::wEx)] = pkt({4, 0}, kN, 2); // express E
    const auto res = router.route(in, std::nullopt, true, 0, stats_);
    EXPECT_EQ(stats_.shortHopTraversals, 1u);
    EXPECT_EQ(stats_.expressHopTraversals, 1u);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eSh)]->shortHops, 1u);
    EXPECT_EQ(res.out[static_cast<int>(OutPort::eEx)]->expressHops, 1u);
}

/**
 * Property: with all four inputs loaded with random packets, the
 * router always forwards each input to a distinct output (permutation
 * property of a bufferless switch), for every variant and router kind.
 */
class RouterPermutationTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(RouterPermutationTest, AllInputsForwardedDistinctly)
{
    const int variant_idx = std::get<0>(GetParam());
    const int pos_idx = std::get<1>(GetParam());
    constexpr std::uint32_t n = 8;

    NocConfig cfg;
    switch (variant_idx) {
      case 0: cfg = NocConfig::hoplite(n); break;
      case 1: cfg = NocConfig::fastTrack(n, 2, 1); break;
      case 2: cfg = NocConfig::fastTrack(n, 2, 2); break;
      case 3:
        cfg = NocConfig::fastTrack(n, 2, 2, NocVariant::ftInject);
        break;
      case 4: cfg = NocConfig::fastTrack(n, 3, 1); break;
      default: FAIL();
    }
    Topology topo(cfg);
    const Coord pos{static_cast<std::uint16_t>(pos_idx % n),
                    static_cast<std::uint16_t>(pos_idx / n)};
    Router router(topo, pos);
    NocStats stats;
    Rng rng(1234 + variant_idx * 100 + pos_idx);

    for (int trial = 0; trial < 300; ++trial) {
        Router::Inputs in{};
        int loaded = 0;
        for (int port = 0; port < 4; ++port) {
            const auto p = static_cast<InPort>(port);
            // Respect port existence (depopulated routers).
            if (p == InPort::wEx && !topo.hasExpressX(pos.x))
                continue;
            if (p == InPort::nEx && !topo.hasExpressY(pos.y))
                continue;
            if (rng.nextBool(0.85)) {
                Coord dst{static_cast<std::uint16_t>(rng.nextBelow(n)),
                          static_cast<std::uint16_t>(rng.nextBelow(n))};
                // Express inputs in the inject variant carry
                // express-class packets.
                const bool exp_class =
                    cfg.variant == NocVariant::ftInject &&
                    isExpress(p);
                in[port] = pkt(dst, n, trial * 10 + port, exp_class);
                ++loaded;
            }
        }
        const bool gate = rng.nextBool(0.8);
        const auto res = router.route(in, std::nullopt, gate, 0, stats);

        int forwarded = 0;
        for (const auto &o : res.out)
            forwarded += o.has_value();
        forwarded += res.delivered.has_value();
        EXPECT_EQ(forwarded, loaded) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndPositions, RouterPermutationTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(0, 1, 9, 27, 36, 63)));

} // namespace
} // namespace fasttrack
