/**
 * @file
 * Tests for the FPGA area/frequency model against the paper's
 * Table I (32b routers) and Table II (8x8 256b NoCs) anchors.
 */

#include <gtest/gtest.h>

#include "fpga/area_model.hpp"
#include "noc/config.hpp"

namespace fasttrack {
namespace {

class AreaModelTest : public ::testing::Test
{
  protected:
    AreaModel area;
};

TEST_F(AreaModelTest, HopliteRouterMatchesTableI)
{
    const RouterCost rc = area.routerCost(RouterArch::hoplite, 32);
    EXPECT_NEAR(rc.luts, 78.0, 10.0);
}

TEST_F(AreaModelTest, FastTrackRouterInsideTableIRange)
{
    const RouterCost lite = area.routerCost(RouterArch::ftInject, 32);
    const RouterCost full = area.routerCost(RouterArch::ftFull, 32);
    EXPECT_GE(lite.luts, 170u);
    EXPECT_LE(full.luts, 310u);
    EXPECT_LT(lite.luts, full.luts);
}

TEST_F(AreaModelTest, TableIITotalsWithinTenPercent)
{
    struct Anchor
    {
        NocConfig cfg;
        double luts, ffs, mhz;
    };
    const Anchor anchors[] = {
        {NocConfig::hoplite(8), 34e3, 83e3, 344},
        {NocConfig::fastTrack(8, 2, 1), 104e3, 150e3, 320},
        {NocConfig::fastTrack(8, 2, 2), 69e3, 117e3, 323},
    };
    for (const Anchor &a : anchors) {
        const NocCost cost = area.nocCost(a.cfg.toSpec(256));
        EXPECT_NEAR(static_cast<double>(cost.luts), a.luts,
                    a.luts * 0.10)
            << a.cfg.describe();
        EXPECT_NEAR(static_cast<double>(cost.ffs), a.ffs, a.ffs * 0.10)
            << a.cfg.describe();
        EXPECT_NEAR(cost.frequencyMhz, a.mhz, a.mhz * 0.05)
            << a.cfg.describe();
    }
}

TEST_F(AreaModelTest, FastTrackAreaRatioMatchesPaper)
{
    // Paper Table II: FT(64,2,1)/Hoplite ~3.1x in LUTs, FT(64,2,2)
    // ~2.0x (the abstract quotes 1.7-2.5x across configs).
    const double hop = static_cast<double>(
        area.nocCost(NocConfig::hoplite(8).toSpec(256)).luts);
    const double full = static_cast<double>(
        area.nocCost(NocConfig::fastTrack(8, 2, 1).toSpec(256)).luts);
    const double depop = static_cast<double>(
        area.nocCost(NocConfig::fastTrack(8, 2, 2).toSpec(256)).luts);
    EXPECT_NEAR(full / hop, 3.0, 0.35);
    EXPECT_NEAR(depop / hop, 2.0, 0.30);
}

TEST_F(AreaModelTest, CostsScaleWithWidth)
{
    for (RouterArch arch : {RouterArch::hoplite, RouterArch::ftFull,
                            RouterArch::ftGrey, RouterArch::ftInject}) {
        std::uint32_t prev_luts = 0, prev_ffs = 0;
        for (std::uint32_t w : {32u, 64u, 128u, 256u, 512u}) {
            const RouterCost rc = area.routerCost(arch, w);
            EXPECT_GT(rc.luts, prev_luts);
            EXPECT_GT(rc.ffs, prev_ffs);
            prev_luts = rc.luts;
            prev_ffs = rc.ffs;
        }
    }
}

TEST_F(AreaModelTest, KindCountsSumToAllRouters)
{
    for (std::uint32_t n : {4u, 8u, 16u}) {
        for (std::uint32_t d : {2u, 4u}) {
            for (std::uint32_t r = 1; r <= d; ++r) {
                if (d % r != 0 || n % r != 0)
                    continue;
                const auto k = AreaModel::kindCounts(n, d, r);
                EXPECT_EQ(k.black + k.grey + k.white, n * n)
                    << "n=" << n << " d=" << d << " r=" << r;
            }
        }
    }
}

TEST_F(AreaModelTest, FullyPopulatedIsAllBlack)
{
    const auto k = AreaModel::kindCounts(8, 2, 1);
    EXPECT_EQ(k.black, 64u);
    EXPECT_EQ(k.grey, 0u);
    EXPECT_EQ(k.white, 0u);
}

TEST_F(AreaModelTest, DepopulatedHasExpectedMix)
{
    // FT(16, 2, 2) on a 4x4: express columns/rows at even positions.
    const auto k = AreaModel::kindCounts(4, 2, 2);
    EXPECT_EQ(k.black, 4u);
    EXPECT_EQ(k.grey, 8u);
    EXPECT_EQ(k.white, 4u);
}

TEST_F(AreaModelTest, HopliteKindCountsAllWhite)
{
    const auto k = AreaModel::kindCounts(8, 0, 1);
    EXPECT_EQ(k.white, 64u);
    EXPECT_EQ(k.black + k.grey, 0u);
}

TEST_F(AreaModelTest, WireCountMatchesTrackFormula)
{
    // Fig 14b iso-wiring anchors: FT(64,2,1) == Hoplite-3x == 48;
    // FT(64,2,2) == Hoplite-2x == 32.
    EXPECT_EQ(area.nocCost(NocConfig::fastTrack(8, 2, 1).toSpec(256))
                  .wireCount, 48u);
    EXPECT_EQ(area.nocCost(NocConfig::hoplite(8).toSpec(256, 3))
                  .wireCount, 48u);
    EXPECT_EQ(area.nocCost(NocConfig::fastTrack(8, 2, 2).toSpec(256))
                  .wireCount, 32u);
    EXPECT_EQ(area.nocCost(NocConfig::hoplite(8).toSpec(256, 2))
                  .wireCount, 32u);
}

TEST_F(AreaModelTest, MultiChannelScalesLinearly)
{
    const NocCost one =
        area.nocCost(NocConfig::hoplite(8).toSpec(256, 1));
    const NocCost three =
        area.nocCost(NocConfig::hoplite(8).toSpec(256, 3));
    EXPECT_EQ(three.luts, one.luts * 3);
    EXPECT_EQ(three.ffs, one.ffs * 3);
}

TEST_F(AreaModelTest, FrequencyFallsWithSizeAndWidth)
{
    const double f_small = area.frequencyMhz(NocSpec{4, 64, 0, 1,
                                                     false, 1});
    const double f_big = area.frequencyMhz(NocSpec{16, 64, 0, 1,
                                                   false, 1});
    const double f_wide = area.frequencyMhz(NocSpec{4, 512, 0, 1,
                                                    false, 1});
    EXPECT_GT(f_small, f_big);
    EXPECT_GT(f_small, f_wide);
}

TEST_F(AreaModelTest, FastTrackFrequencyCloseToHoplite)
{
    // Key paper claim: FastTrack runs at "almost the same" clock.
    const double hop = area.frequencyMhz(
        NocConfig::hoplite(8).toSpec(256));
    const double ft = area.frequencyMhz(
        NocConfig::fastTrack(8, 2, 1).toSpec(256));
    EXPECT_GT(ft, hop * 0.85);
    EXPECT_LE(ft, hop);
}

TEST_F(AreaModelTest, SpecDescribeNames)
{
    EXPECT_EQ(NocConfig::hoplite(8).describe(), "Hoplite 8x8");
    EXPECT_EQ(NocConfig::fastTrack(8, 2, 1).describe(), "FT(64,2,1)");
    EXPECT_EQ(NocConfig::fastTrack(8, 2, 2,
                                   NocVariant::ftInject).describe(),
              "FTlite(64,2,2)");
    EXPECT_EQ(NocConfig::hoplite(8).toSpec(256, 3).describe(),
              "Hoplite-3x 8x8");
}

} // namespace
} // namespace fasttrack
