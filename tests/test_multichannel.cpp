/**
 * @file
 * Multi-channel Hoplite tests: the paper's fair-comparison rules
 * (single injection, single delivery per client per cycle), offer
 * retargeting, and aggregate statistics.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "noc/multichannel.hpp"

namespace fasttrack {
namespace {

Packet
pkt(NodeId src, NodeId dst, std::uint64_t id)
{
    Packet p;
    p.id = id;
    p.src = src;
    p.dst = dst;
    return p;
}

TEST(MultiChannel, SingleDeliveryPerNodePerCycle)
{
    MultiChannelNoc noc(NocConfig::hoplite(4), 3);
    std::map<Cycle, std::map<NodeId, int>> deliveries;
    noc.setDeliverCallback([&](const Packet &p, Cycle c) {
        ++deliveries[c][p.dst];
    });

    // Many sources hammer node 0 so several channels would deliver
    // simultaneously without the exit arbiter.
    Rng rng(1);
    std::uint64_t id = 0;
    for (int cycle = 0; cycle < 400; ++cycle) {
        for (NodeId src = 1; src < 16; ++src) {
            if (!noc.hasPendingOffer(src))
                noc.offer(pkt(src, 0, ++id));
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(100000));

    std::uint64_t total = 0;
    for (const auto &[cycle, per_node] : deliveries) {
        for (const auto &[node, count] : per_node) {
            EXPECT_LE(count, 1)
                << "node " << node << " cycle " << cycle;
            total += count;
        }
    }
    EXPECT_EQ(total, id);
}

TEST(MultiChannel, AllPacketsDeliveredOnce)
{
    MultiChannelNoc noc(NocConfig::hoplite(4), 2);
    std::map<std::uint64_t, int> seen;
    noc.setDeliverCallback(
        [&](const Packet &p, Cycle) { ++seen[p.id]; });
    Rng rng(2);
    std::uint64_t id = 0;
    for (int cycle = 0; cycle < 300; ++cycle) {
        for (NodeId src = 0; src < 16; ++src) {
            if (!noc.hasPendingOffer(src)) {
                NodeId dst = static_cast<NodeId>(rng.nextBelow(15));
                if (dst >= src)
                    ++dst;
                noc.offer(pkt(src, dst, ++id));
            }
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(100000));
    EXPECT_EQ(seen.size(), id);
    for (const auto &[packet_id, count] : seen)
        EXPECT_EQ(count, 1) << packet_id;
}

TEST(MultiChannel, OffersRetargetAcrossChannels)
{
    // With retargeting, a multi-channel NoC should accept strictly
    // more offered load than a single channel under saturation.
    auto throughput = [](std::uint32_t channels) {
        MultiChannelNoc noc(NocConfig::hoplite(4), channels);
        Rng rng(3);
        std::uint64_t id = 0;
        for (int cycle = 0; cycle < 1000; ++cycle) {
            for (NodeId src = 0; src < 16; ++src) {
                if (!noc.hasPendingOffer(src)) {
                    NodeId dst =
                        static_cast<NodeId>(rng.nextBelow(15));
                    if (dst >= src)
                        ++dst;
                    noc.offer(pkt(src, dst, ++id));
                }
            }
            noc.step();
        }
        return noc.aggregateStats().delivered;
    };
    EXPECT_GT(throughput(3), throughput(1) * 3 / 2);
}

TEST(MultiChannel, ExitGateTracksActualDeliveryChoice)
{
    // Regression for the gate/arbitration alignment: the shared-exit
    // gate is consulted inside the routing core, at the moment a
    // specific packet attempts the exit, so the decision always
    // concerns the packet arbitration actually chose. FastTrack
    // channels exercise both exit taps (the short S_SH exit and the
    // express S_EX tap), where a pre-picked gate candidate could
    // diverge from the delivered packet.
    MultiChannelNoc noc(NocConfig::fastTrack(8, 2, 1), 2);
    std::map<Cycle, std::map<NodeId, int>> deliveries;
    noc.setDeliverCallback([&](const Packet &p, Cycle c) {
        ++deliveries[c][p.dst];
    });

    // Two hot destinations hammered from every other node: plenty of
    // cycles where both channels want the same exit.
    const NodeId hot[2] = {0, 36};
    std::uint64_t id = 0;
    for (int cycle = 0; cycle < 600; ++cycle) {
        for (NodeId src = 0; src < 64; ++src) {
            if (src == hot[0] || src == hot[1])
                continue;
            if (!noc.hasPendingOffer(src))
                noc.offer(pkt(src, hot[src % 2], ++id));
        }
        noc.step();
    }
    ASSERT_TRUE(noc.drain(200000));

    std::uint64_t total = 0;
    for (const auto &[cycle, per_node] : deliveries) {
        for (const auto &[node, count] : per_node) {
            EXPECT_LE(count, 1)
                << "node " << node << " cycle " << cycle;
            total += count;
        }
    }
    // Conservation: a gated-off winner deflects and retries, it is
    // never dropped.
    EXPECT_EQ(total, id);
    // The gate must actually have bitten under this contention.
    EXPECT_GT(noc.aggregateStats().exitBlocked, 0u);
}

TEST(MultiChannel, AggregateStatsSumChannels)
{
    MultiChannelNoc noc(NocConfig::hoplite(4), 2);
    noc.offer(pkt(0, 5, 1));
    noc.offer(pkt(3, 9, 2));
    ASSERT_TRUE(noc.drain(1000));
    const NocStats agg = noc.aggregateStats();
    EXPECT_EQ(agg.delivered, 2u);
    EXPECT_EQ(agg.delivered, noc.channel(0).stats().delivered +
                                 noc.channel(1).stats().delivered);
}

TEST(MultiChannel, SelfTrafficBypasses)
{
    MultiChannelNoc noc(NocConfig::hoplite(4), 2);
    std::uint64_t delivered = 0;
    noc.setDeliverCallback(
        [&](const Packet &, Cycle) { ++delivered; });
    noc.offer(pkt(7, 7, 1));
    EXPECT_EQ(delivered, 1u);
    EXPECT_TRUE(noc.quiescent());
}

TEST(MultiChannel, LinkCountScalesWithChannels)
{
    MultiChannelNoc two(NocConfig::hoplite(8), 2);
    MultiChannelNoc three(NocConfig::hoplite(8), 3);
    EXPECT_EQ(two.linkCount() * 3, three.linkCount() * 2);
}

TEST(MultiChannel, MakeNocFactory)
{
    auto single = makeNoc(NocConfig::hoplite(4), 1);
    auto multi = makeNoc(NocConfig::hoplite(4), 3);
    EXPECT_EQ(single->channelCount(), 1u);
    EXPECT_EQ(multi->channelCount(), 3u);
    EXPECT_EQ(multi->linkCount(), single->linkCount() * 3);
}

} // namespace
} // namespace fasttrack
