/**
 * @file
 * Parameterized zero-load sweep: for a grid of (N, D, R, variant,
 * link-stage) configurations, every source/destination pair routed in
 * isolation must match the topology's minimal-hop golden model (full
 * variant) or the lane-partition golden model (inject variant), with
 * latency scaled by the per-lane link stages.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "noc/network.hpp"

namespace fasttrack {
namespace {

/** (n, d, r, injectVariant, shortStages, expressStages). */
using Param = std::tuple<int, int, int, bool, int, int>;

class ZeroLoadSweep : public ::testing::TestWithParam<Param>
{};

/** Golden zero-load hop split for the inject variant: express only
 *  when the whole trip is express-eligible from the source. */
std::pair<std::uint32_t, std::uint32_t>
injectGoldenHops(const Topology &topo, Coord src, Coord dst)
{
    const std::uint32_t n = topo.n();
    const std::uint32_t d = topo.d();
    const std::uint32_t dx = ringDistance(src.x, dst.x, n);
    const std::uint32_t dy = ringDistance(src.y, dst.y, n);
    const bool ok_x =
        dx == 0 || (topo.hasExpressX(src.x) && dx % d == 0);
    const bool express = topo.hasExpressY(src.y) && ok_x &&
                         dy % d == 0 && dx % d == 0;
    if (express)
        return {0, dx / d + dy / d};
    return {dx + dy, 0};
}

TEST_P(ZeroLoadSweep, EveryPairTakesTheGoldenPath)
{
    const auto [n_i, d_i, r_i, inject, ss, es] = GetParam();
    const auto n = static_cast<std::uint32_t>(n_i);
    NocConfig cfg =
        d_i == 0 ? NocConfig::hoplite(n)
                 : NocConfig::fastTrack(
                       n, d_i, r_i,
                       inject ? NocVariant::ftInject
                              : NocVariant::ftFull);
    cfg.shortLinkStages = static_cast<std::uint32_t>(ss);
    cfg.expressLinkStages = static_cast<std::uint32_t>(es);
    Network noc(cfg);

    std::optional<Packet> got;
    Cycle when = 0;
    noc.setDeliverCallback([&](const Packet &p, Cycle c) {
        got = p;
        when = c;
    });

    std::uint64_t id = 0;
    for (NodeId s = 0; s < cfg.pes(); ++s) {
        for (NodeId t = 0; t < cfg.pes(); ++t) {
            if (s == t)
                continue;
            got.reset();
            Packet p;
            p.id = ++id;
            p.src = s;
            p.dst = t;
            p.created = noc.now();
            noc.offer(p);
            ASSERT_TRUE(noc.drain(100000)) << s << "->" << t;
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(got->deflections, 0u) << s << "->" << t;

            const Coord sc = toCoord(s, n);
            const Coord tc = toCoord(t, n);
            if (cfg.variant == NocVariant::ftInject) {
                const auto [sh, ex] =
                    injectGoldenHops(noc.topology(), sc, tc);
                EXPECT_EQ(got->shortHops, sh) << s << "->" << t;
                EXPECT_EQ(got->expressHops, ex) << s << "->" << t;
            } else {
                EXPECT_EQ(got->totalHops(),
                          noc.topology().minimalHops(sc, tc))
                    << s << "->" << t;
            }
            // Latency = sum of per-hop link latencies.
            const Cycle expect =
                static_cast<Cycle>(got->shortHops) * (1 + ss) +
                static_cast<Cycle>(got->expressHops) * (1 + es);
            EXPECT_EQ(when - p.created, expect) << s << "->" << t;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZeroLoadSweep,
    ::testing::Values(
        Param{5, 0, 1, false, 0, 0},  // odd-size Hoplite
        Param{6, 2, 1, false, 0, 0},  // D | N
        Param{8, 3, 1, false, 0, 0},  // D does not divide N
        Param{8, 4, 2, false, 0, 0},  // depopulated
        Param{6, 3, 3, false, 0, 0},  // fully depopulated
        Param{8, 2, 1, true, 0, 0},   // inject variant
        Param{8, 4, 2, true, 0, 0},   // inject, depopulated
        Param{4, 2, 1, false, 1, 2},  // pipelined links
        Param{4, 0, 1, false, 2, 0}   // pipelined Hoplite
        ));

} // namespace
} // namespace fasttrack
