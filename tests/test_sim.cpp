/**
 * @file
 * Integration tests of the simulation drivers, including the paper's
 * headline comparisons as regression checks.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "workloads/dataflow.hpp"
#include "workloads/spmv.hpp"

namespace fasttrack {
namespace {

TEST(Sim, HeadlineFastTrackBeatsHopliteOnRandom)
{
    // Paper abstract: 2.5x throughput on statistical workloads. Allow
    // a generous band but require a clear win.
    const SynthResult ft = saturationRun(
        {"ft", NocConfig::fastTrack(8, 2, 1), 1},
        TrafficPattern::random, 512);
    const SynthResult hop = saturationRun(
        {"hop", NocConfig::hoplite(8), 1}, TrafficPattern::random,
        512);
    ASSERT_TRUE(ft.completed && hop.completed);
    const double ratio = ft.sustainedRate() / hop.sustainedRate();
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 4.0);
}

TEST(Sim, DepopulatedSitsBetween)
{
    const SynthResult full = saturationRun(
        {"", NocConfig::fastTrack(8, 2, 1), 1},
        TrafficPattern::random, 256);
    const SynthResult depop = saturationRun(
        {"", NocConfig::fastTrack(8, 2, 2), 1},
        TrafficPattern::random, 256);
    const SynthResult hop = saturationRun(
        {"", NocConfig::hoplite(8), 1}, TrafficPattern::random, 256);
    EXPECT_GT(full.sustainedRate(), depop.sustainedRate());
    EXPECT_GT(depop.sustainedRate(), hop.sustainedRate());
}

TEST(Sim, NoWinBelowTenPercentInjection)
{
    // Paper: performance wins vanish at injection rates below 10%.
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.05;
    workload.packetsPerPe = 256;
    const SynthResult ft =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 1, workload);
    const SynthResult hop =
        runSynthetic(NocConfig::hoplite(8), 1, workload);
    EXPECT_NEAR(ft.sustainedRate(), hop.sustainedRate(),
                hop.sustainedRate() * 0.05);
}

TEST(Sim, FastTrackCutsZeroLoadLatency)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.02;
    workload.packetsPerPe = 128;
    const SynthResult ft =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 1, workload);
    const SynthResult hop =
        runSynthetic(NocConfig::hoplite(8), 1, workload);
    EXPECT_LT(ft.avgLatency(), hop.avgLatency() * 0.75);
}

TEST(Sim, IsoWiringFastTrackBeatsHoplite3x)
{
    // Fig 13/14: FT(64,2,1) vs Hoplite-3x at identical ring tracks.
    const SynthResult ft = saturationRun(
        {"", NocConfig::fastTrack(8, 2, 1), 1},
        TrafficPattern::random, 512);
    const SynthResult h3 = saturationRun(
        {"", NocConfig::hoplite(8), 3}, TrafficPattern::random, 512);
    EXPECT_GT(ft.sustainedRate(), h3.sustainedRate());
}

TEST(Sim, WorstCaseLatencyShrinksWithExpress)
{
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.08;
    workload.packetsPerPe = 1024;
    const SynthResult ft =
        runSynthetic(NocConfig::fastTrack(8, 2, 1), 1, workload);
    const SynthResult hop =
        runSynthetic(NocConfig::hoplite(8), 1, workload);
    EXPECT_LT(ft.worstLatency() * 2, hop.worstLatency());
}

TEST(Sim, VaryDHasInteriorOptimum)
{
    // Fig 17: D=2 or 3 beats both D=1 and D=4 on an 8x8 at 50%.
    auto rate = [](std::uint32_t d) {
        SyntheticWorkload workload;
        workload.pattern = TrafficPattern::random;
        workload.injectionRate = 0.5;
        workload.packetsPerPe = 512;
        return runSynthetic(NocConfig::fastTrack(8, d, 1), 1,
                            workload).sustainedRate();
    };
    const double d1 = rate(1), d2 = rate(2), d4 = rate(4);
    EXPECT_GT(d2, d1);
    EXPECT_GT(d2, d4);
}

TEST(Sim, TraceRunnerProducesConsistentResults)
{
    LuDagParams params{"t", 800, 8.0, 1.8, 3, 13};
    const DataflowDag dag = sparseLuDag(params);
    const Trace trace = dataflowTrace(dag, 4);
    const TraceResult a = runTrace(NocConfig::hoplite(4), 1, trace);
    const TraceResult b = runTrace(NocConfig::hoplite(4), 1, trace);
    EXPECT_EQ(a.completion, b.completion); // deterministic
    EXPECT_EQ(a.stats.delivered + a.stats.selfDelivered,
              trace.messages.size());

    const TraceResult ft =
        runTrace(NocConfig::fastTrack(4, 2, 1), 1, trace);
    EXPECT_LT(ft.completion, a.completion); // express helps
}

TEST(Sim, SpmvTraceFasterOnFastTrack)
{
    MatrixParams params;
    params.rows = 2000;
    params.localFraction = 0.3;
    const SparseMatrix m = generateMatrix(params);
    const Trace trace = spmvTrace(m, 8);
    const TraceResult hop = runTrace(NocConfig::hoplite(8), 1, trace);
    const TraceResult ft =
        runTrace(NocConfig::fastTrack(8, 2, 1), 1, trace);
    EXPECT_LT(ft.completion, hop.completion);
}

TEST(Sim, LineupsAreWellFormed)
{
    EXPECT_EQ(standardLineup(8).size(), 3u);
    EXPECT_EQ(isoWiringLineup(8).size(), 4u);
    for (const auto &nut : isoWiringLineup(8))
        nut.config.validate();
    EXPECT_FALSE(injectionRateGrid().empty());
}

TEST(Sim, IncompleteRunReportsHonestly)
{
    // A guard of 10 cycles cannot finish 64 packets/PE.
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 64;
    const SynthResult res =
        runSynthetic(NocConfig::hoplite(8), 1, workload, 10);
    EXPECT_FALSE(res.completed);
    EXPECT_EQ(res.cycles, 10u);
}

} // namespace
} // namespace fasttrack
