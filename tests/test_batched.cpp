/**
 * @file
 * Bit-identity and dispatch-policy tests for the batched lockstep
 * engine (noc/batched_engine.hpp, sim/batch_runner.hpp).
 *
 * The determinism contract under test: every lane of a
 * BatchedEngine + BatchedSyntheticInjector run must produce NocStats
 * bit-identical (FNV golden hash) to a solo Network +
 * SyntheticInjector run of the same workload, for every topology
 * variant, traffic pattern, injection rate, and termination mode
 * (drained, zero budget, cycle-guard timeout). On top of that, the
 * sim-layer dispatcher (batchedCachedRuns) must be invisible: same
 * results in the same order whether points run batched, scalar, or
 * from a warm sweep cache.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "noc/batched_engine.hpp"
#include "noc/network.hpp"
#include "sim/batch_runner.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "sim/sweep_cache.hpp"
#include "traffic/batched_injector.hpp"
#include "traffic/injector.hpp"

#include "golden_hash.hpp"

namespace fasttrack {
namespace {

/** Restore process-global batching/cache knobs on scope exit so
 *  tests cannot leak configuration into each other. */
class KnobGuard
{
  public:
    KnobGuard()
        : width_(defaultBatchWidth()), cache_(sweepCacheEnabled())
    {
    }
    ~KnobGuard()
    {
        setDefaultBatchWidth(width_);
        setSweepCacheEnabled(cache_);
    }

  private:
    std::uint32_t width_;
    bool cache_;
};

SyntheticWorkload
makeWorkload(TrafficPattern pattern, double rate,
             std::uint32_t packets, std::uint64_t seed)
{
    SyntheticWorkload w;
    w.pattern = pattern;
    w.injectionRate = rate;
    w.packetsPerPe = packets;
    w.seed = seed;
    return w;
}

void
expectLaneIdentity(const NocConfig &config,
                   const std::vector<SyntheticWorkload> &workloads,
                   Cycle max_cycles)
{
    const std::vector<SynthResult> batched =
        runSyntheticBatch(config, workloads, max_cycles);
    ASSERT_EQ(batched.size(), workloads.size());
    for (std::size_t lane = 0; lane < workloads.size(); ++lane) {
        const SynthResult solo =
            runSynthetic(config, 1, workloads[lane], max_cycles);
        EXPECT_EQ(hashStats(batched[lane].stats),
                  hashStats(solo.stats))
            << "lane " << lane << " stats diverge from solo Network";
        EXPECT_EQ(batched[lane].cycles, solo.cycles)
            << "lane " << lane;
        EXPECT_EQ(batched[lane].completed, solo.completed)
            << "lane " << lane;
        EXPECT_EQ(batched[lane].pes, solo.pes) << "lane " << lane;
        EXPECT_DOUBLE_EQ(batched[lane].offeredRate,
                         solo.offeredRate)
            << "lane " << lane;
    }
}

TEST(BatchedEngine, LanesBitIdenticalToSoloFastTrack)
{
    // Mixed rates, patterns and seeds across eight lanes: lanes must
    // not perturb each other even when they drain at very different
    // cycles.
    std::vector<SyntheticWorkload> ws;
    ws.push_back(makeWorkload(TrafficPattern::random, 0.05, 40, 21));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.35, 80, 22));
    ws.push_back(makeWorkload(TrafficPattern::transpose, 0.2, 60, 23));
    ws.push_back(makeWorkload(TrafficPattern::local, 0.15, 50, 24));
    ws.push_back(makeWorkload(TrafficPattern::random, 1.0, 30, 25));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.35, 80, 22));
    ws.push_back(makeWorkload(TrafficPattern::transpose, 0.4, 70, 27));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.01, 10, 28));
    expectLaneIdentity(NocConfig::fastTrack(8, 2, 1), ws,
                       kDefaultMaxCycles);
}

TEST(BatchedEngine, LanesBitIdenticalToSoloHoplite)
{
    std::vector<SyntheticWorkload> ws;
    for (std::uint64_t seed = 31; seed < 35; ++seed)
        ws.push_back(
            makeWorkload(TrafficPattern::random, 0.08, 64, seed));
    expectLaneIdentity(NocConfig::hoplite(8), ws, kDefaultMaxCycles);
}

TEST(BatchedEngine, LanesBitIdenticalToSoloInjectVariant)
{
    std::vector<SyntheticWorkload> ws;
    ws.push_back(makeWorkload(TrafficPattern::random, 0.3, 64, 41));
    ws.push_back(makeWorkload(TrafficPattern::transpose, 0.3, 64, 42));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.6, 48, 43));
    expectLaneIdentity(
        NocConfig::fastTrack(8, 2, 2, NocVariant::ftInject), ws,
        kDefaultMaxCycles);
}

TEST(BatchedEngine, ZeroBudgetLaneFinishesImmediately)
{
    // A zero-budget lane must report a completed, empty run without
    // disturbing its neighbours.
    std::vector<SyntheticWorkload> ws;
    ws.push_back(makeWorkload(TrafficPattern::random, 0.5, 0, 51));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.5, 64, 52));
    const NocConfig config = NocConfig::fastTrack(8, 2, 1);
    const auto batched =
        runSyntheticBatch(config, ws, kDefaultMaxCycles);
    EXPECT_TRUE(batched[0].completed);
    EXPECT_EQ(batched[0].cycles, 0u);
    EXPECT_EQ(batched[0].stats.delivered, 0u);
    expectLaneIdentity(config, ws, kDefaultMaxCycles);
}

TEST(BatchedEngine, CycleGuardLaneMatchesSolo)
{
    // Endless generation against a tiny guard: every lane times out
    // on the guard, exactly as the solo engine does.
    std::vector<SyntheticWorkload> ws;
    ws.push_back(makeWorkload(TrafficPattern::random, 1.0,
                              0xffffffffu, 61));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.4,
                              0xffffffffu, 62));
    ws.push_back(makeWorkload(TrafficPattern::random, 0.02, 64, 63));
    const NocConfig config = NocConfig::fastTrack(8, 2, 1);
    const Cycle guard = 600;
    const auto batched = runSyntheticBatch(config, ws, guard);
    EXPECT_FALSE(batched[0].completed);
    EXPECT_EQ(batched[0].cycles, guard);
    expectLaneIdentity(config, ws, guard);
}

TEST(BatchRunner, CachedRunsMatchScalarAndCountDispatch)
{
    KnobGuard guard;
    setSweepCacheEnabled(false); // force real runs on both paths

    const NocConfig config = NocConfig::fastTrack(8, 2, 1);
    std::vector<SyntheticWorkload> ws;
    for (std::uint64_t seed = 71; seed < 81; ++seed)
        ws.push_back(
            makeWorkload(TrafficPattern::random, 0.2, 48, seed));

    setDefaultBatchWidth(1); // scalar reference
    const auto scalar = batchedCachedRuns(config, 1, ws);

    const BatchRunStats before = batchRunStats();
    setDefaultBatchWidth(4); // 10 points -> 2 groups of 4 + tail of 2
    const auto batched = batchedCachedRuns(config, 1, ws);
    const BatchRunStats after = batchRunStats();

    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
        EXPECT_EQ(hashStats(batched[i].stats),
                  hashStats(scalar[i].stats))
            << "point " << i;
        EXPECT_EQ(batched[i].cycles, scalar[i].cycles);
    }
    EXPECT_EQ(after.batchedGroups - before.batchedGroups, 2u);
    EXPECT_EQ(after.batchedLanes - before.batchedLanes, 8u);
    // The 2-point tail must fall back to the scalar engine rather
    // than pad the batch with dead replicas.
    EXPECT_EQ(after.scalarRuns - before.scalarRuns, 2u);
}

TEST(BatchRunner, SmallGroupsFallBackToScalar)
{
    KnobGuard guard;
    setSweepCacheEnabled(false);

    const NocConfig config = NocConfig::fastTrack(8, 2, 1);
    std::vector<SyntheticWorkload> ws;
    for (std::uint64_t seed = 91; seed < 94; ++seed)
        ws.push_back(
            makeWorkload(TrafficPattern::random, 0.2, 32, seed));

    const BatchRunStats before = batchRunStats();
    setDefaultBatchWidth(8); // 3 points < width -> all scalar
    batchedCachedRuns(config, 1, ws);
    const BatchRunStats after = batchRunStats();
    EXPECT_EQ(after.batchedGroups, before.batchedGroups);
    EXPECT_EQ(after.scalarRuns - before.scalarRuns, 3u);
}

TEST(BatchRunner, WarmReplayIsIdentical)
{
    KnobGuard guard;
    setSweepCacheEnabled(true);

    const NocConfig config = NocConfig::fastTrack(8, 2, 1);
    // Unique max_cycles isolates these keys from every other test
    // sharing the process-wide cache.
    const Cycle max_cycles = 123457;
    std::vector<SyntheticWorkload> ws;
    for (std::uint64_t seed = 101; seed < 109; ++seed)
        ws.push_back(
            makeWorkload(TrafficPattern::random, 0.25, 40, seed));

    setDefaultBatchWidth(4);
    const auto cold = batchedCachedRuns(config, 1, ws, max_cycles);

    // Second pass: every point is a cache hit; no new dispatches.
    const BatchRunStats before = batchRunStats();
    const auto warm = batchedCachedRuns(config, 1, ws, max_cycles);
    const BatchRunStats after = batchRunStats();
    EXPECT_EQ(after.batchedGroups, before.batchedGroups);
    EXPECT_EQ(after.batchedLanes, before.batchedLanes);
    EXPECT_EQ(after.scalarRuns, before.scalarRuns);

    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(hashStats(warm[i].stats), hashStats(cold[i].stats))
            << "point " << i;
        EXPECT_EQ(warm[i].cycles, cold[i].cycles);
        EXPECT_EQ(warm[i].completed, cold[i].completed);
    }

    // A batch-written entry must replay identically through the
    // scalar cached path too (same key schema).
    setDefaultBatchWidth(1);
    for (std::size_t i = 0; i < ws.size(); ++i) {
        const SynthResult via_scalar =
            cachedRunSynthetic(config, 1, ws[i], max_cycles);
        EXPECT_EQ(hashStats(via_scalar.stats),
                  hashStats(cold[i].stats))
            << "point " << i;
    }
}

TEST(BatchRunner, ExperimentsIdenticalAcrossBatchWidths)
{
    KnobGuard guard;
    setSweepCacheEnabled(false); // compare engines, not the cache

    NocUnderTest nut{"FT(8,2,1)", NocConfig::fastTrack(8, 2, 1), 1};
    const std::vector<std::uint64_t> seeds = {201, 202, 203, 204,
                                              205, 206, 207, 208};
    const std::vector<double> rates = {0.05, 0.1, 0.15, 0.2,
                                       0.25, 0.3, 0.35, 0.4};

    setDefaultBatchWidth(1);
    const RepeatedResult rep_scalar = repeatedRuns(
        nut, TrafficPattern::random, 0.2, 48, seeds, 200000);
    const auto sweep_scalar =
        injectionSweep(nut, TrafficPattern::random, rates, 48, 7);

    setDefaultBatchWidth(8);
    const RepeatedResult rep_batched = repeatedRuns(
        nut, TrafficPattern::random, 0.2, 48, seeds, 200000);
    const auto sweep_batched =
        injectionSweep(nut, TrafficPattern::random, rates, 48, 7);

    EXPECT_DOUBLE_EQ(rep_batched.rate.mean(), rep_scalar.rate.mean());
    EXPECT_DOUBLE_EQ(rep_batched.avgLatency.mean(),
                     rep_scalar.avgLatency.mean());
    EXPECT_DOUBLE_EQ(rep_batched.worstLatency.max(),
                     rep_scalar.worstLatency.max());
    EXPECT_EQ(rep_batched.completedRuns, rep_scalar.completedRuns);

    ASSERT_EQ(sweep_batched.size(), sweep_scalar.size());
    for (std::size_t i = 0; i < sweep_scalar.size(); ++i) {
        EXPECT_DOUBLE_EQ(sweep_batched[i].rate, sweep_scalar[i].rate);
        EXPECT_EQ(hashStats(sweep_batched[i].result.stats),
                  hashStats(sweep_scalar[i].result.stats))
            << "rate point " << i;
    }
}

TEST(BatchedEngine, RejectsBadLaneCounts)
{
    const NocConfig config = NocConfig::fastTrack(4, 2, 1);
    EXPECT_DEATH(BatchedEngine(config, 0), "lane");
    EXPECT_DEATH(BatchedEngine(config,
                               BatchedEngine::kMaxLanes + 1),
                 "lane");
}

} // namespace
} // namespace fasttrack
