/**
 * @file
 * Telemetry subsystem tests: ring semantics under overflow, the
 * no-perturbation guarantee (identical stats with and without a sink),
 * registry-vs-NocStats agreement on a pinned config, multi-threaded
 * trace export, exporter output structure, the port-name pinning
 * against noc/routing.hpp, and the checker cross-validation.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "check/invariants.hpp"
#include "common/parallel.hpp"
#include "noc/routing.hpp"
#include "sim/simulation.hpp"
#include "sim/telemetry_session.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/ring_buffer.hpp"

namespace fasttrack {
namespace {

namespace fs = std::filesystem;

SyntheticWorkload
pinnedWorkload()
{
    SyntheticWorkload w;
    w.pattern = TrafficPattern::random;
    w.injectionRate = 0.3;
    w.packetsPerPe = 64;
    w.seed = 7;
    return w;
}

/** Fresh per-test artifact directory under the gtest temp root. */
fs::path
artifactDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("ft_telemetry_" + name);
    fs::remove_all(dir);
    return dir;
}

TEST(SpscRing, WrapsAroundAndPreservesFifoOrder)
{
    telemetry::SpscRing<telemetry::TraceEvent> ring(8);
    ASSERT_EQ(ring.capacity(), 8u);
    std::vector<telemetry::TraceEvent> out;

    // Several fill/drain rounds exercise index wraparound far past
    // one capacity's worth of slots.
    std::uint64_t next = 0;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 6; ++i) {
            telemetry::TraceEvent e;
            e.packet = next++;
            ASSERT_TRUE(ring.tryPush(e));
        }
        out.clear();
        ASSERT_EQ(ring.drain(out), 6u);
        for (std::size_t i = 1; i < out.size(); ++i)
            EXPECT_EQ(out[i].packet, out[i - 1].packet + 1);
    }
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRing, CountsDropsExactlyUnderForcedOverflow)
{
    telemetry::SpscRing<telemetry::TraceEvent> ring(8);
    telemetry::TraceEvent e;
    for (std::uint64_t i = 0; i < 8; ++i) {
        e.packet = i;
        ASSERT_TRUE(ring.tryPush(e));
    }
    for (std::uint64_t i = 8; i < 21; ++i) {
        e.packet = i;
        EXPECT_FALSE(ring.tryPush(e)); // full: drop-newest
    }
    EXPECT_EQ(ring.dropped(), 13u);
    EXPECT_EQ(ring.size(), 8u);

    // The buffered (oldest) records survive intact.
    std::vector<telemetry::TraceEvent> out;
    ASSERT_EQ(ring.drain(out), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].packet, i);

    // After a drain the producer can push again; drops don't reset.
    EXPECT_TRUE(ring.tryPush(e));
    EXPECT_EQ(ring.dropped(), 13u);
}

TEST(Telemetry, SinkDoesNotPerturbSimulationResults)
{
    const NocConfig cfg = NocConfig::fastTrack(8, 2, 2);
    const SyntheticWorkload w = pinnedWorkload();

    const SynthResult plain = runSynthetic(cfg, 1, w);

    SynthResult observed;
    {
        TelemetrySession session{telemetry::TelemetryConfig{}};
        const SimConfig sim{.telemetry = &session};
        observed = runSynthetic(cfg, 1, w, sim);
    }

    // Bit-identical simulation outcome: telemetry observes, never
    // steers (the golden-hash test pins the sink-free path; this pins
    // the installed-sink instantiation against it).
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_EQ(plain.stats.injected, observed.stats.injected);
    EXPECT_EQ(plain.stats.delivered, observed.stats.delivered);
    EXPECT_EQ(plain.stats.shortHopTraversals,
              observed.stats.shortHopTraversals);
    EXPECT_EQ(plain.stats.expressHopTraversals,
              observed.stats.expressHopTraversals);
    EXPECT_EQ(plain.stats.deflectionsByPort,
              observed.stats.deflectionsByPort);
    EXPECT_EQ(plain.stats.totalLatency.bins(),
              observed.stats.totalLatency.bins());
    EXPECT_EQ(plain.stats.networkLatency.bins(),
              observed.stats.networkLatency.bins());
}

TEST(Telemetry, RegistryAgreesWithNocStatsOnPinnedConfig)
{
    // The bench_fig18 refactor sources link usage from the registry;
    // this pins the two accounting paths (sink event counters vs the
    // engine's NocStats) to each other on a fixed config.
    TelemetrySession session{telemetry::TelemetryConfig{}};
    const SimConfig sim{.telemetry = &session};
    const SynthResult r =
        runSynthetic(NocConfig::fastTrack(8, 2, 2), 1, pinnedWorkload(),
                     sim);

    const telemetry::MetricsRegistry &m = session.metrics();
    EXPECT_EQ(m.counterValue("events.inject"), r.stats.injected);
    EXPECT_EQ(m.counterValue("events.eject"), r.stats.delivered);
    EXPECT_EQ(m.counterValue("events.route"),
              r.stats.shortHopTraversals);
    EXPECT_EQ(m.counterValue("events.express_hop"),
              r.stats.expressHopTraversals);
    EXPECT_EQ(m.counterValue("net.injected"), r.stats.injected);
    EXPECT_EQ(m.counterValue("net.delivered"), r.stats.delivered);

    // The sink's per-link counters sum to the same traversal total.
    std::uint64_t link_total = 0;
    for (std::uint64_t c : session.sink().totalLinkCounts())
        link_total += c;
    EXPECT_EQ(link_total, r.stats.shortHopTraversals +
                              r.stats.expressHopTraversals);
}

TEST(Telemetry, MultiThreadedSweepWritesOneTraceFilePerThread)
{
    const fs::path dir = artifactDir("sweep");
    std::vector<std::string> traces;
    {
        telemetry::TelemetryConfig tcfg;
        tcfg.dir = dir.string();
        tcfg.ringCapacity = 1 << 12;
        TelemetrySession session(std::move(tcfg));

        // Several independent runs across 2 workers, all emitting
        // into the one installed sink (run under TSan in CI).
        const std::vector<int> seeds{1, 2, 3, 4};
        const SimConfig sim{.telemetry = &session};
        const auto delivered = parallelMap(
            seeds,
            [&](int seed) {
                SyntheticWorkload w = pinnedWorkload();
                w.seed = static_cast<std::uint64_t>(seed);
                return runSynthetic(NocConfig::fastTrack(4, 2, 1), 1, w,
                                    sim)
                    .stats.delivered;
            },
            2);
        for (std::uint64_t d : delivered)
            EXPECT_GT(d, 0u);

        const std::size_t threads = session.sink().threadCount();
        EXPECT_GE(threads, 1u);
        traces = session.finish();
        std::size_t trace_files = 0;
        for (const std::string &p : traces)
            if (p.find("trace_t") != std::string::npos)
                ++trace_files;
        EXPECT_EQ(trace_files, threads);
    }
    for (const std::string &p : traces)
        EXPECT_TRUE(fs::exists(p)) << p;
}

TEST(Telemetry, ChromeTraceExportIsStructurallyValidJson)
{
    std::vector<telemetry::TraceEvent> events;
    telemetry::TraceEvent e;
    e.cycle = 5;
    e.packet = 9;
    e.node = 3;
    e.kind = telemetry::EventKind::route;
    e.port = static_cast<std::uint8_t>(OutPort::eSh);
    events.push_back(e);
    e.kind = telemetry::EventKind::eject;
    e.port = telemetry::kNoPort;
    e.aux = 17;
    events.push_back(e);

    std::ostringstream os;
    telemetry::writeChromeTrace(os, events, 0, 4);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"route\""), std::string::npos);
    EXPECT_NE(json.find("\"port\":\"eSh\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"eject\""), std::string::npos);
    EXPECT_NE(json.find("\"aux\":17"), std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\":4"), std::string::npos);
    // Balanced braces/brackets outside strings = parseable structure
    // (CI additionally json.load()s a real exported file).
    int depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Telemetry, HeatmapCsvCoversEveryLinkOfTheTorus)
{
    TelemetrySession session{telemetry::TelemetryConfig{}};
    const SimConfig sim{.telemetry = &session};
    runSynthetic(NocConfig::fastTrack(4, 2, 1), 1, pinnedWorkload(),
                 sim);

    std::ostringstream os;
    telemetry::writeLinkHeatmapCsv(os, session.sink().totalLinkCounts(),
                                   4);
    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line, "node,x,y,port,traversals");
    std::size_t rows = 0;
    std::uint64_t total = 0;
    while (std::getline(is, line)) {
        ++rows;
        total += std::stoull(line.substr(line.rfind(',') + 1));
    }
    EXPECT_EQ(rows, 4u * 4u * 4u); // 16 routers x 4 output links
    EXPECT_GT(total, 0u);
}

TEST(Telemetry, PortNamesPinnedToRoutingEnums)
{
    // events.hpp ships raw port bytes; the exporter name tables must
    // track noc/routing.hpp's enum order.
    EXPECT_STREQ(telemetry::outPortName(
                     static_cast<std::uint8_t>(OutPort::eEx)), "eEx");
    EXPECT_STREQ(telemetry::outPortName(
                     static_cast<std::uint8_t>(OutPort::eSh)), "eSh");
    EXPECT_STREQ(telemetry::outPortName(
                     static_cast<std::uint8_t>(OutPort::sEx)), "sEx");
    EXPECT_STREQ(telemetry::outPortName(
                     static_cast<std::uint8_t>(OutPort::sSh)), "sSh");
    EXPECT_STREQ(telemetry::outPortName(telemetry::kNoPort), "none");
    EXPECT_STREQ(telemetry::inPortName(
                     static_cast<std::uint8_t>(InPort::wEx)), "wEx");
    EXPECT_STREQ(telemetry::inPortName(
                     static_cast<std::uint8_t>(InPort::nEx)), "nEx");
    EXPECT_STREQ(telemetry::inPortName(
                     static_cast<std::uint8_t>(InPort::wSh)), "wSh");
    EXPECT_STREQ(telemetry::inPortName(
                     static_cast<std::uint8_t>(InPort::nSh)), "nSh");
    EXPECT_STREQ(telemetry::inPortName(
                     static_cast<std::uint8_t>(InPort::pe)), "pe");
}

TEST(Telemetry, CheckerCrossValidationFlagsCounterMismatch)
{
    check::Geometry geo;
    geo.n = 4;
    check::InvariantChecker checker(geo, check::FailMode::record);

    // A geometrically consistent journey on the 4x4 torus: one short
    // east hop from node 0 lands at node 1, the destination.
    Packet p;
    p.id = 1;
    p.src = 0;
    p.dst = 1;
    checker.onOffer(p, 0);
    checker.onInject(p, 0, 0);
    checker.onTraversal(p, 0, OutPort::eSh, 0);
    checker.onDelivery(p, 1, 1);

    // Matching telemetry counts: no violation.
    checker.verifyTelemetryCounts(1, 1, 4);
    EXPECT_TRUE(checker.violations().empty());

    // A lost eject event and a phantom inject both fail conservation.
    checker.verifyTelemetryCounts(1, 0, 5);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations()[0].kind,
              check::Violation::conservation);
    checker.verifyTelemetryCounts(2, 1, 6);
    ASSERT_EQ(checker.violations().size(), 2u);
    EXPECT_EQ(checker.violations()[1].kind,
              check::Violation::conservation);
}

TEST(Telemetry, SessionExportsMetricsTimeSeries)
{
    const fs::path dir = artifactDir("metrics");
    std::vector<std::string> artifacts;
    {
        telemetry::TelemetryConfig tcfg;
        tcfg.dir = dir.string();
        tcfg.epoch = 64; // small epoch: several rows
        TelemetrySession session(std::move(tcfg));
        const SimConfig sim{.telemetry = &session};
        runSynthetic(NocConfig::fastTrack(4, 2, 1), 1, pinnedWorkload(),
                     sim);
        EXPECT_GE(session.metrics().epochs().size(), 2u);
        artifacts = session.finish();
        // finish() is idempotent.
        EXPECT_EQ(artifacts, session.finish());
    }
    bool found_metrics = false;
    for (const std::string &p : artifacts) {
        if (p.find("metrics.csv") == std::string::npos)
            continue;
        found_metrics = true;
        std::ifstream is(p);
        std::string header;
        ASSERT_TRUE(std::getline(is, header));
        EXPECT_NE(header.find("link.utilization"), std::string::npos);
        EXPECT_NE(header.find("injector.backlog"), std::string::npos);
        std::string row;
        EXPECT_TRUE(std::getline(is, row)); // at least one epoch row
    }
    EXPECT_TRUE(found_metrics);
}

} // namespace
} // namespace fasttrack
