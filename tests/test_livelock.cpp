/**
 * @file
 * Livelock-freedom and delivery-guarantee property tests: every
 * configuration must drain adversarially heavy workloads with bounded
 * packet latency (Section IV-D's forward-progress guarantee).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulation.hpp"

namespace fasttrack {
namespace {

/** (n, d, r, variant-index) grid; d == 0 encodes baseline Hoplite. */
using Config = std::tuple<int, int, int, int>;

NocConfig
makeConfig(const Config &param)
{
    const auto [n, d, r, variant] = param;
    if (d == 0)
        return NocConfig::hoplite(n);
    return NocConfig::fastTrack(
        n, d, r, variant == 0 ? NocVariant::ftFull
                              : NocVariant::ftInject);
}

class LivelockTest : public ::testing::TestWithParam<Config>
{};

TEST_P(LivelockTest, SaturatedRandomDrainsWithBoundedLatency)
{
    const NocConfig cfg = makeConfig(GetParam());
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 200;
    const SynthResult res = runSynthetic(cfg, 1, workload, 5'000'000);
    ASSERT_TRUE(res.completed) << cfg.describe();
    EXPECT_EQ(res.stats.delivered + res.stats.selfDelivered,
              200ull * cfg.pes());
    // Network latency (excluding source queueing) must stay within a
    // generous deflection bound: a saturated bufferless torus should
    // deliver within a few hundred ring laps.
    EXPECT_LT(res.stats.networkLatency.max(), 400ull * cfg.n)
        << cfg.describe();
}

TEST_P(LivelockTest, SaturatedTransposeDrains)
{
    const NocConfig cfg = makeConfig(GetParam());
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::transpose;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 200;
    const SynthResult res = runSynthetic(cfg, 1, workload, 5'000'000);
    ASSERT_TRUE(res.completed) << cfg.describe();
}

TEST_P(LivelockTest, SaturatedBitComplementDrains)
{
    const NocConfig cfg = makeConfig(GetParam());
    if ((cfg.pes() & (cfg.pes() - 1)) != 0)
        GTEST_SKIP() << "BITCOMPL needs power-of-two PEs";
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::bitComplement;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 200;
    const SynthResult res = runSynthetic(cfg, 1, workload, 5'000'000);
    ASSERT_TRUE(res.completed) << cfg.describe();
}

INSTANTIATE_TEST_SUITE_P(
    Hoplite, LivelockTest,
    ::testing::Values(Config{2, 0, 1, 0}, Config{4, 0, 1, 0},
                      Config{8, 0, 1, 0}, Config{9, 0, 1, 0}));

INSTANTIATE_TEST_SUITE_P(
    FullVariant, LivelockTest,
    ::testing::Values(Config{4, 2, 1, 0}, Config{4, 2, 2, 0},
                      Config{8, 2, 1, 0}, Config{8, 2, 2, 0},
                      Config{8, 3, 1, 0},   // D does not divide N
                      Config{8, 4, 1, 0}, Config{8, 4, 2, 0},
                      Config{8, 4, 4, 0}, Config{9, 3, 3, 0},
                      Config{16, 2, 1, 0}, Config{16, 4, 4, 0}));

INSTANTIATE_TEST_SUITE_P(
    InjectVariant, LivelockTest,
    ::testing::Values(Config{4, 2, 1, 1}, Config{8, 2, 1, 1},
                      Config{8, 2, 2, 1}, Config{8, 4, 1, 1},
                      Config{8, 4, 4, 1}));

TEST(Livelock, MisalignedExpressPacketsRecover)
{
    // D=3 on N=8: express wraparound misaligns, exercising the
    // early-turn escape paths. Hammer it hard and verify drain.
    NocConfig cfg = NocConfig::fastTrack(8, 3, 1);
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = 500;
    const SynthResult res = runSynthetic(cfg, 1, workload, 5'000'000);
    ASSERT_TRUE(res.completed);
    // Express links must actually have been used.
    EXPECT_GT(res.stats.expressHopTraversals, 0u);
}

TEST(Livelock, PolicyFlagCombinationsAllDrain)
{
    for (bool turn : {true, false}) {
        for (bool upgrade : {true, false}) {
            for (bool ex_turn : {true, false}) {
                NocConfig cfg = NocConfig::fastTrack(8, 2, 1);
                cfg.turnPriority = turn;
                cfg.allowUpgrade = upgrade;
                cfg.allowExpressTurn = ex_turn;
                SyntheticWorkload workload;
                workload.pattern = TrafficPattern::random;
                workload.injectionRate = 1.0;
                workload.packetsPerPe = 100;
                const SynthResult res =
                    runSynthetic(cfg, 1, workload, 5'000'000);
                EXPECT_TRUE(res.completed)
                    << "turn=" << turn << " upgrade=" << upgrade
                    << " ex_turn=" << ex_turn;
            }
        }
    }
}

} // namespace
} // namespace fasttrack
