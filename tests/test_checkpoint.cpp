/**
 * @file
 * Checkpoint/restore and the RunRequest API: sliced runs must be
 * bit-identical to uninterrupted ones (golden FNV stats hashes) for
 * hoplite and FastTrack variants under synthetic and trace
 * workloads; snapshot files must survive the same hostile-input
 * battery the blob cache does (test_sched.cpp); and the SimConfig
 * field set / cycle-guard default are pinned against silent drift.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "common/fnv1a.hpp"
#include "golden_hash.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulation.hpp"
#include "sim/sweep_cache.hpp"
#include "workloads/dataflow.hpp"
#include "workloads/spmv.hpp"

namespace fasttrack {
namespace {

SyntheticWorkload
checkpointWorkload()
{
    SyntheticWorkload w;
    w.pattern = TrafficPattern::random;
    w.injectionRate = 0.5;
    w.packetsPerPe = 192;
    w.seed = 11;
    return w;
}

/** Fresh scratch directory under the test temp root. */
std::string
scratchDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + "ft_ckpt_" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<std::uint8_t>
readAllBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

void
writeAllBytes(const std::string &path,
              const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

/**
 * Run (config, workload) uninterrupted, then as a chain of slices —
 * every slice snapshots each `slice` cycles and resumes from the
 * previous slice's latest file — and require bit-identical stats.
 */
void
expectSlicedSyntheticMatchesWhole(const NocConfig &cfg,
                                  const std::string &leaf)
{
    const SyntheticWorkload w = checkpointWorkload();
    const RunResult whole =
        runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);
    ASSERT_GT(whole.synth.cycles, 16u);

    const std::string dir = scratchDir(leaf);
    const Cycle slice = whole.synth.cycles / 4 + 1;
    RunResult last;
    std::uint64_t written = 0;
    int resumes = 0;
    for (int i = 1; i <= 6; ++i) {
        const bool final_slice = i == 6;
        last = runSim(
            {.config = &cfg,
             .workload = &w,
             .sim = {.maxCycles =
                         final_slice ? kDefaultMaxCycles : slice * i,
                     .snapshotEveryCycles = slice,
                     .snapshotDir = dir,
                     .resumeFrom = dir}});
        written += last.snapshotsWritten;
        if (last.resumed)
            ++resumes;
        if (last.synth.completed)
            break;
    }
    EXPECT_TRUE(last.synth.completed);
    EXPECT_GT(written, 0u);
    EXPECT_GT(resumes, 0);
    EXPECT_EQ(last.synth.cycles, whole.synth.cycles);
    EXPECT_EQ(hashStats(last.synth.stats), hashStats(whole.synth.stats))
        << cfg.describe();
    std::filesystem::remove_all(dir);
}

void
expectSlicedTraceMatchesWhole(const NocConfig &cfg, const Trace &trace,
                              const std::string &leaf)
{
    const RunResult whole = runSim({.config = &cfg, .trace = &trace});
    ASSERT_TRUE(whole.trace.completed);

    const std::string dir = scratchDir(leaf);
    const Cycle slice = whole.trace.completion / 4 + 1;
    RunResult last;
    std::uint64_t written = 0;
    int resumes = 0;
    for (int i = 1; i <= 6; ++i) {
        const bool final_slice = i == 6;
        last = runSim(
            {.config = &cfg,
             .trace = &trace,
             .sim = {.maxCycles =
                         final_slice ? kDefaultMaxCycles : slice * i,
                     .snapshotEveryCycles = slice,
                     .snapshotDir = dir,
                     .resumeFrom = dir}});
        written += last.snapshotsWritten;
        if (last.resumed)
            ++resumes;
        if (last.trace.completed)
            break;
    }
    EXPECT_TRUE(last.trace.completed);
    EXPECT_GT(written, 0u);
    EXPECT_GT(resumes, 0);
    EXPECT_EQ(last.trace.completion, whole.trace.completion);
    EXPECT_EQ(hashStats(last.trace.stats), hashStats(whole.trace.stats))
        << cfg.describe() << " on " << trace.name;
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, SimConfigFieldSetIsPinned)
{
    static_assert(std::is_aggregate_v<SimConfig>,
                  "SimConfig must stay designated-initializable");
    static_assert(std::is_aggregate_v<RunRequest>,
                  "RunRequest must stay designated-initializable");
    // Designated-initialize every field: adding a member forces an
    // update here (and a conscious decision about call sites);
    // removing or renaming one breaks the build.
    const SimConfig all{.maxCycles = 1,
                        .telemetry = nullptr,
                        .snapshotEveryCycles = 2,
                        .snapshotDir = "a",
                        .resumeFrom = "b",
                        .resumeSnapshot = nullptr,
                        .captureFinal = nullptr};
    EXPECT_EQ(all.maxCycles, 1u);
    EXPECT_EQ(all.snapshotEveryCycles, 2u);
    struct SimConfigMirror
    {
        Cycle maxCycles;
        TelemetrySession *telemetry;
        Cycle snapshotEveryCycles;
        std::string snapshotDir;
        std::string resumeFrom;
        const Snapshot *resumeSnapshot;
        Snapshot *captureFinal;
    };
    static_assert(sizeof(SimConfig) == sizeof(SimConfigMirror),
                  "SimConfig gained or lost a field: update the "
                  "mirror, the designated-init above, and audit "
                  "call sites");
}

TEST(Checkpoint, DefaultCycleGuardIsAppliedInExactlyOnePlace)
{
    // SimConfig's member initializer is the single source of the
    // default guard; every legacy overload without an explicit cycle
    // count must route through it and agree bit for bit.
    EXPECT_EQ(SimConfig{}.maxCycles, kDefaultMaxCycles);

    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    SyntheticWorkload w = checkpointWorkload();
    w.packetsPerPe = 48;
    const SynthResult a = runSynthetic(cfg, 1, w);
    const SynthResult b = runSynthetic(cfg, 1, w, kDefaultMaxCycles);
    const SynthResult c = runSynthetic(cfg, 1, w, SimConfig{});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cycles, c.cycles);
    EXPECT_EQ(hashStats(a.stats), hashStats(b.stats));
    EXPECT_EQ(hashStats(a.stats), hashStats(c.stats));

    LuDagParams params{"guard", 300, 8.0, 1.8, 3, 13};
    const Trace trace = dataflowTrace(sparseLuDag(params), 4);
    const TraceResult t = runTrace(cfg, 1, trace);
    const TraceResult u = runTrace(cfg, 1, trace, kDefaultMaxCycles);
    const TraceResult v = runTrace(cfg, 1, trace, SimConfig{});
    EXPECT_EQ(t.completion, u.completion);
    EXPECT_EQ(t.completion, v.completion);
    EXPECT_EQ(hashStats(t.stats), hashStats(u.stats));
    EXPECT_EQ(hashStats(t.stats), hashStats(v.stats));
}

TEST(Checkpoint, SlicedSyntheticRunIsBitIdenticalHoplite)
{
    expectSlicedSyntheticMatchesWhole(NocConfig::hoplite(8),
                                      "synth_hoplite");
}

TEST(Checkpoint, SlicedSyntheticRunIsBitIdenticalFtFull)
{
    expectSlicedSyntheticMatchesWhole(NocConfig::fastTrack(8, 2, 2),
                                      "synth_ftfull");
}

TEST(Checkpoint, SlicedSyntheticRunIsBitIdenticalFtInject)
{
    expectSlicedSyntheticMatchesWhole(
        NocConfig::fastTrack(8, 2, 1, NocVariant::ftInject),
        "synth_ftinject");
}

TEST(Checkpoint, SlicedTraceRunIsBitIdenticalDataflow)
{
    LuDagParams params{"ckpt_lu", 600, 8.0, 1.8, 3, 13};
    const Trace trace = dataflowTrace(sparseLuDag(params), 4);
    expectSlicedTraceMatchesWhole(NocConfig::hoplite(4), trace,
                                  "trace_hoplite");
    expectSlicedTraceMatchesWhole(NocConfig::fastTrack(4, 2, 1), trace,
                                  "trace_ft");
}

TEST(Checkpoint, SlicedTraceRunIsBitIdenticalSpmv)
{
    MatrixParams params;
    params.rows = 1200;
    params.localFraction = 0.3;
    const Trace trace = spmvTrace(generateMatrix(params), 8);
    expectSlicedTraceMatchesWhole(NocConfig::fastTrack(8, 2, 2), trace,
                                  "trace_spmv");
}

TEST(Checkpoint, FindLatestSnapshotPicksHighestCycleByName)
{
    const std::string dir = scratchDir("latest");
    EXPECT_EQ(findLatestSnapshot(dir), ""); // missing dir: no crash

    std::filesystem::create_directories(dir);
    EXPECT_EQ(findLatestSnapshot(dir), ""); // empty dir
    for (Cycle c : {Cycle{70}, Cycle{900}, Cycle{12}})
        writeAllBytes(dir + "/" + snapshotFileName(c), {1});
    // Decoys that must not match the name pattern.
    writeAllBytes(dir + "/ft-snap-garbage.ftcp", {1});
    writeAllBytes(dir + "/other.txt", {1});
    EXPECT_EQ(findLatestSnapshot(dir),
              dir + "/" + snapshotFileName(900));
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, SnapshotFileNameHoldsEveryCycleValue)
{
    // The fixed-width name field must represent every Cycle value
    // (the static_assert in checkpoint.cpp pins the width): the
    // extremes produce equal-length names whose lexicographic order
    // is the numeric order — the invariant findLatestSnapshot's
    // string-max selection and name-length filter both lean on.
    const Cycle max = std::numeric_limits<Cycle>::max();
    const std::string lo = snapshotFileName(0);
    const std::string hi = snapshotFileName(max);
    ASSERT_FALSE(lo.empty());
    ASSERT_FALSE(hi.empty());
    EXPECT_EQ(lo.size(), hi.size());
    EXPECT_LT(lo, hi);
    EXPECT_LT(snapshotFileName(max - 1), hi);

    const std::string dir = scratchDir("extreme_cycle");
    std::filesystem::create_directories(dir);
    for (Cycle c : {Cycle{0}, Cycle{1}, max - 1, max})
        writeAllBytes(dir + "/" + snapshotFileName(c), {1});
    EXPECT_EQ(findLatestSnapshot(dir), dir + "/" + hi);
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, HostileSnapshotFilesAreRejected)
{
    const std::string dir = scratchDir("hostile");
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    const SyntheticWorkload w = checkpointWorkload();
    const RunResult seeded =
        runSim({.config = &cfg,
                .workload = &w,
                .sim = {.maxCycles = 64,
                        .snapshotEveryCycles = 32,
                        .snapshotDir = dir}});
    ASSERT_GT(seeded.snapshotsWritten, 0u);

    const std::string path = findLatestSnapshot(dir);
    ASSERT_FALSE(path.empty());
    const std::uint64_t key = checkpointKey(cfg, 1, w);
    Snapshot snap;
    ASSERT_EQ(readSnapshotFile(path, key, snap), SnapshotStatus::ok);

    const std::vector<std::uint8_t> good = readAllBytes(path);
    ASSERT_GT(good.size(), 32u);
    const std::string mut = dir + "/mutated.ftcp";

    // Truncation at EVERY byte boundary: never ok, never a hang.
    for (std::size_t len = 0; len < good.size(); ++len) {
        writeAllBytes(
            mut, std::vector<std::uint8_t>(good.begin(),
                                           good.begin() +
                                               static_cast<long>(len)));
        EXPECT_NE(readSnapshotFile(mut, key, snap), SnapshotStatus::ok)
            << "prefix of " << len << " bytes";
    }

    auto mutate = [&](std::size_t at, std::uint8_t flip) {
        std::vector<std::uint8_t> bytes = good;
        bytes[at] ^= flip;
        writeAllBytes(mut, bytes);
    };
    // Container layout: u32 magic, u32 schema, u64 key,
    // u64 payloadBytes, payload, u64 fnv1a(payload).
    mutate(0, 0xff);
    EXPECT_EQ(readSnapshotFile(mut, key, snap),
              SnapshotStatus::badMagic);
    mutate(4, 0xff);
    EXPECT_EQ(readSnapshotFile(mut, key, snap),
              SnapshotStatus::badSchema);
    mutate(good.size() - 1, 0xff);
    EXPECT_EQ(readSnapshotFile(mut, key, snap),
              SnapshotStatus::badChecksum);
    mutate(24, 0x01); // payload byte: self-check hash must catch it
    EXPECT_EQ(readSnapshotFile(mut, key, snap),
              SnapshotStatus::badChecksum);
    EXPECT_EQ(readSnapshotFile(path, key ^ 1, snap),
              SnapshotStatus::badKey);

    // Foreign-endian container: byte-swapped magic must be rejected
    // (a big-endian writer that ignored the wire codec).
    {
        std::vector<std::uint8_t> bytes = good;
        std::swap(bytes[0], bytes[3]);
        std::swap(bytes[1], bytes[2]);
        writeAllBytes(mut, bytes);
        EXPECT_EQ(readSnapshotFile(mut, key, snap),
                  SnapshotStatus::badMagic);
    }
    // Trailing garbage after the declared payload + trailer.
    {
        std::vector<std::uint8_t> bytes = good;
        bytes.push_back(0x5a);
        writeAllBytes(mut, bytes);
        EXPECT_EQ(readSnapshotFile(mut, key, snap),
                  SnapshotStatus::malformed);
    }
    // Payload tampered AND the self-check recomputed to match: the
    // container validates, the payload itself must not parse.
    {
        std::vector<std::uint8_t> bytes = good;
        bytes[24] = 0x09; // SnapshotKind: neither synthetic nor trace
        Fnv1a check;
        check.addBytes(bytes.data() + 24, bytes.size() - 32);
        for (std::size_t i = 0; i < 8; ++i)
            bytes[bytes.size() - 8 + i] = static_cast<std::uint8_t>(
                check.value() >> (8 * i));
        writeAllBytes(mut, bytes);
        EXPECT_EQ(readSnapshotFile(mut, key, snap),
                  SnapshotStatus::malformed);
    }
    EXPECT_EQ(readSnapshotFile(dir + "/nonexistent.ftcp", key, snap),
              SnapshotStatus::ioError);
    // The pristine file still loads after all of the above.
    EXPECT_EQ(readSnapshotFile(path, key, snap), SnapshotStatus::ok);
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptResumeFallsBackToFreshRunBitIdentically)
{
    const std::string dir = scratchDir("fallback");
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    SyntheticWorkload w = checkpointWorkload();
    w.packetsPerPe = 48;

    const RunResult whole = runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);

    const RunResult seeded =
        runSim({.config = &cfg,
                .workload = &w,
                .sim = {.maxCycles = 40,
                        .snapshotEveryCycles = 20,
                        .snapshotDir = dir}});
    ASSERT_GT(seeded.snapshotsWritten, 0u);
    const std::string path = findLatestSnapshot(dir);
    ASSERT_FALSE(path.empty());
    std::vector<std::uint8_t> bytes = readAllBytes(path);
    bytes[bytes.size() / 2] ^= 0xff;
    writeAllBytes(path, bytes);

    const RunResult fallback =
        runSim({.config = &cfg,
                .workload = &w,
                .sim = {.resumeFrom = dir}});
    EXPECT_FALSE(fallback.resumed);
    EXPECT_TRUE(fallback.synth.completed);
    EXPECT_EQ(fallback.synth.cycles, whole.synth.cycles);
    EXPECT_EQ(hashStats(fallback.synth.stats),
              hashStats(whole.synth.stats));
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, TrimmedShardStatsMergeBackToTheWholeRun)
{
    // Temporal-shard handoff: slice 1 keeps its own measurements,
    // trimState() strips them from the snapshot, slice 2 resumes the
    // traffic but measures only its slice — merging the two stats
    // blocks must reproduce the uninterrupted run bit for bit.
    const std::string dir = scratchDir("trim");
    const NocConfig cfg = NocConfig::fastTrack(8, 2, 2);
    const SyntheticWorkload w = checkpointWorkload();

    const RunResult whole = runSim({.config = &cfg, .workload = &w});
    ASSERT_TRUE(whole.synth.completed);
    const Cycle cut = whole.synth.cycles / 2;
    ASSERT_GT(cut, 0u);

    const RunResult first =
        runSim({.config = &cfg,
                .workload = &w,
                .sim = {.maxCycles = cut,
                        .snapshotEveryCycles = cut,
                        .snapshotDir = dir}});
    ASSERT_EQ(first.snapshotsWritten, 1u);
    ASSERT_FALSE(first.synth.completed);

    const std::uint64_t key = checkpointKey(cfg, 1, w);
    Snapshot snap;
    ASSERT_EQ(readSnapshotFile(findLatestSnapshot(dir), key, snap),
              SnapshotStatus::ok);
    EXPECT_EQ(hashStats(snap.engine.stats),
              hashStats(first.synth.stats));

    snap.trimState();
    EXPECT_TRUE(snap.engine.trimmed);
    const std::string trimmed_dir = dir + "_handoff";
    std::string trimmed_path;
    ASSERT_EQ(writeSnapshotFile(trimmed_dir, key, snap, &trimmed_path),
              SnapshotStatus::ok);

    const RunResult second =
        runSim({.config = &cfg,
                .workload = &w,
                .sim = {.resumeFrom = trimmed_path}});
    ASSERT_TRUE(second.resumed);
    EXPECT_EQ(second.resumedAtCycle, cut);
    ASSERT_TRUE(second.synth.completed);

    NocStats merged = first.synth.stats;
    merged.merge(second.synth.stats);
    EXPECT_EQ(hashStats(merged), hashStats(whole.synth.stats));
    EXPECT_EQ(second.synth.cycles, whole.synth.cycles);
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(trimmed_dir);
}

TEST(Checkpoint, SweepCacheIsBypassedWhileCheckpointing)
{
    // A cached replay writes no snapshots, so checkpoint knobs force
    // a real run (counted as a bypass) instead of a silent lie.
    const std::string dir = scratchDir("cache_bypass");
    const NocConfig cfg = NocConfig::fastTrack(4, 2, 1);
    SyntheticWorkload w = checkpointWorkload();
    w.packetsPerPe = 48;
    w.seed = 77;

    setSweepCacheEnabled(true);
    const SynthResult warm = cachedRunSynthetic(cfg, 1, w);
    const auto bypasses_before = sweepCache().stats().bypasses;
    const RunResult run =
        runSim({.config = &cfg,
                .workload = &w,
                .sim = {.snapshotEveryCycles = 16, .snapshotDir = dir},
                .useCache = true});
    EXPECT_FALSE(run.fromCache);
    EXPECT_GT(run.snapshotsWritten, 0u);
    EXPECT_EQ(sweepCache().stats().bypasses, bypasses_before + 1);
    EXPECT_EQ(hashStats(run.synth.stats), hashStats(warm.stats));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace fasttrack
