/**
 * @file
 * The paper's abstract-level claims as executable checks, each tagged
 * with the sentence it verifies. These are the repository's highest-
 * level regression net: if one fails, the reproduction no longer
 * supports the paper's story.
 */

#include <gtest/gtest.h>

#include "fpga/power_model.hpp"
#include "sim/experiment.hpp"

namespace fasttrack {
namespace {

class PaperClaims : public ::testing::Test
{
  protected:
    AreaModel area;
    PowerModel power{area};

    SynthResult saturate(const NocConfig &cfg,
                         std::uint32_t channels = 1)
    {
        return saturationRun({cfg.describe(), cfg, channels},
                             TrafficPattern::random, 512);
    }
};

TEST_F(PaperClaims, AreaRatio)
{
    // "An 8x8 FastTrack NoC is 1.7-2.5x larger than a base Hoplite
    // NoC" (abstract; Table II itself shows up to 3.1x for R=1).
    const double hop = static_cast<double>(
        area.nocCost(NocConfig::hoplite(8).toSpec(256)).luts);
    const double depop = static_cast<double>(
        area.nocCost(NocConfig::fastTrack(8, 2, 2).toSpec(256)).luts);
    EXPECT_GT(depop / hop, 1.7);
    EXPECT_LT(depop / hop, 2.5);
}

TEST_F(PaperClaims, SameClockBallpark)
{
    // "...but operates at almost the same clock frequency."
    const double hop = area.nocCost(
        NocConfig::hoplite(8).toSpec(256)).frequencyMhz;
    const double ft = area.nocCost(
        NocConfig::fastTrack(8, 2, 1).toSpec(256)).frequencyMhz;
    EXPECT_GT(ft / hop, 0.9);
}

TEST_F(PaperClaims, StatisticalThroughputWin)
{
    // "throughput and latency improvements across a range of
    // statistical workloads (2.5x)".
    const SynthResult ft = saturate(NocConfig::fastTrack(8, 2, 1));
    const SynthResult hop = saturate(NocConfig::hoplite(8));
    EXPECT_GE(ft.sustainedRate() / hop.sustainedRate(), 2.4);
}

TEST_F(PaperClaims, PowerRatio)
{
    // "...and 2.5x more power hungry" (Table II: 2.0-2.6x).
    const double hop = power.dynamicPowerW(
        NocConfig::hoplite(8).toSpec(256));
    const double ft = power.dynamicPowerW(
        NocConfig::fastTrack(8, 2, 1).toSpec(256));
    EXPECT_GT(ft / hop, 2.0);
    EXPECT_LT(ft / hop, 2.8);
}

TEST_F(PaperClaims, EnergyEfficiencyWin)
{
    // "FastTrack also shows energy efficiency improvements ... due to
    // higher sustained rates and high speed operation of express
    // links": energy per routed workload must be LOWER than Hoplite
    // despite the higher power.
    auto energy = [&](const NocConfig &cfg) {
        const SynthResult res = saturate(cfg);
        auto noc = makeNoc(cfg, 1);
        const double activity =
            res.stats.linkActivity(noc->linkCount(), res.cycles);
        return power.energyJ(cfg.toSpec(256),
                             static_cast<double>(res.cycles),
                             activity);
    };
    const double e_ft = energy(NocConfig::fastTrack(8, 2, 1));
    const double e_hop = energy(NocConfig::hoplite(8));
    EXPECT_LT(e_ft, e_hop);
}

TEST_F(PaperClaims, BeatsIsoWiringMultiChannel)
{
    // "FastTrack makes better use of available wiring resources and
    // outperforms the multi-channel alternative" (Section IV-A).
    const SynthResult ft = saturate(NocConfig::fastTrack(8, 2, 1));
    const SynthResult h3 = saturate(NocConfig::hoplite(8), 3);
    const double ratio = ft.sustainedRate() / h3.sustainedRate();
    EXPECT_GT(ratio, 1.05);
    EXPECT_LT(ratio, 1.5); // paper: 1.2-1.4x
}

TEST_F(PaperClaims, MultiChannelCostsMoreLogic)
{
    // "...the multi-channel NoC ... costs the designer 1.5x more LUTs
    // than FastTrack" - direction check at equal wiring.
    const auto ft =
        area.nocCost(NocConfig::fastTrack(8, 2, 2).toSpec(256)).luts;
    const auto h2 =
        area.nocCost(NocConfig::hoplite(8).toSpec(256, 2)).luts;
    EXPECT_LT(ft, h2);
}

TEST_F(PaperClaims, DeflectionReductionWithExpress)
{
    // "the use of the express links actually reduces the total number
    // of deflections" (Fig 18) - misroutes per delivered packet.
    auto misroutes_per_packet = [&](const NocConfig &cfg) {
        const SynthResult res = saturate(cfg);
        return static_cast<double>(res.stats.totalMisroutes()) /
               static_cast<double>(res.stats.delivered);
    };
    EXPECT_LT(misroutes_per_packet(NocConfig::fastTrack(8, 2, 1)),
              misroutes_per_packet(NocConfig::hoplite(8)));
}

TEST_F(PaperClaims, WorstCaseLatencyShrinks)
{
    // "the worst case packet latency for the fully populated and
    // depopulated FastTrack NoC ... is 7x and 3x smaller than base
    // Hoplite" (Fig 16) - direction and ordering check at <10% load.
    SyntheticWorkload workload;
    workload.pattern = TrafficPattern::random;
    workload.injectionRate = 0.08;
    const auto worst = [&](const NocConfig &cfg) {
        return runSynthetic(cfg, 1, workload).worstLatency();
    };
    const auto w_full = worst(NocConfig::fastTrack(8, 2, 1));
    const auto w_depop = worst(NocConfig::fastTrack(8, 2, 2));
    const auto w_hop = worst(NocConfig::hoplite(8));
    EXPECT_LT(w_full, w_depop);
    EXPECT_LT(w_depop, w_hop);
    EXPECT_LT(2 * w_full, w_hop);
}

} // namespace
} // namespace fasttrack
