# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "4" "0.5")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spmv "/root/repo/build/examples/spmv_accelerator" "1500" "4" "0.5")
set_tests_properties(example_spmv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataflow "/root/repo/build/examples/dataflow_engine" "1200" "4" "2")
set_tests_properties(example_dataflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heatmap "/root/repo/build/examples/noc_heatmap" "RANDOM" "4" "2" "1")
set_tests_properties(example_heatmap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tracer "/root/repo/build/examples/packet_tracer" "8" "2" "1")
set_tests_properties(example_tracer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_run_experiment "/root/repo/build/examples/run_experiment" "/root/repo/build/example.cfg")
set_tests_properties(example_run_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology "/root/repo/build/examples/topology_viewer" "8" "4" "2")
set_tests_properties(example_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explorer "/root/repo/build/examples/design_space_explorer" "4" "64")
set_tests_properties(example_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_gen "/root/repo/build/examples/trace_tool" "gen" "dataflow" "4" "/root/repo/build/ex.trace")
set_tests_properties(example_trace_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_info "/root/repo/build/examples/trace_tool" "info" "/root/repo/build/ex.trace")
set_tests_properties(example_trace_info PROPERTIES  DEPENDS "example_trace_gen" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_tool" "replay" "/root/repo/build/ex.trace" "ft-full" "2" "1")
set_tests_properties(example_trace_replay PROPERTIES  DEPENDS "example_trace_gen" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
