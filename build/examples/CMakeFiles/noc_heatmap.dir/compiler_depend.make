# Empty compiler generated dependencies file for noc_heatmap.
# This may be replaced when dependencies are built.
