file(REMOVE_RECURSE
  "CMakeFiles/noc_heatmap.dir/noc_heatmap.cpp.o"
  "CMakeFiles/noc_heatmap.dir/noc_heatmap.cpp.o.d"
  "noc_heatmap"
  "noc_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
