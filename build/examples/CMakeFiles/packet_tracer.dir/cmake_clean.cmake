file(REMOVE_RECURSE
  "CMakeFiles/packet_tracer.dir/packet_tracer.cpp.o"
  "CMakeFiles/packet_tracer.dir/packet_tracer.cpp.o.d"
  "packet_tracer"
  "packet_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
