# Empty dependencies file for packet_tracer.
# This may be replaced when dependencies are built.
