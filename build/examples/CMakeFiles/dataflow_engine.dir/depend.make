# Empty dependencies file for dataflow_engine.
# This may be replaced when dependencies are built.
