file(REMOVE_RECURSE
  "CMakeFiles/dataflow_engine.dir/dataflow_engine.cpp.o"
  "CMakeFiles/dataflow_engine.dir/dataflow_engine.cpp.o.d"
  "dataflow_engine"
  "dataflow_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
