file(REMOVE_RECURSE
  "CMakeFiles/spmv_accelerator.dir/spmv_accelerator.cpp.o"
  "CMakeFiles/spmv_accelerator.dir/spmv_accelerator.cpp.o.d"
  "spmv_accelerator"
  "spmv_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
