# Empty compiler generated dependencies file for spmv_accelerator.
# This may be replaced when dependencies are built.
