file(REMOVE_RECURSE
  "CMakeFiles/ft_common.dir/ascii_chart.cpp.o"
  "CMakeFiles/ft_common.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/ft_common.dir/config_file.cpp.o"
  "CMakeFiles/ft_common.dir/config_file.cpp.o.d"
  "CMakeFiles/ft_common.dir/logging.cpp.o"
  "CMakeFiles/ft_common.dir/logging.cpp.o.d"
  "CMakeFiles/ft_common.dir/rng.cpp.o"
  "CMakeFiles/ft_common.dir/rng.cpp.o.d"
  "CMakeFiles/ft_common.dir/stats.cpp.o"
  "CMakeFiles/ft_common.dir/stats.cpp.o.d"
  "CMakeFiles/ft_common.dir/table.cpp.o"
  "CMakeFiles/ft_common.dir/table.cpp.o.d"
  "libft_common.a"
  "libft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
