file(REMOVE_RECURSE
  "libft_common.a"
)
