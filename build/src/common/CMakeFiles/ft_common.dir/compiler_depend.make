# Empty compiler generated dependencies file for ft_common.
# This may be replaced when dependencies are built.
