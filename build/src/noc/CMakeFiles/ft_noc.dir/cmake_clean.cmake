file(REMOVE_RECURSE
  "CMakeFiles/ft_noc.dir/analysis.cpp.o"
  "CMakeFiles/ft_noc.dir/analysis.cpp.o.d"
  "CMakeFiles/ft_noc.dir/buffered.cpp.o"
  "CMakeFiles/ft_noc.dir/buffered.cpp.o.d"
  "CMakeFiles/ft_noc.dir/config.cpp.o"
  "CMakeFiles/ft_noc.dir/config.cpp.o.d"
  "CMakeFiles/ft_noc.dir/multichannel.cpp.o"
  "CMakeFiles/ft_noc.dir/multichannel.cpp.o.d"
  "CMakeFiles/ft_noc.dir/network.cpp.o"
  "CMakeFiles/ft_noc.dir/network.cpp.o.d"
  "CMakeFiles/ft_noc.dir/noc_stats.cpp.o"
  "CMakeFiles/ft_noc.dir/noc_stats.cpp.o.d"
  "CMakeFiles/ft_noc.dir/router.cpp.o"
  "CMakeFiles/ft_noc.dir/router.cpp.o.d"
  "CMakeFiles/ft_noc.dir/routing.cpp.o"
  "CMakeFiles/ft_noc.dir/routing.cpp.o.d"
  "CMakeFiles/ft_noc.dir/smart.cpp.o"
  "CMakeFiles/ft_noc.dir/smart.cpp.o.d"
  "CMakeFiles/ft_noc.dir/topology.cpp.o"
  "CMakeFiles/ft_noc.dir/topology.cpp.o.d"
  "CMakeFiles/ft_noc.dir/vc_torus.cpp.o"
  "CMakeFiles/ft_noc.dir/vc_torus.cpp.o.d"
  "libft_noc.a"
  "libft_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
