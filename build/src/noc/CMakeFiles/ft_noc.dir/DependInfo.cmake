
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/analysis.cpp" "src/noc/CMakeFiles/ft_noc.dir/analysis.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/analysis.cpp.o.d"
  "/root/repo/src/noc/buffered.cpp" "src/noc/CMakeFiles/ft_noc.dir/buffered.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/buffered.cpp.o.d"
  "/root/repo/src/noc/config.cpp" "src/noc/CMakeFiles/ft_noc.dir/config.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/config.cpp.o.d"
  "/root/repo/src/noc/multichannel.cpp" "src/noc/CMakeFiles/ft_noc.dir/multichannel.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/multichannel.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/ft_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/noc_stats.cpp" "src/noc/CMakeFiles/ft_noc.dir/noc_stats.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/noc_stats.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/ft_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/ft_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/routing.cpp.o.d"
  "/root/repo/src/noc/smart.cpp" "src/noc/CMakeFiles/ft_noc.dir/smart.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/smart.cpp.o.d"
  "/root/repo/src/noc/topology.cpp" "src/noc/CMakeFiles/ft_noc.dir/topology.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/topology.cpp.o.d"
  "/root/repo/src/noc/vc_torus.cpp" "src/noc/CMakeFiles/ft_noc.dir/vc_torus.cpp.o" "gcc" "src/noc/CMakeFiles/ft_noc.dir/vc_torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ft_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
