# Empty compiler generated dependencies file for ft_noc.
# This may be replaced when dependencies are built.
