file(REMOVE_RECURSE
  "libft_noc.a"
)
