file(REMOVE_RECURSE
  "libft_workloads.a"
)
