file(REMOVE_RECURSE
  "CMakeFiles/ft_workloads.dir/dataflow.cpp.o"
  "CMakeFiles/ft_workloads.dir/dataflow.cpp.o.d"
  "CMakeFiles/ft_workloads.dir/graph.cpp.o"
  "CMakeFiles/ft_workloads.dir/graph.cpp.o.d"
  "CMakeFiles/ft_workloads.dir/graph_analytics.cpp.o"
  "CMakeFiles/ft_workloads.dir/graph_analytics.cpp.o.d"
  "CMakeFiles/ft_workloads.dir/mp_overlay.cpp.o"
  "CMakeFiles/ft_workloads.dir/mp_overlay.cpp.o.d"
  "CMakeFiles/ft_workloads.dir/sparse_matrix.cpp.o"
  "CMakeFiles/ft_workloads.dir/sparse_matrix.cpp.o.d"
  "CMakeFiles/ft_workloads.dir/spmv.cpp.o"
  "CMakeFiles/ft_workloads.dir/spmv.cpp.o.d"
  "libft_workloads.a"
  "libft_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
