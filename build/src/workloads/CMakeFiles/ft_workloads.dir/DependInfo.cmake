
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dataflow.cpp" "src/workloads/CMakeFiles/ft_workloads.dir/dataflow.cpp.o" "gcc" "src/workloads/CMakeFiles/ft_workloads.dir/dataflow.cpp.o.d"
  "/root/repo/src/workloads/graph.cpp" "src/workloads/CMakeFiles/ft_workloads.dir/graph.cpp.o" "gcc" "src/workloads/CMakeFiles/ft_workloads.dir/graph.cpp.o.d"
  "/root/repo/src/workloads/graph_analytics.cpp" "src/workloads/CMakeFiles/ft_workloads.dir/graph_analytics.cpp.o" "gcc" "src/workloads/CMakeFiles/ft_workloads.dir/graph_analytics.cpp.o.d"
  "/root/repo/src/workloads/mp_overlay.cpp" "src/workloads/CMakeFiles/ft_workloads.dir/mp_overlay.cpp.o" "gcc" "src/workloads/CMakeFiles/ft_workloads.dir/mp_overlay.cpp.o.d"
  "/root/repo/src/workloads/sparse_matrix.cpp" "src/workloads/CMakeFiles/ft_workloads.dir/sparse_matrix.cpp.o" "gcc" "src/workloads/CMakeFiles/ft_workloads.dir/sparse_matrix.cpp.o.d"
  "/root/repo/src/workloads/spmv.cpp" "src/workloads/CMakeFiles/ft_workloads.dir/spmv.cpp.o" "gcc" "src/workloads/CMakeFiles/ft_workloads.dir/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traffic/CMakeFiles/ft_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ft_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ft_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
