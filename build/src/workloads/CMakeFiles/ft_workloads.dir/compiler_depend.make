# Empty compiler generated dependencies file for ft_workloads.
# This may be replaced when dependencies are built.
