file(REMOVE_RECURSE
  "CMakeFiles/ft_traffic.dir/injector.cpp.o"
  "CMakeFiles/ft_traffic.dir/injector.cpp.o.d"
  "CMakeFiles/ft_traffic.dir/pattern.cpp.o"
  "CMakeFiles/ft_traffic.dir/pattern.cpp.o.d"
  "CMakeFiles/ft_traffic.dir/segmentation.cpp.o"
  "CMakeFiles/ft_traffic.dir/segmentation.cpp.o.d"
  "CMakeFiles/ft_traffic.dir/trace.cpp.o"
  "CMakeFiles/ft_traffic.dir/trace.cpp.o.d"
  "CMakeFiles/ft_traffic.dir/trace_replay.cpp.o"
  "CMakeFiles/ft_traffic.dir/trace_replay.cpp.o.d"
  "libft_traffic.a"
  "libft_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
