# Empty compiler generated dependencies file for ft_traffic.
# This may be replaced when dependencies are built.
