
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/injector.cpp" "src/traffic/CMakeFiles/ft_traffic.dir/injector.cpp.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/injector.cpp.o.d"
  "/root/repo/src/traffic/pattern.cpp" "src/traffic/CMakeFiles/ft_traffic.dir/pattern.cpp.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/pattern.cpp.o.d"
  "/root/repo/src/traffic/segmentation.cpp" "src/traffic/CMakeFiles/ft_traffic.dir/segmentation.cpp.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/segmentation.cpp.o.d"
  "/root/repo/src/traffic/trace.cpp" "src/traffic/CMakeFiles/ft_traffic.dir/trace.cpp.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/trace.cpp.o.d"
  "/root/repo/src/traffic/trace_replay.cpp" "src/traffic/CMakeFiles/ft_traffic.dir/trace_replay.cpp.o" "gcc" "src/traffic/CMakeFiles/ft_traffic.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/ft_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ft_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
