file(REMOVE_RECURSE
  "CMakeFiles/ft_fpga.dir/area_model.cpp.o"
  "CMakeFiles/ft_fpga.dir/area_model.cpp.o.d"
  "CMakeFiles/ft_fpga.dir/layout.cpp.o"
  "CMakeFiles/ft_fpga.dir/layout.cpp.o.d"
  "CMakeFiles/ft_fpga.dir/power_model.cpp.o"
  "CMakeFiles/ft_fpga.dir/power_model.cpp.o.d"
  "CMakeFiles/ft_fpga.dir/routability.cpp.o"
  "CMakeFiles/ft_fpga.dir/routability.cpp.o.d"
  "CMakeFiles/ft_fpga.dir/wire_model.cpp.o"
  "CMakeFiles/ft_fpga.dir/wire_model.cpp.o.d"
  "libft_fpga.a"
  "libft_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ft_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
