# Empty dependencies file for ft_fpga.
# This may be replaced when dependencies are built.
