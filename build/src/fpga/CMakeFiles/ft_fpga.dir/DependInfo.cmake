
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/area_model.cpp" "src/fpga/CMakeFiles/ft_fpga.dir/area_model.cpp.o" "gcc" "src/fpga/CMakeFiles/ft_fpga.dir/area_model.cpp.o.d"
  "/root/repo/src/fpga/layout.cpp" "src/fpga/CMakeFiles/ft_fpga.dir/layout.cpp.o" "gcc" "src/fpga/CMakeFiles/ft_fpga.dir/layout.cpp.o.d"
  "/root/repo/src/fpga/power_model.cpp" "src/fpga/CMakeFiles/ft_fpga.dir/power_model.cpp.o" "gcc" "src/fpga/CMakeFiles/ft_fpga.dir/power_model.cpp.o.d"
  "/root/repo/src/fpga/routability.cpp" "src/fpga/CMakeFiles/ft_fpga.dir/routability.cpp.o" "gcc" "src/fpga/CMakeFiles/ft_fpga.dir/routability.cpp.o.d"
  "/root/repo/src/fpga/wire_model.cpp" "src/fpga/CMakeFiles/ft_fpga.dir/wire_model.cpp.o" "gcc" "src/fpga/CMakeFiles/ft_fpga.dir/wire_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
