file(REMOVE_RECURSE
  "libft_fpga.a"
)
