
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/ft_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_area_model.cpp" "tests/CMakeFiles/ft_tests.dir/test_area_model.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_area_model.cpp.o.d"
  "/root/repo/tests/test_ascii_chart.cpp" "tests/CMakeFiles/ft_tests.dir/test_ascii_chart.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_ascii_chart.cpp.o.d"
  "/root/repo/tests/test_buffered.cpp" "tests/CMakeFiles/ft_tests.dir/test_buffered.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_buffered.cpp.o.d"
  "/root/repo/tests/test_common_misc.cpp" "tests/CMakeFiles/ft_tests.dir/test_common_misc.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_common_misc.cpp.o.d"
  "/root/repo/tests/test_config_file.cpp" "tests/CMakeFiles/ft_tests.dir/test_config_file.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_config_file.cpp.o.d"
  "/root/repo/tests/test_device_contract.cpp" "tests/CMakeFiles/ft_tests.dir/test_device_contract.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_device_contract.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/ft_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/ft_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_interop.cpp" "tests/CMakeFiles/ft_tests.dir/test_interop.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_interop.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/ft_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_livelock.cpp" "tests/CMakeFiles/ft_tests.dir/test_livelock.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_livelock.cpp.o.d"
  "/root/repo/tests/test_multichannel.cpp" "tests/CMakeFiles/ft_tests.dir/test_multichannel.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_multichannel.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/ft_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/ft_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_pipelining.cpp" "tests/CMakeFiles/ft_tests.dir/test_pipelining.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_pipelining.cpp.o.d"
  "/root/repo/tests/test_power_model.cpp" "tests/CMakeFiles/ft_tests.dir/test_power_model.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_power_model.cpp.o.d"
  "/root/repo/tests/test_regression.cpp" "tests/CMakeFiles/ft_tests.dir/test_regression.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_regression.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/ft_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routability.cpp" "tests/CMakeFiles/ft_tests.dir/test_routability.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_routability.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/ft_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/ft_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_section4d.cpp" "tests/CMakeFiles/ft_tests.dir/test_section4d.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_section4d.cpp.o.d"
  "/root/repo/tests/test_segmentation.cpp" "tests/CMakeFiles/ft_tests.dir/test_segmentation.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_segmentation.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/ft_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smart.cpp" "tests/CMakeFiles/ft_tests.dir/test_smart.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_smart.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/ft_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/ft_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_steady_state.cpp" "tests/CMakeFiles/ft_tests.dir/test_steady_state.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_steady_state.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/ft_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/ft_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ft_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/ft_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_vc_torus.cpp" "tests/CMakeFiles/ft_tests.dir/test_vc_torus.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_vc_torus.cpp.o.d"
  "/root/repo/tests/test_wire_model.cpp" "tests/CMakeFiles/ft_tests.dir/test_wire_model.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_wire_model.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/ft_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_workloads.cpp.o.d"
  "/root/repo/tests/test_zero_load_sweep.cpp" "tests/CMakeFiles/ft_tests.dir/test_zero_load_sweep.cpp.o" "gcc" "tests/CMakeFiles/ft_tests.dir/test_zero_load_sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ft_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ft_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ft_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ft_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
