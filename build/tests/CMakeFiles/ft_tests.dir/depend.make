# Empty dependencies file for ft_tests.
# This may be replaced when dependencies are built.
