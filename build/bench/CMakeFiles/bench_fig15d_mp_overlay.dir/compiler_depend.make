# Empty compiler generated dependencies file for bench_fig15d_mp_overlay.
# This may be replaced when dependencies are built.
