file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_vary_d.dir/bench_fig17_vary_d.cpp.o"
  "CMakeFiles/bench_fig17_vary_d.dir/bench_fig17_vary_d.cpp.o.d"
  "bench_fig17_vary_d"
  "bench_fig17_vary_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_vary_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
