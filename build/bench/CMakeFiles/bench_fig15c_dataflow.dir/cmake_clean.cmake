file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15c_dataflow.dir/bench_fig15c_dataflow.cpp.o"
  "CMakeFiles/bench_fig15c_dataflow.dir/bench_fig15c_dataflow.cpp.o.d"
  "bench_fig15c_dataflow"
  "bench_fig15c_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15c_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
