# Empty dependencies file for bench_fig15c_dataflow.
# This may be replaced when dependencies are built.
