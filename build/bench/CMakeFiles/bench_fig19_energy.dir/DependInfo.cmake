
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig19_energy.cpp" "bench/CMakeFiles/bench_fig19_energy.dir/bench_fig19_energy.cpp.o" "gcc" "bench/CMakeFiles/bench_fig19_energy.dir/bench_fig19_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ft_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ft_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ft_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ft_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
