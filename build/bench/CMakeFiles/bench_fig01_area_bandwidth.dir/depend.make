# Empty dependencies file for bench_fig01_area_bandwidth.
# This may be replaced when dependencies are built.
