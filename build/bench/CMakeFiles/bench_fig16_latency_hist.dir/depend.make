# Empty dependencies file for bench_fig16_latency_hist.
# This may be replaced when dependencies are built.
