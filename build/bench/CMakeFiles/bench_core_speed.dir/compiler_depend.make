# Empty compiler generated dependencies file for bench_core_speed.
# This may be replaced when dependencies are built.
