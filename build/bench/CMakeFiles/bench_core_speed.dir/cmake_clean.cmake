file(REMOVE_RECURSE
  "CMakeFiles/bench_core_speed.dir/bench_core_speed.cpp.o"
  "CMakeFiles/bench_core_speed.dir/bench_core_speed.cpp.o.d"
  "bench_core_speed"
  "bench_core_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_core_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
