# Empty dependencies file for bench_smart_comparison.
# This may be replaced when dependencies are built.
