file(REMOVE_RECURSE
  "CMakeFiles/bench_smart_comparison.dir/bench_smart_comparison.cpp.o"
  "CMakeFiles/bench_smart_comparison.dir/bench_smart_comparison.cpp.o.d"
  "bench_smart_comparison"
  "bench_smart_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smart_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
