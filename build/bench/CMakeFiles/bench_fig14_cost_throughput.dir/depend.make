# Empty dependencies file for bench_fig14_cost_throughput.
# This may be replaced when dependencies are built.
