# Empty compiler generated dependencies file for bench_ablation_datawidth.
# This may be replaced when dependencies are built.
