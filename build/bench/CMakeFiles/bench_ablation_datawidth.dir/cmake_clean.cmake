file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_datawidth.dir/bench_ablation_datawidth.cpp.o"
  "CMakeFiles/bench_ablation_datawidth.dir/bench_ablation_datawidth.cpp.o.d"
  "bench_ablation_datawidth"
  "bench_ablation_datawidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_datawidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
