file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_multichannel.dir/bench_fig13_multichannel.cpp.o"
  "CMakeFiles/bench_fig13_multichannel.dir/bench_fig13_multichannel.cpp.o.d"
  "bench_fig13_multichannel"
  "bench_fig13_multichannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_multichannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
