# Empty dependencies file for bench_fig13_multichannel.
# This may be replaced when dependencies are built.
