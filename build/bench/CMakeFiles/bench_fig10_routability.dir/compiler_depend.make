# Empty compiler generated dependencies file for bench_fig10_routability.
# This may be replaced when dependencies are built.
