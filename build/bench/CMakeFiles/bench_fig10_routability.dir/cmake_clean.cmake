file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_routability.dir/bench_fig10_routability.cpp.o"
  "CMakeFiles/bench_fig10_routability.dir/bench_fig10_routability.cpp.o.d"
  "bench_fig10_routability"
  "bench_fig10_routability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_routability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
