# Empty dependencies file for bench_fig15a_spmv.
# This may be replaced when dependencies are built.
