file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15a_spmv.dir/bench_fig15a_spmv.cpp.o"
  "CMakeFiles/bench_fig15a_spmv.dir/bench_fig15a_spmv.cpp.o.d"
  "bench_fig15a_spmv"
  "bench_fig15a_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15a_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
