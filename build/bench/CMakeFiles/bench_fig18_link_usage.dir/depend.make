# Empty dependencies file for bench_fig18_link_usage.
# This may be replaced when dependencies are built.
