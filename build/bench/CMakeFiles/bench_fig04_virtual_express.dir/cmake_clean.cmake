file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_virtual_express.dir/bench_fig04_virtual_express.cpp.o"
  "CMakeFiles/bench_fig04_virtual_express.dir/bench_fig04_virtual_express.cpp.o.d"
  "bench_fig04_virtual_express"
  "bench_fig04_virtual_express.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_virtual_express.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
