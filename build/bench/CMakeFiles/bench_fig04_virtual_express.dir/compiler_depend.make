# Empty compiler generated dependencies file for bench_fig04_virtual_express.
# This may be replaced when dependencies are built.
