# Empty dependencies file for bench_fig15b_graph.
# This may be replaced when dependencies are built.
