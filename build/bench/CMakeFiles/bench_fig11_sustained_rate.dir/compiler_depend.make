# Empty compiler generated dependencies file for bench_fig11_sustained_rate.
# This may be replaced when dependencies are built.
