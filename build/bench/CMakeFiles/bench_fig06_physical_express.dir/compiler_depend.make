# Empty compiler generated dependencies file for bench_fig06_physical_express.
# This may be replaced when dependencies are built.
