file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_physical_express.dir/bench_fig06_physical_express.cpp.o"
  "CMakeFiles/bench_fig06_physical_express.dir/bench_fig06_physical_express.cpp.o.d"
  "bench_fig06_physical_express"
  "bench_fig06_physical_express.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_physical_express.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
