/**
 * @file
 * Livelock / forward-progress detection. Deflection routing has no
 * buffers to deadlock, but a bad priority rule lets packets orbit the
 * torus forever (the paper's Section IV-D turn-priority argument).
 * Two complementary detectors, both bounded by livelockBound():
 *
 *  - per-packet age: a packet still in flight after the bound has
 *    been deflected without progress for far longer than any legal
 *    saturated run allows (tier-1 asserts max network latency under
 *    400 * N cycles; the default bound is at least 4000 * N);
 *  - global progress: a non-empty network that delivers nothing for
 *    a whole bound window is orbiting, even if individual event
 *    streams look fresh.
 *
 * Both flag long before test_livelock.cpp's 5M-cycle drain guard, so
 * an FT_CHECK build turns a multi-minute timeout into an immediate
 * diagnostic naming the stuck packet.
 */

#include "check/invariants.hpp"

#include "common/logging.hpp"

namespace fasttrack::check {

void
InvariantChecker::checkPacketAge(PacketState &st, const Packet &p,
                                 Cycle now)
{
    if (st.livelockReported || now - st.injectedAt <= livelockBound_)
        return;
    st.livelockReported = true;
    fail(Violation::livelock, now,
         detail::concat("packet id ", p.id, " (", p.src, " -> ", p.dst,
                        ") in flight for ", now - st.injectedAt,
                        " cycles with ", p.deflections,
                        " deflection(s); livelock bound is ",
                        livelockBound_));
}

void
InvariantChecker::checkGlobalProgress(Cycle now)
{
    if (inFlight_.empty()) {
        lastProgress_ = now;
        return;
    }
    if (now - lastProgress_ <= livelockBound_)
        return;
    fail(Violation::livelock, now,
         detail::concat("no delivery for ", now - lastProgress_,
                        " cycles with ", inFlight_.size(),
                        " packet(s) in flight (oldest id ",
                        inFlight_.begin()->first,
                        "); livelock bound is ", livelockBound_));
    // Rearm so record mode reports once per stalled window instead of
    // once per subsequent cycle.
    lastProgress_ = now;
}

} // namespace fasttrack::check
