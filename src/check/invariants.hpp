/**
 * @file
 * Runtime NoC invariant checker (the FT_CHECK layer).
 *
 * A cycle-accurate bufferless NoC rests on a handful of machine-
 * checkable properties; this module re-derives each one from the raw
 * event stream of a Network, independently of the simulator's own
 * bookkeeping, so a bug in either side shows up as a disagreement:
 *
 *  - conservation: injected == delivered + in-flight at every cycle
 *    (no packet duplicated, dropped, or delivered twice);
 *  - link exclusivity: one packet per physical wire per cycle
 *    (single-driver semantics of an FPGA routing track);
 *  - express legality: express ports exist only at depopulated
 *    positions (x % R == 0), R | D, and an express hop lands exactly
 *    D routers downstream;
 *  - livelock bound: deflection routing must keep making progress;
 *    a packet in flight beyond a configurable age, or a non-empty
 *    network with no delivery for that long, is flagged.
 *
 * The checker is compiled into the simulators only when the build sets
 * FT_CHECK_ENABLED (CMake option FT_CHECK); the library itself is
 * always built so tests can drive it directly in any configuration.
 * FailMode::record collects violations for inspection (used by the
 * negative tests); FailMode::panic aborts on the first violation.
 */

#ifndef FT_CHECK_INVARIANTS_HPP
#define FT_CHECK_INVARIANTS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

#ifndef FT_CHECK_ENABLED
#define FT_CHECK_ENABLED 0
#endif

namespace fasttrack {
struct NocConfig;
}

namespace fasttrack::check {

/** True when the simulators were compiled with invariant hooks. */
inline constexpr bool kHooksEnabled = FT_CHECK_ENABLED != 0;

/** Invariant classes the checker can flag. */
enum class Violation
{
    /** Packet count bookkeeping broke (duplicate, loss, double
     *  delivery, or desync with the network's own counters). */
    conservation,
    /** Two packets drove one physical wire in the same cycle. */
    linkExclusivity,
    /** Express geometry broken: express port at a non-express site,
     *  R does not divide D, or a hop that does not skip exactly D. */
    expressLegality,
    /** Progress bound exceeded (livelock suspect). */
    livelock,
    /** Event-protocol misuse (offer/inject/deliver sequencing). */
    protocol,
};

const char *toString(Violation v);

/**
 * Geometry facts the checker needs, decoupled from NocConfig so the
 * check library depends only on header-level types (tests can also
 * fabricate impossible geometries to exercise the detector).
 */
struct Geometry
{
    std::uint32_t n = 0;
    std::uint32_t d = 0;
    std::uint32_t r = 1;
    bool fastTrack = false;

    std::uint32_t nodes() const { return n * n; }
    bool hasExpressX(std::uint32_t x) const
    {
        return fastTrack && x % r == 0;
    }
    bool hasExpressY(std::uint32_t y) const
    {
        return fastTrack && y % r == 0;
    }
};

/** Extract checker geometry from a NoC configuration. */
Geometry geometryOf(const NocConfig &config);

/** What to do when an invariant fails. */
enum class FailMode
{
    /** FT_PANIC immediately (default inside the simulators). */
    panic,
    /** Append to violations() and keep going (for tests). */
    record,
};

/**
 * Tracks every packet from injection to delivery and validates the
 * invariants above against each event. One checker instance observes
 * exactly one Network (each channel of a multi-channel NoC has its
 * own). Events must be reported in simulation order.
 */
class InvariantChecker
{
  public:
    struct Record
    {
        Violation kind;
        Cycle cycle;
        std::string detail;
    };

    explicit InvariantChecker(const Geometry &geometry,
                              FailMode mode = FailMode::panic);

    // --- event stream from the network ---
    /** A client offered @p p for injection at p.src. */
    void onOffer(const Packet &p, Cycle now);
    /** An un-injected offer was withdrawn (channel retargeting). */
    void onWithdraw(NodeId node, Cycle now);
    /** A self-addressed packet bypassed the network. */
    void onSelfDelivery(const Packet &p, Cycle now);
    /** The router at @p at accepted the pending offer @p p. */
    void onInject(const Packet &p, NodeId at, Cycle now);
    /** @p p left router @p router on output @p out this cycle. */
    void onTraversal(const Packet &p, NodeId router, OutPort out,
                     Cycle now);
    /** @p p exited to the client at node @p at. */
    void onDelivery(const Packet &p, NodeId at, Cycle now);
    /** End of a network step(): cross-check the network's own
     *  accounting and run the progress detector. */
    void onCycleEnd(Cycle now, std::uint64_t reported_in_flight,
                    std::uint64_t reported_pending);
    /** The network claims quiescence: nothing may remain tracked. */
    void verifyQuiescent(Cycle now);

    // --- checkpoint-restore seeding (noc/engine_state.cpp) ---
    /**
     * A snapshot restore replaces the device's state wholesale, so
     * the checker's event-derived tracking must be rebuilt to match:
     * beginRestore clears it, then every restored pending offer and
     * in-flight packet is seeded, then finishRestore re-derives the
     * conservation counters (injected = delivered + in-flight, which
     * holds for trimmed snapshots too) and resets the progress clock.
     */
    void beginRestore(Cycle now);
    /** Seed one restored pending offer (counts like onOffer). */
    void seedPendingOffer(const Packet &p);
    /** Seed one restored in-flight packet whose next arbitration
     *  happens at router @p at (its LinkSlab landing site). */
    void seedInFlightPacket(const Packet &p, NodeId at);
    /** Finalize seeding from the restored measurement counters. */
    void finishRestore(std::uint64_t delivered,
                       std::uint64_t self_delivered, Cycle now);

    /** Progress bound in cycles for the livelock detector. */
    void setLivelockBound(Cycle bound) { livelockBound_ = bound; }
    Cycle livelockBound() const { return livelockBound_; }

    /** Packets the checker saw injected / delivered so far (the
     *  conservation feed of the telemetry cross-validation). */
    std::uint64_t injectedCount() const { return injected_; }
    std::uint64_t deliveredCount() const { return delivered_; }

    /**
     * Cross-validate independently collected telemetry event totals
     * against the checker's own conservation stream: the sink's
     * inject and eject counters must match the checker's counts
     * exactly (both observe the same Network, through disjoint code
     * paths). A mismatch is a conservation violation.
     */
    void verifyTelemetryCounts(std::uint64_t telemetry_injects,
                               std::uint64_t telemetry_ejects,
                               Cycle now);

    const Geometry &geometry() const { return geo_; }
    const std::vector<Record> &violations() const { return violations_; }
    /** Count of per-event validations that ran (tests use this to
     *  prove the hooks actually fired). */
    std::uint64_t eventsChecked() const { return eventsChecked_; }
    std::uint64_t trackedInFlight() const { return inFlight_.size(); }

  private:
    /** Per-packet tracking state, keyed by Packet::id. */
    struct PacketState
    {
        /** Router the next traversal/delivery must occur at. */
        NodeId expectedAt = kInvalidNode;
        Cycle injectedAt = 0;
        /** Cycle of the packet's last traversal (duplicate guard). */
        Cycle lastMove = kNever;
        bool livelockReported = false;
    };

    static constexpr Cycle kNever = ~Cycle{0};

    void fail(Violation kind, Cycle now, std::string detail);
    /** Validate + compute where a hop from @p router on @p out lands. */
    NodeId landingSite(NodeId router, OutPort out, Cycle now);
    /** Per-packet age check against the livelock bound. */
    void checkPacketAge(PacketState &st, const Packet &p, Cycle now);
    /** Global no-delivery progress check (runs at cycle end). */
    void checkGlobalProgress(Cycle now);

    Geometry geo_;
    FailMode mode_;
    Cycle livelockBound_;

    std::map<std::uint64_t, PacketState> inFlight_;
    /** One-pending-offer-per-node rule. */
    std::vector<std::uint8_t> offerPending_;
    /** Last cycle each physical wire carried a packet, indexed by
     *  router * kNumOutPorts + port. */
    std::vector<Cycle> linkLastUsed_;

    std::uint64_t injected_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t selfDelivered_ = 0;
    std::uint64_t pendingOffers_ = 0;
    Cycle lastProgress_ = 0;

    std::vector<Record> violations_;
    std::uint64_t eventsChecked_ = 0;
};

// --- free verifiers hooked into the engine (always panic) -------------

/**
 * Router-local conservation after one arbitration cycle: every input
 * packet (plus an accepted injection) must appear on exactly one
 * output or the exit; acceptance requires an offer; express outputs
 * require express ports at the site.
 */
void verifyRouterResult(Coord pos, std::size_t inputs_present,
                        bool had_offer, bool pe_accepted,
                        std::size_t outputs_assigned, bool delivered,
                        bool illegal_express_x, bool illegal_express_y);

/** Multi-channel single-delivery rule: the shared client exit must not
 *  be driven twice in one cycle. */
void verifyExitExclusivity(bool exit_already_used, NodeId node,
                           Cycle now);

/** End-of-run conservation: a quiescent device must have delivered
 *  exactly what it injected. */
void verifyDrainedStats(std::uint64_t injected, std::uint64_t delivered,
                        bool quiescent);

} // namespace fasttrack::check

#endif // FT_CHECK_INVARIANTS_HPP
