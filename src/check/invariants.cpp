/**
 * @file
 * Checker plumbing: construction, geometry validation, failure
 * dispatch, offer-protocol events, and the free engine-side verifiers.
 * The per-event invariant logic lives in conservation.cpp; the
 * progress detector in livelock.cpp.
 */

#include "check/invariants.hpp"

#include <utility>

#include "common/logging.hpp"
#include "noc/config.hpp"

namespace fasttrack::check {

const char *
toString(Violation v)
{
    switch (v) {
    case Violation::conservation:
        return "conservation";
    case Violation::linkExclusivity:
        return "link-exclusivity";
    case Violation::expressLegality:
        return "express-legality";
    case Violation::livelock:
        return "livelock";
    case Violation::protocol:
        return "protocol";
    }
    return "unknown";
}

Geometry
geometryOf(const NocConfig &config)
{
    Geometry g;
    g.n = config.n;
    g.d = config.d;
    g.r = config.r;
    g.fastTrack = config.isFastTrack();
    return g;
}

InvariantChecker::InvariantChecker(const Geometry &geometry,
                                   FailMode mode)
    : geo_(geometry), mode_(mode),
      livelockBound_(std::max<Cycle>(100'000, 4'000ull * geometry.n)),
      offerPending_(geometry.nodes(), 0),
      linkLastUsed_(static_cast<std::size_t>(geometry.nodes()) *
                        kNumOutPorts,
                    kNever)
{
    if (geo_.n < 2)
        fail(Violation::protocol, 0,
             detail::concat("degenerate geometry: n=", geo_.n));
    if (geo_.fastTrack) {
        if (geo_.r == 0 || geo_.d == 0)
            fail(Violation::expressLegality, 0,
                 detail::concat("bad express parameters d=", geo_.d,
                                " r=", geo_.r));
        else if (geo_.d % geo_.r != 0)
            fail(Violation::expressLegality, 0,
                 detail::concat("R must divide D: d=", geo_.d,
                                " r=", geo_.r));
    }
}

void
InvariantChecker::fail(Violation kind, Cycle now, std::string detail)
{
    if (mode_ == FailMode::panic) {
        FT_PANIC("invariant violation [", toString(kind), "] at cycle ",
                 now, ": ", detail);
    }
    violations_.push_back(Record{kind, now, std::move(detail)});
}

void
InvariantChecker::onOffer(const Packet &p, Cycle now)
{
    ++eventsChecked_;
    if (p.src >= geo_.nodes() || p.dst >= geo_.nodes()) {
        fail(Violation::protocol, now,
             detail::concat("offer with out-of-range endpoints ", p.src,
                            " -> ", p.dst));
        return;
    }
    if (offerPending_[p.src]) {
        fail(Violation::protocol, now,
             detail::concat("node ", p.src,
                            " offered while an offer is pending"));
        return;
    }
    offerPending_[p.src] = 1;
    ++pendingOffers_;
}

void
InvariantChecker::onWithdraw(NodeId node, Cycle now)
{
    ++eventsChecked_;
    if (node >= geo_.nodes() || !offerPending_[node]) {
        fail(Violation::protocol, now,
             detail::concat("withdraw at node ", node,
                            " without a pending offer"));
        return;
    }
    offerPending_[node] = 0;
    --pendingOffers_;
}

void
InvariantChecker::onSelfDelivery(const Packet &p, Cycle now)
{
    ++eventsChecked_;
    if (p.src != p.dst)
        fail(Violation::protocol, now,
             detail::concat("self-delivery of non-local packet ", p.id,
                            " (", p.src, " -> ", p.dst, ")"));
    ++selfDelivered_;
}

void
InvariantChecker::verifyQuiescent(Cycle now)
{
    ++eventsChecked_;
    if (!inFlight_.empty()) {
        fail(Violation::conservation, now,
             detail::concat("network claims quiescence with ",
                            inFlight_.size(), " packet(s) tracked in "
                            "flight (first id ",
                            inFlight_.begin()->first, ")"));
    }
    if (pendingOffers_ != 0)
        fail(Violation::conservation, now,
             detail::concat("network claims quiescence with ",
                            pendingOffers_, " pending offer(s)"));
    if (injected_ != delivered_)
        fail(Violation::conservation, now,
             detail::concat("quiescent but injected=", injected_,
                            " != delivered=", delivered_));
}

void
InvariantChecker::beginRestore(Cycle now)
{
    inFlight_.clear();
    offerPending_.assign(geo_.nodes(), 0);
    linkLastUsed_.assign(
        static_cast<std::size_t>(geo_.nodes()) * kNumOutPorts, kNever);
    injected_ = 0;
    delivered_ = 0;
    selfDelivered_ = 0;
    pendingOffers_ = 0;
    lastProgress_ = now;
}

void
InvariantChecker::seedPendingOffer(const Packet &p)
{
    if (p.src < geo_.nodes() && !offerPending_[p.src]) {
        offerPending_[p.src] = 1;
        ++pendingOffers_;
    }
}

void
InvariantChecker::seedInFlightPacket(const Packet &p, NodeId at)
{
    inFlight_[p.id] = PacketState{at, p.injected, kNever, false};
}

void
InvariantChecker::finishRestore(std::uint64_t delivered,
                                std::uint64_t self_delivered, Cycle now)
{
    delivered_ = delivered;
    selfDelivered_ = self_delivered;
    // Conservation baseline: every tracked packet must eventually be
    // delivered, so the injected count the event stream would have
    // produced is exactly delivered-so-far plus in-flight. This also
    // holds for trimmed snapshots (delivered = 0 there): the checker
    // then counts the slice's own conservation ledger.
    injected_ = delivered + inFlight_.size();
    lastProgress_ = now;
}

void
InvariantChecker::verifyTelemetryCounts(std::uint64_t telemetry_injects,
                                        std::uint64_t telemetry_ejects,
                                        Cycle now)
{
    ++eventsChecked_;
    if (telemetry_injects != injected_)
        fail(Violation::conservation, now,
             detail::concat("telemetry counted ", telemetry_injects,
                            " inject event(s) but the checker saw ",
                            injected_, " injection(s)"));
    if (telemetry_ejects != delivered_)
        fail(Violation::conservation, now,
             detail::concat("telemetry counted ", telemetry_ejects,
                            " eject event(s) but the checker saw ",
                            delivered_, " deliver(ies)"));
}

// --- free engine-side verifiers ---------------------------------------

void
verifyRouterResult(Coord pos, std::size_t inputs_present,
                   bool had_offer, bool pe_accepted,
                   std::size_t outputs_assigned, bool delivered,
                   bool illegal_express_x, bool illegal_express_y)
{
    const std::size_t in_count = inputs_present + (pe_accepted ? 1 : 0);
    const std::size_t out_count =
        outputs_assigned + (delivered ? 1 : 0);
    FT_ASSERT(in_count == out_count,
              "router conservation broken at ", coordToString(pos),
              ": ", inputs_present, " input(s) + ",
              pe_accepted ? 1 : 0, " accepted != ", outputs_assigned,
              " output(s) + ", delivered ? 1 : 0, " delivered");
    FT_ASSERT(!pe_accepted || had_offer,
              "router at ", coordToString(pos),
              " accepted an injection without an offer");
    FT_ASSERT(!illegal_express_x,
              "router at ", coordToString(pos),
              " drove an east express port it does not have");
    FT_ASSERT(!illegal_express_y,
              "router at ", coordToString(pos),
              " drove a south express port it does not have");
}

void
verifyExitExclusivity(bool exit_already_used, NodeId node, Cycle now)
{
    FT_ASSERT(!exit_already_used,
              "invariant violation [exit-exclusivity] at cycle ", now,
              ": node ", node,
              " accepted two deliveries in one cycle");
}

void
verifyDrainedStats(std::uint64_t injected, std::uint64_t delivered,
                   bool quiescent)
{
    if (!quiescent)
        return;
    FT_ASSERT(injected == delivered,
              "invariant violation [conservation] at end of run: ",
              injected, " injected but ", delivered, " delivered");
}

} // namespace fasttrack::check
