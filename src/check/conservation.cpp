/**
 * @file
 * Per-event conservation, link-exclusivity and express-legality
 * checks: every packet is tracked from injection to delivery, each
 * hop is validated against the wire it claims to ride, and the
 * network's own counters are cross-checked at every cycle end.
 */

#include "check/invariants.hpp"

#include "common/logging.hpp"

namespace fasttrack::check {
namespace {

/** Local port name (the noc library's toString lives in ft_noc; the
 *  check library links only ft_common). */
const char *
wireName(OutPort p)
{
    switch (p) {
    case OutPort::eEx:
        return "E_EX";
    case OutPort::eSh:
        return "E_SH";
    case OutPort::sEx:
        return "S_EX";
    case OutPort::sSh:
        return "S_SH";
    case OutPort::none:
        break;
    }
    return "none";
}

} // namespace

NodeId
InvariantChecker::landingSite(NodeId router, OutPort out, Cycle now)
{
    const Coord c = toCoord(router, geo_.n);
    switch (out) {
    case OutPort::eSh:
        return toNodeId(Coord{static_cast<std::uint16_t>((c.x + 1) %
                                                         geo_.n),
                              c.y},
                        geo_.n);
    case OutPort::sSh:
        return toNodeId(Coord{c.x, static_cast<std::uint16_t>(
                                       (c.y + 1) % geo_.n)},
                        geo_.n);
    case OutPort::eEx:
        if (!geo_.hasExpressX(c.x)) {
            fail(Violation::expressLegality, now,
                 detail::concat("east express hop from ",
                                coordToString(c),
                                " which has no X express port"));
            return kInvalidNode;
        }
        return toNodeId(Coord{static_cast<std::uint16_t>(
                                  (c.x + geo_.d) % geo_.n),
                              c.y},
                        geo_.n);
    case OutPort::sEx:
        if (!geo_.hasExpressY(c.y)) {
            fail(Violation::expressLegality, now,
                 detail::concat("south express hop from ",
                                coordToString(c),
                                " which has no Y express port"));
            return kInvalidNode;
        }
        return toNodeId(Coord{c.x, static_cast<std::uint16_t>(
                                       (c.y + geo_.d) % geo_.n)},
                        geo_.n);
    case OutPort::none:
        break;
    }
    fail(Violation::protocol, now,
         detail::concat("traversal on invalid port from router ",
                        router));
    return kInvalidNode;
}

void
InvariantChecker::onInject(const Packet &p, NodeId at, Cycle now)
{
    ++eventsChecked_;
    if (at >= geo_.nodes() || p.src != at) {
        fail(Violation::protocol, now,
             detail::concat("packet ", p.id, " injected at node ", at,
                            " but has source ", p.src));
        return;
    }
    if (!offerPending_[at]) {
        fail(Violation::protocol, now,
             detail::concat("injection at node ", at,
                            " without a pending offer"));
    } else {
        offerPending_[at] = 0;
        --pendingOffers_;
    }
    auto [it, inserted] =
        inFlight_.try_emplace(p.id, PacketState{at, now, kNever, false});
    if (!inserted) {
        fail(Violation::conservation, now,
             detail::concat("packet id ", p.id,
                            " injected while already in flight "
                            "(duplicated packet)"));
        // Keep going in record mode: restart tracking from here.
        it->second = PacketState{at, now, kNever, false};
        return;
    }
    ++injected_;
}

void
InvariantChecker::onTraversal(const Packet &p, NodeId router,
                              OutPort out, Cycle now)
{
    ++eventsChecked_;
    if (router >= geo_.nodes()) {
        fail(Violation::protocol, now,
             detail::concat("traversal from out-of-range router ",
                            router));
        return;
    }

    // Single-driver rule: one packet per physical wire per cycle.
    const std::size_t wire =
        static_cast<std::size_t>(router) * kNumOutPorts +
        static_cast<std::size_t>(out);
    if (wire < linkLastUsed_.size()) {
        if (linkLastUsed_[wire] == now) {
            fail(Violation::linkExclusivity, now,
                 detail::concat("wire ", wireName(out), " of router ",
                                router,
                                " driven twice in one cycle (second "
                                "packet id ",
                                p.id, ")"));
        }
        linkLastUsed_[wire] = now;
    }

    const NodeId landing = landingSite(router, out, now);

    auto it = inFlight_.find(p.id);
    if (it == inFlight_.end()) {
        fail(Violation::conservation, now,
             detail::concat("packet id ", p.id, " traversed router ",
                            router,
                            " but is not in flight (phantom or "
                            "duplicated packet)"));
        // Track it from here so one bad event does not cascade.
        it = inFlight_
                 .try_emplace(p.id, PacketState{landing, now, now, false})
                 .first;
        return;
    }
    PacketState &st = it->second;

    if (st.lastMove == now) {
        fail(Violation::conservation, now,
             detail::concat("packet id ", p.id,
                            " moved twice in cycle ", now,
                            " (duplicated packet)"));
    }
    st.lastMove = now;

    if (st.expectedAt != kInvalidNode && router != st.expectedAt) {
        fail(Violation::expressLegality, now,
             detail::concat("packet id ", p.id, " hopped to router ",
                            router, " but its last hop landed at ",
                            st.expectedAt,
                            " (hop length does not match link)"));
    }
    st.expectedAt = landing;
    checkPacketAge(st, p, now);
}

void
InvariantChecker::onDelivery(const Packet &p, NodeId at, Cycle now)
{
    ++eventsChecked_;
    if (p.dst != at) {
        fail(Violation::protocol, now,
             detail::concat("packet id ", p.id, " delivered at node ",
                            at, " but is addressed to ", p.dst));
    }
    auto it = inFlight_.find(p.id);
    if (it == inFlight_.end()) {
        fail(Violation::conservation, now,
             detail::concat("packet id ", p.id, " delivered at node ",
                            at,
                            " but is not in flight (double delivery "
                            "or phantom packet)"));
        return;
    }
    if (it->second.expectedAt != kInvalidNode &&
        at != it->second.expectedAt) {
        fail(Violation::expressLegality, now,
             detail::concat("packet id ", p.id, " delivered at node ",
                            at, " but its last hop landed at ",
                            it->second.expectedAt));
    }
    inFlight_.erase(it);
    ++delivered_;
    lastProgress_ = now;
}

void
InvariantChecker::onCycleEnd(Cycle now, std::uint64_t reported_in_flight,
                             std::uint64_t reported_pending)
{
    ++eventsChecked_;
    if (reported_in_flight != inFlight_.size()) {
        fail(Violation::conservation, now,
             detail::concat("network reports ", reported_in_flight,
                            " packet(s) in flight but the event "
                            "stream implies ",
                            inFlight_.size(), " (injected=", injected_,
                            " delivered=", delivered_, ")"));
    }
    if (reported_pending != pendingOffers_) {
        fail(Violation::conservation, now,
             detail::concat("network reports ", reported_pending,
                            " pending offer(s) but the event stream "
                            "implies ",
                            pendingOffers_));
    }
    checkGlobalProgress(now);
}

} // namespace fasttrack::check
