#include "telemetry/sink.hpp"

#include <chrono>

#include "common/logging.hpp"

namespace fasttrack::telemetry {

const char *
toString(EventKind kind)
{
    switch (kind) {
    case EventKind::inject:
        return "inject";
    case EventKind::route:
        return "route";
    case EventKind::expressHop:
        return "express_hop";
    case EventKind::deflect:
        return "deflect";
    case EventKind::eject:
        return "eject";
    case EventKind::backlogStall:
        return "backlog_stall";
    }
    return "unknown";
}

namespace {

std::atomic<TraceSink *> g_sink{nullptr};
std::atomic<std::uint64_t> g_sinkEpoch{1};

std::uint64_t
wallMicros()
{
    // Host profiling only: phase spans are presentation artifacts and
    // never feed simulated results (see docs/observability.md).
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() // ft-lint: allow(ft-nondeterminism)
                .time_since_epoch())
            .count());
}

} // namespace

TraceSink::TraceSink(TelemetryConfig config)
    : config_(std::move(config)),
      epochId_(g_sinkEpoch.fetch_add(1, std::memory_order_relaxed)),
      startUs_(wallMicros())
{
    FT_ASSERT(config_.ringCapacity >= 2, "telemetry ring too small");
    FT_ASSERT(config_.epoch >= 1, "telemetry epoch must be positive");
}

TraceSink::~TraceSink()
{
    if (installed() == this)
        uninstall(this);
}

ThreadLog &
TraceSink::local()
{
    thread_local std::uint64_t bound_epoch = 0;
    thread_local ThreadLog *bound_log = nullptr;
    if (bound_epoch != epochId_) {
        MutexLock lock(mutex_);
        logs_.push_back(std::make_unique<ThreadLog>(
            static_cast<std::uint32_t>(logs_.size()),
            config_.ringCapacity, config_.traceEvents));
        bound_log = logs_.back().get();
        bound_epoch = epochId_;
    }
    return *bound_log;
}

void
TraceSink::recordPhase(const std::string &name, std::uint64_t start_us,
                       std::uint64_t duration_us)
{
    MutexLock lock(mutex_);
    phases_.push_back(PhaseSpan{name, start_us, duration_us, 0});
}

std::uint64_t
TraceSink::hostNowUs() const
{
    return wallMicros() - startUs_;
}

std::size_t
TraceSink::threadCount() const
{
    MutexLock lock(mutex_);
    return logs_.size();
}

const ThreadLog &
TraceSink::threadLog(std::size_t i) const
{
    MutexLock lock(mutex_);
    FT_ASSERT(i < logs_.size(), "bad thread-log index");
    return *logs_[i];
}

ThreadLog &
TraceSink::threadLog(std::size_t i)
{
    MutexLock lock(mutex_);
    FT_ASSERT(i < logs_.size(), "bad thread-log index");
    return *logs_[i];
}

KindCounts
TraceSink::totalCounts() const
{
    MutexLock lock(mutex_);
    KindCounts total;
    for (const auto &log : logs_) {
        for (std::size_t k = 0; k < kNumEventKinds; ++k)
            total.byKind[k] += log->counts().byKind[k];
    }
    return total;
}

std::vector<std::uint64_t>
TraceSink::totalLinkCounts() const
{
    MutexLock lock(mutex_);
    std::vector<std::uint64_t> total;
    for (const auto &log : logs_) {
        const auto &counts = log->linkCounts();
        if (counts.size() > total.size())
            total.resize(counts.size(), 0);
        for (std::size_t i = 0; i < counts.size(); ++i)
            total[i] += counts[i];
    }
    return total;
}

std::uint64_t
TraceSink::totalDropped() const
{
    MutexLock lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &log : logs_)
        total += log->ring().dropped();
    return total;
}

std::vector<TraceSink::PhaseSpan>
TraceSink::phases() const
{
    MutexLock lock(mutex_);
    return phases_;
}

void
install(TraceSink *sink)
{
    FT_ASSERT(sink != nullptr, "cannot install a null telemetry sink");
    TraceSink *expected = nullptr;
    const bool ok = g_sink.compare_exchange_strong(
        expected, sink, std::memory_order_release,
        std::memory_order_relaxed);
    FT_ASSERT(ok, "a telemetry sink is already installed; "
                  "sessions must not overlap");
}

void
uninstall(TraceSink *sink)
{
    TraceSink *expected = sink;
    const bool ok = g_sink.compare_exchange_strong(
        expected, nullptr, std::memory_order_release,
        std::memory_order_relaxed);
    FT_ASSERT(ok, "uninstalling a telemetry sink that is not installed");
}

TraceSink *
installed()
{
    return g_sink.load(std::memory_order_acquire);
}

} // namespace fasttrack::telemetry
