/**
 * @file
 * Named-metric registry with per-epoch snapshots: counters (monotonic
 * totals), gauges (instantaneous values) and histograms (latency-like
 * distributions), all keyed by ordered string names so every export
 * is deterministic. A TelemetrySession populates one registry per run
 * from sink counters and device stats; snapshot() freezes the current
 * values as one epoch row of the metrics CSV time series.
 */

#ifndef FT_TELEMETRY_METRICS_HPP
#define FT_TELEMETRY_METRICS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace fasttrack::telemetry {

/**
 * Registry of named metrics. Not thread-safe: a registry belongs to
 * the session thread; worker-thread data reaches it only via the
 * sink's merged totals after workers quiesce.
 */
class MetricsRegistry
{
  public:
    /** One frozen row of the time series. */
    struct Epoch
    {
        Cycle cycle = 0;
        /** Metric name -> value at snapshot time (counters and
         *  gauges; histograms are summarized only at export). */
        std::map<std::string, double> values;
    };

    /** Monotonic counter slot, created at first use. */
    std::uint64_t &counter(const std::string &name);
    /** Instantaneous gauge slot, created at first use. */
    double &gauge(const std::string &name);
    /** Distribution slot, created at first use. */
    Histogram &histogram(const std::string &name);

    std::uint64_t counterValue(const std::string &name) const;
    double gaugeValue(const std::string &name) const;

    /** Freeze the current counter/gauge values as the epoch row
     *  ending at simulated cycle @p now. */
    void snapshot(Cycle now);

    const std::vector<Epoch> &epochs() const { return epochs_; }

    /**
     * Write the epoch time series as CSV: one row per snapshot, one
     * column per metric (union over all epochs; absent = 0).
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Write the end-of-run summary as CSV: every counter and gauge's
     * final value plus count/mean/p50/p95/p99/max per histogram
     * (interpolated percentiles; well-defined for empty and
     * single-sample histograms, never NaN).
     */
    void writeSummary(std::ostream &os) const;

    bool empty() const
    {
        return counters_.empty() && gauges_.empty() && hists_.empty();
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> hists_;
    std::vector<Epoch> epochs_;
};

} // namespace fasttrack::telemetry

#endif // FT_TELEMETRY_METRICS_HPP
