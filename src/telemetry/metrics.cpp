#include "telemetry/metrics.hpp"

#include <set>

namespace fasttrack::telemetry {

std::uint64_t &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

double &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    return hists_[name];
}

std::uint64_t
MetricsRegistry::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gaugeValue(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

void
MetricsRegistry::snapshot(Cycle now)
{
    Epoch e;
    e.cycle = now;
    for (const auto &[name, value] : counters_)
        e.values[name] = static_cast<double>(value);
    for (const auto &[name, value] : gauges_)
        e.values[name] = value;
    epochs_.push_back(std::move(e));
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    // Column set: union of names across epochs, in name order, so a
    // metric created mid-run still lines up (absent = 0).
    std::set<std::string> names;
    for (const Epoch &e : epochs_) {
        for (const auto &[name, value] : e.values)
            names.insert(name);
    }
    os << "cycle";
    for (const std::string &name : names)
        os << ',' << name;
    os << '\n';
    for (const Epoch &e : epochs_) {
        os << e.cycle;
        for (const std::string &name : names) {
            const auto it = e.values.find(name);
            os << ','
               << (it == e.values.end() ? 0.0 : it->second);
        }
        os << '\n';
    }
}

void
MetricsRegistry::writeSummary(std::ostream &os) const
{
    os << "metric,kind,value\n";
    for (const auto &[name, value] : counters_)
        os << name << ",counter," << value << '\n';
    for (const auto &[name, value] : gauges_)
        os << name << ",gauge," << value << '\n';
    for (const auto &[name, h] : hists_) {
        os << name << ".count,histogram," << h.count() << '\n';
        os << name << ".mean,histogram," << h.mean() << '\n';
        os << name << ".p50,histogram," << h.percentileLerp(50) << '\n';
        os << name << ".p95,histogram," << h.percentileLerp(95) << '\n';
        os << name << ".p99,histogram," << h.percentileLerp(99) << '\n';
        os << name << ".max,histogram," << h.max() << '\n';
    }
}

} // namespace fasttrack::telemetry
