/**
 * @file
 * Telemetry artifact exporters: Chrome trace_event JSON (open in
 * chrome://tracing or https://ui.perfetto.dev), per-link utilization
 * heatmaps (CSV + ASCII via common/ascii_chart), and metrics CSV
 * time series / summaries. All exporters are consumer-side: call
 * them only when no thread is still emitting into the sink.
 */

#ifndef FT_TELEMETRY_EXPORTERS_HPP
#define FT_TELEMETRY_EXPORTERS_HPP

#include <ostream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack::telemetry {

/**
 * Drain every thread log's ring into one Chrome trace_event JSON file
 * per producing thread ("<prefix>trace_t<k>.json" under @p dir) with
 * simulated cycles as microsecond timestamps. Returns the written
 * paths. Dropped-event counts are recorded in each file's metadata.
 */
std::vector<std::string> writeChromeTraces(TraceSink &sink,
                                           const std::string &dir,
                                           const std::string &prefix);

/** Write one thread log's drained events as Chrome trace JSON. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events,
                      std::uint32_t thread_index,
                      std::uint64_t dropped);

/**
 * Write the host-side phase spans (PhaseTimer) as a Chrome trace of
 * complete ("X") events in real microseconds. No file is written when
 * no phases were recorded; returns the path or "".
 */
std::string writePhaseTrace(const TraceSink &sink,
                            const std::string &dir,
                            const std::string &prefix);

/**
 * Per-link utilization as CSV: one row per (router, output port) with
 * coordinates and traversal count. @p link_counts is indexed
 * node * 4 + OutPort (TraceSink::totalLinkCounts()); @p n is the
 * torus side, or 0 to derive it from the highest active node.
 */
void writeLinkHeatmapCsv(std::ostream &os,
                         const std::vector<std::uint64_t> &link_counts,
                         std::uint32_t n);

/** Render per-router total traversals as an ASCII heatmap grid. */
void writeLinkHeatmapAscii(std::ostream &os,
                           const std::vector<std::uint64_t> &link_counts,
                           std::uint32_t n,
                           const std::string &title);

/** Torus side implied by @p link_counts (highest active node). */
std::uint32_t deriveSide(const std::vector<std::uint64_t> &link_counts);

/** Stable OutPort name for heatmap columns (index 0..3). */
const char *outPortName(std::uint8_t port);
/** Stable InPort name for deflection attribution (index 0..4). */
const char *inPortName(std::uint8_t port);

} // namespace fasttrack::telemetry

#endif // FT_TELEMETRY_EXPORTERS_HPP
