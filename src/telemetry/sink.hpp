/**
 * @file
 * The telemetry trace sink: per-thread event logs behind a single
 * process-global installation point.
 *
 * Cost model (the whole point of this layer):
 *  - *No sink installed*: the simulators' stepping cores are compiled
 *    in a telemetry-free instantiation (see Network::stepImpl); the
 *    only residual cost is one relaxed atomic load per step() call.
 *  - *Sink installed*: each simulation thread appends POD TraceEvents
 *    to its own SPSC ring (wait-free, drop-counted on overflow) and
 *    bumps dense per-kind / per-link counters. No locks, no
 *    allocation steady-state, no cross-thread traffic on the hot
 *    path.
 *
 * Counters are maintained outside the ring, so aggregate metrics stay
 * exact even when the ring drops trace records under overload; drops
 * only cost completeness of the exported Chrome trace.
 *
 * Consumer-side methods (totals, drains, export) require producers to
 * be quiescent: call them after the simulation loop returned, or
 * after parallelMap joined its workers.
 */

#ifndef FT_TELEMETRY_SINK_HPP
#define FT_TELEMETRY_SINK_HPP

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "telemetry/events.hpp"
#include "telemetry/ring_buffer.hpp"

namespace fasttrack::telemetry {

/** Knobs of one telemetry session. */
struct TelemetryConfig
{
    /** Artifact output directory; empty = in-memory only (counters
     *  and rings still collected, nothing written). */
    std::string dir;
    /** Prefix for every artifact file name (e.g. a config label). */
    std::string filePrefix;
    /** Metrics snapshot period in simulated cycles. */
    Cycle epoch = 1024;
    /** Per-thread trace-ring capacity in events (rounded up to a
     *  power of two). */
    std::size_t ringCapacity = std::size_t{1} << 16;
    /** Record TraceEvents into the rings; counters are always on. */
    bool traceEvents = true;
};

/** Dense per-kind event totals. */
struct KindCounts
{
    std::array<std::uint64_t, kNumEventKinds> byKind{};

    std::uint64_t of(EventKind k) const
    {
        return byKind[static_cast<std::size_t>(k)];
    }
};

/**
 * One thread's private telemetry state: an SPSC trace ring plus dense
 * counters. emit() is the single producer-side entry point.
 */
class ThreadLog
{
  public:
    ThreadLog(std::uint32_t index, std::size_t ring_capacity,
              bool trace_events)
        : ring_(ring_capacity), traceEvents_(trace_events), index_(index)
    {
    }

    /** Record one event (hot path; wait-free). */
    void emit(EventKind kind, Cycle cycle, NodeId node,
              std::uint8_t port, std::uint64_t packet,
              std::uint16_t aux)
    {
        ++counts_.byKind[static_cast<std::size_t>(kind)];
        if (kind == EventKind::route || kind == EventKind::expressHop) {
            const std::size_t idx =
                static_cast<std::size_t>(node) * 4 + port;
            if (idx >= linkCounts_.size())
                growLinkCounts(idx);
            ++linkCounts_[idx];
        }
        if (traceEvents_)
            ring_.tryPush(TraceEvent{cycle, packet, node, aux, kind,
                                     port});
    }

    std::uint32_t index() const { return index_; }
    const KindCounts &counts() const { return counts_; }
    /** Per-link traversal counts, indexed node * 4 + OutPort. */
    const std::vector<std::uint64_t> &linkCounts() const
    {
        return linkCounts_;
    }
    SpscRing<TraceEvent> &ring() { return ring_; }
    const SpscRing<TraceEvent> &ring() const { return ring_; }

  private:
    void growLinkCounts(std::size_t idx)
    {
        std::size_t want = linkCounts_.empty() ? 256 : linkCounts_.size();
        while (want <= idx)
            want *= 2;
        linkCounts_.resize(want, 0);
    }

    SpscRing<TraceEvent> ring_;
    KindCounts counts_;
    std::vector<std::uint64_t> linkCounts_;
    bool traceEvents_;
    std::uint32_t index_;
};

/**
 * The installable sink. Owns one ThreadLog per producing thread
 * (created lazily on first emit from that thread) and the host-side
 * phase spans recorded by PhaseTimer.
 */
class TraceSink
{
  public:
    /** A wall-clock span of host work (e.g. one parallelMap sweep),
     *  in microseconds relative to the sink's construction. */
    struct PhaseSpan
    {
        std::string name;
        std::uint64_t startUs = 0;
        std::uint64_t durationUs = 0;
        std::uint32_t thread = 0;
    };

    explicit TraceSink(TelemetryConfig config);
    ~TraceSink();
    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    const TelemetryConfig &config() const { return config_; }

    /** The calling thread's log, registering it on first use. */
    ThreadLog &local();

    /** Record a host-side phase span (taken by PhaseTimer). */
    void recordPhase(const std::string &name, std::uint64_t start_us,
                     std::uint64_t duration_us);

    /** Microseconds of host wall-clock since sink construction
     *  (feeds PhaseTimer; never feeds simulation results). */
    std::uint64_t hostNowUs() const;

    // --- consumer side: producers must be quiescent ---
    std::size_t threadCount() const;
    const ThreadLog &threadLog(std::size_t i) const;
    ThreadLog &threadLog(std::size_t i);
    KindCounts totalCounts() const;
    /** Per-link totals summed over threads (node * 4 + port). */
    std::vector<std::uint64_t> totalLinkCounts() const;
    std::uint64_t totalDropped() const;
    std::vector<PhaseSpan> phases() const;

  private:
    TelemetryConfig config_;
    /** Identity for thread_local re-binding (unique per sink ever
     *  constructed, so a stale cached pointer can never match). */
    std::uint64_t epochId_;
    std::uint64_t startUs_;
    mutable Mutex mutex_;
    std::vector<std::unique_ptr<ThreadLog>> logs_ FT_GUARDED_BY(mutex_);
    std::vector<PhaseSpan> phases_ FT_GUARDED_BY(mutex_);

    friend void install(TraceSink *sink);
    friend void uninstall(TraceSink *sink);
};

/** Install @p sink as the process-global telemetry sink. Panics if
 *  another sink is already installed (sessions must not overlap). */
void install(TraceSink *sink);

/** Remove @p sink; panics if it is not the installed one. */
void uninstall(TraceSink *sink);

/** The installed sink, or nullptr (one relaxed atomic load). */
TraceSink *installed();

/**
 * RAII host-side phase timer: measures the wall-clock span of a scope
 * (e.g. one parallelMap sweep) and records it on the installed sink.
 * No-op when no sink is installed. Wall-clock never feeds simulation
 * results — spans only appear in exported artifacts.
 */
class PhaseTimer
{
  public:
    explicit PhaseTimer(std::string name)
        : sink_(installed()), name_(std::move(name)),
          startUs_(sink_ ? sink_->hostNowUs() : 0)
    {
    }
    ~PhaseTimer()
    {
        if (sink_)
            sink_->recordPhase(name_, startUs_,
                               sink_->hostNowUs() - startUs_);
    }
    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    TraceSink *sink_;
    std::string name_;
    std::uint64_t startUs_;
};

/**
 * Telemetry emission for call sites compiled in both enabled and
 * disabled flavors: @p enabled must be a compile-time constant (the
 * stepping core's HasTelem parameter), so the disabled instantiation
 * contains no telemetry code at all.
 */
#define FT_TELEM(enabled, log_ptr, ...)                                 \
    do {                                                                \
        if constexpr (enabled)                                          \
            (log_ptr)->emit(__VA_ARGS__);                               \
    } while (0)

/** Runtime-gated form for non-templated call sites. */
#define FT_TELEM_DYN(log_ptr, ...)                                      \
    do {                                                                \
        if (log_ptr)                                                    \
            (log_ptr)->emit(__VA_ARGS__);                               \
    } while (0)

} // namespace fasttrack::telemetry

#endif // FT_TELEMETRY_SINK_HPP
