/**
 * @file
 * Telemetry event vocabulary: the compact POD records the simulators
 * emit into per-thread ring buffers (see sink.hpp). The telemetry
 * layer sits *below* the NoC libraries (it depends only on
 * common/types), so port numbers travel as raw bytes here and are
 * named by the exporters; the numbering matches noc/routing.hpp's
 * OutPort/InPort enums and is pinned by tests/test_telemetry.cpp.
 */

#ifndef FT_TELEMETRY_EVENTS_HPP
#define FT_TELEMETRY_EVENTS_HPP

#include <cstdint>

#include "common/types.hpp"

namespace fasttrack::telemetry {

/** What happened. Values index dense counter arrays; append only. */
enum class EventKind : std::uint8_t
{
    /** A PE offer won injection into the network. */
    inject = 0,
    /** A packet traversed a short link (port = OutPort). */
    route = 1,
    /** A packet traversed an express link (port = OutPort). */
    expressHop = 2,
    /** Arbitration handed an input a non-preferred output
     *  (port = InPort, aux = deflections this cycle at that port). */
    deflect = 3,
    /** A packet exited to its destination client
     *  (aux = total latency in cycles, saturated to 16 bits). */
    eject = 4,
    /** A pending PE offer was refused this cycle (backlog stall). */
    backlogStall = 5,
};

inline constexpr std::size_t kNumEventKinds = 6;

/** Stable display name of @p kind (exporters and tests). */
const char *toString(EventKind kind);

/** Sentinel for "no port" in TraceEvent::port. */
inline constexpr std::uint8_t kNoPort = 0xff;

/**
 * One trace record: 24 bytes, trivially copyable, written on the
 * simulator hot path only in the telemetry-enabled stepping-core
 * instantiation (see Network::stepImpl).
 */
struct TraceEvent
{
    /** Simulated cycle of the event. */
    Cycle cycle = 0;
    /** Packet id, or 0 for aggregate events (deflect). */
    std::uint64_t packet = 0;
    /** Router/PE node the event occurred at. */
    NodeId node = kInvalidNode;
    /** Kind-dependent payload (latency, deflection delta, ...). */
    std::uint16_t aux = 0;
    EventKind kind = EventKind::inject;
    /** OutPort (route/expressHop), InPort (deflect), or kNoPort. */
    std::uint8_t port = kNoPort;
};

static_assert(sizeof(TraceEvent) == 24, "TraceEvent grew unexpectedly");

} // namespace fasttrack::telemetry

#endif // FT_TELEMETRY_EVENTS_HPP
