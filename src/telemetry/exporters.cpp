#include "telemetry/exporters.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/ascii_chart.hpp"
#include "common/logging.hpp"

namespace fasttrack::telemetry {

namespace {

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
            continue;
        }
        out.push_back(c);
    }
    return out;
}

std::ofstream
openArtifact(const std::string &dir, const std::string &name)
{
    std::filesystem::create_directories(dir);
    const std::filesystem::path path =
        std::filesystem::path(dir) / name;
    std::ofstream os(path);
    FT_ASSERT(os.good(), "cannot open telemetry artifact ",
              path.string());
    return os;
}

} // namespace

const char *
outPortName(std::uint8_t port)
{
    // Mirrors noc/routing.hpp OutPort order; pinned by
    // tests/test_telemetry.cpp so the two cannot drift silently.
    static constexpr const char *kNames[] = {"eEx", "eSh", "sEx",
                                             "sSh"};
    return port < 4 ? kNames[port] : "none";
}

const char *
inPortName(std::uint8_t port)
{
    static constexpr const char *kNames[] = {"wEx", "nEx", "wSh",
                                             "nSh", "pe"};
    return port < 5 ? kNames[port] : "none";
}

std::uint32_t
deriveSide(const std::vector<std::uint64_t> &link_counts)
{
    std::size_t max_node = 0;
    bool any = false;
    for (std::size_t i = 0; i < link_counts.size(); ++i) {
        if (link_counts[i]) {
            max_node = i / 4;
            any = true;
        }
    }
    if (!any)
        return 0;
    std::uint32_t n = 1;
    while (static_cast<std::size_t>(n) * n <= max_node)
        ++n;
    return n;
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 std::uint32_t thread_index, std::uint64_t dropped)
{
    os << "{\"traceEvents\":[\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"NoC (1us = 1 cycle)\"}}";
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
          "\"tid\":"
       << thread_index << ",\"args\":{\"name\":\"sim thread "
       << thread_index << "\"}}";
    for (const TraceEvent &e : events) {
        os << ",\n{\"name\":\"" << toString(e.kind)
           << "\",\"cat\":\"noc\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
           << e.cycle << ",\"pid\":0,\"tid\":" << thread_index
           << ",\"args\":{\"node\":" << e.node;
        if (e.packet)
            os << ",\"packet\":" << e.packet;
        if (e.port != kNoPort) {
            const bool in_port = e.kind == EventKind::deflect;
            os << ",\"port\":\""
               << (in_port ? inPortName(e.port) : outPortName(e.port))
               << "\"";
        }
        if (e.aux)
            os << ",\"aux\":" << e.aux;
        os << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"generator\":\"fasttrack-telemetry\",\"dropped_events\":"
       << dropped << "}}\n";
}

std::vector<std::string>
writeChromeTraces(TraceSink &sink, const std::string &dir,
                  const std::string &prefix)
{
    std::vector<std::string> paths;
    const std::size_t threads = sink.threadCount();
    std::vector<TraceEvent> events;
    for (std::size_t t = 0; t < threads; ++t) {
        ThreadLog &log = sink.threadLog(t);
        events.clear();
        log.ring().drain(events);
        const std::string name =
            prefix + "trace_t" + std::to_string(t) + ".json";
        std::ofstream os = openArtifact(dir, name);
        writeChromeTrace(os, events, log.index(),
                         log.ring().dropped());
        paths.push_back((std::filesystem::path(dir) / name).string());
    }
    return paths;
}

std::string
writePhaseTrace(const TraceSink &sink, const std::string &dir,
                const std::string &prefix)
{
    const std::vector<TraceSink::PhaseSpan> phases = sink.phases();
    if (phases.empty())
        return "";
    const std::string name = prefix + "phases.json";
    std::ofstream os = openArtifact(dir, name);
    os << "{\"traceEvents\":[\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
          "\"args\":{\"name\":\"host phases (wall clock)\"}}";
    for (const TraceSink::PhaseSpan &p : phases) {
        os << ",\n{\"name\":\"" << jsonEscape(p.name)
           << "\",\"cat\":\"host\",\"ph\":\"X\",\"ts\":" << p.startUs
           << ",\"dur\":" << p.durationUs << ",\"pid\":1,\"tid\":"
           << p.thread << "}";
    }
    os << "\n]}\n";
    return (std::filesystem::path(dir) / name).string();
}

void
writeLinkHeatmapCsv(std::ostream &os,
                    const std::vector<std::uint64_t> &link_counts,
                    std::uint32_t n)
{
    if (n == 0)
        n = deriveSide(link_counts);
    os << "node,x,y,port,traversals\n";
    const std::size_t nodes = static_cast<std::size_t>(n) * n;
    for (std::size_t node = 0; node < nodes; ++node) {
        for (std::uint8_t port = 0; port < 4; ++port) {
            const std::size_t idx = node * 4 + port;
            const std::uint64_t count =
                idx < link_counts.size() ? link_counts[idx] : 0;
            os << node << ',' << node % n << ',' << node / n << ','
               << outPortName(port) << ',' << count << '\n';
        }
    }
}

void
writeLinkHeatmapAscii(std::ostream &os,
                      const std::vector<std::uint64_t> &link_counts,
                      std::uint32_t n, const std::string &title)
{
    if (n == 0)
        n = deriveSide(link_counts);
    if (n == 0) {
        os << title << ": no link traffic recorded\n";
        return;
    }
    AsciiHeatmap map(title + " (per-router link traversals)", n, n);
    for (std::uint32_t y = 0; y < n; ++y) {
        for (std::uint32_t x = 0; x < n; ++x) {
            const std::size_t node =
                static_cast<std::size_t>(y) * n + x;
            std::uint64_t total = 0;
            for (std::uint8_t port = 0; port < 4; ++port) {
                const std::size_t idx = node * 4 + port;
                if (idx < link_counts.size())
                    total += link_counts[idx];
            }
            map.set(x, y, static_cast<double>(total));
        }
    }
    map.print(os);
}

} // namespace fasttrack::telemetry
