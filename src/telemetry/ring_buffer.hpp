/**
 * @file
 * Bounded single-producer/single-consumer ring buffer with drop
 * counting. The telemetry sink gives every simulation thread its own
 * ring, so the producer side is wait-free and never takes a lock on
 * the simulator hot path; on overflow the newest event is dropped and
 * counted rather than blocking or reallocating (EmuNoC-style
 * non-perturbing probes: a full buffer must not change the timing or
 * behavior of the system under test).
 */

#ifndef FT_TELEMETRY_RING_BUFFER_HPP
#define FT_TELEMETRY_RING_BUFFER_HPP

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"

namespace fasttrack::telemetry {

/**
 * SPSC ring of trivially-copyable records. Capacity is rounded up to
 * a power of two so the index wrap is a mask, not a modulo. One
 * thread may push, one thread may drain; the two may be the same
 * thread or distinct threads (acquire/release on the indices orders
 * the payload writes).
 */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    std::size_t capacity() const { return slots_.size(); }

    /** Producer side: append @p v, or count a drop when full. */
    bool tryPush(const T &v)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head - tail > mask_) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[head & mask_] = v;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: move every available record into @p out
     *  (appended), returning how many were drained. */
    std::size_t drain(std::vector<T> &out)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        for (std::size_t i = tail; i != head; ++i)
            out.push_back(slots_[i & mask_]);
        tail_.store(head, std::memory_order_release);
        return head - tail;
    }

    /** Records currently buffered (consumer-side estimate). */
    std::size_t size() const
    {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    /** Pushes rejected because the ring was full. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace fasttrack::telemetry

#endif // FT_TELEMETRY_RING_BUFFER_HPP
