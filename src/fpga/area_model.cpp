#include "fpga/area_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace fasttrack {

namespace {

/** Routers per ring dimension that carry express ports: x % r == 0. */
std::uint32_t
expressPositions(std::uint32_t n, std::uint32_t r)
{
    return (n + r - 1) / r;
}

} // namespace

std::string
NocSpec::describe() const
{
    if (isHoplite()) {
        std::string s = "Hoplite";
        if (channels > 1)
            s += "-" + std::to_string(channels) + "x";
        return s + " " + std::to_string(n) + "x" + std::to_string(n);
    }
    std::string s = injectOnly ? "FTlite(" : "FT(";
    s += std::to_string(pes()) + "," + std::to_string(d) + "," +
         std::to_string(r) + ")";
    return s;
}

AreaModel::AreaModel(const FpgaDevice &device) : device_(device) {}

RouterCost
AreaModel::routerCost(RouterArch arch, std::uint32_t width) const
{
    FT_ASSERT(width >= 1, "zero datawidth");
    const double w = width;
    double lut_per_bit = 0.0;
    double lut_fixed = 0.0;
    double ff_per_bit = 0.0;
    double ff_fixed = 0.0;
    switch (arch) {
      case RouterArch::hoplite:
        // Two 3:1 output muxes (E, S) + DOR decode; W, N, PE inputs and
        // E, S outputs registered.
        lut_per_bit = 2.07;
        lut_fixed = 12.0;
        ff_per_bit = 5.0;
        ff_fixed = 17.0;
        break;
      case RouterArch::ftFull:
        // 4:1 muxes on E_SH/E_EX/S_EX, 5:1 (two LUTs/bit) on the shared
        // exit S_SH path, wider decode; 5 inputs + 4 outputs registered.
        lut_per_bit = 6.20;
        lut_fixed = 40.0;
        ff_per_bit = 9.0;
        ff_fixed = 24.0;
        break;
      case RouterArch::ftGrey:
        // Express in one dimension only: one less set of output muxes
        // and one less input on the remaining express output.
        lut_per_bit = 3.90;
        lut_fixed = 30.0;
        ff_per_bit = 7.0;
        ff_fixed = 20.0;
        break;
      case RouterArch::ftInject:
        // Four 3:1 muxes (no lane-crossing inputs) + inject steering.
        lut_per_bit = 5.00;
        lut_fixed = 30.0;
        ff_per_bit = 9.0;
        ff_fixed = 24.0;
        break;
    }
    return RouterCost{
        static_cast<std::uint32_t>(std::lround(lut_per_bit * w +
                                               lut_fixed)),
        static_cast<std::uint32_t>(std::lround(ff_per_bit * w +
                                               ff_fixed)),
    };
}

AreaModel::KindCounts
AreaModel::kindCounts(std::uint32_t n, std::uint32_t d, std::uint32_t r)
{
    if (d == 0)
        return KindCounts{0, 0, n * n};
    FT_ASSERT(r >= 1 && r <= d, "invalid depopulation R=", r, " D=", d);
    const std::uint32_t ex = expressPositions(n, r);
    const std::uint32_t plain = n - ex;
    return KindCounts{
        ex * ex,             // express in both x and y
        2 * ex * plain,      // express in exactly one dimension
        plain * plain,       // plain Hoplite
    };
}

double
AreaModel::frequencyMhz(const NocSpec &spec) const
{
    // Placement-congestion fit anchored to Table II (8x8 256b: Hoplite
    // 344 MHz, FT ~320 MHz) and the Fig 10 trends (frequency falls with
    // PE count and datawidth).
    const double pes = spec.pes();
    const double w = spec.width;
    double f = 720.0 /
               (1.0 + 0.10 * std::log2(pes) + 0.055 * std::log2(w));
    if (!spec.isHoplite()) {
        // Wider switches and long express wires cost a little timing.
        f *= 0.93;
        // Express wires must also close timing: one segment spanning D
        // router tiles plus the mux landing.
        const double tile =
            static_cast<double>(device_.sliceSpan) / spec.n;
        const double express_ns =
            device_.tReg + device_.tLutHop + device_.tWireBase +
            device_.tWirePerSlice * (spec.d * tile);
        f = std::min(f, 1000.0 / express_ns);
    }
    // Replicated channels congest the fabric slightly.
    if (spec.channels > 1)
        f *= 1.0 - 0.02 * (spec.channels - 1);

    // Link pipelining (Section V / HyperFlex discussion): decompose
    // the calibrated period into a router-logic part (~60%) and a
    // link-wire part (~40%); extra registers divide only the link
    // part. The slowest (least pipelined) link class binds the clock.
    if (spec.shortLinkStages > 0 || spec.expressLinkStages > 0) {
        const double t0 = 1000.0 / f;
        double link_scale = 1.0 / (spec.shortLinkStages + 1.0);
        if (!spec.isHoplite()) {
            link_scale = std::max(
                link_scale, 1.0 / (spec.expressLinkStages + 1.0));
        }
        f = 1000.0 / (0.60 * t0 + 0.40 * t0 * link_scale);
    }
    return std::min(f, device_.clockCeilingMhz);
}

NocCost
AreaModel::nocCost(const NocSpec &spec) const
{
    FT_ASSERT(spec.n >= 2, "NoC side must be >= 2");
    NocCost cost;
    const auto kinds = kindCounts(spec.n, spec.isHoplite() ? 0 : spec.d,
                                  spec.r);

    std::uint64_t luts = 0;
    std::uint64_t ffs = 0;
    auto add = [&](RouterArch arch, std::uint32_t count) {
        const RouterCost rc = routerCost(arch, spec.width);
        luts += static_cast<std::uint64_t>(rc.luts) * count;
        ffs += static_cast<std::uint64_t>(rc.ffs) * count;
    };
    if (spec.isHoplite()) {
        add(RouterArch::hoplite, kinds.white);
    } else {
        add(spec.injectOnly ? RouterArch::ftInject : RouterArch::ftFull,
            kinds.black);
        add(RouterArch::ftGrey, kinds.grey);
        add(RouterArch::hoplite, kinds.white);
    }
    luts *= spec.channels;
    ffs *= spec.channels;

    cost.luts = luts;
    cost.ffs = ffs;
    cost.costPerSwitch = static_cast<double>(std::max(luts, ffs)) /
                         (spec.pes() * spec.channels);

    // Wires: 2N rings; a plain ring is 1 track, FT adds D/R express
    // tracks at any cut.
    const std::uint32_t rings = 2 * spec.n;
    const std::uint32_t tracks =
        spec.isHoplite() ? 1 : (spec.d / spec.r + 1);
    cost.wireCount = rings * tracks * spec.channels;

    // Total physical wire length x width (SLICE-bits): short links span
    // one router tile, express links span D tiles, N/R express links
    // per ring.
    const double tile = static_cast<double>(device_.sliceSpan) / spec.n;
    const double short_len = rings * spec.n * tile;
    double express_len = 0.0;
    if (!spec.isHoplite()) {
        const double links_per_ring = expressPositions(spec.n, spec.r);
        express_len = rings * links_per_ring * (spec.d * tile);
    }
    cost.wireSliceBits =
        (short_len + express_len) * spec.width * spec.channels;

    // Link pipeline registers add FFs: one register bank per stage on
    // every link of the class.
    const std::uint64_t short_links =
        static_cast<std::uint64_t>(rings) * spec.n;
    std::uint64_t express_links = 0;
    if (!spec.isHoplite())
        express_links = static_cast<std::uint64_t>(rings) *
                        expressPositions(spec.n, spec.r);
    cost.ffs += (short_links * spec.shortLinkStages +
                 express_links * spec.expressLinkStages) *
                spec.width * spec.channels;

    cost.frequencyMhz = frequencyMhz(spec);
    return cost;
}

} // namespace fasttrack
