/**
 * @file
 * FPGA wire-delay characterization model reproducing the experiments of
 * Section III (Figs 3-6): achievable clock frequency of a registered
 * wire of a given SLICE distance with a programmable number of LUT
 * stages, in two styles:
 *
 *  - virtual express (Fig 3/4): the signal exits the interconnect into
 *    a LUT at every hop (SMART-style tunneling), paying the full fabric
 *    entry/exit penalty each time;
 *  - physical express (Fig 5/6): a dedicated bypass wire spans all
 *    bypassed LUT-FF stages in one segment, paying the LUT penalty only
 *    at the endpoints.
 */

#ifndef FT_FPGA_WIRE_MODEL_HPP
#define FT_FPGA_WIRE_MODEL_HPP

#include <cstdint>

#include "fpga/device.hpp"

namespace fasttrack {

/**
 * Analytic wire-timing model for one device.
 *
 * Delays compose as
 *   T = tReg + hops * tLutHop + sum_over_segments(tWireBase +
 *       tWirePerSlice * segment_length)
 * which captures the paper's two observations: FPGA wires alone are
 * fast (long distances at one tWirePerSlice each), while entering and
 * exiting the fabric (tLutHop, tWireBase) is expensive.
 */
class WireModel
{
  public:
    explicit WireModel(const FpgaDevice &device = virtex7_485t());

    /** Raw delay (ns) of a single wire segment of @p slices length. */
    double segmentDelayNs(double slices) const;

    /**
     * Fig 4 experiment: two registers @p distance SLICEs apart with
     * @p hops equidistant LUT stages between them. Returns the critical
     * path delay in ns.
     */
    double virtualPathNs(std::uint32_t distance, std::uint32_t hops) const;

    /**
     * Fig 6 experiment: a pipelined chain of LUT-FF pairs spaced
     * @p distance SLICEs apart, with an express bypass wire skipping
     * @p hops stages. The critical path is the longer of the express
     * wire (one segment of hops*distance SLICEs plus one LUT landing)
     * and a regular chain stage.
     */
    double expressPathNs(std::uint32_t distance, std::uint32_t hops) const;

    /** Convert a path delay to the plotted frequency (MHz), NOT capped
     *  at the clock ceiling (the paper plots theoretical values too). */
    double toMhz(double ns) const;

    /** Frequency capped at the clock distribution ceiling. */
    double toRealizableMhz(double ns) const;

    /** Fig 4 as frequency (MHz). */
    double virtualExpressMhz(std::uint32_t distance,
                             std::uint32_t hops) const;

    /** Fig 6 as frequency (MHz). */
    double physicalExpressMhz(std::uint32_t distance,
                              std::uint32_t hops) const;

    /**
     * Longest single-cycle express span (SLICEs) sustaining at least
     * @p target_mhz - the design question of Section III-2.
     */
    std::uint32_t maxExpressSpan(double target_mhz) const;

    const FpgaDevice &device() const { return device_; }

  private:
    FpgaDevice device_;
};

} // namespace fasttrack

#endif // FT_FPGA_WIRE_MODEL_HPP
