/**
 * @file
 * Dynamic power and energy model for overlay NoCs, calibrated to the
 * Vivado power numbers of Table II (8x8 256b: Hoplite 9.8 W,
 * FT(64,2,1) 25.1 W, FT(64,2,2) 19.9 W) and used for the
 * throughput-energy tradeoff of Fig 19.
 */

#ifndef FT_FPGA_POWER_MODEL_HPP
#define FT_FPGA_POWER_MODEL_HPP

#include "fpga/area_model.hpp"

namespace fasttrack {

/**
 * Dynamic power = f x (register switching + wire switching), scaled by
 * the observed toggle activity. The calibration activity (what Vivado's
 * vectorless analysis assumes) is alphaRef; simulation-measured link
 * utilization replaces it for energy results, which is how FastTrack's
 * fewer-deflections advantage shows up as energy savings.
 */
class PowerModel
{
  public:
    explicit PowerModel(const AreaModel &area);

    /**
     * Dynamic power in watts.
     * @param spec NoC configuration.
     * @param activity average per-cycle fraction of NoC state toggling
     *        (0..1); defaults to the Table II calibration point.
     */
    double dynamicPowerW(const NocSpec &spec, double activity = kAlphaRef)
        const;

    /**
     * Energy (joules) to route a workload of @p cycles NoC cycles at
     * the given measured @p activity.
     */
    double energyJ(const NocSpec &spec, double cycles,
                   double activity) const;

    /** Activity level the Table II power numbers correspond to. */
    static constexpr double kAlphaRef = 0.5;

  private:
    const AreaModel &area_;
};

} // namespace fasttrack

#endif // FT_FPGA_POWER_MODEL_HPP
