/**
 * @file
 * Physical layout model for torus rings on the FPGA die (Section V:
 * "for the unidirectional torus ring topology, we adopt a folded
 * layout to balance wire lengths"). Computes the longest wire each
 * layout induces and the clock cap that follows from the wire model,
 * quantifying why the folded layout is the right choice.
 */

#ifndef FT_FPGA_LAYOUT_HPP
#define FT_FPGA_LAYOUT_HPP

#include "fpga/area_model.hpp"
#include "fpga/wire_model.hpp"

namespace fasttrack {

/** How the N routers of one ring are placed along the die. */
enum class TorusLayout
{
    /** Ring order 0,1,..,N-1 placed left to right: unit-length hops
     *  but an N-tile wraparound wire. */
    linear,
    /** Interleaved 0,2,4,..,5,3,1 placement: every ring hop spans at
     *  most two tiles, wraparound included. */
    folded,
};

const char *toString(TorusLayout layout);

/** Wire-length consequences of a layout choice. */
class LayoutModel
{
  public:
    explicit LayoutModel(const FpgaDevice &device = virtex7_485t());

    /** Physical slot (0..n-1) of ring index @p i under @p layout. */
    static std::uint32_t slotOf(std::uint32_t i, std::uint32_t n,
                                TorusLayout layout);

    /** Longest short-link span in SLICEs (wraparound included). */
    double maxShortSpan(std::uint32_t n, TorusLayout layout) const;

    /** Longest express-link span in SLICEs for hop length @p d. */
    double maxExpressSpan(std::uint32_t n, std::uint32_t d,
                          TorusLayout layout) const;

    /** Clock ceiling implied by the longest wire of @p spec under
     *  @p layout (one registered segment plus the mux landing). */
    double frequencyCapMhz(const NocSpec &spec,
                           TorusLayout layout) const;

  private:
    FpgaDevice device_;
    WireModel wires_;
};

} // namespace fasttrack

#endif // FT_FPGA_LAYOUT_HPP
