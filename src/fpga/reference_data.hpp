/**
 * @file
 * Published reference datapoints quoted by the paper for competing NoC
 * routers (Table I and the Fig 1 area-bandwidth scatter). These are
 * literature values, not outputs of our models; we embed them so the
 * Table I / Fig 1 benches can print the full comparison.
 */

#ifndef FT_FPGA_REFERENCE_DATA_HPP
#define FT_FPGA_REFERENCE_DATA_HPP

#include <array>
#include <cstdint>

namespace fasttrack {

/** One published 32b-router implementation datapoint (Table I). */
struct RouterReference
{
    const char *name;
    const char *device;
    std::uint32_t luts;
    /** 0 when the source does not report FFs. */
    std::uint32_t ffs;
    /** Clock period in ns ("Clk" column of Table I). */
    double periodNs;
    /** Peak switching capability in packets per cycle per switch,
     *  used with the period for the Fig 1 bandwidth axis. */
    double packetsPerCycle;
};

/** Table I rows for the prior designs (FastTrack/Hoplite rows are
 *  produced by our AreaModel instead). */
inline constexpr std::array<RouterReference, 5> priorRouters()
{
    return {{
        {"OpenSMART 4VC 1-deep", "Virtex-7 VX690T", 3700, 1700, 5.0,
         2.0},
        {"BLESS (no buffers)", "Virtex-2 Pro", 1090, 335, 13.2, 2.0},
        {"CONNECT 2VCs 16-deep", "Virtex-6 LX240T", 1562, 635, 9.6,
         2.0},
        {"Split-Merge DOR", "Virtex-6 LX240T", 1785, 541, 4.5, 1.0},
        {"Altera Qsys (16-node)", "Stratix IV C2", 1673, 165, 3.1, 1.0},
    }};
}

/** Table I anchor for Hoplite at 32b (measured, from [14]). */
inline constexpr RouterReference hopliteReference()
{
    return {"Hoplite", "Virtex-7 485T", 78, 0, 1.2, 1.0};
}

/** Table I anchor range for FastTrack at 32b (this paper). */
struct FastTrackReference
{
    std::uint32_t lutsLow = 191;
    std::uint32_t lutsHigh = 290;
    std::uint32_t ffs = 290;
    double periodNs = 2.0;
};

inline constexpr FastTrackReference fastTrackReference()
{
    return FastTrackReference{};
}

} // namespace fasttrack

#endif // FT_FPGA_REFERENCE_DATA_HPP
