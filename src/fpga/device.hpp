/**
 * @file
 * Static description of the FPGA device the paper maps to (Xilinx
 * Virtex-7 XC7VX485T, -2 speed grade) plus the timing constants the
 * wire/area/power models are calibrated against.
 *
 * The paper's hardware numbers come from Vivado 2017.2 place & route;
 * we replace that flow with analytic models anchored to every number
 * the paper reports (Table I, Table II, Figs 4, 6, 10). See DESIGN.md
 * "Substitutions".
 */

#ifndef FT_FPGA_DEVICE_HPP
#define FT_FPGA_DEVICE_HPP

#include <cstdint>

namespace fasttrack {

/** Capacity and calibrated timing parameters for one FPGA device. */
struct FpgaDevice
{
    const char *name;

    /** Total 6-input LUTs available. */
    std::uint32_t totalLuts;
    /** Total flip-flops available. */
    std::uint32_t totalFfs;

    /**
     * Logical slice-grid span of the die (SLICE columns). The paper's
     * wire characterization sweeps Distance up to 256 SLICEs, "close to
     * chip dimensions".
     */
    std::uint32_t sliceSpan;

    /**
     * Routing tracks usable per slice-row of the die cross-section for
     * overlay NoC rings (calibrated so a 4x4 D=2 NoC fits 512b but not
     * 1024b, Fig 10 / Section VI-B).
     */
    std::uint32_t tracksPerSliceRow;

    /** Peak frequency of the clock distribution network, MHz (Fig 4). */
    double clockCeilingMhz;

    // --- calibrated timing constants (ns) ---
    /** Register clk->q plus setup. */
    double tReg;
    /** Penalty of exiting + re-entering the fabric through one LUT
     *  stage (the "expensive CLB hop" of Section III). */
    double tLutHop;
    /** Fixed cost of getting onto the routing fabric per wire segment. */
    double tWireBase;
    /** Incremental wire delay per SLICE of distance. */
    double tWirePerSlice;
};

/** The device used throughout the paper. */
inline constexpr FpgaDevice virtex7_485t()
{
    return FpgaDevice{
        .name = "Xilinx Virtex-7 XC7VX485T (-2)",
        .totalLuts = 303600,
        .totalFfs = 607200,
        .sliceSpan = 256,
        .tracksPerSliceRow = 32,
        .clockCeilingMhz = 710.0,
        .tReg = 0.35,
        .tLutHop = 1.00,
        .tWireBase = 0.05,
        .tWirePerSlice = 0.0125,
    };
}

} // namespace fasttrack

#endif // FT_FPGA_DEVICE_HPP
