#include "fpga/layout.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace fasttrack {

const char *
toString(TorusLayout layout)
{
    switch (layout) {
      case TorusLayout::linear: return "linear";
      case TorusLayout::folded: return "folded";
    }
    return "?";
}

LayoutModel::LayoutModel(const FpgaDevice &device)
    : device_(device), wires_(device)
{
}

std::uint32_t
LayoutModel::slotOf(std::uint32_t i, std::uint32_t n,
                    TorusLayout layout)
{
    FT_ASSERT(i < n, "ring index out of range");
    if (layout == TorusLayout::linear)
        return i;
    // Folded: even indices count up from the left edge, odd indices
    // count down from the right edge.
    if (i <= (n - 1) / 2)
        return 2 * i;
    return 2 * (n - i) - 1;
}

namespace {

/** Longest |slot(i+step) - slot(i)| over the ring, in slots. */
std::uint32_t
maxHopSlots(std::uint32_t n, std::uint32_t step, TorusLayout layout)
{
    std::uint32_t worst = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t a = LayoutModel::slotOf(i, n, layout);
        const std::uint32_t b =
            LayoutModel::slotOf((i + step) % n, n, layout);
        worst = std::max(worst, a > b ? a - b : b - a);
    }
    return worst;
}

} // namespace

double
LayoutModel::maxShortSpan(std::uint32_t n, TorusLayout layout) const
{
    const double tile = static_cast<double>(device_.sliceSpan) / n;
    return maxHopSlots(n, 1, layout) * tile;
}

double
LayoutModel::maxExpressSpan(std::uint32_t n, std::uint32_t d,
                            TorusLayout layout) const
{
    const double tile = static_cast<double>(device_.sliceSpan) / n;
    return maxHopSlots(n, d, layout) * tile;
}

double
LayoutModel::frequencyCapMhz(const NocSpec &spec,
                             TorusLayout layout) const
{
    double span = maxShortSpan(spec.n, layout);
    if (!spec.isHoplite()) {
        span = std::max(span,
                        maxExpressSpan(spec.n, spec.d, layout));
    }
    const double ns = device_.tReg + device_.tLutHop +
                      wires_.segmentDelayNs(span);
    return std::min(1000.0 / ns, device_.clockCeilingMhz);
}

} // namespace fasttrack
