#include "fpga/power_model.hpp"

#include "common/logging.hpp"

namespace fasttrack {

namespace {
// Fitted switching-capacitance coefficients (see DESIGN.md): watts per
// GHz per thousand FFs, and per GHz per mega-SLICE-bit of wiring.
constexpr double kFfCoeff = 0.080;
constexpr double kWireCoeff = 21.0;
} // namespace

PowerModel::PowerModel(const AreaModel &area) : area_(area) {}

double
PowerModel::dynamicPowerW(const NocSpec &spec, double activity) const
{
    FT_ASSERT(activity >= 0.0 && activity <= 1.0,
              "activity out of range: ", activity);
    const NocCost cost = area_.nocCost(spec);
    const double f_ghz = cost.frequencyMhz / 1000.0;
    const double base =
        f_ghz * (kFfCoeff * (static_cast<double>(cost.ffs) / 1000.0) +
                 kWireCoeff * (cost.wireSliceBits / 1e6));
    return base * (activity / kAlphaRef);
}

double
PowerModel::energyJ(const NocSpec &spec, double cycles,
                    double activity) const
{
    const NocCost cost = area_.nocCost(spec);
    const double seconds = cycles / (cost.frequencyMhz * 1e6);
    return dynamicPowerW(spec, activity) * seconds;
}

} // namespace fasttrack
