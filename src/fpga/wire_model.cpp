#include "fpga/wire_model.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace fasttrack {

WireModel::WireModel(const FpgaDevice &device) : device_(device) {}

double
WireModel::segmentDelayNs(double slices) const
{
    return device_.tWireBase + device_.tWirePerSlice * slices;
}

double
WireModel::virtualPathNs(std::uint32_t distance, std::uint32_t hops) const
{
    FT_ASSERT(distance >= 1, "distance must be >= 1");
    // hops LUT stages divide the run into hops+1 equal wire segments;
    // each LUT stage costs a full fabric exit/re-entry.
    const double segments = static_cast<double>(hops) + 1.0;
    const double seg_len = static_cast<double>(distance) / segments;
    return device_.tReg + hops * device_.tLutHop +
           segments * segmentDelayNs(seg_len);
}

double
WireModel::expressPathNs(std::uint32_t distance, std::uint32_t hops) const
{
    FT_ASSERT(distance >= 1, "distance must be >= 1");
    // Regular chain stage: FF -> LUT -> FF over one inter-stage span.
    const double stage =
        device_.tReg + device_.tLutHop + segmentDelayNs(distance);
    if (hops == 0)
        return stage;
    // Express wire: one continuous segment spanning all bypassed
    // stages, landing in the far LUT (one fabric entry, not per hop).
    const double span = static_cast<double>(hops) * distance;
    const double express =
        device_.tReg + device_.tLutHop + segmentDelayNs(span);
    return std::max(stage, express);
}

double
WireModel::toMhz(double ns) const
{
    FT_ASSERT(ns > 0.0, "non-positive delay");
    return 1000.0 / ns;
}

double
WireModel::toRealizableMhz(double ns) const
{
    return std::min(toMhz(ns), device_.clockCeilingMhz);
}

double
WireModel::virtualExpressMhz(std::uint32_t distance,
                             std::uint32_t hops) const
{
    return toMhz(virtualPathNs(distance, hops));
}

double
WireModel::physicalExpressMhz(std::uint32_t distance,
                              std::uint32_t hops) const
{
    return toMhz(expressPathNs(distance, hops));
}

std::uint32_t
WireModel::maxExpressSpan(double target_mhz) const
{
    FT_ASSERT(target_mhz > 0.0, "non-positive frequency target");
    const double budget = 1000.0 / target_mhz;
    const double wire_budget =
        budget - device_.tReg - device_.tLutHop - device_.tWireBase;
    if (wire_budget <= 0.0)
        return 0;
    const double span = wire_budget / device_.tWirePerSlice;
    return static_cast<std::uint32_t>(
        std::min(span, static_cast<double>(device_.sliceSpan)));
}

} // namespace fasttrack
