/**
 * @file
 * Routability analysis (Section VI-B / Fig 10): for a given NoC system
 * size and express configuration, which datawidths fit the device, and
 * at what clock.
 */

#ifndef FT_FPGA_ROUTABILITY_HPP
#define FT_FPGA_ROUTABILITY_HPP

#include <optional>
#include <vector>

#include "fpga/area_model.hpp"

namespace fasttrack {

/** Outcome of mapping one NoC configuration onto the device. */
struct MappingResult
{
    bool feasible = false;
    /** Which resource ran out first when infeasible. */
    enum class Limit { none, luts, ffs, wiring } limit = Limit::none;
    /** Achievable frequency when feasible (MHz). */
    double frequencyMhz = 0.0;
};

/**
 * Device-capacity model: LUT/FF budgets from the part's totals and a
 * per-slice-row routing-track budget shared by all ring tracks that
 * cross a chip bisection in the folded-torus layout.
 */
class RoutabilityModel
{
  public:
    explicit RoutabilityModel(const AreaModel &area);

    MappingResult map(const NocSpec &spec) const;

    /** Largest feasible power-of-two-ish datawidth from the paper's
     *  sweep list, or nullopt when even 8b does not fit. */
    std::optional<std::uint32_t> peakDatawidth(NocSpec spec) const;

    /** The datawidth sweep used by Fig 10. */
    static const std::vector<std::uint32_t> &datawidthSweep();

  private:
    const AreaModel &area_;
};

} // namespace fasttrack

#endif // FT_FPGA_ROUTABILITY_HPP
