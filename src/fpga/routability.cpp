#include "fpga/routability.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace fasttrack {

RoutabilityModel::RoutabilityModel(const AreaModel &area) : area_(area) {}

MappingResult
RoutabilityModel::map(const NocSpec &spec) const
{
    const FpgaDevice &dev = area_.device();
    const NocCost cost = area_.nocCost(spec);

    MappingResult result;
    if (cost.luts > dev.totalLuts) {
        result.limit = MappingResult::Limit::luts;
        return result;
    }
    if (cost.ffs > dev.totalFfs) {
        result.limit = MappingResult::Limit::ffs;
        return result;
    }

    // Wiring: every ring track carries `width` bits across a bisection
    // cut; the N rings of one dimension share the die's slice rows, so
    // each NoC row gets sliceSpan/N slice rows of track budget.
    const std::uint32_t tracks =
        (spec.isHoplite() ? 1 : (spec.d / spec.r + 1)) * spec.channels;
    const double demand = static_cast<double>(tracks) * spec.width;
    const double budget = static_cast<double>(dev.tracksPerSliceRow) *
                          dev.sliceSpan / spec.n;
    if (demand > budget) {
        result.limit = MappingResult::Limit::wiring;
        return result;
    }

    result.feasible = true;
    result.limit = MappingResult::Limit::none;
    // Congestion from nearly-full tracks costs some frequency.
    const double utilization = demand / budget;
    result.frequencyMhz = cost.frequencyMhz * (1.0 - 0.25 * utilization);
    return result;
}

std::optional<std::uint32_t>
RoutabilityModel::peakDatawidth(NocSpec spec) const
{
    std::optional<std::uint32_t> best;
    for (std::uint32_t w : datawidthSweep()) {
        spec.width = w;
        if (map(spec).feasible)
            best = w;
    }
    return best;
}

const std::vector<std::uint32_t> &
RoutabilityModel::datawidthSweep()
{
    static const std::vector<std::uint32_t> sweep{
        8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024};
    return sweep;
}

} // namespace fasttrack
