/**
 * @file
 * FPGA resource (LUT/FF/wire) and frequency model for Hoplite and
 * FastTrack NoCs, calibrated against the paper's Vivado results
 * (Table I for 32b routers, Table II for the 8x8 256b NoC).
 */

#ifndef FT_FPGA_AREA_MODEL_HPP
#define FT_FPGA_AREA_MODEL_HPP

#include <cstdint>
#include <string>

#include "fpga/device.hpp"

namespace fasttrack {

/** Router microarchitecture families costed by the model. */
enum class RouterArch
{
    /** Base Hoplite: two 3:1 muxes, no express ports (Fig 9a). */
    hoplite,
    /** FT Full: express in/out both dims, any-port lane change
     *  (Fig 9b). */
    ftFull,
    /** FT depopulated Grey: express ports in one dimension only. */
    ftGrey,
    /** FTlite Inject: express entry only at the PE port (Fig 9c). */
    ftInject,
};

/** Implementation-level description of one NoC for costing. */
struct NocSpec
{
    /** Side of the N x N torus. */
    std::uint32_t n = 8;
    /** Payload datawidth in bits. */
    std::uint32_t width = 256;
    /** Express link length in hops; 0 means plain Hoplite. */
    std::uint32_t d = 0;
    /** Depopulation factor, 1 <= r <= d (ignored when d == 0). */
    std::uint32_t r = 1;
    /** True when FT routers use the inject-only lite variant. */
    bool injectOnly = false;
    /** Parallel independent channels (Hoplite-2x/3x replication). */
    std::uint32_t channels = 1;
    /** Extra pipeline registers per short link (raises clock, adds
     *  FFs, lengthens per-hop latency in cycles). */
    std::uint32_t shortLinkStages = 0;
    /** Extra pipeline registers per express link. */
    std::uint32_t expressLinkStages = 0;

    std::uint32_t pes() const { return n * n; }
    bool isHoplite() const { return d == 0; }
    std::string describe() const;
};

/** Aggregate implementation cost of one NoC configuration. */
struct NocCost
{
    std::uint64_t luts = 0;
    std::uint64_t ffs = 0;
    /** max(LUTs, FFs) per switch - the Fig 1 cost metric. */
    double costPerSwitch = 0.0;
    /** Ring tracks crossing a bisection cut: rings x tracks-per-ring
     *  (the Fig 14b wire-count metric, width-independent). */
    std::uint32_t wireCount = 0;
    /** Total wire length x width product, in SLICE-bits (power/energy
     *  input). */
    double wireSliceBits = 0.0;
    /** Achievable clock, MHz, after placement congestion effects. */
    double frequencyMhz = 0.0;
};

/** Per-router LUT/FF cost (Table I reproduction). */
struct RouterCost
{
    std::uint32_t luts = 0;
    std::uint32_t ffs = 0;
};

/**
 * Calibrated area/frequency model.
 *
 * LUT counts follow 6-LUT mux packing (3:1 and 4:1 muxes cost one LUT
 * per bit, 5:1 costs two) plus per-router control, with coefficients
 * fitted to Table I/II; FF counts are width x registered-port count.
 */
class AreaModel
{
  public:
    explicit AreaModel(const FpgaDevice &device = virtex7_485t());

    /** Cost of a single router of @p arch at datawidth @p width. */
    RouterCost routerCost(RouterArch arch, std::uint32_t width) const;

    /** Number of routers of each kind in an FT(N^2, D, R) topology. */
    struct KindCounts
    {
        std::uint32_t black = 0; ///< express in both dimensions
        std::uint32_t grey = 0;  ///< express in one dimension
        std::uint32_t white = 0; ///< plain Hoplite
    };
    static KindCounts kindCounts(std::uint32_t n, std::uint32_t d,
                                 std::uint32_t r);

    /** Full-NoC cost, wires and achievable frequency. */
    NocCost nocCost(const NocSpec &spec) const;

    /** Fitted placed-and-routed clock (MHz) for the NoC alone. */
    double frequencyMhz(const NocSpec &spec) const;

    const FpgaDevice &device() const { return device_; }

  private:
    FpgaDevice device_;
};

} // namespace fasttrack

#endif // FT_FPGA_AREA_MODEL_HPP
