#include "workloads/graph.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace fasttrack {

std::vector<std::uint32_t>
Graph::outDegrees() const
{
    std::vector<std::uint32_t> deg(nodes, 0);
    for (const auto &[u, v] : edges) {
        FT_ASSERT(u < nodes && v < nodes, "edge outside graph");
        ++deg[u];
    }
    return deg;
}

Graph
rmat(std::uint32_t scale, std::uint64_t edge_count, double a, double b,
     double c, std::uint64_t seed, const std::string &name)
{
    FT_ASSERT(scale >= 2 && scale <= 24, "unreasonable R-MAT scale");
    FT_ASSERT(a + b + c <= 1.0 + 1e-9, "R-MAT probabilities exceed 1");
    Rng rng(seed);

    Graph g;
    g.name = name;
    g.nodes = 1u << scale;
    g.edges.reserve(edge_count);
    for (std::uint64_t e = 0; e < edge_count; ++e) {
        std::uint32_t u = 0, v = 0;
        for (std::uint32_t bit = 0; bit < scale; ++bit) {
            const double p = rng.nextDouble();
            std::uint32_t ubit = 0, vbit = 0;
            if (p < a) {
                // top-left: (0,0)
            } else if (p < a + b) {
                vbit = 1;
            } else if (p < a + b + c) {
                ubit = 1;
            } else {
                ubit = vbit = 1;
            }
            u = (u << 1) | ubit;
            v = (v << 1) | vbit;
        }
        if (u == v)
            continue; // self loops carry no NoC traffic
        g.edges.emplace_back(u, v);
    }
    return g;
}

Graph
roadNetwork(std::uint32_t side, double shortcut_fraction,
            std::uint64_t seed, const std::string &name)
{
    FT_ASSERT(side >= 2, "lattice too small");
    Rng rng(seed);

    Graph g;
    g.name = name;
    g.nodes = side * side;
    auto at = [side](std::uint32_t x, std::uint32_t y) {
        return y * side + x;
    };
    for (std::uint32_t y = 0; y < side; ++y) {
        for (std::uint32_t x = 0; x < side; ++x) {
            if (x + 1 < side) {
                g.edges.emplace_back(at(x, y), at(x + 1, y));
                g.edges.emplace_back(at(x + 1, y), at(x, y));
            }
            if (y + 1 < side) {
                g.edges.emplace_back(at(x, y), at(x, y + 1));
                g.edges.emplace_back(at(x, y + 1), at(x, y));
            }
        }
    }
    const auto shortcuts = static_cast<std::uint64_t>(
        shortcut_fraction * static_cast<double>(g.edges.size()));
    for (std::uint64_t s = 0; s < shortcuts; ++s) {
        const auto u = static_cast<std::uint32_t>(
            rng.nextBelow(g.nodes));
        const auto v = static_cast<std::uint32_t>(
            rng.nextBelow(g.nodes));
        if (u != v)
            g.edges.emplace_back(u, v);
    }
    return g;
}

Graph
GraphBenchmark::build() const
{
    if (isRoad)
        return roadNetwork(scaleOrSide, 0.01, seed, name);
    // Split the remaining probability between b and c slightly
    // asymmetrically, the standard R-MAT practice.
    const double rest = 1.0 - skew;
    return rmat(scaleOrSide, edges, skew, rest * 0.4, rest * 0.4, seed,
                name);
}

const std::vector<GraphBenchmark> &
graphCatalog()
{
    // Scaled-down analogs: node/edge counts chosen so traces stay in
    // the 30-150k message range, skew mirrors the original degree
    // distributions.
    static const std::vector<GraphBenchmark> catalog = {
        {"amazon0302", false, 13, 49152, 0.50, 21},
        {"roadNet-CA", true, 120, 0, 0.0, 22},
        {"soc-Slashdot0902", false, 13, 65536, 0.60, 23},
        {"web-Google", false, 14, 81920, 0.57, 24},
        {"web-Stanford", false, 13, 57344, 0.59, 25},
        {"wiki-Vote", false, 12, 40960, 0.62, 26},
    };
    return catalog;
}

} // namespace fasttrack
