/**
 * @file
 * Synthetic sparse-matrix generator standing in for the Matrix Market
 * datasets of the paper's SpMV case study (Fig 15a). SpMV NoC traffic
 * depends on the sparsity *pattern* statistics -- row populations and
 * how far off-diagonal the nonzeros reach -- which the generator
 * controls directly; see DESIGN.md "Substitutions".
 */

#ifndef FT_WORKLOADS_SPARSE_MATRIX_HPP
#define FT_WORKLOADS_SPARSE_MATRIX_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace fasttrack {

/** CSR sparsity pattern (values are irrelevant to NoC traffic). */
struct SparseMatrix
{
    std::string name;
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::vector<std::uint32_t> rowPtr; ///< rows + 1 entries
    std::vector<std::uint32_t> colIdx; ///< nnz entries, sorted per row

    std::uint64_t nnz() const { return colIdx.size(); }
    /** Fraction of nonzeros within @p band of the diagonal. */
    double bandedFraction(std::uint32_t band) const;
};

/** Structural family of a synthetic matrix. */
enum class MatrixKind
{
    /** Circuit/SPICE-like: strongly banded, few long-range couplings. */
    circuit,
    /** Mesh/FEM-like: banded with regular medium-range stencils. */
    mesh,
    /** Gene-network-like: dense rows with near-uniform column reach. */
    gene,
};

/** Generation parameters for one synthetic matrix. */
struct MatrixParams
{
    std::string name;
    MatrixKind kind = MatrixKind::circuit;
    std::uint32_t rows = 4096;
    double avgNnzPerRow = 6.0;
    /** Fraction of nonzeros constrained near the diagonal. */
    double localFraction = 0.8;
    /** Half-width of the diagonal band, as a fraction of rows. */
    double bandFraction = 0.02;
    std::uint64_t seed = 7;
};

/** Generate a square matrix with the requested statistics. Always
 *  includes the diagonal (SpMV self-contribution). */
SparseMatrix generateMatrix(const MatrixParams &params);

/**
 * The Fig 15a benchmark catalog: synthetic analogs named after the
 * paper's Matrix Market datasets, with size/locality parameters chosen
 * to mimic each original's traffic character (e.g. hamm_memplus is
 * predominantly local and should see little FastTrack benefit).
 */
const std::vector<MatrixParams> &spmvCatalog();

} // namespace fasttrack

#endif // FT_WORKLOADS_SPARSE_MATRIX_HPP
