/**
 * @file
 * Token-dataflow workload synthesis for the sparse LU factorization
 * case study (Fig 15c). SPICE sparse-LU dataflow graphs are notorious
 * for low ILP: long dependency chains with narrow width, which makes
 * the workload latency-sensitive -- exactly where express links help.
 * The generator builds layered DAGs with a controlled width profile
 * and converts them to dependency-carrying traces: a node's outgoing
 * tokens may inject only after all its inputs were delivered plus a
 * compute delay.
 */

#ifndef FT_WORKLOADS_DATAFLOW_HPP
#define FT_WORKLOADS_DATAFLOW_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/trace.hpp"

namespace fasttrack {

/** Layered operation DAG (ids are topologically ordered). */
struct DataflowDag
{
    std::string name;
    std::uint32_t nodeCount = 0;
    /** Successor lists, indexed by node id. */
    std::vector<std::vector<std::uint32_t>> succs;
    /** Level (layer index) of each node. */
    std::vector<std::uint32_t> level;

    std::uint64_t edgeCount() const;
    std::uint32_t depth() const;
    /** Average nodes per level: the available ILP. */
    double avgWidth() const;
    /** Predecessor counts (for firing rules). */
    std::vector<std::uint32_t> inDegrees() const;
};

/** Generation parameters for one synthetic LU dataflow graph. */
struct LuDagParams
{
    std::string name;
    std::uint32_t nodes = 4096;
    /** Mean operation width of a level; small = low ILP. */
    double avgWidth = 12.0;
    /** Mean predecessors per non-root node (1..3 typical). */
    double avgFanin = 1.8;
    /** How far back predecessor levels reach (1 = chain-like). */
    std::uint32_t maxLookback = 3;
    std::uint64_t seed = 31;
};

/** Build a layered low-ILP DAG with the requested statistics. */
DataflowDag sparseLuDag(const LuDagParams &params);

/**
 * Convert a DAG to a NoC trace on an n x n NoC: ops are dealt
 * round-robin to PEs; every DAG edge is one token message whose
 * dependencies are all tokens entering its producer.
 * @param compute_delay PE cycles between last input and first output.
 */
Trace dataflowTrace(const DataflowDag &dag, std::uint32_t n,
                    Cycle compute_delay = 2);

/** Fig 15c catalog: analogs of the paper's SPICE LU benchmarks
 *  (s953_*, s1423_*, s1488/s1494, ram8k, bomhof3). */
const std::vector<LuDagParams> &luCatalog();

} // namespace fasttrack

#endif // FT_WORKLOADS_DATAFLOW_HPP
