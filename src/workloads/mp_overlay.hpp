/**
 * @file
 * Multi-processor overlay traffic synthesis (Fig 15d): parameterized
 * analogs of the SNIPER/PARSEC traces the paper replays on a 32-PE
 * overlay. Each benchmark is characterized by its communication
 * intensity (compute gap between message bursts), locality mix
 * (neighbour vs shared-hub vs uniform) and burstiness; these are the
 * properties that determine how much a faster NoC helps.
 */

#ifndef FT_WORKLOADS_MP_OVERLAY_HPP
#define FT_WORKLOADS_MP_OVERLAY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/trace.hpp"

namespace fasttrack {

/** Traffic character of one PARSEC-like benchmark. */
struct ParsecBenchmark
{
    std::string name;
    /** Messages each PE sends over the run. */
    std::uint32_t msgsPerPe = 1024;
    /** Mean compute cycles between bursts (comm intensity knob). */
    double computeGap = 8.0;
    /** Messages per burst. */
    std::uint32_t burstLen = 4;
    /** P(destination is a forward ring neighbour). */
    double localFraction = 0.3;
    /** P(destination is one of the shared hub PEs). */
    double hubFraction = 0.2;
    /** Number of hub PEs (locks / shared queues / pipeline stages). */
    std::uint32_t hubCount = 2;
    std::uint64_t seed = 51;
};

/**
 * Synthesize a timestamped trace for @p bench on an n x n NoC using
 * the first @p active_pes PEs as workers (the paper's runs use 32 of
 * the overlay's PEs).
 */
Trace mpOverlayTrace(const ParsecBenchmark &bench, std::uint32_t n,
                     std::uint32_t active_pes);

/** Fig 15d catalog: blackscholes, dedup, fluidanimate, freqmine,
 *  vips, x264 analogs. */
const std::vector<ParsecBenchmark> &parsecCatalog();

} // namespace fasttrack

#endif // FT_WORKLOADS_MP_OVERLAY_HPP
