#include "workloads/spmv.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"

namespace fasttrack {

namespace {

NodeId
owner(std::uint32_t row, std::uint32_t rows, std::uint32_t pes,
      RowMapping mapping)
{
    if (mapping == RowMapping::cyclic)
        return row % pes;
    const std::uint32_t chunk = (rows + pes - 1) / pes;
    return std::min(row / chunk, pes - 1);
}

} // namespace

Trace
spmvTrace(const SparseMatrix &matrix, std::uint32_t n,
          RowMapping mapping)
{
    FT_ASSERT(n >= 2, "NoC side must be >= 2");
    const std::uint32_t pes = n * n;

    // Invert the CSR pattern: consumers of each vector entry x[j] are
    // the owners of rows with a nonzero in column j.
    std::vector<std::vector<NodeId>> consumers(matrix.cols);
    for (std::uint32_t i = 0; i < matrix.rows; ++i) {
        const NodeId row_owner = owner(i, matrix.rows, pes, mapping);
        for (std::uint32_t k = matrix.rowPtr[i];
             k < matrix.rowPtr[i + 1]; ++k) {
            consumers[matrix.colIdx[k]].push_back(row_owner);
        }
    }

    Trace trace;
    trace.name = "spmv:" + matrix.name;
    trace.n = n;
    for (std::uint32_t j = 0; j < matrix.cols; ++j) {
        auto &dests = consumers[j];
        if (dests.empty())
            continue;
        std::sort(dests.begin(), dests.end());
        dests.erase(std::unique(dests.begin(), dests.end()),
                    dests.end());
        const NodeId src = owner(j, matrix.rows, pes, mapping);
        for (NodeId dst : dests) {
            TraceMessage m;
            m.id = trace.messages.size();
            m.src = src;
            m.dst = dst;
            trace.messages.push_back(std::move(m));
        }
    }
    trace.validate();
    return trace;
}

} // namespace fasttrack
