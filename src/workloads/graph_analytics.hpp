/**
 * @file
 * Vertex-push graph-analytics traffic (Fig 15b): vertices partitioned
 * over PEs; each superstep every active vertex pushes an update along
 * its out-edges, producing one NoC message per (owner(u) -> owner(v))
 * edge endpoint pair. Road networks use spatial block partitioning
 * (local traffic), power-law graphs use hashed partitioning.
 */

#ifndef FT_WORKLOADS_GRAPH_ANALYTICS_HPP
#define FT_WORKLOADS_GRAPH_ANALYTICS_HPP

#include "traffic/trace.hpp"
#include "workloads/graph.hpp"

namespace fasttrack {

/** Vertex-to-PE assignment. */
enum class VertexPartition
{
    /** Hash-spread (destroys locality; right for web/social graphs). */
    hashed,
    /** Spatial blocks of a lattice onto the PE grid (right for road
     *  networks). Falls back to hashed for non-square graphs. */
    spatialBlocks,
};

/**
 * Build a push-model trace for @p graph on an @p n x @p n NoC.
 * @param supersteps BSP rounds; each round's messages depend on the
 *        previous round's delivery into the same destination vertex
 *        partition (modelled per-PE to bound the trace size).
 */
Trace graphPushTrace(const Graph &graph, std::uint32_t n,
                     VertexPartition partition, std::uint32_t supersteps = 1);

/** Partition choice the catalog uses for each benchmark. */
VertexPartition defaultPartition(const GraphBenchmark &bench);

} // namespace fasttrack

#endif // FT_WORKLOADS_GRAPH_ANALYTICS_HPP
