/**
 * @file
 * Synthetic graph generators standing in for the SNAP datasets of the
 * graph-analytics case study (Fig 15b): an R-MAT generator for the
 * power-law web/social graphs and a planar lattice generator for road
 * networks. Vertex-push traffic depends on the degree distribution and
 * the partition locality, both of which these control.
 */

#ifndef FT_WORKLOADS_GRAPH_HPP
#define FT_WORKLOADS_GRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace fasttrack {

/** Directed edge list. */
struct Graph
{
    std::string name;
    std::uint32_t nodes = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

    std::vector<std::uint32_t> outDegrees() const;
};

/**
 * R-MAT recursive matrix generator (Chakrabarti et al.): power-law
 * degree graphs like web crawls and social networks.
 * @param scale graph has 2^scale vertices.
 */
Graph rmat(std::uint32_t scale, std::uint64_t edge_count, double a,
           double b, double c, std::uint64_t seed,
           const std::string &name = "rmat");

/**
 * Road-network-like graph: a @p side x @p side lattice with
 * bidirectional street edges plus a sprinkle of diagonal shortcuts;
 * nearly all edges are spatially local.
 */
Graph roadNetwork(std::uint32_t side, double shortcut_fraction,
                  std::uint64_t seed,
                  const std::string &name = "road");

/** Parameters of one Fig 15b benchmark analog. */
struct GraphBenchmark
{
    std::string name;
    bool isRoad = false;
    std::uint32_t scaleOrSide = 12; ///< R-MAT scale, or lattice side
    std::uint64_t edges = 0;        ///< 0 means lattice-defined
    double skew = 0.57;             ///< R-MAT 'a' parameter
    std::uint64_t seed = 1;

    Graph build() const;
};

/** The Fig 15b catalog (wiki-Vote, web-Stanford, web-Google,
 *  soc-Slashdot0902, roadNet-CA, amazon0302 analogs). */
const std::vector<GraphBenchmark> &graphCatalog();

} // namespace fasttrack

#endif // FT_WORKLOADS_GRAPH_HPP
