#include "workloads/mp_overlay.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fasttrack {

Trace
mpOverlayTrace(const ParsecBenchmark &bench, std::uint32_t n,
               std::uint32_t active_pes)
{
    const std::uint32_t pes = n * n;
    FT_ASSERT(active_pes >= 2 && active_pes <= pes,
              "active PEs must fit the NoC");
    Rng rng(bench.seed);

    // Hubs are spread across the active set.
    std::vector<NodeId> hubs;
    for (std::uint32_t h = 0; h < bench.hubCount; ++h)
        hubs.push_back((h * active_pes) / bench.hubCount);

    struct Pending
    {
        Cycle when;
        NodeId src;
        NodeId dst;
    };
    std::vector<Pending> events;
    events.reserve(static_cast<std::size_t>(active_pes) *
                   bench.msgsPerPe);

    for (NodeId pe = 0; pe < active_pes; ++pe) {
        Cycle t = rng.nextBelow(
            static_cast<std::uint64_t>(bench.computeGap) + 1);
        std::uint32_t sent = 0;
        while (sent < bench.msgsPerPe) {
            const std::uint32_t burst =
                std::min(bench.burstLen, bench.msgsPerPe - sent);
            for (std::uint32_t b = 0; b < burst; ++b) {
                NodeId dst;
                const double p = rng.nextDouble();
                if (p < bench.localFraction) {
                    // Forward ring neighbour (dx + dy <= 2).
                    const Coord s = toCoord(pe, n);
                    const std::uint32_t dx =
                        static_cast<std::uint32_t>(rng.nextBelow(3));
                    const std::uint32_t dy = dx == 0
                        ? 1 + static_cast<std::uint32_t>(rng.nextBelow(2))
                        : static_cast<std::uint32_t>(
                              rng.nextBelow(3 - dx));
                    dst = toNodeId(
                        Coord{static_cast<std::uint16_t>((s.x + dx) % n),
                              static_cast<std::uint16_t>((s.y + dy) % n)},
                        n);
                    // Workers only: a neighbour that falls on an idle
                    // PE redirects to a random worker instead.
                    if (dst >= active_pes) {
                        dst = static_cast<NodeId>(
                            rng.nextBelow(active_pes));
                    }
                } else if (p < bench.localFraction + bench.hubFraction) {
                    dst = hubs[rng.nextBelow(hubs.size())];
                } else {
                    dst = static_cast<NodeId>(
                        rng.nextBelow(active_pes));
                }
                events.push_back({t, pe, dst});
                ++sent;
            }
            // Geometric-ish compute gap before the next burst.
            t += 1 + static_cast<Cycle>(
                     bench.computeGap * (0.5 + rng.nextDouble()));
        }
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const Pending &a, const Pending &b) {
                         return a.when < b.when;
                     });

    Trace trace;
    trace.name = "parsec:" + bench.name;
    trace.n = n;
    trace.messages.reserve(events.size());
    for (const Pending &e : events) {
        TraceMessage m;
        m.id = trace.messages.size();
        m.src = e.src;
        m.dst = e.dst;
        m.earliest = e.when;
        trace.messages.push_back(std::move(m));
    }
    trace.validate();
    return trace;
}

const std::vector<ParsecBenchmark> &
parsecCatalog()
{
    // Comm intensity and locality per benchmark: pipeline codes (x264,
    // vips, dedup) are bursty and hub/neighbour heavy; freqmine and
    // blackscholes barely talk, so a faster NoC buys them little.
    static const std::vector<ParsecBenchmark> catalog = {
        {"blackscholes", 512, 40.0, 2, 0.50, 0.10, 1, 61},
        {"dedup", 2048, 4.0, 6, 0.15, 0.45, 4, 62},
        {"fluidanimate", 1536, 8.0, 4, 0.65, 0.05, 2, 63},
        {"freqmine", 768, 32.0, 2, 0.70, 0.10, 2, 64},
        {"vips", 2048, 5.0, 6, 0.25, 0.35, 4, 65},
        {"x264", 2560, 3.0, 8, 0.35, 0.20, 3, 66},
    };
    return catalog;
}

} // namespace fasttrack
