#include "workloads/graph_analytics.hpp"

#include <cmath>
#include <vector>

#include "common/logging.hpp"

namespace fasttrack {

namespace {

std::uint32_t
hashVertex(std::uint32_t v)
{
    // Fibonacci hashing: cheap, well-spread, deterministic.
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull) >> 32);
}

NodeId
assign(std::uint32_t vertex, const Graph &graph, std::uint32_t n,
       VertexPartition partition)
{
    const std::uint32_t pes = n * n;
    if (partition == VertexPartition::spatialBlocks) {
        const auto side = static_cast<std::uint32_t>(
            std::lround(std::sqrt(static_cast<double>(graph.nodes))));
        if (side * side == graph.nodes) {
            // Map lattice blocks onto the PE grid so street neighbours
            // stay on the same or adjacent PEs.
            const std::uint32_t vx = vertex % side;
            const std::uint32_t vy = vertex / side;
            const std::uint32_t px =
                std::min(vx * n / side, n - 1);
            const std::uint32_t py =
                std::min(vy * n / side, n - 1);
            return py * n + px;
        }
    }
    return hashVertex(vertex) % pes;
}

} // namespace

Trace
graphPushTrace(const Graph &graph, std::uint32_t n,
               VertexPartition partition, std::uint32_t supersteps)
{
    FT_ASSERT(supersteps >= 1, "need at least one superstep");
    const std::uint32_t pes = n * n;

    // Precompute vertex owners once.
    std::vector<NodeId> owner(graph.nodes);
    for (std::uint32_t v = 0; v < graph.nodes; ++v)
        owner[v] = assign(v, graph, n, partition);

    Trace trace;
    trace.name = "graph:" + graph.name;
    trace.n = n;

    // Coarse BSP phasing: each round's messages depend on the last
    // previous-round update that arrived at their source PE.
    std::vector<std::int64_t> last_incoming(pes, -1);
    for (std::uint32_t s = 0; s < supersteps; ++s) {
        std::vector<std::int64_t> round_incoming(pes, -1);
        for (const auto &[u, v] : graph.edges) {
            TraceMessage m;
            m.id = trace.messages.size();
            m.src = owner[u];
            m.dst = owner[v];
            if (s > 0 && last_incoming[m.src] >= 0) {
                m.deps.push_back(
                    static_cast<std::uint64_t>(last_incoming[m.src]));
            }
            round_incoming[m.dst] = static_cast<std::int64_t>(m.id);
            trace.messages.push_back(std::move(m));
        }
        last_incoming.swap(round_incoming);
    }
    trace.validate();
    return trace;
}

VertexPartition
defaultPartition(const GraphBenchmark &bench)
{
    return bench.isRoad ? VertexPartition::spatialBlocks
                        : VertexPartition::hashed;
}

} // namespace fasttrack
