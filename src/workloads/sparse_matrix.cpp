#include "workloads/sparse_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace fasttrack {

double
SparseMatrix::bandedFraction(std::uint32_t band) const
{
    if (nnz() == 0)
        return 0.0;
    std::uint64_t inside = 0;
    for (std::uint32_t i = 0; i < rows; ++i) {
        for (std::uint32_t k = rowPtr[i]; k < rowPtr[i + 1]; ++k) {
            const std::int64_t off =
                static_cast<std::int64_t>(colIdx[k]) - i;
            if (std::llabs(off) <= band)
                ++inside;
        }
    }
    return static_cast<double>(inside) / static_cast<double>(nnz());
}

SparseMatrix
generateMatrix(const MatrixParams &params)
{
    FT_ASSERT(params.rows >= 4, "matrix too small");
    FT_ASSERT(params.avgNnzPerRow >= 1.0, "need at least the diagonal");
    Rng rng(params.seed);

    SparseMatrix m;
    m.name = params.name;
    m.rows = m.cols = params.rows;
    m.rowPtr.reserve(params.rows + 1);
    m.rowPtr.push_back(0);

    const auto band = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(params.bandFraction * params.rows));

    std::vector<std::uint32_t> row_cols;
    for (std::uint32_t i = 0; i < params.rows; ++i) {
        row_cols.clear();
        row_cols.push_back(i); // diagonal

        // Row population: geometric-ish spread around the mean, which
        // matches the long-tailed row counts of circuit matrices.
        const double extra_mean = params.avgNnzPerRow - 1.0;
        std::uint32_t extra = 0;
        if (extra_mean > 0.0) {
            // Draw from [0, 2*mean] with triangular weighting.
            const double u = rng.nextDouble() + rng.nextDouble();
            extra = static_cast<std::uint32_t>(
                std::llround(u * extra_mean));
        }
        if (params.kind == MatrixKind::gene) {
            // Gene networks: a few hub rows are an order denser.
            if (rng.nextBool(0.02))
                extra *= 8;
        }

        for (std::uint32_t e = 0; e < extra; ++e) {
            std::uint32_t j;
            if (rng.nextBool(params.localFraction)) {
                // Banded placement around the diagonal.
                const std::int64_t off =
                    rng.nextRange(-static_cast<std::int64_t>(band),
                                  static_cast<std::int64_t>(band));
                std::int64_t col = static_cast<std::int64_t>(i) + off;
                col = std::clamp<std::int64_t>(col, 0, params.rows - 1);
                j = static_cast<std::uint32_t>(col);
            } else {
                j = static_cast<std::uint32_t>(
                    rng.nextBelow(params.rows));
            }
            row_cols.push_back(j);
        }
        std::sort(row_cols.begin(), row_cols.end());
        row_cols.erase(std::unique(row_cols.begin(), row_cols.end()),
                       row_cols.end());
        m.colIdx.insert(m.colIdx.end(), row_cols.begin(),
                        row_cols.end());
        m.rowPtr.push_back(static_cast<std::uint32_t>(m.colIdx.size()));
    }
    return m;
}

const std::vector<MatrixParams> &
spmvCatalog()
{
    // Sizes are scaled to keep traces in the tens of thousands of
    // messages; locality mirrors each original's structure.
    static const std::vector<MatrixParams> catalog = {
        {"add20", MatrixKind::circuit, 2395, 5.5, 0.55, 0.03, 11},
        {"bomhof_circuit_1", MatrixKind::circuit, 2624, 9.0, 0.60,
         0.02, 12},
        {"bomhof_circuit_2", MatrixKind::circuit, 4510, 5.0, 0.92,
         0.01, 13},
        {"bomhof_circuit_3", MatrixKind::circuit, 12127, 4.0, 0.65,
         0.015, 14},
        {"hamm_memplus", MatrixKind::circuit, 17758, 5.6, 0.95, 0.008,
         15},
        {"human_gene2", MatrixKind::gene, 3000, 28.0, 0.15, 0.05, 16},
        {"sandia_12944", MatrixKind::mesh, 12944, 4.5, 0.70, 0.02, 17},
        {"sandia_20105", MatrixKind::mesh, 20105, 4.2, 0.72, 0.02, 18},
        {"simucad_dac", MatrixKind::circuit, 6882, 5.0, 0.58, 0.025,
         19},
        {"simucad_ram2k", MatrixKind::circuit, 4875, 6.5, 0.62, 0.02,
         20},
    };
    return catalog;
}

} // namespace fasttrack
