/**
 * @file
 * SpMV communication-trace synthesis (Fig 15a): rows are distributed
 * over PEs; for y = A*x, the owner of vector entry x[j] streams it to
 * every PE holding a row with a nonzero in column j. Throughput-bound:
 * all messages are available at cycle 0 and the workload completion
 * time measures how fast the NoC can route them.
 */

#ifndef FT_WORKLOADS_SPMV_HPP
#define FT_WORKLOADS_SPMV_HPP

#include "traffic/trace.hpp"
#include "workloads/sparse_matrix.hpp"

namespace fasttrack {

/** How matrix rows / vector entries map onto PEs. */
enum class RowMapping
{
    /** owner(i) = i mod PEs - spreads bands over all PEs (turns any
     *  matrix into near-uniform traffic). */
    cyclic,
    /** owner(i) = i / ceil(rows/PEs) - keeps bands local, so strongly
     *  banded matrices produce mostly self/neighbour messages (the
     *  paper's "predominantly local" benchmarks). Default. */
    block,
};

/**
 * Build the SpMV trace for @p matrix on an @p n x @p n NoC.
 * One message per (column owner -> distinct consumer PE) pair;
 * messages to the owner itself become local (self) deliveries.
 */
Trace spmvTrace(const SparseMatrix &matrix, std::uint32_t n,
                RowMapping mapping = RowMapping::block);

} // namespace fasttrack

#endif // FT_WORKLOADS_SPMV_HPP
