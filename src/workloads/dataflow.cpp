#include "workloads/dataflow.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace fasttrack {

std::uint64_t
DataflowDag::edgeCount() const
{
    std::uint64_t edges = 0;
    for (const auto &s : succs)
        edges += s.size();
    return edges;
}

std::uint32_t
DataflowDag::depth() const
{
    std::uint32_t d = 0;
    for (std::uint32_t l : level)
        d = std::max(d, l + 1);
    return d;
}

double
DataflowDag::avgWidth() const
{
    const std::uint32_t d = depth();
    return d ? static_cast<double>(nodeCount) / d : 0.0;
}

std::vector<std::uint32_t>
DataflowDag::inDegrees() const
{
    std::vector<std::uint32_t> deg(nodeCount, 0);
    for (const auto &s : succs) {
        for (std::uint32_t v : s)
            ++deg[v];
    }
    return deg;
}

DataflowDag
sparseLuDag(const LuDagParams &params)
{
    FT_ASSERT(params.nodes >= 8, "DAG too small");
    FT_ASSERT(params.avgWidth >= 1.0, "width must be >= 1");
    Rng rng(params.seed);

    DataflowDag dag;
    dag.name = params.name;
    dag.nodeCount = params.nodes;
    dag.succs.resize(params.nodes);
    dag.level.resize(params.nodes);

    // LU elimination fronts start wide and narrow towards the final
    // pivots: linear width decay from 1.6x to 0.4x of the average.
    const auto levels = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(params.nodes / params.avgWidth));
    std::vector<std::vector<std::uint32_t>> by_level(levels);
    std::uint32_t next = 0;
    for (std::uint32_t l = 0; l < levels && next < params.nodes; ++l) {
        const double frac = static_cast<double>(l) / levels;
        const double w = params.avgWidth * (1.6 - 1.2 * frac);
        auto width = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(std::lround(w)));
        if (l + 1 == levels)
            width = params.nodes - next; // absorb the remainder
        width = std::min(width, params.nodes - next);
        for (std::uint32_t i = 0; i < width; ++i) {
            dag.level[next] = l;
            by_level[l].push_back(next++);
        }
    }
    const std::uint32_t used_levels = dag.depth();

    // Wire predecessors: mostly from the immediately previous level
    // (long chains), occasionally further back.
    for (std::uint32_t l = 1; l < used_levels; ++l) {
        for (std::uint32_t v : by_level[l]) {
            const double extra = params.avgFanin - 1.0;
            std::uint32_t fanin = 1;
            if (extra > 0.0 && rng.nextBool(std::min(extra, 1.0)))
                ++fanin;
            if (extra > 1.0 && rng.nextBool(extra - 1.0))
                ++fanin;
            for (std::uint32_t f = 0; f < fanin; ++f) {
                std::uint32_t back = 1;
                while (back < params.maxLookback && back < l &&
                       rng.nextBool(0.25)) {
                    ++back;
                }
                const auto &pool = by_level[l - back];
                const std::uint32_t u = pool[rng.nextBelow(pool.size())];
                auto &s = dag.succs[u];
                if (std::find(s.begin(), s.end(), v) == s.end())
                    s.push_back(v);
            }
        }
    }
    return dag;
}

Trace
dataflowTrace(const DataflowDag &dag, std::uint32_t n,
              Cycle compute_delay)
{
    const std::uint32_t pes = n * n;
    Trace trace;
    trace.name = "dataflow:" + dag.name;
    trace.n = n;

    // Tokens entering each node, filled in topological (id) order.
    std::vector<std::vector<std::uint64_t>> incoming(dag.nodeCount);
    for (std::uint32_t u = 0; u < dag.nodeCount; ++u) {
        const NodeId src = u % pes;
        for (std::uint32_t v : dag.succs[u]) {
            TraceMessage m;
            m.id = trace.messages.size();
            m.src = src;
            m.dst = v % pes;
            m.deps = incoming[u];
            m.delayAfterDeps = compute_delay;
            incoming[v].push_back(m.id);
            trace.messages.push_back(std::move(m));
        }
    }
    trace.validate();
    return trace;
}

const std::vector<LuDagParams> &
luCatalog()
{
    // Node counts follow the paper's benchmark names (matrix_opcount);
    // widths are kept low to preserve the "notoriously hard to
    // parallelize" character.
    static const std::vector<LuDagParams> catalog = {
        {"bomhof3_10656", 10656, 24.0, 1.9, 3, 41},
        {"ram8k_10823", 10823, 20.0, 1.8, 3, 42},
        {"s1423_2582", 2582, 8.0, 1.7, 2, 43},
        {"s1423_6648", 6648, 12.0, 1.8, 3, 44},
        {"s1488_4872", 4872, 10.0, 1.8, 3, 45},
        {"s1494_9156", 9156, 14.0, 1.9, 3, 46},
        {"s953_3197", 3197, 9.0, 1.7, 2, 47},
        {"s953_4568", 4568, 11.0, 1.8, 3, 48},
    };
    return catalog;
}

} // namespace fasttrack
