#include "traffic/pattern.hpp"

#include <bit>
#include <vector>

#include "common/logging.hpp"

namespace fasttrack {

const char *
toString(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::random: return "RANDOM";
      case TrafficPattern::local: return "LOCAL";
      case TrafficPattern::bitComplement: return "BITCOMPL";
      case TrafficPattern::transpose: return "TRANSPOSE";
    }
    return "?";
}

TrafficPattern
patternFromString(const std::string &name)
{
    if (name == "RANDOM" || name == "random")
        return TrafficPattern::random;
    if (name == "LOCAL" || name == "local")
        return TrafficPattern::local;
    if (name == "BITCOMPL" || name == "bitcompl")
        return TrafficPattern::bitComplement;
    if (name == "TRANSPOSE" || name == "transpose")
        return TrafficPattern::transpose;
    FT_FATAL("unknown traffic pattern: ", name);
}

DestinationGenerator::DestinationGenerator(TrafficPattern pattern,
                                           std::uint32_t n,
                                           std::uint32_t local_radius)
    : pattern_(pattern), n_(n), localRadius_(local_radius)
{
    FT_ASSERT(n_ >= 2, "torus side must be >= 2");
    if (pattern_ == TrafficPattern::bitComplement &&
        !std::has_single_bit(n_ * n_)) {
        FT_FATAL("BITCOMPL needs a power-of-two PE count, got ",
                 n_ * n_);
    }
    if (pattern_ == TrafficPattern::local && localRadius_ < 1)
        FT_FATAL("LOCAL radius must be >= 1");
    if (pattern_ == TrafficPattern::random) {
        const std::uint64_t bound = std::uint64_t{n_} * n_ - 1;
        randomThreshold_ = (0 - bound) % bound;
        randomMod_.init(bound);
    }
}

} // namespace fasttrack
