#include "traffic/pattern.hpp"

#include <bit>
#include <vector>

#include "common/logging.hpp"

namespace fasttrack {

const char *
toString(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::random: return "RANDOM";
      case TrafficPattern::local: return "LOCAL";
      case TrafficPattern::bitComplement: return "BITCOMPL";
      case TrafficPattern::transpose: return "TRANSPOSE";
    }
    return "?";
}

TrafficPattern
patternFromString(const std::string &name)
{
    if (name == "RANDOM" || name == "random")
        return TrafficPattern::random;
    if (name == "LOCAL" || name == "local")
        return TrafficPattern::local;
    if (name == "BITCOMPL" || name == "bitcompl")
        return TrafficPattern::bitComplement;
    if (name == "TRANSPOSE" || name == "transpose")
        return TrafficPattern::transpose;
    FT_FATAL("unknown traffic pattern: ", name);
}

DestinationGenerator::DestinationGenerator(TrafficPattern pattern,
                                           std::uint32_t n,
                                           std::uint32_t local_radius)
    : pattern_(pattern), n_(n), localRadius_(local_radius)
{
    FT_ASSERT(n_ >= 2, "torus side must be >= 2");
    if (pattern_ == TrafficPattern::bitComplement &&
        !std::has_single_bit(n_ * n_)) {
        FT_FATAL("BITCOMPL needs a power-of-two PE count, got ",
                 n_ * n_);
    }
    if (pattern_ == TrafficPattern::local && localRadius_ < 1)
        FT_FATAL("LOCAL radius must be >= 1");
}

NodeId
DestinationGenerator::dest(NodeId src, Rng &rng) const
{
    const std::uint32_t nodes = n_ * n_;
    FT_ASSERT(src < nodes, "bad source node");
    const Coord s = toCoord(src, n_);

    switch (pattern_) {
      case TrafficPattern::random: {
        // Uniform over the other nodes.
        NodeId d = static_cast<NodeId>(rng.nextBelow(nodes - 1));
        if (d >= src)
            ++d;
        return d;
      }

      case TrafficPattern::local: {
        // Uniform over forward neighbourhood 1 <= dx + dy <= radius
        // (forward because the torus rings are unidirectional).
        // Clamp so a wrapped displacement can never land back on the
        // source (dx, dy < N).
        const std::uint32_t radius = std::min(localRadius_, n_ - 1);
        // Count of (dx, dy) pairs with dx + dy = k is k + 1; sample a
        // pair directly instead of materializing the neighbourhood.
        std::uint32_t total = 0;
        for (std::uint32_t k = 1; k <= radius; ++k)
            total += k + 1;
        std::uint32_t pick =
            static_cast<std::uint32_t>(rng.nextBelow(total));
        std::uint32_t k = 1;
        while (pick > k) {
            pick -= k + 1;
            ++k;
        }
        const std::uint32_t dx = pick; // 0..k
        const std::uint32_t dy = k - dx;
        const Coord d{
            static_cast<std::uint16_t>((s.x + dx) % n_),
            static_cast<std::uint16_t>((s.y + dy) % n_)};
        return toNodeId(d, n_);
      }

      case TrafficPattern::bitComplement:
        return (~src) & (nodes - 1);

      case TrafficPattern::transpose:
        return toNodeId(Coord{s.y, s.x}, n_);
    }
    FT_PANIC("unknown pattern");
}

} // namespace fasttrack
