/**
 * @file
 * Synthetic open/closed-loop traffic injection: every PE generates a
 * fixed budget of packets (the paper uses 1K packets/PE) as a
 * Bernoulli process at a configured injection rate, queues them at the
 * source, and offers them to the NoC.
 */

#ifndef FT_TRAFFIC_INJECTOR_HPP
#define FT_TRAFFIC_INJECTOR_HPP

#include <deque>
#include <vector>

#include "noc/noc_device.hpp"
#include "traffic/pattern.hpp"

namespace fasttrack {

/** Parameters of one synthetic run. */
struct SyntheticWorkload
{
    TrafficPattern pattern = TrafficPattern::random;
    /** Packet-generation probability per PE per cycle (0..1]. */
    double injectionRate = 0.1;
    /** Closed-workload budget per PE (paper: 1024). */
    std::uint32_t packetsPerPe = 1024;
    /** LOCAL pattern neighbourhood radius. */
    std::uint32_t localRadius = 2;
    std::uint64_t seed = 1;
};

/**
 * Drives a NocDevice with a SyntheticWorkload. Call tick() once per
 * cycle *before* the device's step(); poll done() to finish.
 */
class SyntheticInjector
{
  public:
    SyntheticInjector(NocDevice &noc, const SyntheticWorkload &workload);

    /** Generate this cycle's packets and top up per-node offers. */
    void tick();

    /** All packets generated, offered, injected and delivered. */
    bool done() const;

    /** Packets still waiting in source queues (not yet offered). */
    std::uint64_t queued() const { return queuedTotal_; }
    std::uint64_t generated() const { return generatedTotal_; }
    std::uint64_t budget() const { return budgetTotal_; }

  private:
    NocDevice &noc_;
    SyntheticWorkload workload_;
    DestinationGenerator destGen_;
    Rng rng_;
    std::vector<std::uint32_t> remaining_;
    std::vector<std::deque<Packet>> queues_;
    std::uint64_t nextId_ = 1;
    std::uint64_t generatedTotal_ = 0;
    std::uint64_t queuedTotal_ = 0;
    std::uint64_t budgetTotal_ = 0;
};

} // namespace fasttrack

#endif // FT_TRAFFIC_INJECTOR_HPP
