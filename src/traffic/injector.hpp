/**
 * @file
 * Synthetic open/closed-loop traffic injection: every PE generates a
 * fixed budget of packets (the paper uses 1K packets/PE) as a
 * Bernoulli process at a configured injection rate, queues them at the
 * source, and offers them to the NoC.
 */

#ifndef FT_TRAFFIC_INJECTOR_HPP
#define FT_TRAFFIC_INJECTOR_HPP

#include <array>
#include <cstdlib>
#include <new>
#include <vector>

#include "noc/noc_device.hpp"
#include "traffic/pattern.hpp"

namespace fasttrack {

/**
 * Fixed-slot-size allocator carving chunk storage out of 2 MiB-aligned
 * blocks, with a free list shared by every queue using the arena.
 * A deep source backlog grows by fresh pages every cycle; serving them
 * from hugepage-advised blocks (MADV_HUGEPAGE, where available) takes
 * one page fault per 2 MiB instead of one per 4 KiB, which is the
 * dominant per-cycle cost of backlog growth otherwise.
 */
class ChunkArena
{
  public:
    explicit ChunkArena(std::size_t slot_bytes)
        : slotBytes_((slot_bytes + 63) & ~std::size_t{63})
    {
    }
    ~ChunkArena()
    {
        for (void *b : blocks_)
            std::free(b);
    }
    ChunkArena(const ChunkArena &) = delete;
    ChunkArena &operator=(const ChunkArena &) = delete;

    void *allocate()
    {
        if (!freeSlots_.empty()) {
            void *p = freeSlots_.back();
            freeSlots_.pop_back();
            return p;
        }
        if (remaining_ < slotBytes_)
            grow();
        void *p = bump_;
        bump_ += slotBytes_;
        remaining_ -= slotBytes_;
        return p;
    }

    void release(void *p) { freeSlots_.push_back(p); }

  private:
    static constexpr std::size_t kBlockBytes = std::size_t{2} << 20;

    void grow();

    std::size_t slotBytes_;
    std::vector<void *> blocks_;
    std::vector<void *> freeSlots_;
    char *bump_ = nullptr;
    std::size_t remaining_ = 0;
};

/**
 * Unbounded FIFO stored in fixed-size chunks. Source queues are
 * touched for every node on every cycle, so this is sized for the
 * injector's access pattern: pushes are sequential writes into a large
 * chunk (one allocation per kChunk entries, recycled through the
 * arena's shared free list), pops are an index bump, and — unlike a
 * head-indexed vector — entries are never moved when the queue grows.
 */
template <typename T>
class ChunkedQueue
{
  public:
    ChunkedQueue() = default;
    /** @param arena chunk storage provider; must outlive the queue.
     *  Without one, chunks come from the global heap. */
    explicit ChunkedQueue(ChunkArena *arena) : arena_(arena) {}
    ChunkedQueue(ChunkedQueue &&other) noexcept
        : arena_(other.arena_),
          chunks_(std::move(other.chunks_)),
          headChunk_(other.headChunk_),
          headOff_(other.headOff_),
          tailOff_(other.tailOff_),
          count_(other.count_)
    {
        other.chunks_.clear();
        other.headChunk_ = 0;
        other.headOff_ = 0;
        other.tailOff_ = kChunk;
        other.count_ = 0;
    }
    ChunkedQueue(const ChunkedQueue &) = delete;
    ChunkedQueue &operator=(const ChunkedQueue &) = delete;
    ~ChunkedQueue()
    {
        for (Chunk *c : chunks_) {
            if (c)
                freeChunk(c);
        }
    }

    /** Slot size an arena serving this queue type must be built with. */
    static constexpr std::size_t chunkBytes()
    {
        return sizeof(Chunk);
    }

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    const T &front() const { return (*chunks_[headChunk_])[headOff_]; }

    /** Visit every queued entry front to back without consuming it
     *  (checkpoint capture walks the backlog this way). */
    template <typename F>
    void forEach(F &&fn) const
    {
        std::size_t left = count_;
        std::size_t off = headOff_;
        for (std::size_t ci = headChunk_; left > 0; ++ci, off = 0) {
            const Chunk &c = *chunks_[ci];
            const std::size_t end = off + left < kChunk ? off + left
                                                        : kChunk;
            for (std::size_t i = off; i < end; ++i, --left)
                fn(c[i]);
        }
    }

    void push_back(const T &v)
    {
        if (tailOff_ == kChunk) {
            chunks_.push_back(newChunk());
            tailOff_ = 0;
        }
        (*chunks_.back())[tailOff_++] = v;
        ++count_;
    }

    void pop_front()
    {
        ++headOff_;
        --count_;
        if (count_ == 0) {
            // Fully drained: only the back chunk is still live (any
            // consumed predecessors were already recycled).
            freeChunk(chunks_.back());
            chunks_.clear();
            headChunk_ = 0;
            headOff_ = 0;
            tailOff_ = kChunk;
            return;
        }
        if (headOff_ == kChunk) {
            freeChunk(chunks_[headChunk_]);
            chunks_[headChunk_] = nullptr;
            ++headChunk_;
            headOff_ = 0;
            if (headChunk_ >= 64) {
                // Compact the consumed chunk-pointer prefix (pointer
                // moves only; entry storage never relocates).
                chunks_.erase(chunks_.begin(),
                              chunks_.begin() +
                                  static_cast<std::ptrdiff_t>(headChunk_));
                headChunk_ = 0;
            }
        }
    }

  private:
    static constexpr std::size_t kChunk = 512;
    using Chunk = std::array<T, kChunk>;

    Chunk *newChunk()
    {
        void *mem = arena_ ? arena_->allocate()
                           : ::operator new(sizeof(Chunk));
        // Default-init on purpose: entries are always written by
        // push_back before they can be read.
        return ::new (mem) Chunk;
    }

    void freeChunk(Chunk *c)
    {
        c->~Chunk();
        if (arena_)
            arena_->release(c);
        else
            ::operator delete(c);
    }

    ChunkArena *arena_ = nullptr;
    std::vector<Chunk *> chunks_;
    std::size_t headChunk_ = 0;
    std::size_t headOff_ = 0;
    std::size_t tailOff_ = kChunk;
    std::size_t count_ = 0;
};

/**
 * Compact queued-packet record shared by the scalar and batched
 * injectors. Only identity, destination and the creation stamp exist
 * before injection; materializing the full Packet lazily at offer
 * time halves the memory traffic of a deep source backlog.
 */
struct PendingPacket
{
    std::uint64_t id = 0;
    Cycle created = 0;
    NodeId dst = kInvalidNode;
};

/** Parameters of one synthetic run. */
struct SyntheticWorkload
{
    TrafficPattern pattern = TrafficPattern::random;
    /** Packet-generation probability per PE per cycle (0..1]. */
    double injectionRate = 0.1;
    /** Closed-workload budget per PE (paper: 1024). */
    std::uint32_t packetsPerPe = 1024;
    /** LOCAL pattern neighbourhood radius. */
    std::uint32_t localRadius = 2;
    std::uint64_t seed = 1;
};

/**
 * Serializable state of one SyntheticInjector (sim/checkpoint.hpp):
 * the RNG stream, per-node generation budgets and source backlogs,
 * and the id/generation counters. Everything else the injector holds
 * is re-derived from the workload at construction.
 */
struct InjectorState
{
    /** xoshiro256** generator words. */
    std::array<std::uint64_t, 4> rng{};
    /** Per-node packets still to generate. */
    std::vector<std::uint32_t> remaining;
    /** Per-node source backlog, front first. */
    std::vector<std::vector<PendingPacket>> queues;
    std::uint64_t nextId = 1;
    std::uint64_t generatedTotal = 0;
};

/**
 * Drives a NocDevice with a SyntheticWorkload. Call tick() once per
 * cycle *before* the device's step(); poll done() to finish.
 */
class SyntheticInjector
{
  public:
    SyntheticInjector(NocDevice &noc, const SyntheticWorkload &workload);

    /** Generate this cycle's packets and top up per-node offers. */
    void tick();

    /** All packets generated, offered, injected and delivered. */
    bool done() const;

    /** Packets still waiting in source queues (not yet offered). */
    std::uint64_t queued() const { return queuedTotal_; }
    std::uint64_t generated() const { return generatedTotal_; }
    std::uint64_t budget() const { return budgetTotal_; }

    /** Capture the injector's complete dynamic state (always
     *  succeeds; the bool mirrors the device-side convention). */
    bool captureState(InjectorState &out) const;
    /** Replay a captured state; false when the node count does not
     *  match this injector's device. Generation then continues
     *  bit-identically with the uninterrupted run. */
    bool restoreState(const InjectorState &st);

  private:
    using Pending = PendingPacket;

    NocDevice &noc_;
    SyntheticWorkload workload_;
    DestinationGenerator destGen_;
    Rng rng_;
    std::vector<std::uint32_t> remaining_;
    /** Declared before queues_ so every queue dies first. */
    ChunkArena chunkArena_{ChunkedQueue<Pending>::chunkBytes()};
    std::vector<ChunkedQueue<Pending>> queues_;
    std::uint64_t nextId_ = 1;
    std::uint64_t generatedTotal_ = 0;
    std::uint64_t queuedTotal_ = 0;
    std::uint64_t budgetTotal_ = 0;
};

} // namespace fasttrack

#endif // FT_TRAFFIC_INJECTOR_HPP
