/**
 * @file
 * Dependency-aware trace replay engine: injects trace messages once
 * their timestamp has passed and all their dependencies have been
 * delivered, modelling PEs that consume tokens, compute, and emit.
 */

#ifndef FT_TRAFFIC_TRACE_REPLAY_HPP
#define FT_TRAFFIC_TRACE_REPLAY_HPP

#include <deque>
#include <queue>
#include <vector>

#include "noc/noc_device.hpp"
#include "traffic/trace.hpp"

namespace fasttrack {

/**
 * Serializable state of one TraceReplayer (sim/checkpoint.hpp): the
 * dependency counters, the ready set, the per-source FIFOs and the
 * delivery/injection progress. The reverse dependency index is
 * re-derived from the trace at construction and not serialized.
 */
struct TraceReplayState
{
    /** Outstanding undelivered dependencies per message. */
    std::vector<std::uint32_t> pendingDeps;
    /** Drained ready queue as ascending (cycle, id) pairs. */
    std::vector<std::pair<Cycle, std::uint64_t>> ready;
    /** Per-source FIFO contents, front first. */
    std::vector<std::vector<std::uint64_t>> sourceQueues;
    std::uint64_t deliveredCount = 0;
    std::uint64_t injectedCount = 0;
    Cycle lastDelivery = 0;
};

/**
 * Replays one Trace on one NocDevice. Wiring: the replayer installs a
 * delivery callback on the device (chaining to any previous callback
 * is the caller's concern), so construct it before running and do not
 * replace the callback afterwards.
 *
 * Per cycle, call tick() then the device's step(); finished() reports
 * completion. run() does the whole loop.
 */
class TraceReplayer
{
  public:
    TraceReplayer(NocDevice &noc, const Trace &trace);

    void tick();
    bool finished() const;

    /**
     * Run to completion.
     * @param max_cycles abort guard.
     * @return completion cycle (makespan).
     */
    Cycle run(Cycle max_cycles);

    std::uint64_t deliveredMessages() const { return deliveredCount_; }
    /** Cycle of the most recent delivery (the makespan once
     *  finished()). */
    Cycle lastDelivery() const { return lastDelivery_; }

    /** Capture the replayer's complete dynamic state (always
     *  succeeds; the bool mirrors the device-side convention). */
    bool captureState(TraceReplayState &out) const;
    /** Replay a captured state; false when the message or PE counts
     *  do not match this replayer's trace and device. */
    bool restoreState(const TraceReplayState &st);

  private:
    void onDeliver(const Packet &p, Cycle when);

    NocDevice &noc_;
    const Trace &trace_;
    /** Outstanding undelivered dependencies per message. */
    std::vector<std::uint32_t> pendingDeps_;
    /** Messages whose deps resolved, keyed by earliest-inject cycle. */
    std::priority_queue<std::pair<Cycle, std::uint64_t>,
                        std::vector<std::pair<Cycle, std::uint64_t>>,
                        std::greater<>>
        readyAt_;
    /** Per-source FIFO of ready messages. */
    std::vector<std::deque<std::uint64_t>> sourceQueues_;
    /** Reverse dependency index: message -> dependents. */
    std::vector<std::vector<std::uint64_t>> dependents_;
    std::uint64_t deliveredCount_ = 0;
    std::uint64_t injectedCount_ = 0;
    Cycle lastDelivery_ = 0;
};

} // namespace fasttrack

#endif // FT_TRAFFIC_TRACE_REPLAY_HPP
