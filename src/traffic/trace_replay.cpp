#include "traffic/trace_replay.hpp"

#include "common/logging.hpp"

namespace fasttrack {

TraceReplayer::TraceReplayer(NocDevice &noc, const Trace &trace)
    : noc_(noc), trace_(trace)
{
    trace_.validate();
    FT_ASSERT(trace_.n == noc_.config().n, "trace is for a ", trace_.n,
              "x", trace_.n, " NoC, device is ", noc_.config().n, "x",
              noc_.config().n);

    const std::size_t count = trace_.messages.size();
    pendingDeps_.resize(count);
    dependents_.resize(count);
    sourceQueues_.resize(noc_.config().pes());

    for (const TraceMessage &m : trace_.messages) {
        pendingDeps_[m.id] = static_cast<std::uint32_t>(m.deps.size());
        for (std::uint64_t dep : m.deps)
            dependents_[dep].push_back(m.id);
        if (m.deps.empty())
            readyAt_.emplace(m.earliest, m.id);
    }

    noc_.setDeliverCallback(
        [this](const Packet &p, Cycle when) { onDeliver(p, when); });
}

void
TraceReplayer::onDeliver(const Packet &p, Cycle when)
{
    ++deliveredCount_;
    lastDelivery_ = when;
    const std::uint64_t id = p.tag;
    FT_ASSERT(id < trace_.messages.size(), "unknown trace message");
    for (std::uint64_t dependent : dependents_[id]) {
        FT_ASSERT(pendingDeps_[dependent] > 0, "dependency underflow");
        if (--pendingDeps_[dependent] == 0) {
            const TraceMessage &m = trace_.messages[dependent];
            const Cycle ready =
                std::max(m.earliest, when + 1 + m.delayAfterDeps);
            readyAt_.emplace(ready, dependent);
        }
    }
}

void
TraceReplayer::tick()
{
    const Cycle now = noc_.now();
    while (!readyAt_.empty() && readyAt_.top().first <= now) {
        const std::uint64_t id = readyAt_.top().second;
        readyAt_.pop();
        sourceQueues_[trace_.messages[id].src].push_back(id);
    }
    for (NodeId node = 0;
         node < static_cast<NodeId>(sourceQueues_.size()); ++node) {
        auto &q = sourceQueues_[node];
        if (q.empty() || noc_.hasPendingOffer(node))
            continue;
        const TraceMessage &m = trace_.messages[q.front()];
        Packet p;
        p.id = injectedCount_ + 1;
        p.src = m.src;
        p.dst = m.dst;
        p.created = std::max(m.earliest, now);
        p.tag = m.id;
        noc_.offer(p);
        ++injectedCount_;
        q.pop_front();
    }
}

bool
TraceReplayer::finished() const
{
    return deliveredCount_ == trace_.messages.size();
}

bool
TraceReplayer::captureState(TraceReplayState &out) const
{
    out = TraceReplayState{};
    out.pendingDeps = pendingDeps_;
    auto pq = readyAt_; // min-queue copy; drain pops in ascending order
    out.ready.reserve(pq.size());
    while (!pq.empty()) {
        out.ready.push_back(pq.top());
        pq.pop();
    }
    out.sourceQueues.resize(sourceQueues_.size());
    for (std::size_t node = 0; node < sourceQueues_.size(); ++node)
        out.sourceQueues[node].assign(sourceQueues_[node].begin(),
                                      sourceQueues_[node].end());
    out.deliveredCount = deliveredCount_;
    out.injectedCount = injectedCount_;
    out.lastDelivery = lastDelivery_;
    return true;
}

bool
TraceReplayer::restoreState(const TraceReplayState &st)
{
    if (st.pendingDeps.size() != trace_.messages.size() ||
        st.sourceQueues.size() != sourceQueues_.size()) {
        FT_WARN("trace-replay restore refused: snapshot shape (",
                st.pendingDeps.size(), " message(s), ",
                st.sourceQueues.size(), " source(s)) does not match "
                "the trace");
        return false;
    }
    for (const auto &[cycle, id] : st.ready) {
        (void)cycle;
        if (id >= trace_.messages.size())
            return false;
    }
    for (const auto &q : st.sourceQueues) {
        for (std::uint64_t id : q) {
            if (id >= trace_.messages.size())
                return false;
        }
    }
    pendingDeps_ = st.pendingDeps;
    readyAt_ = {};
    for (const auto &[cycle, id] : st.ready)
        readyAt_.emplace(cycle, id);
    for (std::size_t node = 0; node < sourceQueues_.size(); ++node)
        sourceQueues_[node].assign(st.sourceQueues[node].begin(),
                                   st.sourceQueues[node].end());
    deliveredCount_ = st.deliveredCount;
    injectedCount_ = st.injectedCount;
    lastDelivery_ = st.lastDelivery;
    return true;
}

Cycle
TraceReplayer::run(Cycle max_cycles)
{
    const Cycle limit = noc_.now() + max_cycles;
    while (!finished() && noc_.now() < limit) {
        tick();
        noc_.step();
    }
    FT_ASSERT(finished(), "trace replay did not finish within ",
              max_cycles, " cycles (", deliveredCount_, "/",
              trace_.messages.size(), " delivered)");
    return lastDelivery_;
}

} // namespace fasttrack
