/**
 * @file
 * Lane-wise synthetic traffic injection for the batched lockstep
 * engine: K independent SyntheticWorkload streams, one per replica,
 * driven by a single tick() per cycle.
 *
 * Determinism contract: each lane owns its own xoshiro stream, packet
 * id counter, per-PE budgets and per-node source queues, and tick()
 * visits every lane's nodes in exactly the order SyntheticInjector
 * does — generate-then-offer, node 0..N-1 — so a lane's draw stream
 * and offer sequence are bit-identical to a solo SyntheticInjector
 * constructed with the same workload against a solo Network.
 */

#ifndef FT_TRAFFIC_BATCHED_INJECTOR_HPP
#define FT_TRAFFIC_BATCHED_INJECTOR_HPP

#include <deque>
#include <vector>

#include "noc/batched_engine.hpp"
#include "traffic/injector.hpp"
#include "traffic/pattern.hpp"

namespace fasttrack {

/**
 * Drives a BatchedEngine with one SyntheticWorkload per lane. Call
 * tick() once per cycle *before* the engine's step(); retire a lane
 * with setLaneActive(lane, false) once its run completed or timed out
 * so tick() stops spending work on it.
 */
class BatchedSyntheticInjector
{
  public:
    /** @param workloads one entry per lane; size must equal
     *  noc.lanes(). */
    BatchedSyntheticInjector(
        BatchedEngine &noc,
        const std::vector<SyntheticWorkload> &workloads);

    /** Generate this cycle's packets and top up offers on every
     *  active lane. */
    void tick();

    /** All of @p lane's packets generated, offered, injected and
     *  delivered. */
    bool done(std::uint32_t lane) const
    {
        const Lane &l = lanes_[lane];
        return l.generatedTotal == l.budgetTotal &&
               l.queuedTotal == 0 && noc_.quiescent(lane);
    }

    void setLaneActive(std::uint32_t lane, bool active)
    {
        lanes_[lane].active = active;
    }
    bool laneActive(std::uint32_t lane) const
    {
        return lanes_[lane].active;
    }
    /** Number of lanes tick() still works on. */
    std::uint32_t activeLanes() const;

    std::uint64_t queued(std::uint32_t lane) const
    {
        return lanes_[lane].queuedTotal;
    }
    std::uint64_t generated(std::uint32_t lane) const
    {
        return lanes_[lane].generatedTotal;
    }
    std::uint64_t budget(std::uint32_t lane) const
    {
        return lanes_[lane].budgetTotal;
    }

  private:
    /** One replica's complete injection state. */
    struct Lane
    {
        SyntheticWorkload workload;
        DestinationGenerator destGen;
        Rng rng;
        std::vector<std::uint32_t> remaining;
        std::vector<ChunkedQueue<PendingPacket>> queues;
        std::uint64_t nextId = 1;
        std::uint64_t generatedTotal = 0;
        std::uint64_t queuedTotal = 0;
        std::uint64_t budgetTotal = 0;
        bool active = true;

        Lane(const SyntheticWorkload &w, std::uint32_t n,
             std::uint32_t nodes, ChunkArena &arena);
    };

    BatchedEngine &noc_;
    /** One chunk arena per lane, so a lane's backlog chunks cluster
     *  in the address space instead of interleaving with the other
     *  K-1 lanes' (page/TLB locality during the per-lane tick pass).
     *  Declared before lanes_ so every queue dies first; a deque
     *  because ChunkArena is pinned (non-movable). */
    std::deque<ChunkArena> arenas_;
    std::vector<Lane> lanes_;
};

} // namespace fasttrack

#endif // FT_TRAFFIC_BATCHED_INJECTOR_HPP
