/**
 * @file
 * Communication-trace format for replaying FPGA-accelerator workloads
 * (Fig 15): timestamped messages with optional dependencies, the
 * common denominator of the SpMV, graph, dataflow and multiprocessor
 * case studies.
 */

#ifndef FT_TRAFFIC_TRACE_HPP
#define FT_TRAFFIC_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fasttrack {

/** One message in a workload trace. */
struct TraceMessage
{
    /** Dense id, equal to the message's index in Trace::messages. */
    std::uint64_t id = 0;
    NodeId src = 0;
    NodeId dst = 0;
    /** Do not inject before this cycle (phase/timestamp semantics). */
    Cycle earliest = 0;
    /** Source-PE compute delay after the last dependency delivers. */
    Cycle delayAfterDeps = 0;
    /** Messages that must be *delivered* before this one may inject
     *  (dataflow token semantics). */
    std::vector<std::uint64_t> deps;
};

/** A full workload trace for an N x N NoC. */
struct Trace
{
    std::string name;
    std::uint32_t n = 0;
    std::vector<TraceMessage> messages;

    /** Sanity-check ids, node ranges and dependency acyclicity
     *  (deps must reference lower ids). Aborts on violation. */
    void validate() const;

    /** Plain-text round trip (one message per line). */
    void save(std::ostream &os) const;
    static Trace load(std::istream &is);
};

} // namespace fasttrack

#endif // FT_TRAFFIC_TRACE_HPP
