#include "traffic/batched_injector.hpp"

#include "common/logging.hpp"

namespace fasttrack {

BatchedSyntheticInjector::Lane::Lane(const SyntheticWorkload &w,
                                     std::uint32_t n,
                                     std::uint32_t nodes,
                                     ChunkArena &arena)
    : workload(w),
      destGen(w.pattern, n, w.localRadius),
      rng(w.seed)
{
    FT_ASSERT(w.injectionRate > 0.0 && w.injectionRate <= 1.0,
              "injection rate must be in (0, 1]: ", w.injectionRate);
    remaining.assign(nodes, w.packetsPerPe);
    queues.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i)
        queues.emplace_back(&arena);
    budgetTotal = static_cast<std::uint64_t>(nodes) * w.packetsPerPe;
}

BatchedSyntheticInjector::BatchedSyntheticInjector(
    BatchedEngine &noc, const std::vector<SyntheticWorkload> &workloads)
    : noc_(noc)
{
    FT_ASSERT(workloads.size() == noc.lanes(),
              "one workload per lane required: ", workloads.size(),
              " workloads for ", noc.lanes(), " lanes");
    const std::uint32_t n = noc.config().n;
    const std::uint32_t nodes = noc.nodeCount();
    lanes_.reserve(workloads.size());
    for (const SyntheticWorkload &w : workloads) {
        arenas_.emplace_back(
            ChunkedQueue<PendingPacket>::chunkBytes());
        lanes_.emplace_back(w, n, nodes, arenas_.back());
    }
}

void
BatchedSyntheticInjector::tick()
{
    const Cycle now = noc_.now();
    const auto nlanes = static_cast<std::uint32_t>(lanes_.size());
    const std::uint32_t nodes = noc_.nodeCount();
    // Node-outer, lane-inner: each lane still visits its nodes in
    // exactly the scalar order (so per-lane draw streams are
    // untouched), but the inner loop runs K *independent* RNG and
    // queue-memory chains back to back. The scalar injector is
    // serialized by its single RNG chain between cache-missing queue
    // touches; here the out-of-order core overlaps the K lanes'
    // misses, which is where most of the batched speedup comes from.
    for (NodeId node = 0; node < nodes; ++node) {
        for (std::uint32_t lane = 0; lane < nlanes; ++lane) {
            Lane &l = lanes_[lane];
            if (!l.active)
                continue;
            if (l.remaining[node] > 0 &&
                l.rng.nextBool(l.workload.injectionRate)) {
                PendingPacket rec;
                rec.id = l.nextId++;
                rec.dst = l.destGen.dest(node, l.rng);
                rec.created = now;
                --l.remaining[node];
                ++l.generatedTotal;
                l.queues[node].push_back(rec);
                ++l.queuedTotal;
            }
            if (!l.queues[node].empty() &&
                !noc_.hasPendingOffer(lane, node)) {
                const PendingPacket &rec = l.queues[node].front();
                Packet p;
                p.id = rec.id;
                p.src = node;
                p.dst = rec.dst;
                p.created = rec.created;
                noc_.offer(lane, p);
                l.queues[node].pop_front();
                --l.queuedTotal;
            }
        }
    }
}

std::uint32_t
BatchedSyntheticInjector::activeLanes() const
{
    std::uint32_t count = 0;
    for (const Lane &l : lanes_)
        count += l.active ? 1u : 0u;
    return count;
}

} // namespace fasttrack
