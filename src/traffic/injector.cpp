#include "traffic/injector.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/logging.hpp"

namespace fasttrack {

void
ChunkArena::grow()
{
    FT_ASSERT(slotBytes_ <= kBlockBytes, "arena slot larger than block");
    void *b = std::aligned_alloc(kBlockBytes, kBlockBytes);
    FT_ASSERT(b != nullptr, "arena block allocation failed");
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    // Best-effort: fall back to 4 KiB pages when THP is unavailable.
    (void)::madvise(b, kBlockBytes, MADV_HUGEPAGE);
#endif
    blocks_.push_back(b);
    bump_ = static_cast<char *>(b);
    remaining_ = kBlockBytes;
}

SyntheticInjector::SyntheticInjector(NocDevice &noc,
                                     const SyntheticWorkload &workload)
    : noc_(noc),
      workload_(workload),
      destGen_(workload.pattern, noc.config().n, workload.localRadius),
      rng_(workload.seed)
{
    FT_ASSERT(workload_.injectionRate > 0.0 &&
                  workload_.injectionRate <= 1.0,
              "injection rate must be in (0, 1]: ",
              workload_.injectionRate);
    const std::uint32_t nodes = noc_.config().pes();
    remaining_.assign(nodes, workload_.packetsPerPe);
    queues_.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i)
        queues_.emplace_back(&chunkArena_);
    budgetTotal_ =
        static_cast<std::uint64_t>(nodes) * workload_.packetsPerPe;
}

void
SyntheticInjector::tick()
{
    const Cycle now = noc_.now();
    const std::uint32_t nodes = static_cast<std::uint32_t>(
        queues_.size());
    // One virtual call per cycle instead of one per node: devices
    // backed by the engine's offer slab expose its occupancy directly.
    const std::uint8_t *pending = noc_.pendingOfferMask();
    for (NodeId node = 0; node < nodes; ++node) {
        if (remaining_[node] > 0 &&
            rng_.nextBool(workload_.injectionRate)) {
            Pending rec;
            rec.id = nextId_++;
            rec.dst = destGen_.dest(node, rng_);
            rec.created = now;
            --remaining_[node];
            ++generatedTotal_;
            queues_[node].push_back(rec);
            ++queuedTotal_;
        }
        const bool slot_busy = pending ? pending[node] != 0
                                       : noc_.hasPendingOffer(node);
        if (!queues_[node].empty() && !slot_busy) {
            const Pending &rec = queues_[node].front();
            Packet p;
            p.id = rec.id;
            p.src = node;
            p.dst = rec.dst;
            p.created = rec.created;
            noc_.offer(p);
            queues_[node].pop_front();
            --queuedTotal_;
        }
    }
}

bool
SyntheticInjector::done() const
{
    return generatedTotal_ == budgetTotal_ && queuedTotal_ == 0 &&
           noc_.quiescent();
}

bool
SyntheticInjector::captureState(InjectorState &out) const
{
    out = InjectorState{};
    out.rng = rng_.state();
    out.remaining = remaining_;
    out.queues.resize(queues_.size());
    for (std::size_t node = 0; node < queues_.size(); ++node) {
        out.queues[node].reserve(queues_[node].size());
        queues_[node].forEach([&](const Pending &rec) {
            out.queues[node].push_back(rec);
        });
    }
    out.nextId = nextId_;
    out.generatedTotal = generatedTotal_;
    return true;
}

bool
SyntheticInjector::restoreState(const InjectorState &st)
{
    const std::size_t nodes = remaining_.size();
    if (st.remaining.size() != nodes || st.queues.size() != nodes) {
        FT_WARN("injector-state restore refused: snapshot is for ",
                st.remaining.size(), " node(s), device has ", nodes);
        return false;
    }
    if (st.generatedTotal > budgetTotal_)
        return false;
    rng_.setState(st.rng);
    remaining_ = st.remaining;
    queues_.clear();
    queues_.reserve(nodes);
    queuedTotal_ = 0;
    for (std::size_t node = 0; node < nodes; ++node) {
        queues_.emplace_back(&chunkArena_);
        for (const Pending &rec : st.queues[node])
            queues_.back().push_back(rec);
        queuedTotal_ += st.queues[node].size();
    }
    nextId_ = st.nextId;
    generatedTotal_ = st.generatedTotal;
    return true;
}

} // namespace fasttrack
