#include "traffic/injector.hpp"

#include "common/logging.hpp"

namespace fasttrack {

SyntheticInjector::SyntheticInjector(NocDevice &noc,
                                     const SyntheticWorkload &workload)
    : noc_(noc),
      workload_(workload),
      destGen_(workload.pattern, noc.config().n, workload.localRadius),
      rng_(workload.seed)
{
    FT_ASSERT(workload_.injectionRate > 0.0 &&
                  workload_.injectionRate <= 1.0,
              "injection rate must be in (0, 1]: ",
              workload_.injectionRate);
    const std::uint32_t nodes = noc_.config().pes();
    remaining_.assign(nodes, workload_.packetsPerPe);
    queues_.resize(nodes);
    budgetTotal_ =
        static_cast<std::uint64_t>(nodes) * workload_.packetsPerPe;
}

void
SyntheticInjector::tick()
{
    const Cycle now = noc_.now();
    const std::uint32_t nodes = static_cast<std::uint32_t>(
        queues_.size());
    for (NodeId node = 0; node < nodes; ++node) {
        if (remaining_[node] > 0 &&
            rng_.nextBool(workload_.injectionRate)) {
            Packet p;
            p.id = nextId_++;
            p.src = node;
            p.dst = destGen_.dest(node, rng_);
            p.created = now;
            --remaining_[node];
            ++generatedTotal_;
            queues_[node].push_back(p);
            ++queuedTotal_;
        }
        if (!queues_[node].empty() && !noc_.hasPendingOffer(node)) {
            noc_.offer(queues_[node].front());
            queues_[node].pop_front();
            --queuedTotal_;
        }
    }
}

bool
SyntheticInjector::done() const
{
    return generatedTotal_ == budgetTotal_ && queuedTotal_ == 0 &&
           noc_.quiescent();
}

} // namespace fasttrack
