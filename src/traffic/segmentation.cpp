#include "traffic/segmentation.hpp"

#include "common/logging.hpp"

namespace fasttrack {

std::uint32_t
fragmentsPerMessage(std::uint32_t message_bits, std::uint32_t datawidth)
{
    FT_ASSERT(message_bits >= 1 && datawidth >= 1,
              "bad segmentation sizes");
    return (message_bits + datawidth - 1) / datawidth;
}

Trace
segmentTrace(const Trace &trace, std::uint32_t message_bits,
             std::uint32_t datawidth)
{
    trace.validate();
    const std::uint32_t frags =
        fragmentsPerMessage(message_bits, datawidth);
    if (frags == 1)
        return trace;

    Trace out;
    out.name = trace.name + "@" + std::to_string(datawidth) + "b";
    out.n = trace.n;
    out.messages.reserve(trace.messages.size() * frags);

    // Fragment ids of each original message, filled in order.
    std::vector<std::vector<std::uint64_t>> fragment_ids(
        trace.messages.size());

    for (const TraceMessage &m : trace.messages) {
        for (std::uint32_t f = 0; f < frags; ++f) {
            TraceMessage frag;
            frag.id = out.messages.size();
            frag.src = m.src;
            frag.dst = m.dst;
            frag.earliest = m.earliest;
            // The producer computes once, then streams fragments.
            frag.delayAfterDeps = m.delayAfterDeps;
            for (std::uint64_t dep : m.deps) {
                frag.deps.insert(frag.deps.end(),
                                 fragment_ids[dep].begin(),
                                 fragment_ids[dep].end());
            }
            fragment_ids[m.id].push_back(frag.id);
            out.messages.push_back(std::move(frag));
        }
    }
    out.validate();
    return out;
}

} // namespace fasttrack
