/**
 * @file
 * Synthetic statistical traffic patterns used throughout the paper's
 * evaluation: RANDOM, LOCAL, BITCOMPL and TRANSPOSE (Section VI).
 */

#ifndef FT_TRAFFIC_PATTERN_HPP
#define FT_TRAFFIC_PATTERN_HPP

#include <algorithm>
#include <string>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace fasttrack {

/** The four synthetic patterns of Figs 11/12. */
enum class TrafficPattern
{
    /** Uniform random destination (excluding self). */
    random,
    /** Uniform destination within a small forward routing
     *  neighbourhood (dx + dy <= radius on the unidirectional torus). */
    local,
    /** dst = bitwise complement of src id (needs power-of-two PEs). */
    bitComplement,
    /** (x, y) -> (y, x); diagonal nodes talk to themselves. */
    transpose,
};

const char *toString(TrafficPattern pattern);
TrafficPattern patternFromString(const std::string &name);

/** All four patterns, in the paper's plotting order. */
inline constexpr TrafficPattern kAllPatterns[] = {
    TrafficPattern::bitComplement,
    TrafficPattern::local,
    TrafficPattern::random,
    TrafficPattern::transpose,
};

/**
 * Destination generator for one pattern on an N x N torus.
 * Deterministic patterns ignore the Rng.
 */
class DestinationGenerator
{
  public:
    DestinationGenerator(TrafficPattern pattern, std::uint32_t n,
                         std::uint32_t local_radius = 2);

    /** Destination for a packet sourced at @p src. May equal @p src
     *  only for deterministic self-mapping patterns (transpose
     *  diagonal); such packets are delivered locally by the NoC.
     *  Defined inline: injectors draw one destination per node per
     *  cycle, making the call overhead itself measurable. */
    NodeId dest(NodeId src, Rng &rng) const
    {
        const std::uint32_t nodes = n_ * n_;
        FT_ASSERT(src < nodes, "bad source node");
        const Coord s = toCoord(src, n_);

        switch (pattern_) {
          case TrafficPattern::random: {
            // Uniform over the other nodes. Same rejection scheme (and
            // therefore the same draw stream) as
            // rng.nextBelow(nodes - 1), but with the threshold and
            // modulus precomputed: the two per-call hardware divides
            // dominate the injector otherwise.
            std::uint64_t r;
            do {
                r = rng.next();
            } while (r < randomThreshold_);
            auto d = static_cast<NodeId>(randomMod_.mod(r));
            if (d >= src)
                ++d;
            return d;
          }

          case TrafficPattern::local: {
            // Uniform over forward neighbourhood 1 <= dx + dy <= radius
            // (forward because the torus rings are unidirectional).
            // Clamp so a wrapped displacement can never land back on
            // the source (dx, dy < N).
            const std::uint32_t radius = std::min(localRadius_, n_ - 1);
            // Count of (dx, dy) pairs with dx + dy = k is k + 1;
            // sample a pair directly instead of materializing the
            // neighbourhood.
            std::uint32_t total = 0;
            for (std::uint32_t k = 1; k <= radius; ++k)
                total += k + 1;
            std::uint32_t pick =
                static_cast<std::uint32_t>(rng.nextBelow(total));
            std::uint32_t k = 1;
            while (pick > k) {
                pick -= k + 1;
                ++k;
            }
            const std::uint32_t dx = pick; // 0..k
            const std::uint32_t dy = k - dx;
            const Coord d{
                static_cast<std::uint16_t>((s.x + dx) % n_),
                static_cast<std::uint16_t>((s.y + dy) % n_)};
            return toNodeId(d, n_);
          }

          case TrafficPattern::bitComplement:
            return (~src) & (nodes - 1);

          case TrafficPattern::transpose:
            return toNodeId(Coord{s.y, s.x}, n_);
        }
        FT_PANIC("unknown pattern");
    }

    TrafficPattern pattern() const { return pattern_; }

  private:
    TrafficPattern pattern_;
    std::uint32_t n_;
    std::uint32_t localRadius_;
    /** RANDOM draws one destination per node per cycle, so the
     *  rejection threshold and the reciprocal modulus for the fixed
     *  bound (nodes - 1) are precomputed here; the draw stream is
     *  bit-identical to Rng::nextBelow(nodes - 1). */
    std::uint64_t randomThreshold_ = 0;
    FastMod64 randomMod_;
};

} // namespace fasttrack

#endif // FT_TRAFFIC_PATTERN_HPP
