/**
 * @file
 * Synthetic statistical traffic patterns used throughout the paper's
 * evaluation: RANDOM, LOCAL, BITCOMPL and TRANSPOSE (Section VI).
 */

#ifndef FT_TRAFFIC_PATTERN_HPP
#define FT_TRAFFIC_PATTERN_HPP

#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace fasttrack {

/** The four synthetic patterns of Figs 11/12. */
enum class TrafficPattern
{
    /** Uniform random destination (excluding self). */
    random,
    /** Uniform destination within a small forward routing
     *  neighbourhood (dx + dy <= radius on the unidirectional torus). */
    local,
    /** dst = bitwise complement of src id (needs power-of-two PEs). */
    bitComplement,
    /** (x, y) -> (y, x); diagonal nodes talk to themselves. */
    transpose,
};

const char *toString(TrafficPattern pattern);
TrafficPattern patternFromString(const std::string &name);

/** All four patterns, in the paper's plotting order. */
inline constexpr TrafficPattern kAllPatterns[] = {
    TrafficPattern::bitComplement,
    TrafficPattern::local,
    TrafficPattern::random,
    TrafficPattern::transpose,
};

/**
 * Destination generator for one pattern on an N x N torus.
 * Deterministic patterns ignore the Rng.
 */
class DestinationGenerator
{
  public:
    DestinationGenerator(TrafficPattern pattern, std::uint32_t n,
                         std::uint32_t local_radius = 2);

    /** Destination for a packet sourced at @p src. May equal @p src
     *  only for deterministic self-mapping patterns (transpose
     *  diagonal); such packets are delivered locally by the NoC. */
    NodeId dest(NodeId src, Rng &rng) const;

    TrafficPattern pattern() const { return pattern_; }

  private:
    TrafficPattern pattern_;
    std::uint32_t n_;
    std::uint32_t localRadius_;
};

} // namespace fasttrack

#endif // FT_TRAFFIC_PATTERN_HPP
