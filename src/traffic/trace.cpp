#include "traffic/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace fasttrack {

void
Trace::validate() const
{
    FT_ASSERT(n >= 2, "trace torus side must be >= 2");
    const std::uint32_t nodes = n * n;
    for (std::size_t i = 0; i < messages.size(); ++i) {
        const TraceMessage &m = messages[i];
        if (m.id != i)
            FT_FATAL("trace ", name, ": message ", i, " has id ", m.id);
        if (m.src >= nodes || m.dst >= nodes) {
            FT_FATAL("trace ", name, ": message ", i,
                     " references node outside ", n, "x", n);
        }
        for (std::uint64_t dep : m.deps) {
            if (dep >= m.id) {
                FT_FATAL("trace ", name, ": message ", i,
                         " depends on id ", dep,
                         " (deps must reference earlier messages)");
            }
        }
    }
}

void
Trace::save(std::ostream &os) const
{
    os << "# fasttrack-trace v1\n";
    os << "name " << (name.empty() ? "unnamed" : name) << "\n";
    os << "n " << n << "\n";
    os << "messages " << messages.size() << "\n";
    for (const TraceMessage &m : messages) {
        os << m.id << " " << m.src << " " << m.dst << " " << m.earliest
           << " " << m.delayAfterDeps << " " << m.deps.size();
        for (std::uint64_t dep : m.deps)
            os << " " << dep;
        os << "\n";
    }
}

Trace
Trace::load(std::istream &is)
{
    Trace trace;
    std::string line;
    std::size_t expected = 0;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "name") {
            ls >> trace.name;
        } else if (word == "n") {
            ls >> trace.n;
        } else if (word == "messages") {
            ls >> expected;
            trace.messages.reserve(expected);
        } else {
            TraceMessage m;
            std::size_t ndeps = 0;
            std::istringstream ms(line);
            if (!(ms >> m.id >> m.src >> m.dst >> m.earliest >>
                  m.delayAfterDeps >> ndeps)) {
                FT_FATAL("malformed trace line: ", line);
            }
            m.deps.resize(ndeps);
            for (std::size_t i = 0; i < ndeps; ++i) {
                if (!(ms >> m.deps[i]))
                    FT_FATAL("malformed trace deps: ", line);
            }
            trace.messages.push_back(std::move(m));
        }
    }
    if (expected != 0 && trace.messages.size() != expected) {
        FT_FATAL("trace declared ", expected, " messages but contains ",
                 trace.messages.size());
    }
    trace.validate();
    return trace;
}

} // namespace fasttrack
