/**
 * @file
 * Message segmentation (Section VI-B): when the NoC datawidth is
 * narrower than the application's transfer unit (e.g. a 512b
 * cacheline), each message is serialized into multiple single-flit
 * packets. This converts a message-level trace into the packet-level
 * trace a given datawidth actually routes, preserving dependency
 * semantics (a dependent fires only after *all* fragments of its
 * dependency arrive).
 */

#ifndef FT_TRAFFIC_SEGMENTATION_HPP
#define FT_TRAFFIC_SEGMENTATION_HPP

#include "traffic/trace.hpp"

namespace fasttrack {

/** Packets needed to carry one @p message_bits transfer at
 *  @p datawidth bits per packet. */
std::uint32_t fragmentsPerMessage(std::uint32_t message_bits,
                                  std::uint32_t datawidth);

/**
 * Expand @p trace so every message becomes the fragment train a
 * @p datawidth NoC must route for @p message_bits transfers.
 * Fragment ids stay topologically ordered; every dependent of an
 * original message depends on all of its fragments.
 */
Trace segmentTrace(const Trace &trace, std::uint32_t message_bits,
                   std::uint32_t datawidth);

} // namespace fasttrack

#endif // FT_TRAFFIC_SEGMENTATION_HPP
