/**
 * @file
 * Snapshot files for checkpoint/restore and deterministic
 * time-slicing (docs/checkpoint.md).
 *
 * A Snapshot bundles the complete dynamic state of one run at a
 * cycle boundary: the engine state (noc/engine_state.hpp) plus the
 * workload driver's state — the synthetic injector's RNG/backlogs or
 * the trace replayer's dependency/ready/queue state. Restoring it
 * into freshly constructed objects of the same configuration
 * continues the run bit-identically, so a run cut into N slices
 * (snapshot every M cycles, each slice resumed from the previous
 * slice's file) produces golden-stats hashes identical to the
 * uninterrupted run.
 *
 * On-disk container (same discipline as sched/blob_cache entries,
 * every field explicit little-endian via net/wire.hpp):
 *
 *   u32 magic 'FTCP'   u32 schemaVersion   u64 key
 *   u64 payloadBytes   payload...          u64 fnv1a(payload)
 *
 * The key is a content hash of the run's *inputs* (config, channels,
 * workload or full trace — not maxCycles, which only guards, never
 * shapes, the trajectory), so a resume can never silently continue
 * the wrong experiment. Every load re-validates magic, schema, key,
 * length and the trailing self-check hash; anything wrong degrades
 * to a typed rejection and the caller recomputes from scratch.
 *
 * Files are named ft-snap-<cycle, zero-padded>.ftcp so the latest
 * snapshot of a directory is the lexicographically largest name —
 * selection is deterministic, independent of file mtimes.
 */

#ifndef FT_SIM_CHECKPOINT_HPP
#define FT_SIM_CHECKPOINT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "noc/engine_state.hpp"
#include "traffic/injector.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {

struct NocConfig;

/** Snapshot container magic: "FTCP" read as little-endian u32. */
inline constexpr std::uint32_t kCheckpointMagic = 0x50435446u;
/** Payload layout version; bump whenever the Snapshot encoding or
 *  the key derivation changes so stale files are rejected. */
inline constexpr std::uint32_t kCheckpointSchema = 1;

/** Which workload driver's state the snapshot carries. */
enum class SnapshotKind : std::uint8_t
{
    synthetic = 1,
    trace = 2,
};

/** One resumable run state (see file comment). */
struct Snapshot
{
    SnapshotKind kind = SnapshotKind::synthetic;
    /** Cycle the (possibly multi-slice) run originally started at;
     *  anchors the run-relative maxCycles guard across slices. */
    Cycle runStart = 0;
    EngineState engine;
    /** Valid when kind == synthetic. */
    InjectorState injector;
    /** Valid when kind == trace. */
    TraceReplayState replay;

    /** Cycle the snapshot was taken at. */
    Cycle cycle() const { return engine.cycle; }

    /**
     * Temporal-shard handoff hook for the ftd fleet: drop the
     * engine's measurement block (EngineState::trim) so a downstream
     * daemon resumes the traffic mid-flight but measures only its
     * own slice. Driver state is untouched — it is functional, not
     * measured.
     */
    void trimState() { engine.trim(); }
};

/** Typed verdict of a snapshot load. */
enum class SnapshotStatus
{
    ok,
    /** File missing or unreadable. */
    ioError,
    /** Shorter than the header + declared payload + trailer. */
    truncated,
    badMagic,
    badSchema,
    /** Snapshot is for different run inputs. */
    badKey,
    /** Payload self-check hash mismatch (corruption). */
    badChecksum,
    /** Container validated but the payload does not parse. */
    malformed,
};

const char *toString(SnapshotStatus s);

/** Content key of a synthetic run's inputs (config + channels +
 *  workload; deliberately excludes maxCycles — the guard bounds the
 *  run but does not alter its trajectory). */
std::uint64_t checkpointKey(const NocConfig &config,
                            std::uint32_t channels,
                            const SyntheticWorkload &workload);
/** Content key of a trace run's inputs (config + channels + the full
 *  trace content, messages and dependencies included). */
std::uint64_t checkpointKey(const NocConfig &config,
                            std::uint32_t channels, const Trace &trace);

/** Serialize the snapshot payload (without the file container). */
std::vector<std::uint8_t> encodeSnapshot(const Snapshot &snap);
/** Rebuild a Snapshot from a payload; false when any field fails to
 *  parse or the embedded engine state is inconsistent. */
bool decodeSnapshot(const std::vector<std::uint8_t> &payload,
                    Snapshot &out);

/** File name a snapshot taken at @p cycle is stored under. */
std::string snapshotFileName(Cycle cycle);

/**
 * Write @p snap into @p dir (created if missing) under its cycle's
 * file name, keyed by @p key. The write goes to a temp file renamed
 * into place, so a concurrent reader never observes a half-written
 * snapshot. @p path_out (optional) receives the final path.
 */
SnapshotStatus writeSnapshotFile(const std::string &dir,
                                 std::uint64_t key, const Snapshot &snap,
                                 std::string *path_out = nullptr);

/** Load and fully validate one snapshot file. */
SnapshotStatus readSnapshotFile(const std::string &path,
                                std::uint64_t expected_key,
                                Snapshot &out);

/** Path of the latest (highest-cycle) snapshot file in @p dir, or ""
 *  when the directory holds none. Deterministic: decided by the
 *  cycle number encoded in the name, never by mtime. */
std::string findLatestSnapshot(const std::string &dir);

} // namespace fasttrack

#endif // FT_SIM_CHECKPOINT_HPP
