#include "sim/steady_state.hpp"

#include <deque>
#include <vector>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace fasttrack {

SteadyStateResult
measureSteadyState(NocDevice &noc, const SteadyStateConfig &config)
{
    FT_ASSERT(config.injectionRate > 0.0 && config.injectionRate <= 1.0,
              "injection rate out of range");
    FT_ASSERT(noc.now() == 0 && noc.quiescent(),
              "pass a fresh device to measureSteadyState");

    const std::uint32_t nodes = noc.config().pes();
    DestinationGenerator dest(config.pattern, noc.config().n,
                              config.localRadius);
    Rng rng(config.seed);
    std::vector<std::deque<Packet>> queues(nodes);

    const Cycle window_start = config.warmupCycles;
    const Cycle window_end = config.warmupCycles + config.measureCycles;

    SteadyStateResult result;
    RunningStat window_latency;
    std::uint64_t generation_paused = 0;

    noc.setDeliverCallback([&](const Packet &p, Cycle when) {
        if (p.created >= window_start && p.created < window_end) {
            if (when >= window_start && when < window_end)
                ++result.windowDelivered;
            window_latency.add(static_cast<double>(when - p.created));
        }
    });

    std::uint64_t next_id = 1;
    // Run warmup + window + a drain margin so most window packets
    // complete and latencies are not survivor-biased toward fast ones.
    const Cycle run_end = window_end + config.measureCycles / 2;
    while (noc.now() < run_end) {
        const Cycle now = noc.now();
        const bool generating = now < window_end;
        for (NodeId node = 0; node < nodes; ++node) {
            auto &q = queues[node];
            if (generating && rng.nextBool(config.injectionRate)) {
                if (q.size() >= config.maxQueue) {
                    ++generation_paused;
                } else {
                    Packet p;
                    p.id = next_id++;
                    p.src = node;
                    p.dst = dest.dest(node, rng);
                    p.created = now;
                    if (p.created >= window_start &&
                        p.created < window_end) {
                        ++result.windowCreated;
                    }
                    q.push_back(p);
                }
            }
            if (!q.empty() && !noc.hasPendingOffer(node)) {
                noc.offer(q.front());
                q.pop_front();
            }
        }
        noc.step();
    }

    result.throughput =
        static_cast<double>(result.windowDelivered) /
        (static_cast<double>(config.measureCycles) * nodes);
    result.avgLatency = window_latency.mean();
    result.saturated = generation_paused > 0;
    return result;
}

} // namespace fasttrack
