/**
 * @file
 * One observability session over a simulation run (or a sequence of
 * runs): installs the process-global telemetry sink for its lifetime,
 * samples a metrics registry at a fixed epoch period, and exports all
 * artifacts — per-thread Chrome traces, link-utilization heatmaps
 * (CSV + ASCII) and metrics CSV time series — on finish().
 *
 * Threading: any number of simulation threads may emit trace events
 * while a session is live (each gets its own ring), but at most one
 * run at a time drives the per-epoch metrics sampling; concurrent
 * runs simply skip sampling (claimSampler()). Export requires all
 * producers to be quiescent.
 */

#ifndef FT_SIM_TELEMETRY_SESSION_HPP
#define FT_SIM_TELEMETRY_SESSION_HPP

#include <atomic>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "noc/noc_device.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack {

class TelemetrySession
{
  public:
    /** Installs the sink; at most one session may be live at a time. */
    explicit TelemetrySession(telemetry::TelemetryConfig config);
    /** Runs finish() if it has not run, then uninstalls the sink. */
    ~TelemetrySession();
    TelemetrySession(const TelemetrySession &) = delete;
    TelemetrySession &operator=(const TelemetrySession &) = delete;

    const telemetry::TelemetryConfig &config() const
    {
        return sink_.config();
    }
    telemetry::TraceSink &sink() { return sink_; }
    /** The session's registry. Quiescent-time accessor: callers only
     *  use it while no run is sampling (e.g. reportTo after workers
     *  joined), so it is exempt from the metricsMu_ discipline. */
    telemetry::MetricsRegistry &metrics() FT_NO_THREAD_SAFETY_ANALYSIS
    {
        return metrics_;
    }

    /** Capture device geometry (torus side, physical link count) for
     *  the heatmap exporters and the utilization gauge. Called by the
     *  simulation drivers; harmless to repeat. */
    void observe(const NocDevice &noc);

    /** Try to become the (single) epoch-sampling run; false means
     *  another run holds the slot and this one skips sampling. */
    bool claimSampler();
    void releaseSampler();

    /**
     * Record one metrics epoch at the device's current cycle:
     * per-epoch gauges (link utilization, deflection rate, express
     * occupancy, injector backlog depth) derived from stats deltas,
     * cumulative event counters from the calling thread's log, then
     * a registry snapshot. Only the sampler-slot holder calls this.
     */
    void sampleEpoch(const NocDevice &noc, std::uint64_t backlog_depth);

    /**
     * Export every artifact into config().dir (no-op when the dir is
     * empty) and return the written paths. Idempotent; the destructor
     * calls it as a backstop. Producers must be quiescent.
     */
    const std::vector<std::string> &finish();

    /** Paths written by finish() so far. */
    const std::vector<std::string> &artifacts() const
    {
        return artifacts_;
    }

  private:
    telemetry::TraceSink sink_;
    /** Serializes registry access: epoch sampling by the sampler-slot
     *  run and the export in finish(). samplerBusy_ already keeps at
     *  most one run sampling; the mutex makes the registry's
     *  single-writer contract checkable under -Wthread-safety. */
    mutable Mutex metricsMu_;
    telemetry::MetricsRegistry metrics_ FT_GUARDED_BY(metricsMu_);
    /** Torus side for heatmap geometry; 0 until observe(). Atomic
     *  because concurrent runs sharing one session each observe()
     *  their (identical-geometry) device. */
    std::atomic<std::uint32_t> side_{0};
    /** Physical links of the observed device (utilization basis). */
    std::atomic<std::uint64_t> links_{0};
    std::atomic<bool> samplerBusy_{false};
    /** Previous-epoch baselines for delta gauges. */
    Cycle lastCycle_ FT_GUARDED_BY(metricsMu_) = 0;
    std::uint64_t lastShortHops_ FT_GUARDED_BY(metricsMu_) = 0;
    std::uint64_t lastExpressHops_ FT_GUARDED_BY(metricsMu_) = 0;
    std::uint64_t lastDeflections_ FT_GUARDED_BY(metricsMu_) = 0;
    bool finished_ = false;
    std::vector<std::string> artifacts_;
};

} // namespace fasttrack

#endif // FT_SIM_TELEMETRY_SESSION_HPP
