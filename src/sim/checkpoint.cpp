#include "sim/checkpoint.hpp"

#include <bit>
#include <filesystem>
#include <fstream>
#include <limits>
#include <unistd.h>

#include "common/fnv1a.hpp"
#include "common/logging.hpp"
#include "noc/config.hpp"

namespace fasttrack {

namespace {

namespace fs = std::filesystem;

constexpr char kSnapPrefix[] = "ft-snap-";
constexpr char kSnapSuffix[] = ".ftcp";
/** Fixed-width cycle field: u64 max is 20 decimal digits, so names
 *  sort identically as strings and as numbers. */
constexpr std::size_t kCycleDigits = 20;
// The "string order == cycle order" invariant (and the name-length
// filter in findLatestSnapshot) holds only while every possible
// Cycle fits the fixed width. If Cycle ever widens, this is the one
// place that must grow with it.
static_assert(std::numeric_limits<Cycle>::digits10 + 1 <=
                  kCycleDigits,
              "kCycleDigits cannot represent every Cycle value");

/** Feed the NocConfig words a run's trajectory depends on — the same
 *  list sweepKey hashes (sim/sweep_cache.hpp). */
void
addConfig(Fnv1a &h, const NocConfig &config, std::uint32_t channels)
{
    h.add(config.n);
    h.add(config.d);
    h.add(config.r);
    h.add(static_cast<std::uint64_t>(config.variant));
    h.add(config.allowExpressTurn ? 1 : 0);
    h.add(config.allowUpgrade ? 1 : 0);
    h.add(config.turnPriority ? 1 : 0);
    h.add(config.shortLinkStages);
    h.add(config.expressLinkStages);
    h.add(channels);
}

void
encodeInjectorState(net::WireWriter &w, const InjectorState &st)
{
    for (std::uint64_t word : st.rng)
        w.u64(word);
    w.u32(static_cast<std::uint32_t>(st.remaining.size()));
    for (std::uint32_t v : st.remaining)
        w.u32(v);
    w.u32(static_cast<std::uint32_t>(st.queues.size()));
    for (const auto &q : st.queues) {
        w.u32(static_cast<std::uint32_t>(q.size()));
        for (const PendingPacket &rec : q) {
            w.u64(rec.id);
            w.u64(rec.created);
            w.u32(rec.dst);
        }
    }
    w.u64(st.nextId);
    w.u64(st.generatedTotal);
}

bool
decodeInjectorState(net::WireReader &r, InjectorState &st)
{
    st = InjectorState{};
    for (std::uint64_t &word : st.rng) {
        if (!r.u64(word))
            return false;
    }
    std::uint32_t nodes = 0;
    if (!r.u32(nodes) || nodes > r.remaining() / 4)
        return false;
    st.remaining.resize(nodes);
    for (std::uint32_t &v : st.remaining) {
        if (!r.u32(v))
            return false;
    }
    std::uint32_t queue_count = 0;
    if (!r.u32(queue_count) || queue_count != nodes)
        return false;
    st.queues.resize(queue_count);
    for (auto &q : st.queues) {
        std::uint32_t len = 0;
        // Each record is 20 encoded bytes; reject a hostile length
        // before allocating for it.
        if (!r.u32(len) || len > r.remaining() / 20)
            return false;
        q.resize(len);
        for (PendingPacket &rec : q) {
            if (!r.u64(rec.id) || !r.u64(rec.created) ||
                !r.u32(rec.dst))
                return false;
        }
    }
    return r.u64(st.nextId) && r.u64(st.generatedTotal);
}

void
encodeTraceReplayState(net::WireWriter &w, const TraceReplayState &st)
{
    w.u32(static_cast<std::uint32_t>(st.pendingDeps.size()));
    for (std::uint32_t v : st.pendingDeps)
        w.u32(v);
    w.u32(static_cast<std::uint32_t>(st.ready.size()));
    for (const auto &[cycle, id] : st.ready) {
        w.u64(cycle);
        w.u64(id);
    }
    w.u32(static_cast<std::uint32_t>(st.sourceQueues.size()));
    for (const auto &q : st.sourceQueues) {
        w.u32(static_cast<std::uint32_t>(q.size()));
        for (std::uint64_t id : q)
            w.u64(id);
    }
    w.u64(st.deliveredCount);
    w.u64(st.injectedCount);
    w.u64(st.lastDelivery);
}

bool
decodeTraceReplayState(net::WireReader &r, TraceReplayState &st)
{
    st = TraceReplayState{};
    std::uint32_t messages = 0;
    if (!r.u32(messages) || messages > r.remaining() / 4)
        return false;
    st.pendingDeps.resize(messages);
    for (std::uint32_t &v : st.pendingDeps) {
        if (!r.u32(v))
            return false;
    }
    std::uint32_t ready_count = 0;
    if (!r.u32(ready_count) || ready_count > r.remaining() / 16)
        return false;
    st.ready.resize(ready_count);
    for (auto &[cycle, id] : st.ready) {
        if (!r.u64(cycle) || !r.u64(id) || id >= messages)
            return false;
    }
    std::uint32_t source_count = 0;
    if (!r.u32(source_count) || source_count > r.remaining() / 4)
        return false;
    st.sourceQueues.resize(source_count);
    for (auto &q : st.sourceQueues) {
        std::uint32_t len = 0;
        if (!r.u32(len) || len > r.remaining() / 8)
            return false;
        q.resize(len);
        for (std::uint64_t &id : q) {
            if (!r.u64(id) || id >= messages)
                return false;
        }
    }
    return r.u64(st.deliveredCount) && r.u64(st.injectedCount) &&
           r.u64(st.lastDelivery);
}

} // namespace

const char *
toString(SnapshotStatus s)
{
    switch (s) {
    case SnapshotStatus::ok:
        return "ok";
    case SnapshotStatus::ioError:
        return "io-error";
    case SnapshotStatus::truncated:
        return "truncated";
    case SnapshotStatus::badMagic:
        return "bad-magic";
    case SnapshotStatus::badSchema:
        return "bad-schema";
    case SnapshotStatus::badKey:
        return "bad-key";
    case SnapshotStatus::badChecksum:
        return "bad-checksum";
    case SnapshotStatus::malformed:
        return "malformed";
    }
    return "unknown";
}

std::uint64_t
checkpointKey(const NocConfig &config, std::uint32_t channels,
              const SyntheticWorkload &workload)
{
    Fnv1a h;
    h.add(kCheckpointSchema);
    h.add(static_cast<std::uint64_t>(SnapshotKind::synthetic));
    addConfig(h, config, channels);
    h.add(static_cast<std::uint64_t>(workload.pattern));
    h.add(std::bit_cast<std::uint64_t>(workload.injectionRate));
    h.add(workload.packetsPerPe);
    h.add(workload.localRadius);
    h.add(workload.seed);
    return h.value();
}

std::uint64_t
checkpointKey(const NocConfig &config, std::uint32_t channels,
              const Trace &trace)
{
    Fnv1a h;
    h.add(kCheckpointSchema);
    h.add(static_cast<std::uint64_t>(SnapshotKind::trace));
    addConfig(h, config, channels);
    h.add(trace.n);
    h.add(trace.messages.size());
    for (const TraceMessage &m : trace.messages) {
        h.add(m.id);
        h.add(m.src);
        h.add(m.dst);
        h.add(m.earliest);
        h.add(m.delayAfterDeps);
        h.add(m.deps.size());
        for (std::uint64_t dep : m.deps)
            h.add(dep);
    }
    return h.value();
}

std::vector<std::uint8_t>
encodeSnapshot(const Snapshot &snap)
{
    net::WireWriter w;
    w.u8(static_cast<std::uint8_t>(snap.kind));
    w.u64(snap.runStart);
    encodeEngineState(w, snap.engine);
    if (snap.kind == SnapshotKind::synthetic)
        encodeInjectorState(w, snap.injector);
    else
        encodeTraceReplayState(w, snap.replay);
    return w.take();
}

bool
decodeSnapshot(const std::vector<std::uint8_t> &payload, Snapshot &out)
{
    out = Snapshot{};
    net::WireReader r(payload);
    std::uint8_t kind = 0;
    if (!r.u8(kind) ||
        (kind != static_cast<std::uint8_t>(SnapshotKind::synthetic) &&
         kind != static_cast<std::uint8_t>(SnapshotKind::trace)))
        return false;
    out.kind = static_cast<SnapshotKind>(kind);
    if (!r.u64(out.runStart) || !decodeEngineState(r, out.engine))
        return false;
    if (out.kind == SnapshotKind::synthetic) {
        if (!decodeInjectorState(r, out.injector))
            return false;
    } else {
        if (!decodeTraceReplayState(r, out.replay))
            return false;
    }
    return r.atEnd();
}

std::string
snapshotFileName(Cycle cycle)
{
    std::string digits = std::to_string(cycle);
    // Statically impossible while the static_assert above holds, but
    // a silent wider-than-field name would break the lexicographic
    // ordering contract and be skipped by findLatestSnapshot's
    // length filter — refuse rather than emit a broken name.
    if (digits.size() > kCycleDigits)
        return std::string();
    return kSnapPrefix +
           std::string(kCycleDigits - digits.size(), '0') + digits +
           kSnapSuffix;
}

SnapshotStatus
writeSnapshotFile(const std::string &dir, std::uint64_t key,
                  const Snapshot &snap, std::string *path_out)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return SnapshotStatus::ioError;

    const std::vector<std::uint8_t> payload = encodeSnapshot(snap);
    Fnv1a check;
    check.addBytes(payload.data(), payload.size());

    net::WireWriter w;
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointSchema);
    w.u64(key);
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    w.u64(check.value());

    const std::string name = snapshotFileName(snap.cycle());
    if (name.empty())
        return SnapshotStatus::ioError;
    const std::string path = (fs::path(dir) / name).string();
    // Temp-then-rename so a reader never sees a half-written file.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return SnapshotStatus::ioError;
        os.write(reinterpret_cast<const char *>(w.buffer().data()),
                 static_cast<std::streamsize>(w.size()));
        if (!os)
            return SnapshotStatus::ioError;
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return SnapshotStatus::ioError;
    }
    if (path_out)
        *path_out = path;
    return SnapshotStatus::ok;
}

SnapshotStatus
readSnapshotFile(const std::string &path, std::uint64_t expected_key,
                 Snapshot &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return SnapshotStatus::ioError;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (is.bad())
        return SnapshotStatus::ioError;

    net::WireReader r(bytes);
    std::uint32_t magic = 0, schema = 0;
    std::uint64_t key = 0, payload_bytes = 0;
    if (!r.u32(magic))
        return SnapshotStatus::truncated;
    if (magic != kCheckpointMagic)
        return SnapshotStatus::badMagic;
    if (!r.u32(schema))
        return SnapshotStatus::truncated;
    if (schema != kCheckpointSchema)
        return SnapshotStatus::badSchema;
    if (!r.u64(key))
        return SnapshotStatus::truncated;
    if (key != expected_key)
        return SnapshotStatus::badKey;
    if (!r.u64(payload_bytes))
        return SnapshotStatus::truncated;
    if (r.remaining() < payload_bytes + 8)
        return SnapshotStatus::truncated;
    if (r.remaining() != payload_bytes + 8)
        return SnapshotStatus::malformed; // trailing garbage

    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(payload_bytes));
    if (!r.bytes(payload.data(), payload.size()))
        return SnapshotStatus::truncated;
    std::uint64_t stored_check = 0;
    if (!r.u64(stored_check))
        return SnapshotStatus::truncated;
    Fnv1a check;
    check.addBytes(payload.data(), payload.size());
    if (check.value() != stored_check)
        return SnapshotStatus::badChecksum;

    if (!decodeSnapshot(payload, out))
        return SnapshotStatus::malformed;
    return SnapshotStatus::ok;
}

std::string
findLatestSnapshot(const std::string &dir)
{
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return "";
    std::string best_name;
    fs::path best_path;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() !=
                sizeof(kSnapPrefix) - 1 + kCycleDigits +
                    sizeof(kSnapSuffix) - 1 ||
            name.rfind(kSnapPrefix, 0) != 0 ||
            name.find(kSnapSuffix,
                      name.size() - (sizeof(kSnapSuffix) - 1)) ==
                std::string::npos)
            continue;
        bool digits_ok = true;
        for (std::size_t i = sizeof(kSnapPrefix) - 1;
             i < sizeof(kSnapPrefix) - 1 + kCycleDigits; ++i)
            digits_ok = digits_ok && name[i] >= '0' && name[i] <= '9';
        if (!digits_ok)
            continue;
        // Fixed-width zero-padded cycle: string order == cycle order.
        if (best_name.empty() || name > best_name) {
            best_name = name;
            best_path = entry.path();
        }
    }
    return best_name.empty() ? "" : best_path.string();
}

} // namespace fasttrack
