/**
 * @file
 * The ftd daemon's sweep service: a net::FrameServer whose handler
 * turns sweepRequest frames into SynthResults.
 *
 * Each drained batch is answered in arrival order — one sweepResult
 * (or error) frame per request — followed by exactly one
 * metricsEpoch frame carrying the daemon's current telemetry
 * (sweep-cache, pool, batch-runner and ftd counters), so clients
 * can aggregate fleet health without a separate monitoring channel.
 *
 * Requests are validated before they touch the simulator: a frame
 * that decodes but carries an invalid NocConfig/workload gets a
 * kErrBadRequest error frame, never a daemon abort. Valid points are
 * grouped by identical (config, channels, maxCycles) and run through
 * batchedCachedRuns, so remote points enjoy the same lockstep
 * batching, work-stealing pool and blob cache as local sweeps — a
 * warm daemon answers straight from its cache, flagged via the
 * response's cache-hit bit.
 *
 * snapshotRequest frames carry one temporal-shard slice of a long
 * run (docs/distributed.md, "Temporal sharding"): the daemon resumes
 * from the embedded trimmed snapshot, advances sliceCycles, and
 * answers with the slice's stats plus the next trimmed snapshot —
 * statelessly, so any daemon of the fleet can serve any slice.
 */

#ifndef FT_SIM_FTD_SERVER_HPP
#define FT_SIM_FTD_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/server.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack {

class FtdServer
{
  public:
    /** @p config.schemaVersion is overwritten with the sweep-cache
     *  schema: a daemon always speaks the schema it was built with. */
    explicit FtdServer(net::ServerConfig config = {});

    /** Bind and start serving; false (with @p error) on failure. */
    bool start(std::string &error);
    void stop();

    /** Actual bound port (after start; useful with port 0). */
    std::uint16_t boundPort() const;

    /** Sweep-service counters (frame-level ones via netStats). */
    struct Stats
    {
        /** Points answered with a sweepResult frame. */
        std::uint64_t pointsServed = 0;
        /** Of those, answered from the blob cache. */
        std::uint64_t cacheHits = 0;
        /** Requests rejected as malformed or invalid. */
        std::uint64_t badRequests = 0;
        /** Temporal-shard slices answered with a snapshotResult. */
        std::uint64_t slicesServed = 0;
    };
    Stats stats() const;
    net::ServerStats netStats() const;

    /** Publish ftd.* counters plus transport + cache + pool metrics
     *  (the same registry snapshot streamed as metricsEpoch). */
    void reportTo(telemetry::MetricsRegistry &metrics) const;

  private:
    std::vector<net::Frame> handle(std::vector<net::Frame> batch);
    /** Execute one temporal-shard slice (snapshotRequest frame):
     *  resume from the embedded trimmed snapshot, advance
     *  sliceCycles, answer with the slice's stats + next snapshot. */
    net::Frame handleSlice(const net::Frame &frame);

    net::FrameServer server_;
    std::atomic<std::uint64_t> pointsServed_{0};
    std::atomic<std::uint64_t> cacheHits_{0};
    std::atomic<std::uint64_t> badRequests_{0};
    std::atomic<std::uint64_t> slicesServed_{0};
};

} // namespace fasttrack

#endif // FT_SIM_FTD_SERVER_HPP
