#include "sim/remote.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "common/thread_annotations.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "sim/sweep_cache.hpp"
#include "traffic/injector.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {

namespace {

/** Where a point's result came from (one owner thread per slot). */
constexpr std::uint8_t kOriginPending = 0;
constexpr std::uint8_t kOriginLocalCache = 1;
constexpr std::uint8_t kOriginRemote = 2;

/** After the last in-flight result, wait this long for the trailing
 *  metricsEpoch frame of the batch before saying goodbye. Bounded so
 *  a daemon that died right after its results cannot stall us. */
constexpr int kEpochDrainMs = 250;

Mutex g_configMutex;
RemoteConfig g_config FT_GUARDED_BY(g_configMutex);

/**
 * Counters of one in-flight remote run (a remoteBatchedRuns or
 * runShardedSim invocation). Worker threads bump the atomics; the
 * run publishes itself once complete (publishRun), becoming the
 * "most recent run" snapshot and an increment of the lifetime
 * totals. Instance-scoping (instead of the historical process
 * globals) is what makes a second sweep's remoteStats() its own
 * numbers; scoping the epoch map to the run is what stops endpoints
 * dropped from --remote from being re-exported forever.
 */
struct RunCounters
{
    std::atomic<std::uint64_t> pointsRemote{0};
    std::atomic<std::uint64_t> remoteCacheHits{0};
    std::atomic<std::uint64_t> localCacheHits{0};
    std::atomic<std::uint64_t> pointsFallback{0};
    std::atomic<std::uint64_t> connectFailures{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> errorFrames{0};
    std::atomic<std::uint64_t> slicesRemote{0};
    std::atomic<std::uint64_t> slicesFallback{0};

    Mutex epochMutex;
    /** Latest telemetry epoch per endpoint label, this run only. */
    std::map<std::string, std::map<std::string, double>> epochs
        FT_GUARDED_BY(epochMutex);

    RemoteStats snapshot() const
    {
        RemoteStats s;
        s.pointsRemote = pointsRemote.load(std::memory_order_relaxed);
        s.remoteCacheHits =
            remoteCacheHits.load(std::memory_order_relaxed);
        s.localCacheHits =
            localCacheHits.load(std::memory_order_relaxed);
        s.pointsFallback =
            pointsFallback.load(std::memory_order_relaxed);
        s.connectFailures =
            connectFailures.load(std::memory_order_relaxed);
        s.reconnects = reconnects.load(std::memory_order_relaxed);
        s.errorFrames = errorFrames.load(std::memory_order_relaxed);
        s.slicesRemote = slicesRemote.load(std::memory_order_relaxed);
        s.slicesFallback =
            slicesFallback.load(std::memory_order_relaxed);
        return s;
    }

    void recordEpoch(const std::string &label,
                     std::map<std::string, double> values)
    {
        MutexLock lk(epochMutex);
        epochs[label] = std::move(values);
    }
};

Mutex g_statsMutex;
/** Most recent completed run (what remoteStats() reports). */
RemoteStats g_lastRun FT_GUARDED_BY(g_statsMutex);
/** Accumulation across every run (remoteLifetimeStats()). */
RemoteStats g_lifetime FT_GUARDED_BY(g_statsMutex);
/** Epoch gauges of the most recent run's endpoints only. */
std::map<std::string, std::map<std::string, double>>
    g_lastRunEpochs FT_GUARDED_BY(g_statsMutex);

void
publishRun(RunCounters &run)
{
    const RemoteStats s = run.snapshot();
    MutexLock lk(g_statsMutex);
    g_lastRun = s;
    g_lifetime.pointsRemote += s.pointsRemote;
    g_lifetime.remoteCacheHits += s.remoteCacheHits;
    g_lifetime.localCacheHits += s.localCacheHits;
    g_lifetime.pointsFallback += s.pointsFallback;
    g_lifetime.connectFailures += s.connectFailures;
    g_lifetime.reconnects += s.reconnects;
    g_lifetime.errorFrames += s.errorFrames;
    g_lifetime.slicesRemote += s.slicesRemote;
    g_lifetime.slicesFallback += s.slicesFallback;
    MutexLock le(run.epochMutex);
    g_lastRunEpochs = std::move(run.epochs);
}

void
bump(std::atomic<std::uint64_t> &counter, std::uint64_t by = 1)
{
    counter.fetch_add(by, std::memory_order_relaxed);
}

/** Range/consistency checks mirroring NocConfig::validate, minus the
 *  process abort: a daemon must reject a hostile request, not die on
 *  it. The size caps bound what one frame can make the daemon
 *  allocate or step. */
bool
validConfigOnWire(const NocConfig &c)
{
    if (c.n < 2 || c.n > 1024)
        return false;
    if (c.shortLinkStages > 8 || c.expressLinkStages > 8)
        return false;
    if (c.isFastTrack()) {
        if (c.d < 1 || c.d > c.n / 2)
            return false;
        if (c.r < 1 || c.r > c.d || c.d % c.r != 0)
            return false;
        if (c.r > 1 && c.n % c.r != 0)
            return false;
        if (c.variant == NocVariant::ftInject && c.n % c.d != 0)
            return false;
    }
    return true;
}

bool
validWorkloadOnWire(const SyntheticWorkload &w)
{
    if (!std::isfinite(w.injectionRate) || w.injectionRate <= 0.0 ||
        w.injectionRate > 1.0)
        return false;
    if (w.packetsPerPe < 1 || w.packetsPerPe > (1u << 20))
        return false;
    if (w.pattern == TrafficPattern::local &&
        (w.localRadius < 1 || w.localRadius > 1024))
        return false;
    return true;
}

bool
validSweepRequest(const SweepRequest &request)
{
    if (!validConfigOnWire(request.config))
        return false;
    if (request.channels < 1 || request.channels > 64)
        return false;
    if (!validWorkloadOnWire(request.workload))
        return false;
    return request.maxCycles >= 1;
}

/**
 * One connection's worth of work: connect, handshake, pipeline the
 * points of @p remaining, harvest results. Serviced indices are
 * removed from @p remaining; @p permanent is set when the endpoint
 * rejected us for a reason retrying cannot fix (version/schema).
 */
/**
 * Connect to @p endpoint and run the hello/helloAck handshake.
 * Returns an invalid socket on failure; @p permanent is set when the
 * endpoint rejected us for a reason retrying cannot fix. On success
 * @p window holds the granted pipeline window.
 */
net::Socket
connectAndHandshake(const RemoteConfig &cfg,
                    const net::Endpoint &endpoint, RunCounters &run,
                    std::uint32_t &window, bool &permanent)
{
    std::string error;
    net::Socket sock = net::connectTo(endpoint.host, endpoint.port,
                                      cfg.connectTimeoutMs, error);
    if (!sock.valid()) {
        bump(run.connectFailures);
        return net::Socket();
    }

    net::Frame hello;
    hello.type = net::MessageType::hello;
    net::WireWriter hw;
    hw.u32(net::kWireVersion);
    hw.u32(kSweepCacheSchema);
    hw.u32(cfg.window);
    hello.payload = hw.take();
    net::Frame ack;
    if (net::sendFrame(sock, hello, cfg.ioTimeoutMs) !=
            net::FrameStatus::ok ||
        net::recvFrame(sock, ack, cfg.connectTimeoutMs,
                       cfg.ioTimeoutMs) != net::FrameStatus::ok) {
        bump(run.connectFailures);
        return net::Socket();
    }
    if (ack.type == net::MessageType::error) {
        bump(run.errorFrames);
        bump(run.connectFailures);
        std::uint32_t code = 0;
        std::string message;
        if (net::parseErrorFrame(ack, code, message))
            permanent = code == net::kErrBadVersion ||
                        code == net::kErrBadSchema;
        return net::Socket();
    }
    std::uint32_t version = 0, schema = 0, granted = 0;
    net::WireReader r(ack.payload);
    if (ack.type != net::MessageType::helloAck || !r.u32(version) ||
        !r.u32(schema) || !r.u32(granted) || !r.atEnd() ||
        granted == 0) {
        bump(run.connectFailures);
        return net::Socket();
    }
    window = std::min(cfg.window, granted);
    return sock;
}

/** Drain trailing metricsEpoch frames (bounded) and part cleanly. */
void
drainEpochAndPart(const RemoteConfig &cfg,
                  const net::Endpoint &endpoint, net::Socket &sock,
                  RunCounters &run)
{
    net::Frame frame;
    while (net::recvFrame(sock, frame, kEpochDrainMs,
                          cfg.ioTimeoutMs) == net::FrameStatus::ok) {
        if (frame.type != net::MessageType::metricsEpoch)
            break;
        std::map<std::string, double> values;
        if (decodeMetricsPayload(frame.payload, values))
            run.recordEpoch(endpoint.label(), std::move(values));
    }
    net::Frame goodbye;
    goodbye.type = net::MessageType::goodbye;
    net::sendFrame(sock, goodbye, cfg.ioTimeoutMs);
}

void
serveConnection(const RemoteConfig &cfg, const net::Endpoint &endpoint,
                std::vector<std::size_t> &remaining,
                const std::vector<std::vector<std::uint8_t>> &payloads,
                std::vector<SynthResult> &results,
                std::vector<std::uint8_t> &origin,
                std::vector<std::uint8_t> &remote_hit, RunCounters &run,
                bool &permanent)
{
    std::uint32_t window = 0;
    net::Socket sock = connectAndHandshake(cfg, endpoint, run, window,
                                           permanent);
    if (!sock.valid())
        return;

    // --- Pipeline --------------------------------------------------
    std::size_t next = 0; // next entry of `remaining` to send
    std::size_t inflight = 0;
    bool dead = false;
    while (!dead) {
        while (inflight < window && next < remaining.size()) {
            const std::size_t idx = remaining[next];
            net::Frame request;
            request.type = net::MessageType::sweepRequest;
            request.requestId = idx;
            request.payload = payloads[idx];
            if (net::sendFrame(sock, request, cfg.ioTimeoutMs) !=
                net::FrameStatus::ok) {
                dead = true;
                break;
            }
            ++inflight;
            ++next;
        }
        if (dead || inflight == 0)
            break;

        net::Frame frame;
        if (net::recvFrame(sock, frame, cfg.resultWaitMs,
                           cfg.ioTimeoutMs) != net::FrameStatus::ok)
            break;
        if (frame.type == net::MessageType::metricsEpoch) {
            std::map<std::string, double> values;
            if (decodeMetricsPayload(frame.payload, values))
                run.recordEpoch(endpoint.label(), std::move(values));
            continue;
        }
        if (frame.type == net::MessageType::error) {
            bump(run.errorFrames);
            std::uint32_t code = 0;
            std::string message;
            if (net::parseErrorFrame(frame, code, message)) {
                permanent = code == net::kErrBadVersion ||
                            code == net::kErrBadSchema;
                // A per-request rejection: that point falls back
                // locally, the session can keep serving the rest.
                if (code == net::kErrBadRequest) {
                    --inflight;
                    continue;
                }
            }
            break;
        }
        if (frame.type != net::MessageType::sweepResult)
            break;
        std::uint32_t point = 0;
        bool hit = false;
        SynthResult result;
        if (!decodeSweepResultPayload(frame.payload, point, hit,
                                      result))
            break;
        const std::size_t idx =
            static_cast<std::size_t>(frame.requestId);
        // The id must name a point this session actually sent and
        // not yet received; anything else is a rogue peer.
        const auto sentEnd = remaining.begin() +
                             static_cast<std::ptrdiff_t>(next);
        if (point != frame.requestId ||
            std::find(remaining.begin(), sentEnd, idx) == sentEnd ||
            origin[idx] != kOriginPending)
            break;
        results[idx] = result;
        remote_hit[idx] = hit ? 1 : 0;
        origin[idx] = kOriginRemote;
        --inflight;
    }

    // Strip what this connection served.
    std::erase_if(remaining, [&origin](std::size_t idx) {
        return origin[idx] != kOriginPending;
    });

    // Give the trailing metricsEpoch of the final batch a bounded
    // chance to arrive, then part cleanly.
    if (remaining.empty())
        drainEpochAndPart(cfg, endpoint, sock, run);
}

/** Drive one endpoint until its points are served, the retry budget
 *  is exhausted, or the endpoint proves permanently incompatible. */
void
runEndpointWorker(const RemoteConfig &cfg,
                  const net::Endpoint &endpoint,
                  std::vector<std::size_t> points,
                  const std::vector<std::vector<std::uint8_t>> &payloads,
                  std::vector<SynthResult> &results,
                  std::vector<std::uint8_t> &origin,
                  std::vector<std::uint8_t> &remote_hit,
                  RunCounters &run)
{
    unsigned failures = 0; // consecutive attempts with no progress
    while (!points.empty() && failures < cfg.maxAttempts) {
        if (failures > 0) {
            bump(run.reconnects);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                net::backoffDelayMs(failures, cfg.backoffInitialMs,
                                    cfg.backoffCapMs)));
        }
        bool permanent = false;
        const std::size_t before = points.size();
        serveConnection(cfg, endpoint, points, payloads, results,
                        origin, remote_hit, run, permanent);
        if (permanent)
            break;
        // Progress resets the budget: a flaky worker that keeps
        // serving some of each window gets drained, not abandoned.
        failures = points.size() < before ? 1 : failures + 1;
        if (points.size() < before && points.empty())
            break;
    }
}

} // namespace

void
setRemoteConfig(RemoteConfig config)
{
    MutexLock lk(g_configMutex);
    g_config = std::move(config);
}

RemoteConfig
remoteConfig()
{
    MutexLock lk(g_configMutex);
    return g_config;
}

void
clearRemoteConfig()
{
    MutexLock lk(g_configMutex);
    g_config = RemoteConfig{};
}

bool
remoteConfigured()
{
    MutexLock lk(g_configMutex);
    return !g_config.endpoints.empty();
}

RemoteStats
remoteStats()
{
    MutexLock lk(g_statsMutex);
    return g_lastRun;
}

RemoteStats
remoteLifetimeStats()
{
    MutexLock lk(g_statsMutex);
    return g_lifetime;
}

namespace {

void
reportCounterSet(telemetry::MetricsRegistry &metrics,
                 const std::string &prefix, const RemoteStats &s)
{
    metrics.counter(prefix + "points_remote") = s.pointsRemote;
    metrics.counter(prefix + "cache_hits") = s.remoteCacheHits;
    metrics.counter(prefix + "local_cache_hits") = s.localCacheHits;
    metrics.counter(prefix + "points_fallback") = s.pointsFallback;
    metrics.counter(prefix + "connect_failures") = s.connectFailures;
    metrics.counter(prefix + "reconnects") = s.reconnects;
    metrics.counter(prefix + "error_frames") = s.errorFrames;
    metrics.counter(prefix + "slices_remote") = s.slicesRemote;
    metrics.counter(prefix + "slices_fallback") = s.slicesFallback;
}

} // namespace

void
reportRemoteStats(telemetry::MetricsRegistry &metrics)
{
    MutexLock lk(g_statsMutex);
    reportCounterSet(metrics, "remote.", g_lastRun);
    reportCounterSet(metrics, "remote.lifetime.", g_lifetime);
    for (const auto &[label, values] : g_lastRunEpochs)
        for (const auto &[name, value] : values)
            metrics.gauge("remote." + label + "." + name) = value;
}

std::vector<SynthResult>
remoteBatchedRuns(const NocConfig &config, std::uint32_t channels,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles, const LocalRunner &local)
{
    const std::size_t count = workloads.size();
    std::vector<SynthResult> results(count);
    if (count == 0)
        return results;
    const RemoteConfig cfg = remoteConfig();
    RunCounters run; // joined before publishRun, so refs stay valid

    // Slot ownership: each index is written by exactly one endpoint
    // thread (round-robin shards are disjoint); the joins below
    // publish every write before the main thread reads.
    std::vector<std::uint8_t> origin(count, kOriginPending);
    std::vector<std::uint8_t> remoteHit(count, 0);

    // Local cache pre-pass: a point this process already knows never
    // touches the wire.
    sched::BlobCache &cache = sweepCache();
    const bool cacheOn = cfg.useLocalCache && sweepCacheEnabled();
    std::vector<std::uint64_t> keys(count);
    for (std::size_t i = 0; i < count; ++i) {
        keys[i] = sweepKey(config, channels, workloads[i], max_cycles);
        if (!cacheOn)
            continue;
        if (auto payload = cache.lookup(keys[i])) {
            SynthResult cached;
            if (decodeSynthResult(*payload, cached)) {
                results[i] = cached;
                origin[i] = kOriginLocalCache;
                bump(run.localCacheHits);
            }
        }
    }

    // Encode the pending requests once, shard them round-robin.
    std::vector<std::vector<std::uint8_t>> payloads(count);
    std::vector<std::vector<std::size_t>> shards(cfg.endpoints.size());
    std::size_t pending = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (origin[i] != kOriginPending)
            continue;
        SweepRequest request;
        request.pointIndex = static_cast<std::uint32_t>(i);
        request.config = config;
        request.channels = channels;
        request.workload = workloads[i];
        request.maxCycles = max_cycles;
        payloads[i] = encodeSweepRequestPayload(request);
        shards[pending % shards.size()].push_back(i);
        ++pending;
    }

    if (pending > 0 && shards.size() == 1) {
        runEndpointWorker(cfg, cfg.endpoints[0], shards[0], payloads,
                          results, origin, remoteHit, run);
    } else if (pending > 0) {
        std::vector<std::thread> workers;
        workers.reserve(shards.size());
        for (std::size_t e = 0; e < shards.size(); ++e) {
            if (shards[e].empty())
                continue;
            workers.emplace_back([&, e] {
                runEndpointWorker(cfg, cfg.endpoints[e], shards[e],
                                  payloads, results, origin,
                                  remoteHit, run);
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }

    // Harvest: count, locally cache remote answers, then compute
    // whatever the fleet could not serve.
    std::vector<std::size_t> fallback;
    for (std::size_t i = 0; i < count; ++i) {
        if (origin[i] == kOriginRemote) {
            bump(run.pointsRemote);
            if (remoteHit[i] != 0)
                bump(run.remoteCacheHits);
            if (cacheOn)
                cache.store(keys[i], encodeSynthResult(results[i]));
        } else if (origin[i] == kOriginPending) {
            fallback.push_back(i);
        }
    }
    if (!fallback.empty()) {
        bump(run.pointsFallback, fallback.size());
        const std::vector<SynthResult> computed = local(fallback);
        for (std::size_t j = 0; j < fallback.size(); ++j)
            results[fallback[j]] = computed[j];
    }
    publishRun(run);
    return results;
}

// --- Message payload codecs ----------------------------------------

std::vector<std::uint8_t>
encodeSweepRequestPayload(const SweepRequest &request)
{
    net::WireWriter w;
    w.u32(request.pointIndex);
    const NocConfig &c = request.config;
    w.u32(c.n);
    w.u32(c.d);
    w.u32(c.r);
    w.u32(static_cast<std::uint32_t>(c.variant));
    w.u8(c.allowExpressTurn ? 1 : 0);
    w.u8(c.allowUpgrade ? 1 : 0);
    w.u8(c.turnPriority ? 1 : 0);
    w.u32(c.shortLinkStages);
    w.u32(c.expressLinkStages);
    w.u32(request.channels);
    const SyntheticWorkload &wl = request.workload;
    w.u32(static_cast<std::uint32_t>(wl.pattern));
    w.f64(wl.injectionRate);
    w.u32(wl.packetsPerPe);
    w.u32(wl.localRadius);
    w.u64(wl.seed);
    w.u64(request.maxCycles);
    return w.take();
}

bool
decodeSweepRequestPayload(const std::vector<std::uint8_t> &payload,
                          SweepRequest &out)
{
    SweepRequest request;
    NocConfig &c = request.config;
    SyntheticWorkload &wl = request.workload;
    std::uint32_t variant = 0, pattern = 0;
    std::uint8_t expressTurn = 0, upgrade = 0, turnPriority = 0;
    net::WireReader r(payload);
    const bool ok =
        r.u32(request.pointIndex) && r.u32(c.n) && r.u32(c.d) &&
        r.u32(c.r) && r.u32(variant) && r.u8(expressTurn) &&
        r.u8(upgrade) && r.u8(turnPriority) &&
        r.u32(c.shortLinkStages) && r.u32(c.expressLinkStages) &&
        r.u32(request.channels) && r.u32(pattern) &&
        r.f64(wl.injectionRate) && r.u32(wl.packetsPerPe) &&
        r.u32(wl.localRadius) && r.u64(wl.seed) &&
        r.u64(request.maxCycles) && r.atEnd();
    if (!ok)
        return false;
    if (variant > static_cast<std::uint32_t>(NocVariant::ftInject) ||
        pattern > static_cast<std::uint32_t>(TrafficPattern::transpose))
        return false;
    c.variant = static_cast<NocVariant>(variant);
    c.allowExpressTurn = expressTurn != 0;
    c.allowUpgrade = upgrade != 0;
    c.turnPriority = turnPriority != 0;
    wl.pattern = static_cast<TrafficPattern>(pattern);
    if (!validSweepRequest(request))
        return false;
    out = request;
    return true;
}

std::vector<std::uint8_t>
encodeSweepResultPayload(std::uint32_t point_index, bool cache_hit,
                         const std::vector<std::uint8_t> &result_payload)
{
    net::WireWriter w;
    w.u32(point_index);
    w.u8(cache_hit ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(result_payload.size()));
    w.bytes(result_payload.data(), result_payload.size());
    return w.take();
}

bool
decodeSweepResultPayload(const std::vector<std::uint8_t> &payload,
                         std::uint32_t &point_index, bool &cache_hit,
                         SynthResult &out)
{
    net::WireReader r(payload);
    std::uint8_t hit = 0;
    std::uint32_t resultBytes = 0;
    if (!r.u32(point_index) || !r.u8(hit) || !r.u32(resultBytes) ||
        resultBytes == 0 || r.remaining() != resultBytes)
        return false;
    std::vector<std::uint8_t> resultPayload(resultBytes);
    if (!r.bytes(resultPayload.data(), resultPayload.size()))
        return false;
    cache_hit = hit != 0;
    return decodeSynthResult(resultPayload, out);
}

std::vector<std::uint8_t>
encodeMetricsPayload(const std::map<std::string, double> &values)
{
    net::WireWriter w;
    w.u32(static_cast<std::uint32_t>(values.size()));
    for (const auto &[name, value] : values) {
        w.str(name);
        w.f64(value);
    }
    return w.take();
}

bool
decodeMetricsPayload(const std::vector<std::uint8_t> &payload,
                     std::map<std::string, double> &out)
{
    std::map<std::string, double> values;
    net::WireReader r(payload);
    std::uint32_t count = 0;
    if (!r.u32(count))
        return false;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string name;
        double value = 0.0;
        if (!r.str(name) || !r.f64(value))
            return false;
        values[name] = value;
    }
    if (!r.atEnd())
        return false;
    out = std::move(values);
    return true;
}

// --- Temporal-shard slice codecs -----------------------------------

namespace {

/** Smallest possible encoded TraceMessage (empty deps): the count
 *  bound that keeps a forged message count from forcing an
 *  allocation larger than the payload that claims it. */
constexpr std::size_t kMinTraceMessageBytes = 8 + 4 + 4 + 8 + 8 + 4;

/** Cap on a trace name on the wire (names label, never shape). */
constexpr std::size_t kMaxTraceNameBytes = 4096;

void
encodeConfigFields(net::WireWriter &w, const NocConfig &c)
{
    w.u32(c.n);
    w.u32(c.d);
    w.u32(c.r);
    w.u32(static_cast<std::uint32_t>(c.variant));
    w.u8(c.allowExpressTurn ? 1 : 0);
    w.u8(c.allowUpgrade ? 1 : 0);
    w.u8(c.turnPriority ? 1 : 0);
    w.u32(c.shortLinkStages);
    w.u32(c.expressLinkStages);
}

bool
decodeConfigFields(net::WireReader &r, NocConfig &c)
{
    std::uint32_t variant = 0;
    std::uint8_t expressTurn = 0, upgrade = 0, turnPriority = 0;
    if (!r.u32(c.n) || !r.u32(c.d) || !r.u32(c.r) || !r.u32(variant) ||
        !r.u8(expressTurn) || !r.u8(upgrade) || !r.u8(turnPriority) ||
        !r.u32(c.shortLinkStages) || !r.u32(c.expressLinkStages))
        return false;
    if (variant > static_cast<std::uint32_t>(NocVariant::ftInject))
        return false;
    c.variant = static_cast<NocVariant>(variant);
    c.allowExpressTurn = expressTurn != 0;
    c.allowUpgrade = upgrade != 0;
    c.turnPriority = turnPriority != 0;
    return validConfigOnWire(c);
}

void
encodeWorkloadFields(net::WireWriter &w, const SyntheticWorkload &wl)
{
    w.u32(static_cast<std::uint32_t>(wl.pattern));
    w.f64(wl.injectionRate);
    w.u32(wl.packetsPerPe);
    w.u32(wl.localRadius);
    w.u64(wl.seed);
}

bool
decodeWorkloadFields(net::WireReader &r, SyntheticWorkload &wl)
{
    std::uint32_t pattern = 0;
    if (!r.u32(pattern) || !r.f64(wl.injectionRate) ||
        !r.u32(wl.packetsPerPe) || !r.u32(wl.localRadius) ||
        !r.u64(wl.seed))
        return false;
    if (pattern > static_cast<std::uint32_t>(TrafficPattern::transpose))
        return false;
    wl.pattern = static_cast<TrafficPattern>(pattern);
    return validWorkloadOnWire(wl);
}

void
encodeTraceFields(net::WireWriter &w, const Trace &trace)
{
    w.str(trace.name);
    w.u32(trace.n);
    w.u64(trace.messages.size());
    for (const TraceMessage &m : trace.messages) {
        w.u64(m.id);
        w.u32(m.src);
        w.u32(m.dst);
        w.u64(m.earliest);
        w.u64(m.delayAfterDeps);
        w.u32(static_cast<std::uint32_t>(m.deps.size()));
        for (std::uint64_t dep : m.deps)
            w.u64(dep);
    }
}

/**
 * Decode + validate a trace without Trace::validate (which aborts on
 * violation — unacceptable for hostile input). Mirrors its rules:
 * dense ids, node ranges, deps reference lower ids. Every count is
 * bounded by the bytes actually remaining before any allocation.
 */
bool
decodeTraceFields(net::WireReader &r, Trace &trace)
{
    if (!r.str(trace.name) || trace.name.size() > kMaxTraceNameBytes)
        return false;
    if (!r.u32(trace.n) || trace.n < 2 || trace.n > 1024)
        return false;
    std::uint64_t count = 0;
    if (!r.u64(count) || count > r.remaining() / kMinTraceMessageBytes)
        return false;
    const std::uint64_t nodes =
        static_cast<std::uint64_t>(trace.n) * trace.n;
    trace.messages.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceMessage m;
        std::uint32_t deps = 0;
        if (!r.u64(m.id) || !r.u32(m.src) || !r.u32(m.dst) ||
            !r.u64(m.earliest) || !r.u64(m.delayAfterDeps) ||
            !r.u32(deps))
            return false;
        if (m.id != i || m.src >= nodes || m.dst >= nodes)
            return false;
        if (deps > r.remaining() / 8)
            return false;
        m.deps.reserve(deps);
        for (std::uint32_t j = 0; j < deps; ++j) {
            std::uint64_t dep = 0;
            if (!r.u64(dep) || dep >= m.id)
                return false;
            m.deps.push_back(dep);
        }
        trace.messages.push_back(std::move(m));
    }
    return true;
}

/** Length-prefixed embedded snapshot; kind must match @p kind. */
bool
decodeEmbeddedSnapshot(net::WireReader &r, SnapshotKind kind,
                       Snapshot &out)
{
    std::uint64_t bytes = 0;
    if (!r.u64(bytes) || bytes > r.remaining())
        return false;
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(bytes));
    if (!r.bytes(raw.data(), raw.size()))
        return false;
    return decodeSnapshot(raw, out) && out.kind == kind;
}

} // namespace

std::vector<std::uint8_t>
encodeShardSliceRequestPayload(const ShardSliceRequest &request)
{
    net::WireWriter w;
    w.u8(static_cast<std::uint8_t>(request.kind));
    encodeConfigFields(w, request.config);
    w.u32(request.channels);
    if (request.kind == SnapshotKind::synthetic)
        encodeWorkloadFields(w, request.workload);
    else
        encodeTraceFields(w, request.trace);
    w.u64(request.sliceCycles);
    w.u64(request.runMaxCycles);
    w.u64(request.key);
    w.u8(request.hasSnapshot ? 1 : 0);
    if (request.hasSnapshot) {
        const std::vector<std::uint8_t> snap =
            encodeSnapshot(request.snapshot);
        w.u64(snap.size());
        w.bytes(snap.data(), snap.size());
    }
    return w.take();
}

bool
decodeShardSliceRequestPayload(const std::vector<std::uint8_t> &payload,
                               ShardSliceRequest &out)
{
    ShardSliceRequest request;
    net::WireReader r(payload);
    std::uint8_t kind = 0;
    if (!r.u8(kind) ||
        (kind != static_cast<std::uint8_t>(SnapshotKind::synthetic) &&
         kind != static_cast<std::uint8_t>(SnapshotKind::trace)))
        return false;
    request.kind = static_cast<SnapshotKind>(kind);
    if (!decodeConfigFields(r, request.config))
        return false;
    // Slice execution resumes/captures engine state, which only
    // single-channel devices support — reject, never FT_FATAL in
    // planSnapshots on a daemon.
    if (!r.u32(request.channels) || request.channels != 1)
        return false;
    if (request.kind == SnapshotKind::synthetic) {
        if (!decodeWorkloadFields(r, request.workload))
            return false;
    } else {
        if (!decodeTraceFields(r, request.trace))
            return false;
    }
    std::uint8_t has_snapshot = 0;
    if (!r.u64(request.sliceCycles) || !r.u64(request.runMaxCycles) ||
        !r.u64(request.key) || !r.u8(has_snapshot))
        return false;
    // The slice budget bounds what one frame can make a daemon
    // compute (the slice runs synchronously in the frame handler), so
    // an unbounded value is hostile by definition.
    if (request.sliceCycles < 1 ||
        request.sliceCycles > kMaxSliceCycles ||
        request.runMaxCycles < 1 || has_snapshot > 1)
        return false;
    request.hasSnapshot = has_snapshot != 0;
    if (request.hasSnapshot &&
        !decodeEmbeddedSnapshot(r, request.kind, request.snapshot))
        return false;
    if (!r.atEnd())
        return false;
    out = std::move(request);
    return true;
}

std::vector<std::uint8_t>
encodeShardSliceResultPayload(const ShardSliceResult &result)
{
    net::WireWriter w;
    w.u8(static_cast<std::uint8_t>(result.kind));
    w.u8(result.done ? 1 : 0);
    if (result.kind == SnapshotKind::synthetic) {
        const std::vector<std::uint8_t> synth =
            encodeSynthResult(result.synth);
        w.u32(static_cast<std::uint32_t>(synth.size()));
        w.bytes(synth.data(), synth.size());
    } else {
        encodeNocStats(w, result.trace.stats);
        w.u64(result.trace.completion);
        w.u32(result.trace.pes);
        w.u8(result.trace.completed ? 1 : 0);
    }
    w.u8(result.hasSnapshot ? 1 : 0);
    if (result.hasSnapshot) {
        const std::vector<std::uint8_t> snap =
            encodeSnapshot(result.snapshot);
        w.u64(snap.size());
        w.bytes(snap.data(), snap.size());
    }
    return w.take();
}

bool
decodeShardSliceResultPayload(const std::vector<std::uint8_t> &payload,
                              ShardSliceResult &out)
{
    ShardSliceResult result;
    net::WireReader r(payload);
    std::uint8_t kind = 0, done = 0;
    if (!r.u8(kind) ||
        (kind != static_cast<std::uint8_t>(SnapshotKind::synthetic) &&
         kind != static_cast<std::uint8_t>(SnapshotKind::trace)) ||
        !r.u8(done) || done > 1)
        return false;
    result.kind = static_cast<SnapshotKind>(kind);
    result.done = done != 0;
    if (result.kind == SnapshotKind::synthetic) {
        std::uint32_t bytes = 0;
        if (!r.u32(bytes) || bytes == 0 || bytes > r.remaining())
            return false;
        std::vector<std::uint8_t> raw(bytes);
        if (!r.bytes(raw.data(), raw.size()) ||
            !decodeSynthResult(raw, result.synth))
            return false;
    } else {
        std::uint8_t completed = 0;
        if (!decodeNocStats(r, result.trace.stats) ||
            !r.u64(result.trace.completion) ||
            !r.u32(result.trace.pes) || !r.u8(completed) ||
            completed > 1)
            return false;
        result.trace.completed = completed != 0;
    }
    std::uint8_t has_snapshot = 0;
    if (!r.u8(has_snapshot) || has_snapshot > 1)
        return false;
    result.hasSnapshot = has_snapshot != 0;
    // An unfinished slice must hand the continuation over; a finished
    // one must not — anything else is a lying peer.
    if (result.hasSnapshot == result.done)
        return false;
    if (result.hasSnapshot &&
        !decodeEmbeddedSnapshot(r, result.kind, result.snapshot))
        return false;
    if (!r.atEnd())
        return false;
    out = std::move(result);
    return true;
}

// --- Sharded run driver --------------------------------------------

namespace {

/**
 * One remote slice attempt over one fresh connection: handshake,
 * send the snapshotRequest message, harvest the snapshotResult
 * (tolerating interleaved metricsEpoch frames), part cleanly. False
 * on any transport/protocol/decode failure.
 */
bool
trySliceRemote(const RemoteConfig &cfg, const net::Endpoint &endpoint,
               const std::vector<std::uint8_t> &payload,
               std::uint64_t request_id, RunCounters &run,
               ShardSliceResult &out, bool &permanent)
{
    std::uint32_t window = 0;
    net::Socket sock = connectAndHandshake(cfg, endpoint, run, window,
                                           permanent);
    if (!sock.valid())
        return false;

    net::Frame request;
    request.type = net::MessageType::snapshotRequest;
    request.requestId = request_id;
    request.payload = payload;
    if (net::sendMessage(sock, request, cfg.ioTimeoutMs) !=
        net::FrameStatus::ok)
        return false;

    bool got = false;
    for (;;) {
        net::Frame frame;
        if (net::recvMessage(sock, frame, cfg.resultWaitMs,
                             cfg.ioTimeoutMs) != net::FrameStatus::ok)
            break;
        if (frame.type == net::MessageType::metricsEpoch) {
            std::map<std::string, double> values;
            if (decodeMetricsPayload(frame.payload, values))
                run.recordEpoch(endpoint.label(), std::move(values));
            continue;
        }
        if (frame.type == net::MessageType::error) {
            bump(run.errorFrames);
            std::uint32_t code = 0;
            std::string message;
            if (net::parseErrorFrame(frame, code, message))
                permanent = code == net::kErrBadVersion ||
                            code == net::kErrBadSchema;
            break;
        }
        if (frame.type != net::MessageType::snapshotResult ||
            frame.requestId != request_id)
            break;
        if (decodeShardSliceResultPayload(frame.payload, out))
            got = true;
        break;
    }
    if (got)
        drainEpochAndPart(cfg, endpoint, sock, run);
    return got;
}

/**
 * Client-side validation of a remote slice answer — the mirror of
 * the daemon's own range checks plus an actual restore probe. A
 * decoded snapshot is internally consistent but nothing ties it to
 * *this* run's geometry, and committing an unrestorable one would
 * poison every later slice: daemons reject the chain, and the local
 * fallback cannot resume it either. Validating here keeps a hostile
 * or buggy daemon at the cost of one failed attempt — never a dead
 * fleet, never a dead process. On success the answer's snapshot is
 * left trimmed, so the probe restored exactly the bytes the next
 * slice will.
 */
bool
validateSliceAnswer(const RunRequest &request, SnapshotKind kind,
                    Cycle consumed, const ShardSliceRequest &slice,
                    ShardSliceResult &answer)
{
    if (answer.kind != kind)
        return false;
    if (answer.done)
        return true; // stats-only; no snapshot travels (decode pins)
    // Range checks first, and in this order — without the runStart
    // bound (which only the daemon used to check), a hostile
    // cycle() < runStart snapshot wraps the unsigned delta into a
    // huge "advance" that sails past every later comparison.
    if (answer.snapshot.cycle() < answer.snapshot.runStart)
        return false;
    const Cycle advanced =
        answer.snapshot.cycle() - answer.snapshot.runStart;
    // The run must have moved (or a lying daemon pins an infinite
    // slice loop), must not claim more than the slice's budget, and
    // an unfinished run must still be short of the whole-run guard.
    if (advanced <= consumed ||
        advanced > saturatingAddCycles(consumed, slice.sliceCycles) ||
        advanced >= slice.runMaxCycles)
        return false;
    answer.snapshot.trimState();
    auto probe = makeNoc(*request.config, 1);
    if (!probe->restoreState(answer.snapshot.engine))
        return false;
    if (kind == SnapshotKind::synthetic) {
        SyntheticInjector injector(*probe, *request.workload);
        return injector.restoreState(answer.snapshot.injector);
    }
    TraceReplayer replayer(*probe, *request.trace);
    return replayer.restoreState(answer.snapshot.replay);
}

} // namespace

RunResult
runShardedSim(const RunRequest &request, Cycle shard_cycles)
{
    if ((request.workload != nullptr) == (request.trace != nullptr))
        FT_FATAL("runShardedSim needs exactly one of workload / trace");
    if (request.device || !request.config)
        FT_FATAL("runShardedSim needs a config-built run (no device)");
    if (request.channels != 1)
        FT_FATAL("runShardedSim requires a single-channel device "
                 "(engine-state capture)");
    if (request.useCache || request.sim.telemetry ||
        request.sim.snapshotEveryCycles != 0 ||
        !request.sim.resumeFrom.empty() || request.sim.resumeSnapshot ||
        request.sim.captureFinal)
        FT_FATAL("runShardedSim owns the cache/telemetry/snapshot "
                 "knobs; clear them on the request");
    if (shard_cycles < 1 || shard_cycles > kMaxSliceCycles)
        FT_FATAL("runShardedSim needs 1 <= shard_cycles <= ",
                 kMaxSliceCycles);

    const bool is_trace = request.trace != nullptr;
    const SnapshotKind kind =
        is_trace ? SnapshotKind::trace : SnapshotKind::synthetic;
    const RemoteConfig cfg = remoteConfig();
    RunCounters run;

    ShardSliceRequest slice;
    slice.kind = kind;
    slice.config = *request.config;
    slice.channels = 1;
    if (is_trace) {
        slice.trace = *request.trace;
        slice.key = checkpointKey(*request.config, request.channels,
                                  *request.trace);
    } else {
        slice.workload = *request.workload;
        slice.key = checkpointKey(*request.config, request.channels,
                                  *request.workload);
    }
    slice.sliceCycles = shard_cycles;
    slice.runMaxCycles = request.sim.maxCycles;

    RunResult result;
    result.isTrace = is_trace;
    NocStats merged;
    bool first_slice = true;
    // Once the fleet has proven dead (budget exhausted or a permanent
    // rejection), the remaining slices stay local rather than paying
    // the retry schedule once per slice.
    bool fleet_dead = cfg.endpoints.empty();
    std::size_t next_endpoint = 0;
    std::uint64_t slice_index = 0;
    Cycle consumed = 0; // run-relative cycles completed so far
    // Provenance of slice.snapshot: a remote-origin snapshot, even a
    // restore-probed one, is never worth aborting the process over.
    bool snapshot_from_remote = false;
    bool done = false;

    while (!done) {
        ShardSliceResult answer;
        bool served = false;

        if (!fleet_dead) {
            const std::vector<std::uint8_t> payload =
                encodeShardSliceRequestPayload(slice);
            unsigned failures = 0;
            while (!served && failures < cfg.maxAttempts) {
                if (failures > 0) {
                    bump(run.reconnects);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(net::backoffDelayMs(
                            failures, cfg.backoffInitialMs,
                            cfg.backoffCapMs)));
                }
                const net::Endpoint &endpoint =
                    cfg.endpoints[next_endpoint %
                                  cfg.endpoints.size()];
                ++next_endpoint; // round-robin slices and retries
                bool permanent = false;
                served = trySliceRemote(cfg, endpoint, payload,
                                        slice_index, run, answer,
                                        permanent);
                // Trust nothing a peer says unchecked: range checks
                // plus a restore probe (validateSliceAnswer), so a
                // hostile answer is one failed attempt, not a
                // poisoned slice chain.
                if (served &&
                    !validateSliceAnswer(request, kind, consumed,
                                         slice, answer))
                    served = false;
                if (!served) {
                    if (permanent) {
                        fleet_dead = true;
                        break;
                    }
                    ++failures;
                }
            }
            if (!served)
                fleet_dead = true; // degrade to local completion
        }

        if (served) {
            bump(run.slicesRemote);
        } else {
            // Local slice: same budgets, same handoff contract, so a
            // sharded run completes (identically) even with no fleet.
            Snapshot next;
            auto noc = makeNoc(*request.config, 1);
            RunRequest local;
            local.device = noc.get();
            local.workload = request.workload;
            local.trace = request.trace;
            local.sim.maxCycles =
                std::min(slice.runMaxCycles,
                         saturatingAddCycles(consumed,
                                             slice.sliceCycles));
            local.sim.resumeSnapshot =
                slice.hasSnapshot ? &slice.snapshot : nullptr;
            local.sim.captureFinal = &next;
            const RunResult local_result = runSim(local);
            if (slice.hasSnapshot && !local_result.resumed) {
                if (snapshot_from_remote) {
                    // Belt and braces: a remote snapshot is probed
                    // before being committed, so this should be
                    // unreachable — but the contract is that fleet
                    // failure degrades to local completion, never a
                    // crash, so discard the remote chain and
                    // recompute the whole run locally from scratch.
                    FT_WARN("sharded run: remote snapshot chain "
                            "failed local resume; recomputing the "
                            "run locally");
                    fleet_dead = true;
                    slice.hasSnapshot = false;
                    slice.snapshot = Snapshot{};
                    snapshot_from_remote = false;
                    consumed = 0;
                    merged = NocStats{};
                    first_slice = true;
                    ++slice_index;
                    continue;
                }
                FT_FATAL("sharded run: local slice failed to resume "
                         "its own snapshot");
            }
            if (!local_result.finalCaptured)
                FT_FATAL("sharded run: device lost engine-state "
                         "capture mid-run");
            answer = ShardSliceResult{};
            answer.kind = kind;
            answer.synth = local_result.synth;
            answer.trace = local_result.trace;
            const Cycle advanced = next.cycle() - next.runStart;
            answer.done = (is_trace ? local_result.trace.completed
                                    : local_result.synth.completed) ||
                          advanced >= slice.runMaxCycles;
            if (!answer.done) {
                answer.hasSnapshot = true;
                answer.snapshot = std::move(next);
            }
            bump(run.slicesFallback);
        }

        const NocStats &slice_stats =
            is_trace ? answer.trace.stats : answer.synth.stats;
        if (first_slice) {
            merged = slice_stats;
            first_slice = false;
        } else {
            merged.merge(slice_stats);
        }

        done = answer.done;
        if (done) {
            if (is_trace) {
                result.trace = answer.trace;
                result.trace.stats = merged;
            } else {
                result.synth = answer.synth;
                result.synth.stats = merged;
            }
        } else {
            consumed = answer.snapshot.cycle() -
                       answer.snapshot.runStart;
            // The handoff contract (Snapshot::trimState): the next
            // slice resumes the traffic mid-flight but measures only
            // itself, so the per-slice stats merge back to the whole.
            answer.snapshot.trimState();
            slice.snapshot = std::move(answer.snapshot);
            slice.hasSnapshot = true;
            snapshot_from_remote = served;
        }
        ++slice_index;
    }

    publishRun(run);
    return result;
}

} // namespace fasttrack
