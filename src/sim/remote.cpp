#include "sim/remote.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/thread_annotations.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "sim/sweep_cache.hpp"

namespace fasttrack {

namespace {

/** Where a point's result came from (one owner thread per slot). */
constexpr std::uint8_t kOriginPending = 0;
constexpr std::uint8_t kOriginLocalCache = 1;
constexpr std::uint8_t kOriginRemote = 2;

/** After the last in-flight result, wait this long for the trailing
 *  metricsEpoch frame of the batch before saying goodbye. Bounded so
 *  a daemon that died right after its results cannot stall us. */
constexpr int kEpochDrainMs = 250;

Mutex g_configMutex;
RemoteConfig g_config FT_GUARDED_BY(g_configMutex);

Mutex g_epochMutex;
/** Latest telemetry epoch streamed back, keyed by endpoint label. */
std::map<std::string, std::map<std::string, double>>
    g_lastEpochs FT_GUARDED_BY(g_epochMutex);

std::atomic<std::uint64_t> g_pointsRemote{0};
std::atomic<std::uint64_t> g_remoteCacheHits{0};
std::atomic<std::uint64_t> g_localCacheHits{0};
std::atomic<std::uint64_t> g_pointsFallback{0};
std::atomic<std::uint64_t> g_connectFailures{0};
std::atomic<std::uint64_t> g_reconnects{0};
std::atomic<std::uint64_t> g_errorFrames{0};

void
bump(std::atomic<std::uint64_t> &counter, std::uint64_t by = 1)
{
    counter.fetch_add(by, std::memory_order_relaxed);
}

/** Range/consistency checks mirroring NocConfig::validate, minus the
 *  process abort: a daemon must reject a hostile request, not die on
 *  it. The size caps bound what one frame can make the daemon
 *  allocate or step. */
bool
validSweepRequest(const SweepRequest &request)
{
    const NocConfig &c = request.config;
    if (c.n < 2 || c.n > 1024)
        return false;
    if (c.shortLinkStages > 8 || c.expressLinkStages > 8)
        return false;
    if (c.isFastTrack()) {
        if (c.d < 1 || c.d > c.n / 2)
            return false;
        if (c.r < 1 || c.r > c.d || c.d % c.r != 0)
            return false;
        if (c.r > 1 && c.n % c.r != 0)
            return false;
        if (c.variant == NocVariant::ftInject && c.n % c.d != 0)
            return false;
    }
    if (request.channels < 1 || request.channels > 64)
        return false;
    const SyntheticWorkload &w = request.workload;
    if (!std::isfinite(w.injectionRate) || w.injectionRate <= 0.0 ||
        w.injectionRate > 1.0)
        return false;
    if (w.packetsPerPe < 1 || w.packetsPerPe > (1u << 20))
        return false;
    if (w.pattern == TrafficPattern::local &&
        (w.localRadius < 1 || w.localRadius > 1024))
        return false;
    return request.maxCycles >= 1;
}

/**
 * One connection's worth of work: connect, handshake, pipeline the
 * points of @p remaining, harvest results. Serviced indices are
 * removed from @p remaining; @p permanent is set when the endpoint
 * rejected us for a reason retrying cannot fix (version/schema).
 */
void
serveConnection(const RemoteConfig &cfg, const net::Endpoint &endpoint,
                std::vector<std::size_t> &remaining,
                const std::vector<std::vector<std::uint8_t>> &payloads,
                std::vector<SynthResult> &results,
                std::vector<std::uint8_t> &origin,
                std::vector<std::uint8_t> &remote_hit, bool &permanent)
{
    std::string error;
    net::Socket sock = net::connectTo(endpoint.host, endpoint.port,
                                      cfg.connectTimeoutMs, error);
    if (!sock.valid()) {
        bump(g_connectFailures);
        return;
    }

    // --- Handshake -------------------------------------------------
    net::Frame hello;
    hello.type = net::MessageType::hello;
    net::WireWriter hw;
    hw.u32(net::kWireVersion);
    hw.u32(kSweepCacheSchema);
    hw.u32(cfg.window);
    hello.payload = hw.take();
    net::Frame ack;
    if (net::sendFrame(sock, hello, cfg.ioTimeoutMs) !=
            net::FrameStatus::ok ||
        net::recvFrame(sock, ack, cfg.connectTimeoutMs,
                       cfg.ioTimeoutMs) != net::FrameStatus::ok) {
        bump(g_connectFailures);
        return;
    }
    if (ack.type == net::MessageType::error) {
        bump(g_errorFrames);
        bump(g_connectFailures);
        std::uint32_t code = 0;
        std::string message;
        if (net::parseErrorFrame(ack, code, message))
            permanent = code == net::kErrBadVersion ||
                        code == net::kErrBadSchema;
        return;
    }
    std::uint32_t window = 0;
    {
        std::uint32_t version = 0, schema = 0, granted = 0;
        net::WireReader r(ack.payload);
        if (ack.type != net::MessageType::helloAck || !r.u32(version) ||
            !r.u32(schema) || !r.u32(granted) || !r.atEnd() ||
            granted == 0) {
            bump(g_connectFailures);
            return;
        }
        window = std::min(cfg.window, granted);
    }

    // --- Pipeline --------------------------------------------------
    std::size_t next = 0; // next entry of `remaining` to send
    std::size_t inflight = 0;
    bool dead = false;
    while (!dead) {
        while (inflight < window && next < remaining.size()) {
            const std::size_t idx = remaining[next];
            net::Frame request;
            request.type = net::MessageType::sweepRequest;
            request.requestId = idx;
            request.payload = payloads[idx];
            if (net::sendFrame(sock, request, cfg.ioTimeoutMs) !=
                net::FrameStatus::ok) {
                dead = true;
                break;
            }
            ++inflight;
            ++next;
        }
        if (dead || inflight == 0)
            break;

        net::Frame frame;
        if (net::recvFrame(sock, frame, cfg.resultWaitMs,
                           cfg.ioTimeoutMs) != net::FrameStatus::ok)
            break;
        if (frame.type == net::MessageType::metricsEpoch) {
            std::map<std::string, double> values;
            if (decodeMetricsPayload(frame.payload, values)) {
                MutexLock lk(g_epochMutex);
                g_lastEpochs[endpoint.label()] = std::move(values);
            }
            continue;
        }
        if (frame.type == net::MessageType::error) {
            bump(g_errorFrames);
            std::uint32_t code = 0;
            std::string message;
            if (net::parseErrorFrame(frame, code, message)) {
                permanent = code == net::kErrBadVersion ||
                            code == net::kErrBadSchema;
                // A per-request rejection: that point falls back
                // locally, the session can keep serving the rest.
                if (code == net::kErrBadRequest) {
                    --inflight;
                    continue;
                }
            }
            break;
        }
        if (frame.type != net::MessageType::sweepResult)
            break;
        std::uint32_t point = 0;
        bool hit = false;
        SynthResult result;
        if (!decodeSweepResultPayload(frame.payload, point, hit,
                                      result))
            break;
        const std::size_t idx =
            static_cast<std::size_t>(frame.requestId);
        // The id must name a point this session actually sent and
        // not yet received; anything else is a rogue peer.
        const auto sentEnd = remaining.begin() +
                             static_cast<std::ptrdiff_t>(next);
        if (point != frame.requestId ||
            std::find(remaining.begin(), sentEnd, idx) == sentEnd ||
            origin[idx] != kOriginPending)
            break;
        results[idx] = result;
        remote_hit[idx] = hit ? 1 : 0;
        origin[idx] = kOriginRemote;
        --inflight;
    }

    // Strip what this connection served.
    std::erase_if(remaining, [&origin](std::size_t idx) {
        return origin[idx] != kOriginPending;
    });

    if (remaining.empty()) {
        // Give the trailing metricsEpoch of the final batch a bounded
        // chance to arrive, then part cleanly.
        net::Frame frame;
        while (net::recvFrame(sock, frame, kEpochDrainMs,
                              cfg.ioTimeoutMs) ==
               net::FrameStatus::ok) {
            if (frame.type != net::MessageType::metricsEpoch)
                break;
            std::map<std::string, double> values;
            if (decodeMetricsPayload(frame.payload, values)) {
                MutexLock lk(g_epochMutex);
                g_lastEpochs[endpoint.label()] = std::move(values);
            }
        }
        net::Frame goodbye;
        goodbye.type = net::MessageType::goodbye;
        net::sendFrame(sock, goodbye, cfg.ioTimeoutMs);
    }
}

/** Drive one endpoint until its points are served, the retry budget
 *  is exhausted, or the endpoint proves permanently incompatible. */
void
runEndpointWorker(const RemoteConfig &cfg,
                  const net::Endpoint &endpoint,
                  std::vector<std::size_t> points,
                  const std::vector<std::vector<std::uint8_t>> &payloads,
                  std::vector<SynthResult> &results,
                  std::vector<std::uint8_t> &origin,
                  std::vector<std::uint8_t> &remote_hit)
{
    unsigned failures = 0; // consecutive attempts with no progress
    while (!points.empty() && failures < cfg.maxAttempts) {
        if (failures > 0) {
            bump(g_reconnects);
            std::this_thread::sleep_for(std::chrono::milliseconds(
                net::backoffDelayMs(failures, cfg.backoffInitialMs,
                                    cfg.backoffCapMs)));
        }
        bool permanent = false;
        const std::size_t before = points.size();
        serveConnection(cfg, endpoint, points, payloads, results,
                        origin, remote_hit, permanent);
        if (permanent)
            break;
        // Progress resets the budget: a flaky worker that keeps
        // serving some of each window gets drained, not abandoned.
        failures = points.size() < before ? 1 : failures + 1;
        if (points.size() < before && points.empty())
            break;
    }
}

} // namespace

void
setRemoteConfig(RemoteConfig config)
{
    MutexLock lk(g_configMutex);
    g_config = std::move(config);
}

RemoteConfig
remoteConfig()
{
    MutexLock lk(g_configMutex);
    return g_config;
}

void
clearRemoteConfig()
{
    MutexLock lk(g_configMutex);
    g_config = RemoteConfig{};
}

bool
remoteConfigured()
{
    MutexLock lk(g_configMutex);
    return !g_config.endpoints.empty();
}

RemoteStats
remoteStats()
{
    RemoteStats s;
    s.pointsRemote = g_pointsRemote.load(std::memory_order_relaxed);
    s.remoteCacheHits =
        g_remoteCacheHits.load(std::memory_order_relaxed);
    s.localCacheHits =
        g_localCacheHits.load(std::memory_order_relaxed);
    s.pointsFallback =
        g_pointsFallback.load(std::memory_order_relaxed);
    s.connectFailures =
        g_connectFailures.load(std::memory_order_relaxed);
    s.reconnects = g_reconnects.load(std::memory_order_relaxed);
    s.errorFrames = g_errorFrames.load(std::memory_order_relaxed);
    return s;
}

void
reportRemoteStats(telemetry::MetricsRegistry &metrics)
{
    const RemoteStats s = remoteStats();
    metrics.counter("remote.points_remote") = s.pointsRemote;
    metrics.counter("remote.cache_hits") = s.remoteCacheHits;
    metrics.counter("remote.local_cache_hits") = s.localCacheHits;
    metrics.counter("remote.points_fallback") = s.pointsFallback;
    metrics.counter("remote.connect_failures") = s.connectFailures;
    metrics.counter("remote.reconnects") = s.reconnects;
    metrics.counter("remote.error_frames") = s.errorFrames;
    MutexLock lk(g_epochMutex);
    for (const auto &[label, values] : g_lastEpochs)
        for (const auto &[name, value] : values)
            metrics.gauge("remote." + label + "." + name) = value;
}

std::vector<SynthResult>
remoteBatchedRuns(const NocConfig &config, std::uint32_t channels,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles, const LocalRunner &local)
{
    const std::size_t count = workloads.size();
    std::vector<SynthResult> results(count);
    if (count == 0)
        return results;
    const RemoteConfig cfg = remoteConfig();

    // Slot ownership: each index is written by exactly one endpoint
    // thread (round-robin shards are disjoint); the joins below
    // publish every write before the main thread reads.
    std::vector<std::uint8_t> origin(count, kOriginPending);
    std::vector<std::uint8_t> remoteHit(count, 0);

    // Local cache pre-pass: a point this process already knows never
    // touches the wire.
    sched::BlobCache &cache = sweepCache();
    const bool cacheOn = cfg.useLocalCache && sweepCacheEnabled();
    std::vector<std::uint64_t> keys(count);
    for (std::size_t i = 0; i < count; ++i) {
        keys[i] = sweepKey(config, channels, workloads[i], max_cycles);
        if (!cacheOn)
            continue;
        if (auto payload = cache.lookup(keys[i])) {
            SynthResult cached;
            if (decodeSynthResult(*payload, cached)) {
                results[i] = cached;
                origin[i] = kOriginLocalCache;
                bump(g_localCacheHits);
            }
        }
    }

    // Encode the pending requests once, shard them round-robin.
    std::vector<std::vector<std::uint8_t>> payloads(count);
    std::vector<std::vector<std::size_t>> shards(cfg.endpoints.size());
    std::size_t pending = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (origin[i] != kOriginPending)
            continue;
        SweepRequest request;
        request.pointIndex = static_cast<std::uint32_t>(i);
        request.config = config;
        request.channels = channels;
        request.workload = workloads[i];
        request.maxCycles = max_cycles;
        payloads[i] = encodeSweepRequestPayload(request);
        shards[pending % shards.size()].push_back(i);
        ++pending;
    }

    if (pending > 0 && shards.size() == 1) {
        runEndpointWorker(cfg, cfg.endpoints[0], shards[0], payloads,
                          results, origin, remoteHit);
    } else if (pending > 0) {
        std::vector<std::thread> workers;
        workers.reserve(shards.size());
        for (std::size_t e = 0; e < shards.size(); ++e) {
            if (shards[e].empty())
                continue;
            workers.emplace_back([&, e] {
                runEndpointWorker(cfg, cfg.endpoints[e], shards[e],
                                  payloads, results, origin,
                                  remoteHit);
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }

    // Harvest: count, locally cache remote answers, then compute
    // whatever the fleet could not serve.
    std::vector<std::size_t> fallback;
    for (std::size_t i = 0; i < count; ++i) {
        if (origin[i] == kOriginRemote) {
            bump(g_pointsRemote);
            if (remoteHit[i] != 0)
                bump(g_remoteCacheHits);
            if (cacheOn)
                cache.store(keys[i], encodeSynthResult(results[i]));
        } else if (origin[i] == kOriginPending) {
            fallback.push_back(i);
        }
    }
    if (!fallback.empty()) {
        bump(g_pointsFallback, fallback.size());
        const std::vector<SynthResult> computed = local(fallback);
        for (std::size_t j = 0; j < fallback.size(); ++j)
            results[fallback[j]] = computed[j];
    }
    return results;
}

// --- Message payload codecs ----------------------------------------

std::vector<std::uint8_t>
encodeSweepRequestPayload(const SweepRequest &request)
{
    net::WireWriter w;
    w.u32(request.pointIndex);
    const NocConfig &c = request.config;
    w.u32(c.n);
    w.u32(c.d);
    w.u32(c.r);
    w.u32(static_cast<std::uint32_t>(c.variant));
    w.u8(c.allowExpressTurn ? 1 : 0);
    w.u8(c.allowUpgrade ? 1 : 0);
    w.u8(c.turnPriority ? 1 : 0);
    w.u32(c.shortLinkStages);
    w.u32(c.expressLinkStages);
    w.u32(request.channels);
    const SyntheticWorkload &wl = request.workload;
    w.u32(static_cast<std::uint32_t>(wl.pattern));
    w.f64(wl.injectionRate);
    w.u32(wl.packetsPerPe);
    w.u32(wl.localRadius);
    w.u64(wl.seed);
    w.u64(request.maxCycles);
    return w.take();
}

bool
decodeSweepRequestPayload(const std::vector<std::uint8_t> &payload,
                          SweepRequest &out)
{
    SweepRequest request;
    NocConfig &c = request.config;
    SyntheticWorkload &wl = request.workload;
    std::uint32_t variant = 0, pattern = 0;
    std::uint8_t expressTurn = 0, upgrade = 0, turnPriority = 0;
    net::WireReader r(payload);
    const bool ok =
        r.u32(request.pointIndex) && r.u32(c.n) && r.u32(c.d) &&
        r.u32(c.r) && r.u32(variant) && r.u8(expressTurn) &&
        r.u8(upgrade) && r.u8(turnPriority) &&
        r.u32(c.shortLinkStages) && r.u32(c.expressLinkStages) &&
        r.u32(request.channels) && r.u32(pattern) &&
        r.f64(wl.injectionRate) && r.u32(wl.packetsPerPe) &&
        r.u32(wl.localRadius) && r.u64(wl.seed) &&
        r.u64(request.maxCycles) && r.atEnd();
    if (!ok)
        return false;
    if (variant > static_cast<std::uint32_t>(NocVariant::ftInject) ||
        pattern > static_cast<std::uint32_t>(TrafficPattern::transpose))
        return false;
    c.variant = static_cast<NocVariant>(variant);
    c.allowExpressTurn = expressTurn != 0;
    c.allowUpgrade = upgrade != 0;
    c.turnPriority = turnPriority != 0;
    wl.pattern = static_cast<TrafficPattern>(pattern);
    if (!validSweepRequest(request))
        return false;
    out = request;
    return true;
}

std::vector<std::uint8_t>
encodeSweepResultPayload(std::uint32_t point_index, bool cache_hit,
                         const std::vector<std::uint8_t> &result_payload)
{
    net::WireWriter w;
    w.u32(point_index);
    w.u8(cache_hit ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(result_payload.size()));
    w.bytes(result_payload.data(), result_payload.size());
    return w.take();
}

bool
decodeSweepResultPayload(const std::vector<std::uint8_t> &payload,
                         std::uint32_t &point_index, bool &cache_hit,
                         SynthResult &out)
{
    net::WireReader r(payload);
    std::uint8_t hit = 0;
    std::uint32_t resultBytes = 0;
    if (!r.u32(point_index) || !r.u8(hit) || !r.u32(resultBytes) ||
        resultBytes == 0 || r.remaining() != resultBytes)
        return false;
    std::vector<std::uint8_t> resultPayload(resultBytes);
    if (!r.bytes(resultPayload.data(), resultPayload.size()))
        return false;
    cache_hit = hit != 0;
    return decodeSynthResult(resultPayload, out);
}

std::vector<std::uint8_t>
encodeMetricsPayload(const std::map<std::string, double> &values)
{
    net::WireWriter w;
    w.u32(static_cast<std::uint32_t>(values.size()));
    for (const auto &[name, value] : values) {
        w.str(name);
        w.f64(value);
    }
    return w.take();
}

bool
decodeMetricsPayload(const std::vector<std::uint8_t> &payload,
                     std::map<std::string, double> &out)
{
    std::map<std::string, double> values;
    net::WireReader r(payload);
    std::uint32_t count = 0;
    if (!r.u32(count))
        return false;
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string name;
        double value = 0.0;
        if (!r.str(name) || !r.f64(value))
            return false;
        values[name] = value;
    }
    if (!r.atEnd())
        return false;
    out = std::move(values);
    return true;
}

} // namespace fasttrack
