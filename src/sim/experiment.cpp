#include "sim/experiment.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/sweep_cache.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack {

std::vector<NocUnderTest>
standardLineup(std::uint32_t n)
{
    return {
        {"FT(" + std::to_string(n * n) + ",2,1)",
         NocConfig::fastTrack(n, 2, 1), 1},
        {"FT(" + std::to_string(n * n) + ",2,2)",
         NocConfig::fastTrack(n, 2, 2), 1},
        {"Hoplite", NocConfig::hoplite(n), 1},
    };
}

std::vector<NocUnderTest>
isoWiringLineup(std::uint32_t n)
{
    return {
        {"Hoplite-3x", NocConfig::hoplite(n), 3},
        {"Hoplite", NocConfig::hoplite(n), 1},
        {"FT(" + std::to_string(n * n) + ",2,2)",
         NocConfig::fastTrack(n, 2, 2), 1},
        {"FT(" + std::to_string(n * n) + ",2,1)",
         NocConfig::fastTrack(n, 2, 1), 1},
    };
}

std::vector<double>
injectionRateGrid()
{
    return {0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00};
}

std::vector<SweepPoint>
injectionSweep(const NocUnderTest &nut, TrafficPattern pattern,
               const std::vector<double> &rates,
               std::uint32_t packets_per_pe, std::uint64_t seed)
{
    // Each rate point simulates an independent network instance, so
    // the sweep parallelizes across cores with identical results.
    // When a telemetry sink is installed the whole sweep shows up as
    // one host-side phase span in the exported Chrome trace.
    telemetry::PhaseTimer phase("injectionSweep " + nut.label);
    sched::ensureGlobalPool();
    std::vector<std::size_t> points(rates.size());
    std::iota(points.begin(), points.end(), std::size_t{0});
    return parallelMap(
        points,
        [&](std::size_t i) {
            SyntheticWorkload workload;
            workload.pattern = pattern;
            workload.injectionRate = rates[i];
            workload.packetsPerPe = packets_per_pe;
            // Per-point seed: a shared seed would correlate the
            // measurement noise of every point in the sweep.
            workload.seed = splitmix64(seed ^ static_cast<std::uint64_t>(i));
            return SweepPoint{rates[i], cachedRunSynthetic(
                                            nut.config, nut.channels,
                                            workload)};
        },
        0, "injectionSweep");
}

SynthResult
saturationRun(const NocUnderTest &nut, TrafficPattern pattern,
              std::uint32_t packets_per_pe, std::uint64_t seed)
{
    SyntheticWorkload workload;
    workload.pattern = pattern;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = packets_per_pe;
    workload.seed = seed;
    return cachedRunSynthetic(nut.config, nut.channels, workload);
}

double
RepeatedResult::rateCv() const
{
    if (completedRuns == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return rate.mean() > 0.0 ? rate.stddev() / rate.mean() : 0.0;
}

RepeatedResult
repeatedRuns(const NocUnderTest &nut, TrafficPattern pattern,
             double rate, std::uint32_t packets_per_pe,
             const std::vector<std::uint64_t> &seeds, Cycle max_cycles)
{
    sched::ensureGlobalPool();
    const std::vector<SynthResult> results = parallelMap(
        seeds,
        [&](std::uint64_t seed) {
            SyntheticWorkload workload;
            workload.pattern = pattern;
            workload.injectionRate = rate;
            workload.packetsPerPe = packets_per_pe;
            workload.seed = seed;
            return cachedRunSynthetic(nut.config, nut.channels,
                                      workload, max_cycles);
        },
        0, "repeatedRuns");

    // Aggregate serially in seed-list order so the RunningStat
    // accumulation is identical for every worker count.
    RepeatedResult out;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        const SynthResult &res = results[i];
        if (!res.completed) {
            out.failedSeeds.push_back(seeds[i]);
            continue;
        }
        ++out.completedRuns;
        out.rate.add(res.sustainedRate());
        out.avgLatency.add(res.avgLatency());
        out.worstLatency.add(static_cast<double>(res.worstLatency()));
    }
    return out;
}

} // namespace fasttrack
