#include "sim/experiment.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.hpp"
#include "sim/batch_runner.hpp"
#include "sim/sweep_cache.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack {

std::vector<NocUnderTest>
standardLineup(std::uint32_t n)
{
    return {
        {"FT(" + std::to_string(n * n) + ",2,1)",
         NocConfig::fastTrack(n, 2, 1), 1},
        {"FT(" + std::to_string(n * n) + ",2,2)",
         NocConfig::fastTrack(n, 2, 2), 1},
        {"Hoplite", NocConfig::hoplite(n), 1},
    };
}

std::vector<NocUnderTest>
isoWiringLineup(std::uint32_t n)
{
    return {
        {"Hoplite-3x", NocConfig::hoplite(n), 3},
        {"Hoplite", NocConfig::hoplite(n), 1},
        {"FT(" + std::to_string(n * n) + ",2,2)",
         NocConfig::fastTrack(n, 2, 2), 1},
        {"FT(" + std::to_string(n * n) + ",2,1)",
         NocConfig::fastTrack(n, 2, 1), 1},
    };
}

std::vector<double>
injectionRateGrid()
{
    return {0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00};
}

std::vector<SweepPoint>
injectionSweep(const NocUnderTest &nut, TrafficPattern pattern,
               const std::vector<double> &rates,
               std::uint32_t packets_per_pe, std::uint64_t seed)
{
    // Each rate point simulates an independent network instance of
    // identical geometry, so the sweep dispatches through the batched
    // lockstep engine (one pool worker steps a K-replica batch) with
    // identical per-point results; see sim/batch_runner.hpp for when
    // points fall back to scalar runs. When a telemetry sink is
    // installed the whole sweep shows up as one host-side phase span
    // in the exported Chrome trace.
    telemetry::PhaseTimer phase("injectionSweep " + nut.label);
    std::vector<SyntheticWorkload> workloads(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
        SyntheticWorkload &workload = workloads[i];
        workload.pattern = pattern;
        workload.injectionRate = rates[i];
        workload.packetsPerPe = packets_per_pe;
        // Per-point seed: a shared seed would correlate the
        // measurement noise of every point in the sweep.
        workload.seed =
            splitmix64(seed ^ static_cast<std::uint64_t>(i));
    }
    const std::vector<SynthResult> results =
        batchedCachedRuns(nut.config, nut.channels, workloads);
    std::vector<SweepPoint> out;
    out.reserve(rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i)
        out.push_back(SweepPoint{rates[i], results[i]});
    return out;
}

SynthResult
saturationRun(const NocUnderTest &nut, TrafficPattern pattern,
              std::uint32_t packets_per_pe, std::uint64_t seed)
{
    SyntheticWorkload workload;
    workload.pattern = pattern;
    workload.injectionRate = 1.0;
    workload.packetsPerPe = packets_per_pe;
    workload.seed = seed;
    return cachedRunSynthetic(nut.config, nut.channels, workload);
}

double
RepeatedResult::rateCv() const
{
    if (completedRuns == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return rate.mean() > 0.0 ? rate.stddev() / rate.mean() : 0.0;
}

RepeatedResult
repeatedRuns(const NocUnderTest &nut, TrafficPattern pattern,
             double rate, std::uint32_t packets_per_pe,
             const std::vector<std::uint64_t> &seeds, Cycle max_cycles)
{
    // Seeds share one geometry, so cache-miss points group into
    // K-replica batches (tail groups smaller than the batch width run
    // scalar; see sim/batch_runner.hpp).
    std::vector<SyntheticWorkload> workloads(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        SyntheticWorkload &workload = workloads[i];
        workload.pattern = pattern;
        workload.injectionRate = rate;
        workload.packetsPerPe = packets_per_pe;
        workload.seed = seeds[i];
    }
    const std::vector<SynthResult> results =
        batchedCachedRuns(nut.config, nut.channels, workloads,
                          max_cycles);

    // Aggregate serially in seed-list order so the RunningStat
    // accumulation is identical for every worker count.
    RepeatedResult out;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        const SynthResult &res = results[i];
        if (!res.completed) {
            out.failedSeeds.push_back(seeds[i]);
            continue;
        }
        ++out.completedRuns;
        out.rate.add(res.sustainedRate());
        out.avgLatency.add(res.avgLatency());
        out.worstLatency.add(static_cast<double>(res.worstLatency()));
    }
    return out;
}

} // namespace fasttrack
