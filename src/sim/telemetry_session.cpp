#include "sim/telemetry_session.hpp"

#include <filesystem>
#include <fstream>

#include "common/logging.hpp"
#include "telemetry/exporters.hpp"

namespace fasttrack {

namespace {

std::ofstream
openArtifact(const std::string &dir, const std::string &name)
{
    std::filesystem::create_directories(dir);
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    std::ofstream os(path);
    FT_ASSERT(os.good(), "cannot open telemetry artifact ",
              path.string());
    return os;
}

} // namespace

TelemetrySession::TelemetrySession(telemetry::TelemetryConfig config)
    : sink_(std::move(config))
{
    telemetry::install(&sink_);
}

TelemetrySession::~TelemetrySession()
{
    finish();
    telemetry::uninstall(&sink_);
}

void
TelemetrySession::observe(const NocDevice &noc)
{
    side_.store(noc.config().n, std::memory_order_relaxed);
    links_.store(noc.linkCount(), std::memory_order_relaxed);
}

bool
TelemetrySession::claimSampler()
{
    return !samplerBusy_.exchange(true, std::memory_order_acq_rel);
}

void
TelemetrySession::releaseSampler()
{
    samplerBusy_.store(false, std::memory_order_release);
}

void
TelemetrySession::sampleEpoch(const NocDevice &noc,
                              std::uint64_t backlog_depth)
{
    // Only the sampler-slot holder calls this; the lock is therefore
    // uncontended and exists to let -Wthread-safety verify that every
    // registry/baseline touch is serialized.
    MutexLock lk(metricsMu_);
    const Cycle now = noc.now();
    const NocStats stats = noc.statsSnapshot();
    const std::uint64_t traversals =
        stats.shortHopTraversals + stats.expressHopTraversals;
    const std::uint64_t last_traversals =
        lastShortHops_ + lastExpressHops_;
    const std::uint64_t d_traversals = traversals - last_traversals;
    const std::uint64_t d_express =
        stats.expressHopTraversals - lastExpressHops_;
    const std::uint64_t d_deflections =
        stats.totalDeflections() - lastDeflections_;
    const Cycle d_cycles = now > lastCycle_ ? now - lastCycle_ : 0;

    // Per-epoch gauges: rates over the window since the last sample.
    const std::uint64_t links =
        links_.load(std::memory_order_relaxed);
    metrics_.gauge("link.utilization") =
        (links && d_cycles)
            ? static_cast<double>(d_traversals) /
                  (static_cast<double>(links) *
                   static_cast<double>(d_cycles))
            : 0.0;
    metrics_.gauge("deflection.rate") =
        d_traversals ? static_cast<double>(d_deflections) /
                           static_cast<double>(d_traversals)
                     : 0.0;
    metrics_.gauge("express.occupancy") =
        d_traversals ? static_cast<double>(d_express) /
                           static_cast<double>(d_traversals)
                     : 0.0;
    metrics_.gauge("injector.backlog") =
        static_cast<double>(backlog_depth);

    // Cumulative counters: device totals plus this thread's event
    // counts (the sampling run's events all land in its own log).
    metrics_.counter("net.injected") = stats.injected;
    metrics_.counter("net.delivered") = stats.delivered;
    metrics_.counter("net.traversals") = traversals;
    const telemetry::KindCounts &counts = sink_.local().counts();
    for (std::size_t k = 0; k < telemetry::kNumEventKinds; ++k) {
        metrics_.counter(
            std::string("events.") +
            toString(static_cast<telemetry::EventKind>(k))) =
            counts.byKind[k];
    }

    metrics_.snapshot(now);
    lastCycle_ = now;
    lastShortHops_ = stats.shortHopTraversals;
    lastExpressHops_ = stats.expressHopTraversals;
    lastDeflections_ = stats.totalDeflections();
}

const std::vector<std::string> &
TelemetrySession::finish()
{
    if (finished_)
        return artifacts_;
    finished_ = true;
    const telemetry::TelemetryConfig &cfg = sink_.config();
    if (cfg.dir.empty())
        return artifacts_;

    if (cfg.traceEvents) {
        for (std::string &p :
             telemetry::writeChromeTraces(sink_, cfg.dir,
                                          cfg.filePrefix))
            artifacts_.push_back(std::move(p));
    }
    const std::string phase_path =
        telemetry::writePhaseTrace(sink_, cfg.dir, cfg.filePrefix);
    if (!phase_path.empty())
        artifacts_.push_back(phase_path);

    const std::vector<std::uint64_t> links = sink_.totalLinkCounts();
    const std::uint32_t side = side_.load(std::memory_order_relaxed);
    {
        const std::string name = cfg.filePrefix + "link_heatmap.csv";
        std::ofstream os = openArtifact(cfg.dir, name);
        telemetry::writeLinkHeatmapCsv(os, links, side);
        artifacts_.push_back(
            (std::filesystem::path(cfg.dir) / name).string());
    }
    {
        const std::string name = cfg.filePrefix + "link_heatmap.txt";
        std::ofstream os = openArtifact(cfg.dir, name);
        telemetry::writeLinkHeatmapAscii(os, links, side,
                                         cfg.filePrefix + "links");
        artifacts_.push_back(
            (std::filesystem::path(cfg.dir) / name).string());
    }
    {
        MutexLock lk(metricsMu_);
        if (!metrics_.epochs().empty()) {
            const std::string name = cfg.filePrefix + "metrics.csv";
            std::ofstream os = openArtifact(cfg.dir, name);
            metrics_.writeCsv(os);
            artifacts_.push_back(
                (std::filesystem::path(cfg.dir) / name).string());
        }
        if (!metrics_.empty()) {
            const std::string name =
                cfg.filePrefix + "metrics_summary.csv";
            std::ofstream os = openArtifact(cfg.dir, name);
            metrics_.writeSummary(os);
            artifacts_.push_back(
                (std::filesystem::path(cfg.dir) / name).string());
        }
    }
    return artifacts_;
}

} // namespace fasttrack
