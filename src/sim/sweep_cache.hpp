/**
 * @file
 * Content-addressed caching for synthetic-sweep results.
 *
 * Every paper figure re-simulates (config, workload, seed) points
 * that other figures — or a previous invocation of the same bench —
 * already computed. Because runSynthetic is bit-deterministic in its
 * inputs, a result can be keyed by a hash of those inputs and
 * replayed instead of re-simulated.
 *
 * Key schema (FNV-1a over the words listed, in order; bump
 * kSweepCacheSchema whenever this list, the field meanings, or the
 * encoded payload change):
 *   kSweepCacheSchema,
 *   NocConfig{n, d, r, variant, allowExpressTurn, allowUpgrade,
 *             turnPriority, shortLinkStages, expressLinkStages},
 *   channels,
 *   SyntheticWorkload{pattern, bit_cast<u64>(injectionRate),
 *                     packetsPerPe, localRadius, seed},
 *   maxCycles
 *
 * The payload is the full SynthResult (all NocStats counters and the
 * four latency/hop histograms), so a cache hit reproduces every
 * figure metric bit for bit.
 *
 * Telemetry interaction: when a telemetry sink is installed, a cache
 * hit would silently skip the event/counter emission of the real
 * run, so cachedRunSynthetic bypasses the cache (recorded in the
 * <sweep_cache.bypasses> counter) rather than corrupt traces.
 */

#ifndef FT_SIM_SWEEP_CACHE_HPP
#define FT_SIM_SWEEP_CACHE_HPP

#include <cstdint>
#include <vector>

#include "sched/blob_cache.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {

/** Payload/key schema version (see file comment). v2: the key
 *  derivation and payload encoding became explicitly little-endian
 *  (net/wire.hpp), so keys and blobs are identical across hosts —
 *  the property the distributed fabric's cross-node cache sharing
 *  relies on (docs/distributed.md). On little-endian hosts the bytes
 *  are unchanged, but the portability contract is new, hence the
 *  bump: a v1 blob written by a big-endian build must not validate. */
inline constexpr std::uint32_t kSweepCacheSchema = 2;

/** Content key of one synthetic run (see key schema above). */
std::uint64_t sweepKey(const NocConfig &config, std::uint32_t channels,
                       const SyntheticWorkload &workload,
                       Cycle max_cycles = kDefaultMaxCycles);

/** Serialize @p result as a sweep-cache payload. */
std::vector<std::uint8_t> encodeSynthResult(const SynthResult &result);

/** Rebuild a SynthResult from @p payload; false if the payload does
 *  not parse exactly (treat as a miss and recompute). */
bool decodeSynthResult(const std::vector<std::uint8_t> &payload,
                       SynthResult &out);

/** The process-wide sweep-result cache. Memory-backed by default;
 *  attach a disk store with sweepCache().setDir(dir) (the bench
 *  harnesses wire --result-cache DIR here). */
sched::BlobCache &sweepCache();

/** Enable/disable cache consultation by cachedRunSynthetic (on by
 *  default). Disabling forces every run to simulate; results must be
 *  bit-identical either way (tests/test_sched.cpp pins this). */
void setSweepCacheEnabled(bool enabled);
bool sweepCacheEnabled();

/**
 * runSynthetic through the sweep cache: return the stored result on
 * a key hit, otherwise simulate and store. Falls back to a plain run
 * (counted as a bypass) while a telemetry sink is installed or the
 * cache is disabled. Shim over runSim (RunRequest.useCache) — the
 * cache lookup/store itself lives in runSim; this overload takes the
 * default cycle guard from SimConfig{} like every other entry point.
 */
inline SynthResult
cachedRunSynthetic(const NocConfig &config, std::uint32_t channels,
                   const SyntheticWorkload &workload)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .workload = &workload,
                   .useCache = true})
        .synth;
}

/** Shim over runSim — see above; explicit cycle guard. */
inline SynthResult
cachedRunSynthetic(const NocConfig &config, std::uint32_t channels,
                   const SyntheticWorkload &workload, Cycle max_cycles)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .workload = &workload,
                   .sim = {.maxCycles = max_cycles},
                   .useCache = true})
        .synth;
}

} // namespace fasttrack

#endif // FT_SIM_SWEEP_CACHE_HPP
