/**
 * @file
 * Experiment-sweep helpers shared by the bench harnesses: injection
 * rate grids, per-configuration sweeps, and speedup computation.
 */

#ifndef FT_SIM_EXPERIMENT_HPP
#define FT_SIM_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/simulation.hpp"

namespace fasttrack {

/** One NoC under test: configuration plus channel replication. */
struct NocUnderTest
{
    std::string label;
    NocConfig config;
    std::uint32_t channels = 1;
};

/** The standard competitors of the paper's synthetic plots. */
std::vector<NocUnderTest> standardLineup(std::uint32_t n);
/** The iso-wiring lineup of Fig 13/14 (adds Hoplite-2x/3x). */
std::vector<NocUnderTest> isoWiringLineup(std::uint32_t n);

/** The paper's log-spaced injection-rate grid (Figs 11-13). */
std::vector<double> injectionRateGrid();

/** One point of an injection sweep. */
struct SweepPoint
{
    double rate = 0.0;
    SynthResult result;
};

/**
 * Sweep a configuration over injection rates for one traffic pattern.
 *
 * Each rate point runs under its own seed, splitmix64(seed ^ point
 * index), so per-point measurement noise is independent across the
 * sweep instead of correlated by a shared packet-generation stream.
 * Points execute on the scheduler's persistent work-stealing pool and
 * consult the sweep result cache (sim/sweep_cache.hpp).
 *
 * @param packets_per_pe closed-workload budget (paper: 1K).
 */
std::vector<SweepPoint> injectionSweep(const NocUnderTest &nut,
                                       TrafficPattern pattern,
                                       const std::vector<double> &rates,
                                       std::uint32_t packets_per_pe = 1024,
                                       std::uint64_t seed = 1);

/**
 * Saturation throughput: sustained rate at 100% offered load
 * (Fig 14/17/19 operating point).
 */
SynthResult saturationRun(const NocUnderTest &nut, TrafficPattern pattern,
                          std::uint32_t packets_per_pe = 1024,
                          std::uint64_t seed = 1);

/** Seed-replicated measurement with dispersion statistics. */
struct RepeatedResult
{
    /** Sustained rate across seeds (pkt/cycle/PE). */
    RunningStat rate;
    /** Mean total latency across seeds (cycles). */
    RunningStat avgLatency;
    /** Worst-case latency across seeds (cycles). */
    RunningStat worstLatency;
    std::uint32_t completedRuns = 0;
    /** Seeds whose run hit the cycle guard before draining. A replica
     *  that fails is recorded, not silently dropped, so consumers can
     *  see *which* seeds diverged. */
    std::vector<std::uint64_t> failedSeeds;

    /** Coefficient of variation of the sustained rate; small values
     *  mean a single seed is representative. NaN when no run
     *  completed — a fully failed replication must not read as
     *  perfectly seed-stable (CV 0). */
    double rateCv() const;
};

/**
 * Run the same workload under several seeds and aggregate; used to
 * check that single-seed bench results are seed-stable. Runs execute
 * on the scheduler pool through the sweep cache; the aggregation
 * order is the seed-list order, so results are deterministic for any
 * worker count.
 *
 * @param max_cycles per-run cycle guard; runs that hit it land in
 * failedSeeds instead of the dispersion statistics.
 */
RepeatedResult repeatedRuns(const NocUnderTest &nut,
                            TrafficPattern pattern, double rate,
                            std::uint32_t packets_per_pe,
                            const std::vector<std::uint64_t> &seeds,
                            Cycle max_cycles = kDefaultMaxCycles);

} // namespace fasttrack

#endif // FT_SIM_EXPERIMENT_HPP
