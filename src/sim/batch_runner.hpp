/**
 * @file
 * Sim-layer driver for the batched lockstep engine: run K synthetic
 * points of identical geometry on one BatchedEngine, and route
 * many-point experiments (repeatedRuns, injectionSweep) through
 * batches composed with the work-stealing pool and the sweep cache.
 *
 * Selection policy (see docs/engine.md "Batched lockstep stepping"):
 * batchedCachedRuns dispatches batches only when the device a scalar
 * run would build is a plain single-channel Network, no telemetry
 * sink is installed (the batched engine emits no events), the batch
 * width is at least 2, and at least one full group of cache-miss
 * points remains after the cache pass. The tail group smaller than K
 * always falls back to the scalar engine — padding it with dead
 * replicas would skew the pool/cache counters --cache-stats reports.
 * Every decision is about *where* a point is computed, never what it
 * computes: each lane is bit-identical to a solo Network run, so
 * per-point cache entries written by a batch are indistinguishable
 * from scalar-written ones and warm replay is unchanged.
 */

#ifndef FT_SIM_BATCH_RUNNER_HPP
#define FT_SIM_BATCH_RUNNER_HPP

#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack {

/** Process-wide default replica count per batch. 8 keeps one batch's
 *  replica-major slab inside a 2 MiB L2 at the paper's 16x16 scale;
 *  benches override via --batch K (bench/bench_util.hpp). */
std::uint32_t defaultBatchWidth();
/** Set the default batch width (1..BatchedEngine::kMaxLanes; 1
 *  disables batched dispatch entirely). */
void setDefaultBatchWidth(std::uint32_t width);

/**
 * Run one workload per lane on a single BatchedEngine until every
 * lane drains (or hits @p max_cycles). workloads.size() picks the
 * lane count (1..kMaxLanes). Results are per lane, bit-identical to
 * runSynthetic(config, 1, workloads[lane], max_cycles).
 */
std::vector<SynthResult>
runSyntheticBatch(const NocConfig &config,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles = kDefaultMaxCycles);

/**
 * Compute one SynthResult per workload — same contract as calling
 * cachedRunSynthetic per point, but cache misses are grouped into
 * defaultBatchWidth()-wide batches, each stepped by one pool worker
 * (see selection policy above). Results are returned in input order
 * and each lane's result is cached individually under the same key a
 * scalar run would use.
 */
std::vector<SynthResult>
batchedCachedRuns(const NocConfig &config, std::uint32_t channels,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles = kDefaultMaxCycles);

/**
 * batchedCachedRuns pinned to the in-process path: never consults
 * the remote config. The ftd daemon's request handler and the remote
 * client's fallback go through this so serving a request can never
 * re-enter remote dispatch — a hazard whenever a daemon shares a
 * process with a remote-configured client (in-process tests, or an
 * operator pointing a daemon's own tools at itself).
 */
std::vector<SynthResult>
batchedCachedRunsLocal(const NocConfig &config, std::uint32_t channels,
                       const std::vector<SyntheticWorkload> &workloads,
                       Cycle max_cycles = kDefaultMaxCycles);

/** Dispatch counters for --cache-stats: how many points ran batched
 *  vs scalar since process start. */
struct BatchRunStats
{
    /** Full K-wide groups stepped on the batched engine. */
    std::uint64_t batchedGroups = 0;
    /** Points computed as batch lanes. */
    std::uint64_t batchedLanes = 0;
    /** Points that fell back to the scalar engine (tail groups,
     *  telemetry, multi-channel, or batch width < 2). */
    std::uint64_t scalarRuns = 0;
};
BatchRunStats batchRunStats();

/** Publish the dispatch counters as `batch_runner.*` metrics. */
void reportBatchRunStats(telemetry::MetricsRegistry &metrics);

} // namespace fasttrack

#endif // FT_SIM_BATCH_RUNNER_HPP
