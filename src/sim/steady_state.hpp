/**
 * @file
 * Open-loop steady-state measurement: the standard NoC methodology of
 * warming the network up, then measuring throughput/latency over a
 * window while generation continues (as opposed to the paper's closed
 * 1K-packets/PE runs, which include ramp-up and drain). Useful for
 * saturation studies where drain tails would bias the estimate.
 */

#ifndef FT_SIM_STEADY_STATE_HPP
#define FT_SIM_STEADY_STATE_HPP

#include "noc/noc_device.hpp"
#include "traffic/pattern.hpp"

namespace fasttrack {

/** Parameters of a steady-state measurement. */
struct SteadyStateConfig
{
    TrafficPattern pattern = TrafficPattern::random;
    /** Generation probability per PE per cycle. */
    double injectionRate = 0.1;
    /** Cycles to run before measuring. */
    Cycle warmupCycles = 2000;
    /** Cycles of the measurement window. */
    Cycle measureCycles = 8000;
    std::uint32_t localRadius = 2;
    std::uint64_t seed = 1;
    /** Cap on per-node source queues; generation pauses at the cap so
     *  saturated runs do not accumulate unbounded backlog. */
    std::uint32_t maxQueue = 64;
};

/** Window-only measurement results. */
struct SteadyStateResult
{
    /** Packets delivered in the window per cycle per PE. */
    double throughput = 0.0;
    /** Mean total latency of packets *created* in the window and
     *  delivered before the run ended. */
    double avgLatency = 0.0;
    std::uint64_t windowDelivered = 0;
    std::uint64_t windowCreated = 0;
    /** True when offered load exceeded what the NoC accepted (the
     *  source queues were persistently saturated). */
    bool saturated = false;
};

/** Run the warmup + window protocol on @p noc (device state is
 *  consumed; pass a fresh instance). */
SteadyStateResult measureSteadyState(NocDevice &noc,
                                     const SteadyStateConfig &config);

} // namespace fasttrack

#endif // FT_SIM_STEADY_STATE_HPP
