#include "sim/ftd_server.hpp"

#include <cstring>
#include <map>
#include <utility>

#include "net/wire.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/batch_runner.hpp"
#include "sim/remote.hpp"
#include "sim/sweep_cache.hpp"

namespace fasttrack {

namespace {

/** Group key: points sharing (config, channels, maxCycles) batch
 *  together. The encoded request minus pointIndex/workload would do,
 *  but hashing the fields directly is simpler and collision-free
 *  (std::map on the encoded bytes). */
std::string
groupKey(const SweepRequest &request)
{
    net::WireWriter w;
    const NocConfig &c = request.config;
    w.u32(c.n);
    w.u32(c.d);
    w.u32(c.r);
    w.u32(static_cast<std::uint32_t>(c.variant));
    w.u8(c.allowExpressTurn ? 1 : 0);
    w.u8(c.allowUpgrade ? 1 : 0);
    w.u8(c.turnPriority ? 1 : 0);
    w.u32(c.shortLinkStages);
    w.u32(c.expressLinkStages);
    w.u32(request.channels);
    w.u64(request.maxCycles);
    const std::vector<std::uint8_t> bytes = w.take();
    return std::string(reinterpret_cast<const char *>(bytes.data()),
                       bytes.size());
}

net::ServerConfig
withSweepSchema(net::ServerConfig config)
{
    config.schemaVersion = kSweepCacheSchema;
    return config;
}

} // namespace

FtdServer::FtdServer(net::ServerConfig config)
    : server_(withSweepSchema(std::move(config)),
              [this](std::vector<net::Frame> &&batch) {
                  return handle(std::move(batch));
              })
{
}

bool
FtdServer::start(std::string &error)
{
    return server_.start(error);
}

void
FtdServer::stop()
{
    server_.stop();
}

std::uint16_t
FtdServer::boundPort() const
{
    return server_.boundPort();
}

FtdServer::Stats
FtdServer::stats() const
{
    Stats s;
    s.pointsServed = pointsServed_.load(std::memory_order_relaxed);
    s.cacheHits = cacheHits_.load(std::memory_order_relaxed);
    s.badRequests = badRequests_.load(std::memory_order_relaxed);
    s.slicesServed = slicesServed_.load(std::memory_order_relaxed);
    return s;
}

net::ServerStats
FtdServer::netStats() const
{
    return server_.stats();
}

void
FtdServer::reportTo(telemetry::MetricsRegistry &metrics) const
{
    const Stats s = stats();
    metrics.counter("ftd.points_served") = s.pointsServed;
    metrics.counter("ftd.cache_hits") = s.cacheHits;
    metrics.counter("ftd.bad_requests") = s.badRequests;
    metrics.counter("ftd.slices_served") = s.slicesServed;
    const net::ServerStats n = netStats();
    metrics.counter("ftd.net.sessions_accepted") = n.sessionsAccepted;
    metrics.counter("ftd.net.sessions_rejected") = n.sessionsRejected;
    metrics.counter("ftd.net.frames_in") = n.framesIn;
    metrics.counter("ftd.net.frames_out") = n.framesOut;
    metrics.counter("ftd.net.protocol_errors") = n.protocolErrors;
    metrics.counter("ftd.net.idle_timeouts") = n.idleTimeouts;
    metrics.counter("ftd.net.requests_served") = n.requestsServed;
    metrics.counter("ftd.net.injected_drops") = n.injectedDrops;
    sweepCache().reportTo(metrics);
    sched::WorkStealingPool::global().reportTo(metrics);
    reportBatchRunStats(metrics);
}

std::vector<net::Frame>
FtdServer::handle(std::vector<net::Frame> batch)
{
    struct Item
    {
        std::uint64_t requestId = 0;
        SweepRequest request;
        /** Blob-cache payload when the pre-pass hit. */
        std::vector<std::uint8_t> cached;
        bool hit = false;
        bool bad = false;
        /** Temporal-shard slice (snapshotRequest); handled apart
         *  from the sweep grouping, response pre-built. */
        bool slice = false;
        net::Frame sliceResponse;
    };
    std::vector<Item> items(batch.size());

    // Decode + validate + cache pre-pass. The pre-pass both supplies
    // the response's cache-hit flag and lets hits skip the simulator
    // entirely (their payload bytes are spliced straight through).
    sched::BlobCache &cache = sweepCache();
    const bool cacheOn = sweepCacheEnabled();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Item &item = items[i];
        item.requestId = batch[i].requestId;
        if (batch[i].type == net::MessageType::snapshotRequest) {
            item.slice = true;
            item.sliceResponse = handleSlice(batch[i]);
            continue;
        }
        if (!decodeSweepRequestPayload(batch[i].payload,
                                       item.request)) {
            item.bad = true;
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        if (!cacheOn)
            continue;
        const std::uint64_t key =
            sweepKey(item.request.config, item.request.channels,
                     item.request.workload, item.request.maxCycles);
        if (auto payload = cache.lookup(key)) {
            SynthResult check;
            if (decodeSynthResult(*payload, check)) {
                item.cached = std::move(*payload);
                item.hit = true;
            }
        }
    }

    // Group the misses by simulation parameters so each group rides
    // one batchedCachedRuns call (lockstep batching + pool sharding).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < items.size(); ++i)
        if (!items[i].bad && !items[i].hit && !items[i].slice)
            groups[groupKey(items[i].request)].push_back(i);

    std::vector<std::vector<std::uint8_t>> computed(items.size());
    for (const auto &[key, members] : groups) {
        const SweepRequest &first = items[members.front()].request;
        std::vector<SyntheticWorkload> workloads;
        workloads.reserve(members.size());
        for (std::size_t i : members)
            workloads.push_back(items[i].request.workload);
        // Pinned to the local path: a handler must never re-enter
        // remote dispatch, even when this process also has remote
        // endpoints configured (in-process daemons in tests).
        const std::vector<SynthResult> results =
            batchedCachedRunsLocal(first.config, first.channels,
                                   workloads, first.maxCycles);
        for (std::size_t j = 0; j < members.size(); ++j)
            computed[members[j]] = encodeSynthResult(results[j]);
    }

    // Answer in arrival order, then append the telemetry epoch.
    std::vector<net::Frame> responses;
    responses.reserve(items.size() + 1);
    for (std::size_t i = 0; i < items.size(); ++i) {
        Item &item = items[i];
        if (item.slice) {
            responses.push_back(std::move(item.sliceResponse));
            continue;
        }
        if (item.bad) {
            responses.push_back(net::makeErrorFrame(
                item.requestId, net::kErrBadRequest,
                "malformed or invalid sweep request"));
            continue;
        }
        pointsServed_.fetch_add(1, std::memory_order_relaxed);
        if (item.hit)
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
        net::Frame frame;
        frame.type = net::MessageType::sweepResult;
        frame.requestId = item.requestId;
        frame.payload = encodeSweepResultPayload(
            item.request.pointIndex, item.hit,
            item.hit ? item.cached : computed[i]);
        responses.push_back(std::move(frame));
    }

    telemetry::MetricsRegistry registry;
    reportTo(registry);
    registry.snapshot(0);
    net::Frame epoch;
    epoch.type = net::MessageType::metricsEpoch;
    epoch.payload =
        encodeMetricsPayload(registry.epochs().back().values);
    responses.push_back(std::move(epoch));
    return responses;
}

net::Frame
FtdServer::handleSlice(const net::Frame &frame)
{
    const auto reject = [&](const char *why) {
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        return net::makeErrorFrame(frame.requestId,
                                   net::kErrBadRequest, why);
    };

    ShardSliceRequest request;
    if (!decodeShardSliceRequestPayload(frame.payload, request))
        return reject("malformed or invalid slice request");

    // Re-derive the checkpoint key from the inputs that actually
    // arrived: a snapshot may only continue exactly this run, so a
    // confused (or hostile) client gets a typed rejection instead of
    // a silently wrong continuation.
    const std::uint64_t key =
        request.kind == SnapshotKind::synthetic
            ? checkpointKey(request.config, request.channels,
                            request.workload)
            : checkpointKey(request.config, request.channels,
                            request.trace);
    if (key != request.key)
        return reject("slice key mismatch");

    Cycle consumed = 0;
    if (request.hasSnapshot) {
        if (request.snapshot.cycle() < request.snapshot.runStart)
            return reject("slice snapshot predates its run start");
        consumed = request.snapshot.cycle() - request.snapshot.runStart;
    }
    if (consumed >= request.runMaxCycles)
        return reject("slice starts at or past runMaxCycles");

    auto noc = makeNoc(request.config, request.channels);
    Snapshot next;
    RunRequest run;
    run.device = noc.get();
    if (request.kind == SnapshotKind::synthetic)
        run.workload = &request.workload;
    else
        run.trace = &request.trace;
    // sliceCycles is decode-bounded (kMaxSliceCycles) but consumed is
    // only bounded by runMaxCycles, so the sum must saturate.
    run.sim.maxCycles =
        std::min(request.runMaxCycles,
                 saturatingAddCycles(consumed, request.sliceCycles));
    run.sim.resumeSnapshot =
        request.hasSnapshot ? &request.snapshot : nullptr;
    run.sim.captureFinal = &next;
    const RunResult res = runSim(run);
    // runSim degrades a rejected snapshot to a fresh run — right for
    // an interactive resume, wrong for a slice whose stats would then
    // double-count the run's start. Fail loudly instead.
    if (request.hasSnapshot && !res.resumed)
        return reject("slice snapshot was not restorable");
    if (!res.finalCaptured)
        return reject("slice state capture failed");

    ShardSliceResult result;
    result.kind = request.kind;
    result.synth = res.synth;
    result.trace = res.trace;
    const Cycle advanced = next.cycle() - next.runStart;
    result.done = (request.kind == SnapshotKind::trace
                       ? res.trace.completed
                       : res.synth.completed) ||
                  advanced >= request.runMaxCycles;
    if (!result.done) {
        // The handoff contract: the next slice resumes the traffic
        // mid-flight but measures only itself (docs/checkpoint.md).
        next.trimState();
        result.hasSnapshot = true;
        result.snapshot = std::move(next);
    }
    slicesServed_.fetch_add(1, std::memory_order_relaxed);

    net::Frame response;
    response.type = net::MessageType::snapshotResult;
    response.requestId = frame.requestId;
    response.payload = encodeShardSliceResultPayload(result);
    return response;
}

} // namespace fasttrack
