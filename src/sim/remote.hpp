/**
 * @file
 * Remote sweep execution: the client half of the distributed sweep
 * fabric (docs/distributed.md).
 *
 * When remote endpoints are configured (--remote host:port[,...]),
 * batchedCachedRuns transparently fans sweep points out to ftd
 * daemons over the framed wire protocol (net/frame.hpp): points are
 * sharded round-robin across endpoints, pipelined within a
 * per-session window, and reassembled strictly by input index — so
 * a remote sweep is byte-identical to the same sweep run
 * in-process, regardless of which node computed which point.
 *
 * Failure semantics: a connection that refuses, times out, or dies
 * mid-stream is retried with exponential backoff
 * (net::backoffDelayMs); the attempt counter resets whenever a
 * connection made progress, so a flaky worker that keeps serving
 * some results is drained rather than abandoned. Points that remain
 * unserved after the retry budget fall back to the local scalar
 * path — a sweep never fails because the fleet did, it only slows
 * down.
 *
 * This header also carries the message-payload codecs for
 * sweepRequest / sweepResult / metricsEpoch frames, built on the
 * endian-stable wire codec so requests and results travel between
 * hosts of any endianness.
 */

#ifndef FT_SIM_REMOTE_HPP
#define FT_SIM_REMOTE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulation.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack {

/** Client-side knobs for remote sweep dispatch. */
struct RemoteConfig
{
    std::vector<net::Endpoint> endpoints;
    /** Consecutive no-progress connection attempts per endpoint
     *  before its points fall back to local execution. */
    unsigned maxAttempts = 4;
    /** Exponential backoff schedule between attempts. */
    int backoffInitialMs = 50;
    int backoffCapMs = 2'000;
    /** TCP connect + handshake budget. */
    int connectTimeoutMs = 2'000;
    /** Per-wait budget inside a frame or while sending. */
    int ioTimeoutMs = 10'000;
    /** Budget for the first byte of the next result — covers the
     *  server-side compute of a full batch. */
    int resultWaitMs = 300'000;
    /** Pipeline window: outstanding requests per session (clamped
     *  to the server's granted window at handshake). */
    std::uint32_t window = 64;
    /** Consult/populate this process's sweep cache around the
     *  remote round-trip (tests disable it to force wire traffic). */
    bool useLocalCache = true;
};

/** Install remote endpoints (empty = disable remote dispatch). */
void setRemoteConfig(RemoteConfig config);
RemoteConfig remoteConfig();
void clearRemoteConfig();

/** True when at least one endpoint is configured. */
bool remoteConfigured();

/** Counters of one remote run (a remoteBatchedRuns or runShardedSim
 *  invocation). remoteStats() reports the most recent run so a second
 *  sweep's numbers are its own, not cumulative totals;
 *  remoteLifetimeStats() keeps the process-wide accumulation. */
struct RemoteStats
{
    /** Points answered by a remote SweepResult frame. */
    std::uint64_t pointsRemote = 0;
    /** Of those, points the daemon served from its blob cache. */
    std::uint64_t remoteCacheHits = 0;
    /** Points answered by this process's own cache pre-pass. */
    std::uint64_t localCacheHits = 0;
    /** Points computed locally after the retry budget ran out. */
    std::uint64_t pointsFallback = 0;
    /** Failed connection attempts (refusal/timeout/handshake). */
    std::uint64_t connectFailures = 0;
    /** Reconnections after a session died mid-stream. */
    std::uint64_t reconnects = 0;
    /** Error frames received (protocol/schema rejections). */
    std::uint64_t errorFrames = 0;
    /** Temporal-shard slices a daemon answered (runShardedSim). */
    std::uint64_t slicesRemote = 0;
    /** Temporal-shard slices computed locally after remote failure. */
    std::uint64_t slicesFallback = 0;
};

/** Counters of the most recent remote run (see RemoteStats). */
RemoteStats remoteStats();

/** Process-lifetime accumulation across every remote run. */
RemoteStats remoteLifetimeStats();

/** Publish remote.* counters for the most recent run,
 *  remote.lifetime.* accumulations, and the latest telemetry epoch
 *  each of that run's daemons streamed back (as
 *  remote.<host:port>.<metric> gauges — endpoints dropped from the
 *  configuration stop being exported). */
void reportRemoteStats(telemetry::MetricsRegistry &metrics);

/**
 * Runs the subset of workloads named by @p indices on the local
 * pool, returning results in the order of @p indices.
 */
using LocalRunner = std::function<std::vector<SynthResult>(
    const std::vector<std::size_t> &indices)>;

/**
 * Compute one SynthResult per workload, fanning cache-miss points
 * out to the configured remote endpoints; unreachable work falls
 * back to @p local. Results are input-ordered and bit-identical to
 * the local path. Precondition: remoteConfigured() and no telemetry
 * sink installed (the caller — batchedCachedRuns — guards).
 */
std::vector<SynthResult>
remoteBatchedRuns(const NocConfig &config, std::uint32_t channels,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles, const LocalRunner &local);

/**
 * Execute one run as a chain of temporal shards of @p shard_cycles
 * run-relative cycles each, round-robined across the configured
 * remote endpoints (docs/distributed.md, "Temporal sharding").
 *
 * Each slice ships the run's inputs plus the previous slice's
 * trimmed snapshot in a snapshotRequest message; the daemon resumes,
 * advances the slice, and answers with the slice's stats and the
 * next trimmed snapshot. Slice stats are merged via
 * NocStats::merge, so the final result is bit-identical to the
 * uninterrupted local run. A slice whose remote attempts exhaust the
 * retry budget (or whose answer fails validation) is computed
 * locally, and once the fleet has proven dead the remaining slices
 * stay local — a sharded run never yields a wrong or partial result.
 *
 * Preconditions (fatal): config-built single-channel request with
 * exactly one of workload/trace, no device/telemetry/cache/snapshot
 * knobs, and shard_cycles >= 1.
 */
RunResult runShardedSim(const RunRequest &request, Cycle shard_cycles);

// --- Message payload codecs (shared with the ftd server) -----------

/** One sweep point on the wire. */
struct SweepRequest
{
    std::uint32_t pointIndex = 0;
    NocConfig config;
    std::uint32_t channels = 1;
    SyntheticWorkload workload;
    Cycle maxCycles = kDefaultMaxCycles;
};

std::vector<std::uint8_t>
encodeSweepRequestPayload(const SweepRequest &request);
bool decodeSweepRequestPayload(const std::vector<std::uint8_t> &payload,
                               SweepRequest &out);

/** SweepResult payload: point index, cache-hit flag, then the
 *  sweep-cache SynthResult payload (sim/sweep_cache.hpp codec). */
std::vector<std::uint8_t>
encodeSweepResultPayload(std::uint32_t point_index, bool cache_hit,
                         const std::vector<std::uint8_t> &result_payload);
bool decodeSweepResultPayload(const std::vector<std::uint8_t> &payload,
                              std::uint32_t &point_index,
                              bool &cache_hit, SynthResult &out);

/** MetricsEpoch payload: name/value pairs in name order. */
std::vector<std::uint8_t>
encodeMetricsPayload(const std::map<std::string, double> &values);
bool decodeMetricsPayload(const std::vector<std::uint8_t> &payload,
                          std::map<std::string, double> &out);

/** Upper bound on a slice's cycle budget. The daemon runs a slice
 *  synchronously in its frame handler, so this (enforced when the
 *  request is decoded, and by runShardedSim on the client) bounds
 *  the compute one snapshotRequest frame can demand — 50x the
 *  default whole-run guard, far past any sane slice, but finite. */
inline constexpr Cycle kMaxSliceCycles = 1'000'000'000;

/** a + b without wrapping — slice budgets arrive off the wire, so
 *  consumed + sliceCycles must saturate rather than overflow. */
inline constexpr Cycle
saturatingAddCycles(Cycle a, Cycle b)
{
    return a + b < a ? ~Cycle{0} : a + b;
}

/**
 * One temporal-shard slice on the wire (snapshotRequest payload).
 * The request is self-contained — the daemon is stateless across
 * slices: it carries the run's full inputs (config + workload or
 * trace), the slice/guard budgets, the checkpoint key the client
 * derived (the daemon re-derives and must agree before trusting the
 * snapshot), and the previous slice's trimmed snapshot (absent on
 * the first slice).
 */
struct ShardSliceRequest
{
    SnapshotKind kind = SnapshotKind::synthetic;
    NocConfig config;
    /** Always 1: slice execution needs engine-state capture. */
    std::uint32_t channels = 1;
    /** Valid when kind == synthetic. */
    SyntheticWorkload workload;
    /** Valid when kind == trace. */
    Trace trace;
    /** Run-relative cycles this slice should advance
     *  (1..kMaxSliceCycles; the decoder rejects anything else). */
    Cycle sliceCycles = 1;
    /** Run-relative guard of the whole run (SimConfig::maxCycles). */
    Cycle runMaxCycles = kDefaultMaxCycles;
    /** checkpointKey(config, channels, workload|trace). */
    std::uint64_t key = 0;
    bool hasSnapshot = false;
    Snapshot snapshot;
};

std::vector<std::uint8_t>
encodeShardSliceRequestPayload(const ShardSliceRequest &request);
/** Hostile-input safe: bounds-checks every count before allocating
 *  and validates trace/workload/config ranges without aborting. */
bool decodeShardSliceRequestPayload(
    const std::vector<std::uint8_t> &payload, ShardSliceRequest &out);

/** snapshotResult payload: the slice's outcome + handoff snapshot. */
struct ShardSliceResult
{
    SnapshotKind kind = SnapshotKind::synthetic;
    /** Run finished (drained/completed or hit runMaxCycles); no
     *  further slices are needed. */
    bool done = false;
    /** Valid when kind == synthetic. Stats are slice-local; cycles
     *  is run-relative (the temporal-shard merge contract). */
    SynthResult synth;
    /** Valid when kind == trace. */
    TraceResult trace;
    /** The trimmed next-slice snapshot (present iff !done). */
    bool hasSnapshot = false;
    Snapshot snapshot;
};

std::vector<std::uint8_t>
encodeShardSliceResultPayload(const ShardSliceResult &result);
bool decodeShardSliceResultPayload(
    const std::vector<std::uint8_t> &payload, ShardSliceResult &out);

} // namespace fasttrack

#endif // FT_SIM_REMOTE_HPP
