#include "sim/sweep_cache.hpp"

#include <atomic>
#include <bit>

#include "net/wire.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack {

namespace {

// Payload encode/decode uses the endian-stable wire codec
// (net/wire.hpp): every field is explicit little-endian, so a blob
// written on one host decodes bit-identically on any other. The
// historical host-endian ByteWriter/ByteReader pair this file
// carried produced the same bytes on little-endian machines but was
// silently incompatible across endianness — schema v2 closes that.
using ByteWriter = net::WireWriter;
using ByteReader = net::WireReader;

void
encodeHistogram(ByteWriter &w, const Histogram &h)
{
    const auto &bins = h.bins();
    w.u64(bins.size());
    for (const auto &[value, count] : bins) {
        w.u64(value);
        w.u64(count);
    }
}

bool
decodeHistogram(ByteReader &r, Histogram &h)
{
    std::uint64_t nbins = 0;
    if (!r.u64(nbins))
        return false;
    for (std::uint64_t i = 0; i < nbins; ++i) {
        std::uint64_t value = 0, count = 0;
        if (!r.u64(value) || !r.u64(count) || count == 0)
            return false;
        h.add(value, count);
    }
    return true;
}

std::atomic<bool> g_cacheEnabled{true};

} // namespace

std::uint64_t
sweepKey(const NocConfig &config, std::uint32_t channels,
         const SyntheticWorkload &workload, Cycle max_cycles)
{
    sched::Fnv1a h;
    h.add(kSweepCacheSchema);
    h.add(config.n);
    h.add(config.d);
    h.add(config.r);
    h.add(static_cast<std::uint64_t>(config.variant));
    h.add(config.allowExpressTurn ? 1 : 0);
    h.add(config.allowUpgrade ? 1 : 0);
    h.add(config.turnPriority ? 1 : 0);
    h.add(config.shortLinkStages);
    h.add(config.expressLinkStages);
    h.add(channels);
    h.add(static_cast<std::uint64_t>(workload.pattern));
    h.add(std::bit_cast<std::uint64_t>(workload.injectionRate));
    h.add(workload.packetsPerPe);
    h.add(workload.localRadius);
    h.add(workload.seed);
    h.add(max_cycles);
    return h.value();
}

std::vector<std::uint8_t>
encodeSynthResult(const SynthResult &result)
{
    ByteWriter w;
    const NocStats &s = result.stats;
    w.u64(s.injected);
    w.u64(s.delivered);
    w.u64(s.selfDelivered);
    w.u64(s.shortHopTraversals);
    w.u64(s.expressHopTraversals);
    for (std::uint64_t v : s.deflectionsByPort)
        w.u64(v);
    for (std::uint64_t v : s.misroutesByPort)
        w.u64(v);
    w.u64(s.laneDeflections);
    w.u64(s.exitBlocked);
    w.u64(s.injectionBlockedCycles);
    encodeHistogram(w, s.totalLatency);
    encodeHistogram(w, s.networkLatency);
    encodeHistogram(w, s.hopCount);
    encodeHistogram(w, s.deflectionCount);
    w.u64(result.cycles);
    w.u32(result.pes);
    w.f64(result.offeredRate);
    w.u8(result.completed ? 1 : 0);
    return w.take();
}

bool
decodeSynthResult(const std::vector<std::uint8_t> &payload,
                  SynthResult &out)
{
    SynthResult result;
    NocStats &s = result.stats;
    ByteReader r(payload);
    bool ok = r.u64(s.injected) && r.u64(s.delivered) &&
              r.u64(s.selfDelivered) && r.u64(s.shortHopTraversals) &&
              r.u64(s.expressHopTraversals);
    for (std::uint64_t &v : s.deflectionsByPort)
        ok = ok && r.u64(v);
    for (std::uint64_t &v : s.misroutesByPort)
        ok = ok && r.u64(v);
    ok = ok && r.u64(s.laneDeflections) && r.u64(s.exitBlocked) &&
         r.u64(s.injectionBlockedCycles) &&
         decodeHistogram(r, s.totalLatency) &&
         decodeHistogram(r, s.networkLatency) &&
         decodeHistogram(r, s.hopCount) &&
         decodeHistogram(r, s.deflectionCount);
    std::uint64_t cycles = 0;
    std::uint8_t completed = 0;
    ok = ok && r.u64(cycles) && r.u32(result.pes) &&
         r.f64(result.offeredRate) && r.u8(completed) && r.atEnd();
    if (!ok)
        return false;
    result.cycles = cycles;
    result.completed = completed != 0;
    out = result;
    return true;
}

sched::BlobCache &
sweepCache()
{
    static sched::BlobCache cache("sweep_cache", kSweepCacheSchema);
    return cache;
}

void
setSweepCacheEnabled(bool enabled)
{
    g_cacheEnabled.store(enabled, std::memory_order_relaxed);
}

bool
sweepCacheEnabled()
{
    return g_cacheEnabled.load(std::memory_order_relaxed);
}

SynthResult
cachedRunSynthetic(const NocConfig &config, std::uint32_t channels,
                   const SyntheticWorkload &workload, Cycle max_cycles)
{
    sched::BlobCache &cache = sweepCache();
    if (!sweepCacheEnabled() || telemetry::installed() != nullptr) {
        cache.noteBypass();
        return runSynthetic(config, channels, workload, max_cycles);
    }

    const std::uint64_t key =
        sweepKey(config, channels, workload, max_cycles);
    if (auto payload = cache.lookup(key)) {
        SynthResult cached;
        if (decodeSynthResult(*payload, cached))
            return cached;
        // A validated blob that fails to parse means an encoder bug
        // or a schema drift that forgot the version bump; recompute.
    }
    const SynthResult result =
        runSynthetic(config, channels, workload, max_cycles);
    cache.store(key, encodeSynthResult(result));
    return result;
}

} // namespace fasttrack
