#include "sim/sweep_cache.hpp"

#include <atomic>
#include <bit>

#include "net/wire.hpp"
#include "noc/engine_state.hpp"

namespace fasttrack {

namespace {

std::atomic<bool> g_cacheEnabled{true};

} // namespace

std::uint64_t
sweepKey(const NocConfig &config, std::uint32_t channels,
         const SyntheticWorkload &workload, Cycle max_cycles)
{
    sched::Fnv1a h;
    h.add(kSweepCacheSchema);
    h.add(config.n);
    h.add(config.d);
    h.add(config.r);
    h.add(static_cast<std::uint64_t>(config.variant));
    h.add(config.allowExpressTurn ? 1 : 0);
    h.add(config.allowUpgrade ? 1 : 0);
    h.add(config.turnPriority ? 1 : 0);
    h.add(config.shortLinkStages);
    h.add(config.expressLinkStages);
    h.add(channels);
    h.add(static_cast<std::uint64_t>(workload.pattern));
    h.add(std::bit_cast<std::uint64_t>(workload.injectionRate));
    h.add(workload.packetsPerPe);
    h.add(workload.localRadius);
    h.add(workload.seed);
    h.add(max_cycles);
    return h.value();
}

std::vector<std::uint8_t>
encodeSynthResult(const SynthResult &result)
{
    // The stats block reuses the shared codec (noc/engine_state.hpp),
    // whose field order is exactly what this file has always written
    // — payload bytes are unchanged, hence no schema bump.
    net::WireWriter w;
    encodeNocStats(w, result.stats);
    w.u64(result.cycles);
    w.u32(result.pes);
    w.f64(result.offeredRate);
    w.u8(result.completed ? 1 : 0);
    return w.take();
}

bool
decodeSynthResult(const std::vector<std::uint8_t> &payload,
                  SynthResult &out)
{
    SynthResult result;
    net::WireReader r(payload);
    std::uint64_t cycles = 0;
    std::uint8_t completed = 0;
    const bool ok = decodeNocStats(r, result.stats) && r.u64(cycles) &&
                    r.u32(result.pes) && r.f64(result.offeredRate) &&
                    r.u8(completed) && r.atEnd();
    if (!ok)
        return false;
    result.cycles = cycles;
    result.completed = completed != 0;
    out = result;
    return true;
}

sched::BlobCache &
sweepCache()
{
    static sched::BlobCache cache("sweep_cache", kSweepCacheSchema);
    return cache;
}

void
setSweepCacheEnabled(bool enabled)
{
    g_cacheEnabled.store(enabled, std::memory_order_relaxed);
}

bool
sweepCacheEnabled()
{
    return g_cacheEnabled.load(std::memory_order_relaxed);
}

} // namespace fasttrack
