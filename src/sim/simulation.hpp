/**
 * @file
 * Top-level simulation drivers: run a synthetic workload or a trace on
 * a configured NoC and collect the paper's metrics.
 */

#ifndef FT_SIM_SIMULATION_HPP
#define FT_SIM_SIMULATION_HPP

#include <memory>

#include "noc/noc_device.hpp"
#include "traffic/injector.hpp"
#include "traffic/trace.hpp"

namespace fasttrack {

/** Result of one synthetic-workload run. */
struct SynthResult
{
    NocStats stats;
    Cycle cycles = 0;
    std::uint32_t pes = 0;
    /** Configured generation rate (packets/cycle/PE). */
    double offeredRate = 0.0;
    /** False when the run hit the cycle guard before draining (e.g.
     *  the livelock ablation). */
    bool completed = false;

    /** Delivered packets per cycle per PE (Fig 11 metric). */
    double sustainedRate() const;
    /** Mean source-to-delivery latency in cycles (Fig 12 metric). */
    double avgLatency() const;
    /** Worst-case packet latency (Fig 16 tail). */
    std::uint64_t worstLatency() const;
};

/** Default cycle guard for synthetic runs. */
inline constexpr Cycle kDefaultMaxCycles = 20'000'000;

class TelemetrySession;

/** Driver knobs beyond the workload itself. */
struct SimConfig
{
    /** Cycle guard: give up (completed=false) after this many. */
    Cycle maxCycles = kDefaultMaxCycles;
    /**
     * Attach an observability session (sim/telemetry_session.hpp):
     * the driver samples its metrics registry every
     * telemetry->config().epoch cycles and, in FT_CHECK builds of
     * single-channel devices, cross-validates the sink's event
     * counters against the invariant checker's conservation counts.
     * nullptr = no telemetry (the hot path compiles telemetry-free).
     */
    TelemetrySession *telemetry = nullptr;
};

/**
 * Run @p workload on an existing device until every generated packet
 * is delivered (or @p max_cycles elapse).
 */
SynthResult runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
                         Cycle max_cycles = kDefaultMaxCycles);

/** As above with full driver knobs (telemetry sampling etc.). */
SynthResult runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
                         const SimConfig &sim);

/** Convenience: build the device (with channels) and run. */
SynthResult runSynthetic(const NocConfig &config, std::uint32_t channels,
                         const SyntheticWorkload &workload,
                         Cycle max_cycles = kDefaultMaxCycles);

/** Convenience: build the device and run with full driver knobs. */
SynthResult runSynthetic(const NocConfig &config, std::uint32_t channels,
                         const SyntheticWorkload &workload,
                         const SimConfig &sim);

/** Result of one trace-replay run. */
struct TraceResult
{
    NocStats stats;
    /** Cycle the last message was delivered (workload makespan). */
    Cycle completion = 0;
    std::uint32_t pes = 0;
};

/** Replay @p trace on a fresh device built from @p config. */
TraceResult runTrace(const NocConfig &config, std::uint32_t channels,
                     const Trace &trace,
                     Cycle max_cycles = kDefaultMaxCycles);

/** As above with full driver knobs (telemetry sampling etc.). */
TraceResult runTrace(const NocConfig &config, std::uint32_t channels,
                     const Trace &trace, const SimConfig &sim);

} // namespace fasttrack

#endif // FT_SIM_SIMULATION_HPP
