/**
 * @file
 * Top-level simulation drivers: run a synthetic workload or a trace on
 * a configured NoC and collect the paper's metrics.
 *
 * The single entry point is runSim(RunRequest): one request struct
 * carries the device (or the config to build one from), the workload
 * (synthetic or trace), the driver knobs (SimConfig, including the
 * checkpoint/resume controls) and the cache opt-in. The historical
 * runSynthetic / runTrace / cachedRunSynthetic signatures survive as
 * one-line shims over it — new call sites should construct a
 * RunRequest with designated initializers instead of growing the
 * overload set further.
 */

#ifndef FT_SIM_SIMULATION_HPP
#define FT_SIM_SIMULATION_HPP

#include <memory>
#include <string>

#include "noc/noc_device.hpp"
#include "traffic/injector.hpp"
#include "traffic/trace.hpp"

namespace fasttrack {

struct Snapshot;

/** Result of one synthetic-workload run. */
struct SynthResult
{
    NocStats stats;
    Cycle cycles = 0;
    std::uint32_t pes = 0;
    /** Configured generation rate (packets/cycle/PE). */
    double offeredRate = 0.0;
    /** False when the run hit the cycle guard before draining (e.g.
     *  the livelock ablation). */
    bool completed = false;

    /** Delivered packets per cycle per PE (Fig 11 metric). */
    double sustainedRate() const;
    /** Mean source-to-delivery latency in cycles (Fig 12 metric). */
    double avgLatency() const;
    /** Worst-case packet latency (Fig 16 tail). */
    std::uint64_t worstLatency() const;
};

/** Default cycle guard for synthetic runs. SimConfig's maxCycles
 *  member initializer is the single place this default is applied;
 *  every legacy overload without an explicit cycle count routes
 *  through SimConfig{} (tests/test_checkpoint.cpp pins this). */
inline constexpr Cycle kDefaultMaxCycles = 20'000'000;

class TelemetrySession;

/**
 * Driver knobs beyond the workload itself.
 *
 * Initialize with designated initializers (SimConfig{.maxCycles = N})
 * — positional aggregate initialization is pinned off by the
 * field-set test in tests/test_checkpoint.cpp precisely because
 * adding fields (as the snapshot knobs did) silently reorders
 * positional meaning.
 */
struct SimConfig
{
    /** Cycle guard: give up (completed=false) after this many. The
     *  guard is run-relative: a resumed slice counts cycles from the
     *  original run's start, not from the resume point, so slicing
     *  cannot change where the guard trips. */
    Cycle maxCycles = kDefaultMaxCycles;
    /**
     * Attach an observability session (sim/telemetry_session.hpp):
     * the driver samples its metrics registry every
     * telemetry->config().epoch cycles and, in FT_CHECK builds of
     * single-channel devices, cross-validates the sink's event
     * counters against the invariant checker's conservation counts.
     * nullptr = no telemetry (the hot path compiles telemetry-free).
     */
    TelemetrySession *telemetry = nullptr;
    /**
     * Write a snapshot (sim/checkpoint.hpp) every N run-relative
     * cycles (0 = never). Requires snapshotDir. Snapshotting lives
     * entirely in the driver loop; the device's step() hot path is
     * untouched.
     */
    Cycle snapshotEveryCycles = 0;
    /** Directory snapshots are written into (created on demand). */
    std::string snapshotDir;
    /**
     * Resume source: a snapshot file, or a directory (the latest
     * snapshot inside wins). Empty = fresh run. A missing, corrupt
     * or mismatched snapshot logs a warning and falls back to a
     * fresh run — resumption is an optimization, never a correctness
     * dependency.
     */
    std::string resumeFrom;
    /**
     * In-memory resume source (temporal sharding: a snapshot that
     * arrived over the wire rather than from disk). Takes precedence
     * over resumeFrom. The same fall-back-to-fresh semantics apply
     * on a key/kind mismatch; callers that need the resume to have
     * happened (the ftd slice handler) check RunResult::resumed.
     */
    const Snapshot *resumeSnapshot = nullptr;
    /**
     * When set, capture the end-of-run state into *captureFinal so a
     * sharded driver can hand it to the next slice without touching
     * disk. Only single-channel devices support state capture; a
     * device that cannot capture is a fatal error, matching the
     * snapshotEveryCycles contract. RunResult::finalCaptured reports
     * success.
     */
    Snapshot *captureFinal = nullptr;
};

/** Result of one trace-replay run. */
struct TraceResult
{
    NocStats stats;
    /** Cycle the last message was delivered (workload makespan). */
    Cycle completion = 0;
    std::uint32_t pes = 0;
    /** False when a sliced run hit its cycle guard before the trace
     *  drained (non-sliced runs abort instead, as they always did). */
    bool completed = true;
};

/**
 * One simulation request (see file comment). Exactly one of
 * {workload, trace} must be set; device and config are alternatives
 * (an existing device wins; otherwise one is built from config and
 * channels). Misuse is a fatal error, not a silent default.
 */
struct RunRequest
{
    /** Existing device to drive (takes precedence over config). */
    NocDevice *device = nullptr;
    /** Configuration to build a fresh device from. */
    const NocConfig *config = nullptr;
    std::uint32_t channels = 1;
    /** Synthetic workload to run (exclusive with trace). */
    const SyntheticWorkload *workload = nullptr;
    /** Trace to replay (exclusive with workload). */
    const Trace *trace = nullptr;
    SimConfig sim;
    /** Consult the sweep cache (synthetic, config-built runs only;
     *  bypassed while telemetry or snapshotting is active). */
    bool useCache = false;
};

/** What runSim hands back; synth or trace is populated per request. */
struct RunResult
{
    SynthResult synth;
    TraceResult trace;
    /** Which of the two results above is the live one. */
    bool isTrace = false;
    /** A snapshot was successfully restored. */
    bool resumed = false;
    /** Cycle the restored snapshot was taken at (when resumed). */
    Cycle resumedAtCycle = 0;
    /** Snapshots written by this run. */
    std::uint64_t snapshotsWritten = 0;
    /** Result came from the sweep cache (no simulation ran). */
    bool fromCache = false;
    /** sim.captureFinal was set and the end state was captured. */
    bool finalCaptured = false;
};

/** The simulation entry point (see RunRequest). */
RunResult runSim(const RunRequest &request);

// --- legacy shims ------------------------------------------------------
// Thin wrappers kept for existing call sites; prefer RunRequest with
// designated initializers and runSim for anything new.

/** Shim over runSim — see RunRequest. Runs @p workload on an
 *  existing device until it drains (default cycle guard). */
inline SynthResult
runSynthetic(NocDevice &noc, const SyntheticWorkload &workload)
{
    return runSim({.device = &noc, .workload = &workload}).synth;
}

/** Shim over runSim — see RunRequest. */
inline SynthResult
runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
             Cycle max_cycles)
{
    return runSim({.device = &noc,
                   .workload = &workload,
                   .sim = {.maxCycles = max_cycles}})
        .synth;
}

/** Shim over runSim — see RunRequest. */
inline SynthResult
runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
             const SimConfig &sim)
{
    return runSim({.device = &noc, .workload = &workload, .sim = sim})
        .synth;
}

/** Shim over runSim — see RunRequest. Builds the device itself. */
inline SynthResult
runSynthetic(const NocConfig &config, std::uint32_t channels,
             const SyntheticWorkload &workload)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .workload = &workload})
        .synth;
}

/** Shim over runSim — see RunRequest. */
inline SynthResult
runSynthetic(const NocConfig &config, std::uint32_t channels,
             const SyntheticWorkload &workload, Cycle max_cycles)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .workload = &workload,
                   .sim = {.maxCycles = max_cycles}})
        .synth;
}

/** Shim over runSim — see RunRequest. */
inline SynthResult
runSynthetic(const NocConfig &config, std::uint32_t channels,
             const SyntheticWorkload &workload, const SimConfig &sim)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .workload = &workload,
                   .sim = sim})
        .synth;
}

/** Shim over runSim — see RunRequest. Replays @p trace on a fresh
 *  device built from @p config (default cycle guard). */
inline TraceResult
runTrace(const NocConfig &config, std::uint32_t channels,
         const Trace &trace)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .trace = &trace})
        .trace;
}

/** Shim over runSim — see RunRequest. */
inline TraceResult
runTrace(const NocConfig &config, std::uint32_t channels,
         const Trace &trace, Cycle max_cycles)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .trace = &trace,
                   .sim = {.maxCycles = max_cycles}})
        .trace;
}

/** Shim over runSim — see RunRequest. */
inline TraceResult
runTrace(const NocConfig &config, std::uint32_t channels,
         const Trace &trace, const SimConfig &sim)
{
    return runSim({.config = &config,
                   .channels = channels,
                   .trace = &trace,
                   .sim = sim})
        .trace;
}

} // namespace fasttrack

#endif // FT_SIM_SIMULATION_HPP
