#include "sim/simulation.hpp"

#include "check/invariants.hpp"
#include "common/logging.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {

double
SynthResult::sustainedRate() const
{
    return stats.sustainedRate(pes, cycles);
}

double
SynthResult::avgLatency() const
{
    return stats.totalLatency.mean();
}

std::uint64_t
SynthResult::worstLatency() const
{
    return stats.totalLatency.max();
}

SynthResult
runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
             Cycle max_cycles)
{
    SyntheticInjector injector(noc, workload);
    const Cycle start = noc.now();
    while (!injector.done() && noc.now() - start < max_cycles) {
        injector.tick();
        noc.step();
    }
    SynthResult result;
    result.stats = noc.statsSnapshot();
    result.cycles = noc.now() - start;
    result.pes = noc.config().pes();
    result.offeredRate = workload.injectionRate;
    result.completed = injector.done();
#if FT_CHECK_ENABLED
    check::verifyDrainedStats(result.stats.injected,
                              result.stats.delivered, noc.quiescent());
#endif
    return result;
}

SynthResult
runSynthetic(const NocConfig &config, std::uint32_t channels,
             const SyntheticWorkload &workload, Cycle max_cycles)
{
    auto noc = makeNoc(config, channels);
    return runSynthetic(*noc, workload, max_cycles);
}

TraceResult
runTrace(const NocConfig &config, std::uint32_t channels,
         const Trace &trace, Cycle max_cycles)
{
    auto noc = makeNoc(config, channels);
    TraceReplayer replayer(*noc, trace);
    TraceResult result;
    result.completion = replayer.run(max_cycles);
    result.stats = noc->statsSnapshot();
    result.pes = config.pes();
#if FT_CHECK_ENABLED
    check::verifyDrainedStats(result.stats.injected,
                              result.stats.delivered, noc->quiescent());
#endif
    return result;
}

} // namespace fasttrack
