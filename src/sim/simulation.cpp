#include "sim/simulation.hpp"

#include <filesystem>

#include "check/invariants.hpp"
#include "common/logging.hpp"
#include "noc/engine_core.hpp"
#include "noc/engine_state.hpp"
#include "sim/checkpoint.hpp"
#include "sim/sweep_cache.hpp"
#include "sim/telemetry_session.hpp"
#include "telemetry/sink.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {

namespace {

#if FT_CHECK_ENABLED
/**
 * Baselines for the telemetry/checker cross-validation: both the
 * sink's event counters and the checker's conservation counts are
 * cumulative over the device/thread lifetime, so the run compares
 * deltas. Only single-channel devices expose one checker whose counts
 * correspond 1:1 to this thread's telemetry events. Armed after any
 * snapshot restore, so a resumed run baselines the restored counts.
 */
struct TelemetryCrossCheck
{
    check::InvariantChecker *checker = nullptr;
    std::uint64_t telemInjects = 0;
    std::uint64_t telemEjects = 0;
    std::uint64_t checkInjected = 0;
    std::uint64_t checkDelivered = 0;

    void arm(NocDevice &noc, TelemetrySession *session)
    {
        if (!session || noc.channelCount() != 1)
            return;
        auto *core = dynamic_cast<EngineCore *>(&noc);
        if (!core || !core->checker())
            return;
        checker = core->checker();
        const telemetry::KindCounts &c = session->sink().local().counts();
        telemInjects = c.of(telemetry::EventKind::inject);
        telemEjects = c.of(telemetry::EventKind::eject);
        checkInjected = checker->injectedCount();
        checkDelivered = checker->deliveredCount();
    }

    void verify(TelemetrySession *session, Cycle now) const
    {
        if (!checker)
            return;
        const telemetry::KindCounts &c = session->sink().local().counts();
        checker->verifyTelemetryCounts(
            checkInjected +
                (c.of(telemetry::EventKind::inject) - telemInjects),
            checkDelivered +
                (c.of(telemetry::EventKind::eject) - telemEjects),
            now);
    }
};
#endif

/** Checkpoint controls shared by the synthetic and trace loops. */
struct SnapshotPlan
{
    bool snapshotting = false;
    bool resuming = false;
    /** sim.captureFinal: hand the end state back in memory. */
    bool capturingFinal = false;

    std::uint64_t key = 0;

    bool active() const
    {
        return snapshotting || resuming || capturingFinal;
    }
};

/** Validate the snapshot knobs and probe device support once. A
 *  request that asks for checkpointing on a device that cannot
 *  capture state is a hard error, not a silent degradation. */
SnapshotPlan
planSnapshots(NocDevice &noc, const SimConfig &sim, std::uint64_t key)
{
    SnapshotPlan plan;
    plan.snapshotting = sim.snapshotEveryCycles != 0;
    plan.resuming =
        !sim.resumeFrom.empty() || sim.resumeSnapshot != nullptr;
    plan.capturingFinal = sim.captureFinal != nullptr;
    plan.key = key;
    if (plan.snapshotting && sim.snapshotDir.empty())
        FT_FATAL("snapshotEveryCycles requires snapshotDir");
    if (plan.active()) {
        EngineState probe;
        if (!noc.captureState(probe))
            FT_FATAL("checkpointing requires a device with engine-"
                     "state capture (single-channel Network); ",
                     noc.config().describe(), " x",
                     noc.channelCount(), " does not support it");
    }
    return plan;
}

/** Resolve resumeFrom (file, or directory holding snapshots) to a
 *  loaded snapshot. False => fresh run (warned, never fatal). */
bool
loadResumeSnapshot(const std::string &resume_from, std::uint64_t key,
                   SnapshotKind kind, Snapshot &out)
{
    std::string path = resume_from;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        FT_WARN("resume: nothing at '", path, "', starting fresh");
        return false;
    }
    if (std::filesystem::is_directory(path, ec)) {
        path = findLatestSnapshot(path);
        if (path.empty()) {
            FT_WARN("resume: no snapshots in '", resume_from,
                    "', starting fresh");
            return false;
        }
    }
    const SnapshotStatus status = readSnapshotFile(path, key, out);
    if (status != SnapshotStatus::ok) {
        FT_WARN("resume: rejected snapshot '", path, "' (",
                toString(status), "), starting fresh");
        return false;
    }
    if (out.kind != kind) {
        FT_WARN("resume: snapshot '", path,
                "' is for a different workload kind, starting fresh");
        return false;
    }
    return true;
}

/**
 * Resolve the resume source — the in-memory snapshot wins over
 * resumeFrom — into @p out. False => fresh run. The in-memory path
 * only checks the workload kind here; content authenticity (the
 * checkpoint key) is the supplier's job, since a wire snapshot never
 * went through the keyed file container.
 */
bool
resolveResumeSnapshot(const SimConfig &sim, std::uint64_t key,
                      SnapshotKind kind, Snapshot &out)
{
    if (sim.resumeSnapshot) {
        if (sim.resumeSnapshot->kind != kind) {
            FT_WARN("resume: in-memory snapshot is for a different "
                    "workload kind, starting fresh");
            return false;
        }
        out = *sim.resumeSnapshot;
        return true;
    }
    return loadResumeSnapshot(sim.resumeFrom, key, kind, out);
}

/** Capture the end-of-run state into *sim.captureFinal (temporal
 *  sharding handoff). Failure warns; the caller sees finalCaptured
 *  stay false and treats the slice as failed. */
template <typename CaptureDriver>
void
captureFinalState(NocDevice &noc, const SimConfig &sim,
                  SnapshotKind kind, Cycle run_start,
                  CaptureDriver &&capture_driver, RunResult &result)
{
    if (!sim.captureFinal)
        return;
    Snapshot &snap = *sim.captureFinal;
    snap = Snapshot{};
    snap.kind = kind;
    snap.runStart = run_start;
    if (!noc.captureState(snap.engine) || !capture_driver(snap)) {
        FT_WARN("final-state capture failed at cycle ", noc.now());
        return;
    }
    result.finalCaptured = true;
}

/** Write one snapshot; failures degrade to a warning (the run is
 *  still correct, just not resumable from this point). */
template <typename CaptureDriver>
void
writeSnapshot(NocDevice &noc, const SnapshotPlan &plan,
              const SimConfig &sim, SnapshotKind kind, Cycle run_start,
              CaptureDriver &&capture_driver, RunResult &result)
{
    Snapshot snap;
    snap.kind = kind;
    snap.runStart = run_start;
    if (!noc.captureState(snap.engine) || !capture_driver(snap)) {
        FT_WARN("snapshot capture failed at cycle ", noc.now());
        return;
    }
    std::string path;
    const SnapshotStatus status =
        writeSnapshotFile(sim.snapshotDir, plan.key, snap, &path);
    if (status != SnapshotStatus::ok) {
        FT_WARN("snapshot write failed at cycle ", noc.now(), " (",
                toString(status), ")");
        return;
    }
    ++result.snapshotsWritten;
}

void
runSyntheticCore(NocDevice &noc, const SyntheticWorkload &workload,
                 const SimConfig &sim, RunResult &result)
{
    TelemetrySession *session = sim.telemetry;
    const bool sampling = session && session->claimSampler();
    if (session)
        session->observe(noc);

    SyntheticInjector injector(noc, workload);
    Cycle start = noc.now();
    bool trimmed_resume = false;

    std::uint64_t key = 0;
    if (sim.snapshotEveryCycles != 0 || !sim.resumeFrom.empty())
        key = checkpointKey(noc.config(), noc.channelCount(), workload);
    const SnapshotPlan plan = planSnapshots(noc, sim, key);
    if (plan.resuming) {
        Snapshot snap;
        if (resolveResumeSnapshot(sim, key, SnapshotKind::synthetic,
                                  snap) &&
            noc.restoreState(snap.engine) &&
            injector.restoreState(snap.injector)) {
            start = snap.runStart;
            result.resumed = true;
            result.resumedAtCycle = snap.cycle();
            trimmed_resume = snap.engine.trimmed;
        }
    }

#if FT_CHECK_ENABLED
    TelemetryCrossCheck cross;
    cross.arm(noc, session);
#endif

    const Cycle epoch = sampling ? session->config().epoch : 0;
    Cycle next_sample = noc.now() + epoch;
    const Cycle every = sim.snapshotEveryCycles;
    while (!injector.done() && noc.now() - start < sim.maxCycles) {
        injector.tick();
        noc.step();
        if (plan.snapshotting && (noc.now() - start) % every == 0) {
            writeSnapshot(noc, plan, sim, SnapshotKind::synthetic,
                          start,
                          [&](Snapshot &snap) {
                              return injector.captureState(
                                  snap.injector);
                          },
                          result);
        }
        if (epoch && noc.now() >= next_sample) {
            session->sampleEpoch(noc, injector.queued());
            next_sample += epoch;
        }
    }
    if (sampling) {
        session->sampleEpoch(noc, injector.queued());
        session->releaseSampler();
    }
    captureFinalState(noc, sim, SnapshotKind::synthetic, start,
                      [&](Snapshot &snap) {
                          return injector.captureState(snap.injector);
                      },
                      result);

    result.synth.stats = noc.statsSnapshot();
    result.synth.cycles = noc.now() - start;
    result.synth.pes = noc.config().pes();
    result.synth.offeredRate = workload.injectionRate;
    result.synth.completed = injector.done();
#if FT_CHECK_ENABLED
    // A trimmed resume measures only its slice: delivered includes
    // packets the snapshot inherited in flight, so slice-local
    // injected != delivered is expected, not a conservation bug (the
    // checker's own ledger still verifies via verifyQuiescent).
    if (!trimmed_resume)
        check::verifyDrainedStats(result.synth.stats.injected,
                                  result.synth.stats.delivered,
                                  noc.quiescent());
    cross.verify(session, noc.now());
#else
    (void)trimmed_resume;
#endif
}

void
runTraceCore(NocDevice &noc, const Trace &trace, const SimConfig &sim,
             RunResult &result)
{
    TelemetrySession *session = sim.telemetry;
    const bool sampling = session && session->claimSampler();
    if (session)
        session->observe(noc);

    TraceReplayer replayer(noc, trace);
    Cycle start = noc.now();
    bool trimmed_resume = false;

    std::uint64_t key = 0;
    if (sim.snapshotEveryCycles != 0 || !sim.resumeFrom.empty())
        key = checkpointKey(noc.config(), noc.channelCount(), trace);
    const SnapshotPlan plan = planSnapshots(noc, sim, key);
    if (plan.resuming) {
        Snapshot snap;
        if (resolveResumeSnapshot(sim, key, SnapshotKind::trace,
                                  snap) &&
            noc.restoreState(snap.engine) &&
            replayer.restoreState(snap.replay)) {
            start = snap.runStart;
            result.resumed = true;
            result.resumedAtCycle = snap.cycle();
            trimmed_resume = snap.engine.trimmed;
        }
    }

#if FT_CHECK_ENABLED
    TelemetryCrossCheck cross;
    cross.arm(noc, session);
#endif

    const Cycle every = sim.snapshotEveryCycles;
    while (!replayer.finished() && noc.now() - start < sim.maxCycles) {
        replayer.tick();
        noc.step();
        if (plan.snapshotting && (noc.now() - start) % every == 0) {
            writeSnapshot(noc, plan, sim, SnapshotKind::trace, start,
                          [&](Snapshot &snap) {
                              return replayer.captureState(
                                  snap.replay);
                          },
                          result);
        }
    }
    // A non-sliced replay that hits the guard is a workload bug, as
    // it always was; a sliced run legitimately stops mid-trace and
    // reports completed=false instead.
    if (!plan.active()) {
        FT_ASSERT(replayer.finished(),
                  "trace replay did not finish within ", sim.maxCycles,
                  " cycles (", replayer.deliveredMessages(), "/",
                  trace.messages.size(), " delivered)");
    }

    captureFinalState(noc, sim, SnapshotKind::trace, start,
                      [&](Snapshot &snap) {
                          return replayer.captureState(snap.replay);
                      },
                      result);

    result.trace.stats = noc.statsSnapshot();
    result.trace.completion = replayer.lastDelivery();
    result.trace.pes = noc.config().pes();
    result.trace.completed = replayer.finished();
    if (sampling) {
        // Trace replay drives the device internally; the registry gets
        // one end-of-run epoch instead of a periodic series.
        session->sampleEpoch(noc, 0);
        session->releaseSampler();
    }
#if FT_CHECK_ENABLED
    if (replayer.finished() && !trimmed_resume)
        check::verifyDrainedStats(result.trace.stats.injected,
                                  result.trace.stats.delivered,
                                  noc.quiescent());
    cross.verify(session, noc.now());
#else
    (void)trimmed_resume;
#endif
}

} // namespace

double
SynthResult::sustainedRate() const
{
    return stats.sustainedRate(pes, cycles);
}

double
SynthResult::avgLatency() const
{
    return stats.totalLatency.mean();
}

std::uint64_t
SynthResult::worstLatency() const
{
    return stats.totalLatency.max();
}

RunResult
runSim(const RunRequest &request)
{
    if ((request.workload != nullptr) == (request.trace != nullptr))
        FT_FATAL("RunRequest needs exactly one of workload / trace");
    if (!request.device && !request.config)
        FT_FATAL("RunRequest needs a device or a config");
    if (request.useCache &&
        (request.trace || request.device || !request.config))
        FT_FATAL("RunRequest.useCache applies to synthetic, "
                 "config-built runs only");

    RunResult result;
    result.isTrace = request.trace != nullptr;

    // Sweep-cache fast path: identical semantics to the historical
    // cachedRunSynthetic — bypassed (and counted as such) while
    // telemetry or snapshotting would make a replayed result a lie.
    const bool snapshot_knobs =
        request.sim.snapshotEveryCycles != 0 ||
        !request.sim.resumeFrom.empty() ||
        request.sim.resumeSnapshot != nullptr ||
        request.sim.captureFinal != nullptr;
    if (request.useCache) {
        sched::BlobCache &cache = sweepCache();
        if (!sweepCacheEnabled() || telemetry::installed() != nullptr ||
            request.sim.telemetry != nullptr || snapshot_knobs) {
            cache.noteBypass();
        } else {
            const std::uint64_t key =
                sweepKey(*request.config, request.channels,
                         *request.workload, request.sim.maxCycles);
            if (auto payload = cache.lookup(key)) {
                SynthResult cached;
                if (decodeSynthResult(*payload, cached)) {
                    result.synth = cached;
                    result.fromCache = true;
                    return result;
                }
                // A validated blob that fails to parse means an
                // encoder bug or a schema drift that forgot the
                // version bump; recompute.
            }
            auto noc = makeNoc(*request.config, request.channels);
            runSyntheticCore(*noc, *request.workload, request.sim,
                             result);
            cache.store(key, encodeSynthResult(result.synth));
            return result;
        }
    }

    std::unique_ptr<NocDevice> owned;
    NocDevice *noc = request.device;
    if (!noc) {
        owned = makeNoc(*request.config, request.channels);
        noc = owned.get();
    }
    if (request.workload)
        runSyntheticCore(*noc, *request.workload, request.sim, result);
    else
        runTraceCore(*noc, *request.trace, request.sim, result);
    return result;
}

} // namespace fasttrack
