#include "sim/simulation.hpp"

#include "check/invariants.hpp"
#include "common/logging.hpp"
#include "noc/engine_core.hpp"
#include "sim/telemetry_session.hpp"
#include "traffic/trace_replay.hpp"

namespace fasttrack {

namespace {

#if FT_CHECK_ENABLED
/**
 * Baselines for the telemetry/checker cross-validation: both the
 * sink's event counters and the checker's conservation counts are
 * cumulative over the device/thread lifetime, so the run compares
 * deltas. Only single-channel devices expose one checker whose counts
 * correspond 1:1 to this thread's telemetry events.
 */
struct TelemetryCrossCheck
{
    check::InvariantChecker *checker = nullptr;
    std::uint64_t telemInjects = 0;
    std::uint64_t telemEjects = 0;
    std::uint64_t checkInjected = 0;
    std::uint64_t checkDelivered = 0;

    void arm(NocDevice &noc, TelemetrySession *session)
    {
        if (!session || noc.channelCount() != 1)
            return;
        auto *core = dynamic_cast<EngineCore *>(&noc);
        if (!core || !core->checker())
            return;
        checker = core->checker();
        const telemetry::KindCounts &c = session->sink().local().counts();
        telemInjects = c.of(telemetry::EventKind::inject);
        telemEjects = c.of(telemetry::EventKind::eject);
        checkInjected = checker->injectedCount();
        checkDelivered = checker->deliveredCount();
    }

    void verify(TelemetrySession *session, Cycle now) const
    {
        if (!checker)
            return;
        const telemetry::KindCounts &c = session->sink().local().counts();
        checker->verifyTelemetryCounts(
            checkInjected +
                (c.of(telemetry::EventKind::inject) - telemInjects),
            checkDelivered +
                (c.of(telemetry::EventKind::eject) - telemEjects),
            now);
    }
};
#endif

} // namespace

double
SynthResult::sustainedRate() const
{
    return stats.sustainedRate(pes, cycles);
}

double
SynthResult::avgLatency() const
{
    return stats.totalLatency.mean();
}

std::uint64_t
SynthResult::worstLatency() const
{
    return stats.totalLatency.max();
}

SynthResult
runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
             const SimConfig &sim)
{
    TelemetrySession *session = sim.telemetry;
    const bool sampling = session && session->claimSampler();
    if (session)
        session->observe(noc);
#if FT_CHECK_ENABLED
    TelemetryCrossCheck cross;
    cross.arm(noc, session);
#endif

    SyntheticInjector injector(noc, workload);
    const Cycle start = noc.now();
    const Cycle epoch = sampling ? session->config().epoch : 0;
    Cycle next_sample = start + epoch;
    while (!injector.done() && noc.now() - start < sim.maxCycles) {
        injector.tick();
        noc.step();
        if (epoch && noc.now() >= next_sample) {
            session->sampleEpoch(noc, injector.queued());
            next_sample += epoch;
        }
    }
    if (sampling) {
        session->sampleEpoch(noc, injector.queued());
        session->releaseSampler();
    }

    SynthResult result;
    result.stats = noc.statsSnapshot();
    result.cycles = noc.now() - start;
    result.pes = noc.config().pes();
    result.offeredRate = workload.injectionRate;
    result.completed = injector.done();
#if FT_CHECK_ENABLED
    check::verifyDrainedStats(result.stats.injected,
                              result.stats.delivered, noc.quiescent());
    cross.verify(session, noc.now());
#endif
    return result;
}

SynthResult
runSynthetic(NocDevice &noc, const SyntheticWorkload &workload,
             Cycle max_cycles)
{
    SimConfig sim;
    sim.maxCycles = max_cycles;
    return runSynthetic(noc, workload, sim);
}

SynthResult
runSynthetic(const NocConfig &config, std::uint32_t channels,
             const SyntheticWorkload &workload, Cycle max_cycles)
{
    auto noc = makeNoc(config, channels);
    return runSynthetic(*noc, workload, max_cycles);
}

SynthResult
runSynthetic(const NocConfig &config, std::uint32_t channels,
             const SyntheticWorkload &workload, const SimConfig &sim)
{
    auto noc = makeNoc(config, channels);
    return runSynthetic(*noc, workload, sim);
}

TraceResult
runTrace(const NocConfig &config, std::uint32_t channels,
         const Trace &trace, const SimConfig &sim)
{
    auto noc = makeNoc(config, channels);
    TelemetrySession *session = sim.telemetry;
    const bool sampling = session && session->claimSampler();
    if (session)
        session->observe(*noc);
#if FT_CHECK_ENABLED
    TelemetryCrossCheck cross;
    cross.arm(*noc, session);
#endif

    TraceReplayer replayer(*noc, trace);
    TraceResult result;
    result.completion = replayer.run(sim.maxCycles);
    result.stats = noc->statsSnapshot();
    result.pes = config.pes();
    if (sampling) {
        // Trace replay drives the device internally; the registry gets
        // one end-of-run epoch instead of a periodic series.
        session->sampleEpoch(*noc, 0);
        session->releaseSampler();
    }
#if FT_CHECK_ENABLED
    check::verifyDrainedStats(result.stats.injected,
                              result.stats.delivered, noc->quiescent());
    cross.verify(session, noc->now());
#endif
    return result;
}

TraceResult
runTrace(const NocConfig &config, std::uint32_t channels,
         const Trace &trace, Cycle max_cycles)
{
    SimConfig sim;
    sim.maxCycles = max_cycles;
    return runTrace(config, channels, trace, sim);
}

} // namespace fasttrack

