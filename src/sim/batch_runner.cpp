#include "sim/batch_runner.hpp"

#include <atomic>

#include "check/invariants.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "noc/batched_engine.hpp"
#include "sched/work_stealing_pool.hpp"
#include "sim/remote.hpp"
#include "sim/sweep_cache.hpp"
#include "telemetry/sink.hpp"
#include "traffic/batched_injector.hpp"

namespace fasttrack {

namespace {

std::atomic<std::uint32_t> g_batchWidth{8};

std::atomic<std::uint64_t> g_batchedGroups{0};
std::atomic<std::uint64_t> g_batchedLanes{0};
std::atomic<std::uint64_t> g_scalarRuns{0};

} // namespace

std::uint32_t
defaultBatchWidth()
{
    return g_batchWidth.load(std::memory_order_relaxed);
}

void
setDefaultBatchWidth(std::uint32_t width)
{
    FT_ASSERT(width >= 1 && width <= BatchedEngine::kMaxLanes,
              "batch width must be in 1..", BatchedEngine::kMaxLanes,
              ": ", width);
    g_batchWidth.store(width, std::memory_order_relaxed);
}

std::vector<SynthResult>
runSyntheticBatch(const NocConfig &config,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles)
{
    const auto nlanes = static_cast<std::uint32_t>(workloads.size());
    BatchedEngine noc(config, nlanes);
    BatchedSyntheticInjector injector(noc, workloads);
    std::vector<SynthResult> out(nlanes);

    const Cycle start = noc.now();
    std::uint32_t active = nlanes;
    const auto finalize = [&](std::uint32_t lane, bool completed) {
        SynthResult &r = out[lane];
        r.stats = noc.statsSnapshot(lane);
        r.cycles = noc.now() - start;
        r.pes = config.pes();
        r.offeredRate = workloads[lane].injectionRate;
        r.completed = completed;
        injector.setLaneActive(lane, false);
        --active;
#if FT_CHECK_ENABLED
        check::verifyDrainedStats(r.stats.injected, r.stats.delivered,
                                  noc.quiescent(lane));
#endif
    };

    // Zero-budget lanes finish before the first cycle, exactly like
    // a scalar run whose while-condition fails immediately.
    for (std::uint32_t lane = 0; lane < nlanes; ++lane) {
        if (injector.done(lane))
            finalize(lane, true);
    }

    while (active > 0) {
        injector.tick();
        noc.step();
        // Mirror of the scalar loop condition, evaluated per lane in
        // the scalar order: drained wins over the cycle guard when
        // both trip on the same cycle.
        for (std::uint32_t lane = 0; lane < nlanes; ++lane) {
            if (!injector.laneActive(lane))
                continue;
            if (injector.done(lane))
                finalize(lane, true);
            else if (noc.now() - start >= max_cycles)
                finalize(lane, false);
        }
    }
    return out;
}

/** The in-process path: cache pass + lockstep batches on the pool
 *  (see header for why the daemon and the fallback call this). */
std::vector<SynthResult>
batchedCachedRunsLocal(const NocConfig &config, std::uint32_t channels,
                       const std::vector<SyntheticWorkload> &workloads,
                       Cycle max_cycles)
{
    const std::size_t count = workloads.size();
    const std::uint32_t width = defaultBatchWidth();

    // Batched stepping replicates exactly the plain single-channel
    // Network with no observers attached; anything else runs scalar.
    const bool batchable = channels == 1 && width >= 2 &&
                           telemetry::installed() == nullptr;
    if (!batchable || count < width) {
        g_scalarRuns.fetch_add(count, std::memory_order_relaxed);
        sched::ensureGlobalPool();
        return parallelMap(
            workloads,
            [&](const SyntheticWorkload &w) {
                return cachedRunSynthetic(config, channels, w,
                                          max_cycles);
            },
            0, "batchedCachedRuns/scalar");
    }

    std::vector<SynthResult> out(count);
    const bool use_cache = sweepCacheEnabled();
    sched::BlobCache &cache = sweepCache();

    // Cache pass: resolve warm points up front; only misses simulate.
    std::vector<std::size_t> pending;
    pending.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        if (use_cache) {
            const std::uint64_t key =
                sweepKey(config, channels, workloads[i], max_cycles);
            if (auto payload = cache.lookup(key)) {
                if (decodeSynthResult(*payload, out[i]))
                    continue;
            }
        } else {
            cache.noteBypass();
        }
        pending.push_back(i);
    }
    if (pending.empty())
        return out;

    // Full groups batch; the tail smaller than the batch width runs
    // scalar so no dead padding lanes skew the dispatch counters.
    struct Unit
    {
        std::vector<std::size_t> idx;
    };
    std::vector<Unit> units;
    units.reserve(pending.size() / width + width);
    std::size_t at = 0;
    for (; at + width <= pending.size(); at += width) {
        Unit u;
        u.idx.assign(pending.begin() + static_cast<std::ptrdiff_t>(at),
                     pending.begin() +
                         static_cast<std::ptrdiff_t>(at + width));
        units.push_back(std::move(u));
        g_batchedGroups.fetch_add(1, std::memory_order_relaxed);
        g_batchedLanes.fetch_add(width, std::memory_order_relaxed);
    }
    for (; at < pending.size(); ++at) {
        units.push_back(Unit{{pending[at]}});
        g_scalarRuns.fetch_add(1, std::memory_order_relaxed);
    }

    sched::ensureGlobalPool();
    const std::vector<std::vector<SynthResult>> computed = parallelMap(
        units,
        [&](const Unit &u) -> std::vector<SynthResult> {
            if (u.idx.size() >= 2) {
                std::vector<SyntheticWorkload> lanes;
                lanes.reserve(u.idx.size());
                for (std::size_t i : u.idx)
                    lanes.push_back(workloads[i]);
                return runSyntheticBatch(config, lanes, max_cycles);
            }
            return {runSynthetic(config, channels,
                                 workloads[u.idx.front()], max_cycles)};
        },
        0, "batchedCachedRuns");

    // Serial scatter + store, in input order, so cache-store ordering
    // is deterministic for every worker count.
    for (std::size_t ui = 0; ui < units.size(); ++ui) {
        const Unit &u = units[ui];
        for (std::size_t lane = 0; lane < u.idx.size(); ++lane) {
            const std::size_t i = u.idx[lane];
            out[i] = computed[ui][lane];
            if (use_cache) {
                cache.store(
                    sweepKey(config, channels, workloads[i],
                             max_cycles),
                    encodeSynthResult(out[i]));
            }
        }
    }
    return out;
}

std::vector<SynthResult>
batchedCachedRuns(const NocConfig &config, std::uint32_t channels,
                  const std::vector<SyntheticWorkload> &workloads,
                  Cycle max_cycles)
{
    // Remote dispatch preserves the exact per-point contract: every
    // result is the bit-deterministic function of its inputs, so it
    // does not matter which node computed it. Telemetry runs stay
    // local — remote workers cannot stream trace events.
    if (remoteConfigured() && telemetry::installed() == nullptr) {
        return remoteBatchedRuns(
            config, channels, workloads, max_cycles,
            [&](const std::vector<std::size_t> &indices) {
                std::vector<SyntheticWorkload> subset;
                subset.reserve(indices.size());
                for (std::size_t i : indices)
                    subset.push_back(workloads[i]);
                return batchedCachedRunsLocal(config, channels,
                                              subset, max_cycles);
            });
    }
    return batchedCachedRunsLocal(config, channels, workloads,
                                  max_cycles);
}

BatchRunStats
batchRunStats()
{
    BatchRunStats s;
    s.batchedGroups = g_batchedGroups.load(std::memory_order_relaxed);
    s.batchedLanes = g_batchedLanes.load(std::memory_order_relaxed);
    s.scalarRuns = g_scalarRuns.load(std::memory_order_relaxed);
    return s;
}

void
reportBatchRunStats(telemetry::MetricsRegistry &metrics)
{
    const BatchRunStats s = batchRunStats();
    metrics.counter("batch_runner.batched_groups") = s.batchedGroups;
    metrics.counter("batch_runner.batched_lanes") = s.batchedLanes;
    metrics.counter("batch_runner.scalar_runs") = s.scalarRuns;
}

} // namespace fasttrack
