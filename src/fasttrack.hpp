/**
 * @file
 * Umbrella header: pulls in the whole public FastTrack API. Include
 * individual module headers instead when compile time matters.
 */

#ifndef FT_FASTTRACK_HPP
#define FT_FASTTRACK_HPP

// Foundations
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/ascii_chart.hpp"
#include "common/config_file.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

// FPGA device models
#include "fpga/area_model.hpp"
#include "fpga/device.hpp"
#include "fpga/layout.hpp"
#include "fpga/power_model.hpp"
#include "fpga/reference_data.hpp"
#include "fpga/routability.hpp"
#include "fpga/wire_model.hpp"

// NoC core
#include "noc/analysis.hpp"
#include "noc/buffered.hpp"
#include "noc/config.hpp"
#include "noc/multichannel.hpp"
#include "noc/network.hpp"
#include "noc/noc_device.hpp"
#include "noc/noc_stats.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/smart.hpp"
#include "noc/topology.hpp"
#include "noc/vc_torus.hpp"

// Traffic and workloads
#include "traffic/injector.hpp"
#include "traffic/pattern.hpp"
#include "traffic/segmentation.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_replay.hpp"
#include "workloads/dataflow.hpp"
#include "workloads/graph.hpp"
#include "workloads/graph_analytics.hpp"
#include "workloads/mp_overlay.hpp"
#include "workloads/sparse_matrix.hpp"
#include "workloads/spmv.hpp"

// Simulation drivers
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "sim/steady_state.hpp"

#endif // FT_FASTTRACK_HPP
