#include "sched/work_stealing_pool.hpp"

#include <algorithm>
#include <string>

#include "common/logging.hpp"
#include "telemetry/sink.hpp"

namespace fasttrack::sched {

namespace {

/**
 * Range descriptors pack [lo, hi) into one 64-bit word: owner claims
 * lo with CAS pack(lo,hi) -> pack(lo+1,hi), a thief splits off the
 * top half with CAS pack(lo,hi) -> pack(lo,hi-take). ABA cannot
 * misfire: a slot's word is only replaced wholesale when the slot is
 * empty (lo == hi), and the replacement is a freshly stolen range
 * whose indices are all unclaimed — for a stale CAS expecting a
 * previously seen non-empty (lo, hi) to succeed, every index of
 * [lo, hi) would have to be unclaimed again, and claimed indices
 * never return to any range.
 */
constexpr std::uint64_t
pack(std::uint32_t lo, std::uint32_t hi)
{
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

constexpr std::uint32_t
rangeLo(std::uint64_t r)
{
    return static_cast<std::uint32_t>(r >> 32);
}

constexpr std::uint32_t
rangeHi(std::uint64_t r)
{
    return static_cast<std::uint32_t>(r);
}

} // namespace

struct WorkStealingPool::Job
{
    void *ctx;
    void (*task)(void *, std::size_t);
    std::size_t count;
    const char *label;
    unsigned slots;
    /** Per-participant remaining index range (see pack()). */
    std::vector<std::atomic<std::uint64_t>> ranges;
    /** 1 while a participant occupies the slot. Released on exit (a
     *  leaving participant's range is always empty), so a slot freed
     *  by a fruitless joiner can be reused by a later worker. */
    std::vector<std::atomic<std::uint8_t>> slotTaken;
    /** Tasks finished (not merely claimed). done == count completes
     *  the job; the release/acquire pair on this counter publishes
     *  every task's writes to the waiting submitter. */
    std::atomic<std::size_t> done{0};

    Mutex m;
    CondVar cv;
    bool complete FT_GUARDED_BY(m) = false;

    Job(void *ctx_, void (*task_)(void *, std::size_t),
        std::size_t count_, const char *label_, unsigned slots_)
        : ctx(ctx_), task(task_), count(count_), label(label_),
          slots(slots_), ranges(slots_), slotTaken(slots_)
    {
        for (unsigned p = 0; p < slots; ++p) {
            const auto lo = static_cast<std::uint32_t>(
                count * p / slots);
            const auto hi = static_cast<std::uint32_t>(
                count * (p + 1) / slots);
            ranges[p].store(pack(lo, hi), std::memory_order_relaxed);
            slotTaken[p].store(0, std::memory_order_relaxed);
        }
        // The submitter always participates in slot 0.
        slotTaken[0].store(1, std::memory_order_relaxed);
    }
};

WorkStealingPool::WorkStealingPool(unsigned concurrency)
{
    if (concurrency == 0)
        concurrency = parallel_detail::defaultParallelThreads();
    const unsigned workers = concurrency > 1 ? concurrency - 1 : 0;
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        MutexLock lk(jobsMutex_);
        stop_ = true;
        ++jobsGeneration_;
    }
    jobsCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
WorkStealingPool::runBulk(void *ctx, void (*task)(void *, std::size_t),
                          std::size_t count, unsigned workers,
                          const char *label)
{
    if (count == 0)
        return;
    FT_ASSERT(count <= 0xffffffffull,
              "bulk job too large for 32-bit range words");
    const unsigned cap = std::max(
        1u, std::min({workers,
                      static_cast<unsigned>(std::min<std::size_t>(
                          count, 0xffffffffull)),
                      workerCount() + 1}));
    if (cap == 1 || parallel_detail::inBulkWorker()) {
        // Degenerate or nested call: execute inline (parallelMap
        // normally routes these to its serial path already).
        inlineJobs_.fetch_add(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < count; ++i)
            task(ctx, i);
        tasksRun_.fetch_add(count, std::memory_order_relaxed);
        return;
    }

    auto job = std::make_shared<Job>(ctx, task, count, label, cap);
    {
        MutexLock lk(jobsMutex_);
        jobs_.push_back(job);
        ++jobsGeneration_;
        const auto depth = static_cast<std::uint64_t>(jobs_.size());
        // Relaxed: the watermark is only ever updated here, under
        // jobsMutex_, so the read-modify-write cannot race itself.
        if (depth > peakJobs_.load(std::memory_order_relaxed))
            peakJobs_.store(depth, std::memory_order_relaxed);
    }
    jobsCv_.notify_all();
    jobsSubmitted_.fetch_add(1, std::memory_order_relaxed);

    // The submitter works its own job; its tasks may not call back
    // into the pool (nested parallelMap runs inline).
    bool &nested = parallel_detail::inBulkWorker();
    nested = true;
    participate(*job, 0);
    nested = false;

    {
        MutexLock lk(job->m);
        while (!job->complete)
            job->cv.wait(job->m);
    }
    {
        MutexLock lk(jobsMutex_);
        jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), job),
                    jobs_.end());
        ++jobsGeneration_;
    }
    // Wake workers blocked on this job's saturation so they rescan.
    jobsCv_.notify_all();

    // All tasks are done, but participants may still be inside
    // participate() between their last task and their counter
    // accumulation. Wait for every slot to be released (counters are
    // published before the release store) so stats() is settled — and
    // no thread touches the job — once runBulk returns.
    for (unsigned s = 0; s < job->slots; ++s) {
        while (job->slotTaken[s].load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }
}

std::uint64_t
WorkStealingPool::participate(Job &job, unsigned slot)
{
    telemetry::TraceSink *sink = telemetry::installed();
    const std::uint64_t spanStart = sink ? sink->hostNowUs() : 0;
    std::uint64_t ran = 0, steals = 0, stolen = 0;

    std::atomic<std::uint64_t> &own = job.ranges[slot];
    // Ordering note: every transfer of index ownership is an acq_rel
    // CAS on one range word, so a claim and a competing steal of the
    // same indices are totally ordered — exactly one succeeds, and
    // the winner sees the loser's update on retry (acquire failure
    // order). No task data rides on these words; task-result
    // visibility is published solely through job.done (acq_rel).
    for (;;) {
        // Claim the bottom index of the own range.
        std::uint64_t cur = own.load(std::memory_order_acquire);
        bool claimed = false;
        std::uint32_t idx = 0;
        while (rangeLo(cur) < rangeHi(cur)) {
            if (own.compare_exchange_weak(
                    cur, pack(rangeLo(cur) + 1, rangeHi(cur)),
                    std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                idx = rangeLo(cur);
                claimed = true;
                break;
            }
        }
        if (!claimed) {
            // Own range dry: steal the top half of a victim's range.
            bool stole = false;
            for (unsigned off = 1; off < job.slots && !stole; ++off) {
                const unsigned v = (slot + off) % job.slots;
                std::atomic<std::uint64_t> &victim = job.ranges[v];
                std::uint64_t vcur =
                    victim.load(std::memory_order_acquire);
                while (rangeLo(vcur) < rangeHi(vcur)) {
                    const std::uint32_t len =
                        rangeHi(vcur) - rangeLo(vcur);
                    const std::uint32_t take = (len + 1) / 2;
                    if (victim.compare_exchange_weak(
                            vcur,
                            pack(rangeLo(vcur), rangeHi(vcur) - take),
                            std::memory_order_acq_rel,
                            std::memory_order_acquire)) {
                        own.store(pack(rangeHi(vcur) - take,
                                       rangeHi(vcur)),
                                  std::memory_order_release);
                        ++steals;
                        stolen += take;
                        stole = true;
                        break;
                    }
                }
            }
            if (!stole)
                break; // No visible work anywhere; in-flight tasks
                       // (if any) finish on their current holders.
            continue;
        }

        job.task(job.ctx, idx);
        ++ran;
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.count) {
            {
                MutexLock lk(job.m);
                job.complete = true;
            }
            job.cv.notify_all();
        }
    }

    tasksRun_.fetch_add(ran, std::memory_order_relaxed);
    steals_.fetch_add(steals, std::memory_order_relaxed);
    stolenTasks_.fetch_add(stolen, std::memory_order_relaxed);
    if (sink && ran)
        sink->recordPhase(std::string(job.label) + " [w" +
                              std::to_string(slot) + "]",
                          spanStart, sink->hostNowUs() - spanStart);
    // Release the slot last: the submitter spin-waits on it to know
    // this participant's counters (above) are published and the job
    // is no longer referenced from this thread.
    job.slotTaken[slot].store(0, std::memory_order_release);
    return ran;
}

void
WorkStealingPool::workerLoop()
{
    // Pool workers only ever execute bulk tasks; any parallelMap a
    // task performs must run inline rather than re-enter the pool.
    parallel_detail::inBulkWorker() = true;

    MutexLock lk(jobsMutex_);
    std::uint64_t seen = jobsGeneration_;
    for (;;) {
        std::shared_ptr<Job> job;
        unsigned slot = 0;
        for (const std::shared_ptr<Job> &candidate : jobs_) {
            // Acquire pairs with the acq_rel fetch_add in
            // participate(): a job observed complete here has all of
            // its task writes visible, so skipping it is safe.
            if (candidate->done.load(std::memory_order_acquire) >=
                candidate->count)
                continue;
            for (unsigned s = 0; s < candidate->slots; ++s) {
                std::uint8_t free = 0;
                if (candidate->slotTaken[s].compare_exchange_strong(
                        free, 1, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                    job = candidate;
                    slot = s;
                    break;
                }
            }
            if (job)
                break;
        }
        if (job) {
            seen = jobsGeneration_;
            lk.unlock();
            const std::uint64_t ran = participate(*job, slot);
            lk.lock();
            // A fruitful pass may mean more queued work; rescan. A
            // fruitless one means the job's remaining tasks are in
            // flight on other participants — sleep until the job set
            // changes rather than spinning on the claim/steal race.
            if (ran > 0)
                continue;
        }
        if (stop_)
            return;
        while (!stop_ && jobsGeneration_ == seen)
            jobsCv_.wait(jobsMutex_);
        seen = jobsGeneration_;
    }
}

WorkStealingPool::Stats
WorkStealingPool::stats() const
{
    Stats s;
    s.jobs = jobsSubmitted_.load(std::memory_order_relaxed);
    s.inlineJobs = inlineJobs_.load(std::memory_order_relaxed);
    s.tasks = tasksRun_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.stolenTasks = stolenTasks_.load(std::memory_order_relaxed);
    s.peakJobs = peakJobs_.load(std::memory_order_relaxed);
    return s;
}

void
WorkStealingPool::reportTo(telemetry::MetricsRegistry &metrics) const
{
    const Stats s = stats();
    metrics.counter("sched.pool.jobs") = s.jobs;
    metrics.counter("sched.pool.inline_jobs") = s.inlineJobs;
    metrics.counter("sched.pool.tasks") = s.tasks;
    metrics.counter("sched.pool.steals") = s.steals;
    metrics.counter("sched.pool.stolen_tasks") = s.stolenTasks;
    metrics.gauge("sched.pool.workers") =
        static_cast<double>(workerCount());
    metrics.gauge("sched.pool.peak_jobs") =
        static_cast<double>(s.peakJobs);
}

namespace {

/** Owns the global pool and its executor registration, so the hook
 *  is removed before the pool's workers are joined at exit. */
struct GlobalPoolHolder
{
    WorkStealingPool pool;

    GlobalPoolHolder()
        : pool(parallel_detail::defaultParallelThreads())
    {
        parallel_detail::setBulkExecutor(&pool);
    }
    ~GlobalPoolHolder() { parallel_detail::setBulkExecutor(nullptr); }
};

} // namespace

WorkStealingPool &
WorkStealingPool::global()
{
    static GlobalPoolHolder holder;
    return holder.pool;
}

WorkStealingPool &
ensureGlobalPool()
{
    return WorkStealingPool::global();
}

} // namespace fasttrack::sched
