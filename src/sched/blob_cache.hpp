/**
 * @file
 * Content-addressed result cache: an in-memory map from 64-bit
 * content keys to opaque payload blobs, with an optional on-disk
 * store so results survive across process invocations.
 *
 * Keys are FNV-1a hashes of the *inputs* that determine a result
 * (the sweep layer hashes (NocConfig, channels, SyntheticWorkload,
 * maxCycles) — see sim/sweep_cache.hpp). Because every simulation is
 * bit-deterministic in those inputs, a key hit can substitute the
 * stored result for a re-run.
 *
 * On-disk format (one file per entry, named ft-<key:016x>.ftrc in
 * the configured directory; every field explicit little-endian so
 * an entry written on one host validates on any other — the
 * distributed fabric shares these files across nodes):
 *
 *   u32 magic 'FTRC'   u32 schemaVersion   u64 key
 *   u64 payloadBytes   payload...          u64 fnv1a(payload)
 *
 * Every load re-validates magic, schema, key, length and the
 * trailing self-check hash; a truncated, corrupt or stale-schema
 * file counts as corrupt and the result is recomputed, never
 * trusted. Writes go to a temp file renamed into place, so a reader
 * never observes a half-written entry.
 *
 * Disk growth is bounded: setMaxDiskBytes(cap) enables LRU-ish
 * eviction (oldest write time first) whenever the store exceeds the
 * cap; evictions are counted and published via reportTo.
 */

#ifndef FT_SCHED_BLOB_CACHE_HPP
#define FT_SCHED_BLOB_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fnv1a.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack::sched {

/** FNV-1a hasher (key derivation + self-checks). Now shared with
 *  the wire layer; lives in common/fnv1a.hpp and feeds words as
 *  little-endian bytes so keys are host-independent. */
using Fnv1a = fasttrack::Fnv1a;

class BlobCache
{
  public:
    /** Lifetime counters (atomic; safe to read concurrently). */
    struct Stats
    {
        /** Lookups answered from memory or disk. */
        std::uint64_t hits = 0;
        /** Lookups that found nothing (caller recomputes). */
        std::uint64_t misses = 0;
        /** Subset of hits served by loading a disk entry. */
        std::uint64_t diskHits = 0;
        /** Entries inserted. */
        std::uint64_t stores = 0;
        /** Entries persisted to the disk store. */
        std::uint64_t diskWrites = 0;
        /** Disk entries rejected (bad magic/schema/key/hash/size). */
        std::uint64_t corrupt = 0;
        /** Lookups skipped by the caller (e.g. telemetry active). */
        std::uint64_t bypasses = 0;
        /** Disk entries deleted to stay under the size cap. */
        std::uint64_t evictions = 0;
    };

    /**
     * @param name metric prefix (reportTo publishes <name>.hits ...).
     * @param schemaVersion payload layout version; bump it whenever
     * the encoded payload or the key derivation changes so stale disk
     * entries are rejected instead of mis-decoded.
     */
    BlobCache(std::string name, std::uint32_t schemaVersion);

    /** Attach (non-empty) or detach ("") the on-disk store. The
     *  directory is created on first write. */
    void setDir(std::string dir);
    std::string dir() const;

    /**
     * Cap the disk store at @p max_bytes (0 = unbounded, the
     * default; the --result-cache-max-bytes flag wires here). When
     * a write pushes the store over the cap, entries are evicted
     * oldest-write-first until it fits again — LRU-ish: write
     * recency approximates access recency for sweep workloads,
     * and needs no mtime touching (which would be nondeterministic)
     * on the hit path. The entry just written is never evicted.
     */
    void setMaxDiskBytes(std::uint64_t max_bytes);
    std::uint64_t maxDiskBytes() const;

    /** Current on-disk store size in bytes (0 when detached). */
    std::uint64_t diskBytes() const;

    std::uint32_t schemaVersion() const { return schema_; }

    /** The payload stored under @p key, from memory or disk. */
    std::optional<std::vector<std::uint8_t>> lookup(std::uint64_t key);

    /** Insert @p payload under @p key (and persist it when a disk
     *  store is attached). Idempotent for deterministic payloads. */
    void store(std::uint64_t key, std::vector<std::uint8_t> payload);

    /** Record a lookup the caller elected to skip. */
    void noteBypass()
    {
        bypasses_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Drop every in-memory entry (disk entries stay). Tests use this
     *  to force the disk-load path. */
    void clearMemory();

    Stats stats() const;

    /** Publish counters as <name>.hits, <name>.misses, ... */
    void reportTo(telemetry::MetricsRegistry &metrics) const;

    /** Entry file path for @p key under the current dir ("" when no
     *  disk store is attached). Exposed for tests. */
    std::string entryPath(std::uint64_t key) const;

  private:
    std::optional<std::vector<std::uint8_t>>
    loadDiskEntry(std::uint64_t key);
    void writeDiskEntry(std::uint64_t key,
                        const std::vector<std::uint8_t> &payload);
    /** Sum the store's entry sizes once per attach (under mutex_). */
    void ensureDiskScanned() const FT_REQUIRES(mutex_);
    /** Evict oldest entries until the store fits the cap, sparing
     *  @p keep_path (the entry just written). */
    void evictOverCap(const std::string &keep_path);

    std::string name_;
    std::uint32_t schema_;
    mutable Mutex mutex_;
    std::string dir_ FT_GUARDED_BY(mutex_);
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        mem_ FT_GUARDED_BY(mutex_);
    std::uint64_t maxDiskBytes_ FT_GUARDED_BY(mutex_) = 0;
    /** Lazily-scanned store size; mutable so const readers
     *  (diskBytes, reportTo) can trigger the scan under mutex_. */
    mutable std::uint64_t diskBytes_ FT_GUARDED_BY(mutex_) = 0;
    mutable bool diskScanned_ FT_GUARDED_BY(mutex_) = false;

    // Statistics counters are relaxed throughout: they are monotonic
    // tallies read only by quiescent-time reporting, never used to
    // publish or order payload data (payloads travel under mutex_).
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> diskWrites_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> bypasses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace fasttrack::sched

#endif // FT_SCHED_BLOB_CACHE_HPP
