/**
 * @file
 * Content-addressed result cache: an in-memory map from 64-bit
 * content keys to opaque payload blobs, with an optional on-disk
 * store so results survive across process invocations.
 *
 * Keys are FNV-1a hashes of the *inputs* that determine a result
 * (the sweep layer hashes (NocConfig, channels, SyntheticWorkload,
 * maxCycles) — see sim/sweep_cache.hpp). Because every simulation is
 * bit-deterministic in those inputs, a key hit can substitute the
 * stored result for a re-run.
 *
 * On-disk format (one file per entry, named ft-<key:016x>.ftrc in
 * the configured directory, native endianness):
 *
 *   u32 magic 'FTRC'   u32 schemaVersion   u64 key
 *   u64 payloadBytes   payload...          u64 fnv1a(payload)
 *
 * Every load re-validates magic, schema, key, length and the
 * trailing self-check hash; a truncated, corrupt or stale-schema
 * file counts as corrupt and the result is recomputed, never
 * trusted. Writes go to a temp file renamed into place, so a reader
 * never observes a half-written entry.
 */

#ifndef FT_SCHED_BLOB_CACHE_HPP
#define FT_SCHED_BLOB_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack::sched {

/** FNV-1a 64-bit streaming hasher (key derivation + self-checks). */
class Fnv1a
{
  public:
    void addByte(std::uint8_t b)
    {
        hash_ ^= b;
        hash_ *= 0x100000001b3ull;
    }
    void addBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i)
            addByte(p[i]);
    }
    void add(std::uint64_t word)
    {
        addBytes(&word, sizeof(word));
    }
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

class BlobCache
{
  public:
    /** Lifetime counters (atomic; safe to read concurrently). */
    struct Stats
    {
        /** Lookups answered from memory or disk. */
        std::uint64_t hits = 0;
        /** Lookups that found nothing (caller recomputes). */
        std::uint64_t misses = 0;
        /** Subset of hits served by loading a disk entry. */
        std::uint64_t diskHits = 0;
        /** Entries inserted. */
        std::uint64_t stores = 0;
        /** Entries persisted to the disk store. */
        std::uint64_t diskWrites = 0;
        /** Disk entries rejected (bad magic/schema/key/hash/size). */
        std::uint64_t corrupt = 0;
        /** Lookups skipped by the caller (e.g. telemetry active). */
        std::uint64_t bypasses = 0;
    };

    /**
     * @param name metric prefix (reportTo publishes <name>.hits ...).
     * @param schemaVersion payload layout version; bump it whenever
     * the encoded payload or the key derivation changes so stale disk
     * entries are rejected instead of mis-decoded.
     */
    BlobCache(std::string name, std::uint32_t schemaVersion);

    /** Attach (non-empty) or detach ("") the on-disk store. The
     *  directory is created on first write. */
    void setDir(std::string dir);
    std::string dir() const;

    std::uint32_t schemaVersion() const { return schema_; }

    /** The payload stored under @p key, from memory or disk. */
    std::optional<std::vector<std::uint8_t>> lookup(std::uint64_t key);

    /** Insert @p payload under @p key (and persist it when a disk
     *  store is attached). Idempotent for deterministic payloads. */
    void store(std::uint64_t key, std::vector<std::uint8_t> payload);

    /** Record a lookup the caller elected to skip. */
    void noteBypass()
    {
        bypasses_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Drop every in-memory entry (disk entries stay). Tests use this
     *  to force the disk-load path. */
    void clearMemory();

    Stats stats() const;

    /** Publish counters as <name>.hits, <name>.misses, ... */
    void reportTo(telemetry::MetricsRegistry &metrics) const;

    /** Entry file path for @p key under the current dir ("" when no
     *  disk store is attached). Exposed for tests. */
    std::string entryPath(std::uint64_t key) const;

  private:
    std::optional<std::vector<std::uint8_t>>
    loadDiskEntry(std::uint64_t key);
    void writeDiskEntry(std::uint64_t key,
                        const std::vector<std::uint8_t> &payload);

    std::string name_;
    std::uint32_t schema_;
    mutable Mutex mutex_;
    std::string dir_ FT_GUARDED_BY(mutex_);
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        mem_ FT_GUARDED_BY(mutex_);

    // Statistics counters are relaxed throughout: they are monotonic
    // tallies read only by quiescent-time reporting, never used to
    // publish or order payload data (payloads travel under mutex_).
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> stores_{0};
    std::atomic<std::uint64_t> diskWrites_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> bypasses_{0};
};

} // namespace fasttrack::sched

#endif // FT_SCHED_BLOB_CACHE_HPP
