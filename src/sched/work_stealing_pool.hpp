/**
 * @file
 * Process-wide persistent work-stealing thread pool backing every
 * parallelMap sweep (see common/parallel.hpp).
 *
 * Why a pool: the sweep layer used to spawn and join fresh
 * std::threads on every parallelMap call, so a bench binary that runs
 * dozens of sweeps paid thread creation/teardown per sweep. The pool
 * keeps its workers resident for the process lifetime and hands them
 * bulk jobs; a sweep submission is one mutex push + wakeup.
 *
 * Scheduling: each bulk job partitions its index space [0, count)
 * into one contiguous range per participant. A participant owns a
 * single-word atomic range descriptor in the Chase-Lev style — the
 * owner claims indices from the bottom (lo) end with a cheap CAS,
 * thieves split off the top (hi) half of a victim's remaining range
 * with a competing CAS on the same word. Every transfer is one
 * compare-exchange on one 64-bit word, so the scheme is lock-free,
 * ABA-safe (see work_stealing_pool.cpp) and clean under TSan.
 *
 * Determinism: the pool only decides *where* an index executes.
 * parallelMap writes each result into its input-index slot and
 * aggregations run over those slots in input order, so pooled, stolen
 * and serial executions are bit-identical (tests/test_sched.cpp).
 *
 * Telemetry: when a telemetry sink is installed, each participant
 * records one host-side phase span per job ("label [w<slot>]"), so
 * the exported Chrome trace shows sweep occupancy per worker;
 * reportTo() publishes job/task/steal counters and pool gauges
 * through a MetricsRegistry.
 */

#ifndef FT_SCHED_WORK_STEALING_POOL_HPP
#define FT_SCHED_WORK_STEALING_POOL_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_annotations.hpp"
#include "telemetry/metrics.hpp"

namespace fasttrack::sched {

class WorkStealingPool final : public parallel_detail::BulkExecutor
{
  public:
    /**
     * @param concurrency total concurrent executors a bulk job may
     * use, *including* the submitting caller (which always
     * participates); the pool spawns concurrency - 1 resident worker
     * threads. 0 means parallel_detail::defaultParallelThreads().
     */
    explicit WorkStealingPool(unsigned concurrency = 0);
    ~WorkStealingPool() override;
    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /**
     * The process-wide pool, created on first use with the configured
     * default concurrency (--threads) and installed as the parallelMap
     * bulk executor. Destroyed (workers joined, executor uninstalled)
     * during static destruction.
     */
    static WorkStealingPool &global();

    /** Resident worker threads (excludes participating callers). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** BulkExecutor: run task(ctx, i) for i in [0, count). Blocks the
     *  caller, which participates as the job's first executor. Safe
     *  to call from several external threads concurrently; jobs share
     *  the worker set. */
    void runBulk(void *ctx, void (*task)(void *, std::size_t),
                 std::size_t count, unsigned workers,
                 const char *label) override;

    /** Lifetime totals. runBulk only returns after every participant
     *  published its contribution, so reads are exact whenever no job
     *  is in flight. */
    struct Stats
    {
        /** Bulk jobs dispatched to the worker set. */
        std::uint64_t jobs = 0;
        /** Jobs executed inline (single participant). */
        std::uint64_t inlineJobs = 0;
        /** Task invocations run by pool participants. */
        std::uint64_t tasks = 0;
        /** Successful range-steal operations. */
        std::uint64_t steals = 0;
        /** Task indices transferred by those steals. */
        std::uint64_t stolenTasks = 0;
        /** Peak number of concurrently queued jobs. */
        std::uint64_t peakJobs = 0;
    };
    Stats stats() const;

    /** Publish pool counters/gauges as sched.pool.* metrics. */
    void reportTo(telemetry::MetricsRegistry &metrics) const;

  private:
    struct Job;

    void workerLoop();
    /** Work @p job from @p slot until no claimable/stealable work
     *  remains; returns the number of tasks this participant ran. */
    std::uint64_t participate(Job &job, unsigned slot);

    std::vector<std::thread> threads_;
    mutable Mutex jobsMutex_;
    CondVar jobsCv_;
    std::vector<std::shared_ptr<Job>> jobs_ FT_GUARDED_BY(jobsMutex_);
    /** Bumped whenever jobs_ changes; sleeping workers wait on it. */
    std::uint64_t jobsGeneration_ FT_GUARDED_BY(jobsMutex_) = 0;
    bool stop_ FT_GUARDED_BY(jobsMutex_) = false;

    std::atomic<std::uint64_t> jobsSubmitted_{0};
    std::atomic<std::uint64_t> inlineJobs_{0};
    std::atomic<std::uint64_t> tasksRun_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> stolenTasks_{0};
    std::atomic<std::uint64_t> peakJobs_{0};
};

/**
 * Create (if needed) and return the global pool, installing it as the
 * parallelMap executor. Sweep entry points call this so any binary
 * that runs a sweep gets pooled execution without further wiring.
 */
WorkStealingPool &ensureGlobalPool();

} // namespace fasttrack::sched

#endif // FT_SCHED_WORK_STEALING_POOL_HPP
