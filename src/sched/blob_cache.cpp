#include "sched/blob_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include <unistd.h>

namespace fasttrack::sched {

namespace {

constexpr std::uint32_t kMagic = 0x43525446u; // "FTRC" little-endian

struct EntryHeader
{
    std::uint32_t magic = 0;
    std::uint32_t schema = 0;
    std::uint64_t key = 0;
    std::uint64_t payloadBytes = 0;
};
static_assert(sizeof(EntryHeader) == 24, "header layout drifted");

std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

BlobCache::BlobCache(std::string name, std::uint32_t schemaVersion)
    : name_(std::move(name)), schema_(schemaVersion)
{
}

void
BlobCache::setDir(std::string dir)
{
    MutexLock lk(mutex_);
    dir_ = std::move(dir);
}

std::string
BlobCache::dir() const
{
    MutexLock lk(mutex_);
    return dir_;
}

std::string
BlobCache::entryPath(std::uint64_t key) const
{
    MutexLock lk(mutex_);
    if (dir_.empty())
        return {};
    return dir_ + "/ft-" + hexKey(key) + ".ftrc";
}

std::optional<std::vector<std::uint8_t>>
BlobCache::lookup(std::uint64_t key)
{
    {
        MutexLock lk(mutex_);
        auto it = mem_.find(key);
        if (it != mem_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    if (auto fromDisk = loadDiskEntry(key)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        MutexLock lk(mutex_);
        mem_.emplace(key, *fromDisk);
        return fromDisk;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

void
BlobCache::store(std::uint64_t key, std::vector<std::uint8_t> payload)
{
    stores_.fetch_add(1, std::memory_order_relaxed);
    std::string dir;
    {
        MutexLock lk(mutex_);
        dir = dir_;
        mem_[key] = payload;
    }
    if (!dir.empty())
        writeDiskEntry(key, payload);
}

void
BlobCache::clearMemory()
{
    MutexLock lk(mutex_);
    mem_.clear();
}

std::optional<std::vector<std::uint8_t>>
BlobCache::loadDiskEntry(std::uint64_t key)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return std::nullopt;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt; // absent: a plain miss, not corruption

    EntryHeader header;
    in.read(reinterpret_cast<char *>(&header), sizeof(header));
    if (!in || header.magic != kMagic || header.schema != schema_ ||
        header.key != key) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // Bound the read by the actual file size so a forged length
    // cannot force a huge allocation.
    std::error_code ec;
    const auto fileSize = std::filesystem::file_size(path, ec);
    if (ec ||
        fileSize != sizeof(EntryHeader) + header.payloadBytes + 8) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(header.payloadBytes));
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    std::uint64_t recordedHash = 0;
    in.read(reinterpret_cast<char *>(&recordedHash),
            sizeof(recordedHash));
    if (!in) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    Fnv1a check;
    check.addBytes(payload.data(), payload.size());
    if (check.value() != recordedHash) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return payload;
}

void
BlobCache::writeDiskEntry(std::uint64_t key,
                          const std::vector<std::uint8_t> &payload)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return;

    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec)
        return; // unwritable store: cache degrades to memory-only

    // Write-then-rename so concurrent readers (and a crash mid-write)
    // never see a partial entry; the temp name is per-process so two
    // cache-sharing processes cannot interleave writes.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        EntryHeader header;
        header.magic = kMagic;
        header.schema = schema_;
        header.key = key;
        header.payloadBytes = payload.size();
        out.write(reinterpret_cast<const char *>(&header),
                  sizeof(header));
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
        Fnv1a check;
        check.addBytes(payload.data(), payload.size());
        const std::uint64_t hash = check.value();
        out.write(reinterpret_cast<const char *>(&hash), sizeof(hash));
        if (!out)
            return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (!ec)
        diskWrites_.fetch_add(1, std::memory_order_relaxed);
}

BlobCache::Stats
BlobCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.diskHits = diskHits_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.diskWrites = diskWrites_.load(std::memory_order_relaxed);
    s.corrupt = corrupt_.load(std::memory_order_relaxed);
    s.bypasses = bypasses_.load(std::memory_order_relaxed);
    return s;
}

void
BlobCache::reportTo(telemetry::MetricsRegistry &metrics) const
{
    const Stats s = stats();
    metrics.counter(name_ + ".hits") = s.hits;
    metrics.counter(name_ + ".misses") = s.misses;
    metrics.counter(name_ + ".disk_hits") = s.diskHits;
    metrics.counter(name_ + ".stores") = s.stores;
    metrics.counter(name_ + ".disk_writes") = s.diskWrites;
    metrics.counter(name_ + ".corrupt") = s.corrupt;
    metrics.counter(name_ + ".bypasses") = s.bypasses;
}

} // namespace fasttrack::sched
