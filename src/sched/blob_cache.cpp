#include "sched/blob_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include <unistd.h>

#include "net/wire.hpp"

namespace fasttrack::sched {

namespace {

constexpr std::uint32_t kMagic = 0x43525446u; // "FTRC" little-endian
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kTrailerBytes = 8;

std::string
hexKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

bool
isEntryFile(const std::filesystem::directory_entry &entry)
{
    if (!entry.is_regular_file())
        return false;
    const std::string name = entry.path().filename().string();
    return name.size() == 24 && name.rfind("ft-", 0) == 0 &&
           name.compare(name.size() - 5, 5, ".ftrc") == 0;
}

} // namespace

BlobCache::BlobCache(std::string name, std::uint32_t schemaVersion)
    : name_(std::move(name)), schema_(schemaVersion)
{
}

void
BlobCache::setDir(std::string dir)
{
    MutexLock lk(mutex_);
    if (dir != dir_) {
        dir_ = std::move(dir);
        diskScanned_ = false;
        diskBytes_ = 0;
    }
}

std::string
BlobCache::dir() const
{
    MutexLock lk(mutex_);
    return dir_;
}

void
BlobCache::setMaxDiskBytes(std::uint64_t max_bytes)
{
    MutexLock lk(mutex_);
    maxDiskBytes_ = max_bytes;
}

std::uint64_t
BlobCache::maxDiskBytes() const
{
    MutexLock lk(mutex_);
    return maxDiskBytes_;
}

std::uint64_t
BlobCache::diskBytes() const
{
    MutexLock lk(mutex_);
    if (dir_.empty())
        return 0;
    ensureDiskScanned();
    return diskBytes_;
}

void
BlobCache::ensureDiskScanned() const
{
    if (diskScanned_ || dir_.empty())
        return;
    diskScanned_ = true;
    diskBytes_ = 0;
    // A not-yet-created directory iterates as empty (ec set).
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (!isEntryFile(entry))
            continue;
        std::error_code sec;
        const auto size = entry.file_size(sec);
        if (!sec)
            diskBytes_ += size;
    }
}

std::string
BlobCache::entryPath(std::uint64_t key) const
{
    MutexLock lk(mutex_);
    if (dir_.empty())
        return {};
    return dir_ + "/ft-" + hexKey(key) + ".ftrc";
}

std::optional<std::vector<std::uint8_t>>
BlobCache::lookup(std::uint64_t key)
{
    {
        MutexLock lk(mutex_);
        auto it = mem_.find(key);
        if (it != mem_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    if (auto fromDisk = loadDiskEntry(key)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        MutexLock lk(mutex_);
        mem_.emplace(key, *fromDisk);
        return fromDisk;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

void
BlobCache::store(std::uint64_t key, std::vector<std::uint8_t> payload)
{
    stores_.fetch_add(1, std::memory_order_relaxed);
    std::string dir;
    {
        MutexLock lk(mutex_);
        dir = dir_;
        mem_[key] = payload;
    }
    if (!dir.empty())
        writeDiskEntry(key, payload);
}

void
BlobCache::clearMemory()
{
    MutexLock lk(mutex_);
    mem_.clear();
}

std::optional<std::vector<std::uint8_t>>
BlobCache::loadDiskEntry(std::uint64_t key)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return std::nullopt;

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt; // absent: a plain miss, not corruption

    // Explicit little-endian header decode: entries travel between
    // hosts, so the layout is byte-defined, never struct-defined.
    std::uint8_t headerBytes[kHeaderBytes];
    in.read(reinterpret_cast<char *>(headerBytes),
            sizeof(headerBytes));
    std::uint32_t magic = 0, schema = 0;
    std::uint64_t storedKey = 0, payloadBytes = 0;
    net::WireReader header(headerBytes, sizeof(headerBytes));
    if (!in || !header.u32(magic) || !header.u32(schema) ||
        !header.u64(storedKey) || !header.u64(payloadBytes) ||
        magic != kMagic || schema != schema_ || storedKey != key) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // Bound the read by the actual file size so a forged length
    // cannot force a huge allocation.
    std::error_code ec;
    const auto fileSize = std::filesystem::file_size(path, ec);
    if (ec || fileSize != kHeaderBytes + payloadBytes + kTrailerBytes) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(payloadBytes));
    in.read(reinterpret_cast<char *>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
    std::uint8_t trailerBytes[kTrailerBytes];
    in.read(reinterpret_cast<char *>(trailerBytes),
            sizeof(trailerBytes));
    if (!in) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::uint64_t recordedHash = 0;
    net::WireReader trailer(trailerBytes, sizeof(trailerBytes));
    trailer.u64(recordedHash);

    Fnv1a check;
    check.addBytes(payload.data(), payload.size());
    if (check.value() != recordedHash) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    return payload;
}

void
BlobCache::writeDiskEntry(std::uint64_t key,
                          const std::vector<std::uint8_t> &payload)
{
    const std::string path = entryPath(key);
    if (path.empty())
        return;

    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec)
        return; // unwritable store: cache degrades to memory-only

    // Write-then-rename so concurrent readers (and a crash mid-write)
    // never see a partial entry; the temp name is per-process so two
    // cache-sharing processes cannot interleave writes.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        net::WireWriter w;
        w.u32(kMagic);
        w.u32(schema_);
        w.u64(key);
        w.u64(payload.size());
        w.bytes(payload.data(), payload.size());
        Fnv1a check;
        check.addBytes(payload.data(), payload.size());
        w.u64(check.value());
        const auto &bytes = w.buffer();
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        return;
    diskWrites_.fetch_add(1, std::memory_order_relaxed);

    bool over_cap = false;
    {
        MutexLock lk(mutex_);
        ensureDiskScanned();
        diskBytes_ +=
            kHeaderBytes + payload.size() + kTrailerBytes;
        over_cap = maxDiskBytes_ != 0 && diskBytes_ > maxDiskBytes_;
    }
    if (over_cap)
        evictOverCap(path);
}

void
BlobCache::evictOverCap(const std::string &keep_path)
{
    // Snapshot the store (oldest write first), then delete under the
    // mutex so two overflowing writers do not double-count.
    std::string dir;
    std::uint64_t cap = 0;
    {
        MutexLock lk(mutex_);
        dir = dir_;
        cap = maxDiskBytes_;
    }
    if (dir.empty() || cap == 0)
        return;

    struct DiskEntry
    {
        std::filesystem::path path;
        std::uint64_t size = 0;
        std::filesystem::file_time_type mtime;
    };
    std::vector<DiskEntry> entries;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!isEntryFile(entry))
            continue;
        std::error_code sec;
        DiskEntry de;
        de.path = entry.path();
        de.size = entry.file_size(sec);
        if (sec)
            continue;
        de.mtime = entry.last_write_time(sec);
        if (sec)
            continue;
        entries.push_back(std::move(de));
    }
    if (ec)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const DiskEntry &a, const DiskEntry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path; // tie-break: stable order
              });

    MutexLock lk(mutex_);
    // Recompute from the snapshot: sizes may have drifted while
    // unlocked (another process sharing the store).
    std::uint64_t total = 0;
    for (const DiskEntry &entry : entries)
        total += entry.size;
    diskBytes_ = total;
    for (const DiskEntry &entry : entries) {
        if (diskBytes_ <= maxDiskBytes_)
            break;
        if (entry.path == keep_path)
            continue; // never evict the entry just written
        std::error_code rec;
        if (std::filesystem::remove(entry.path, rec) && !rec) {
            diskBytes_ -= entry.size;
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

BlobCache::Stats
BlobCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.diskHits = diskHits_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.diskWrites = diskWrites_.load(std::memory_order_relaxed);
    s.corrupt = corrupt_.load(std::memory_order_relaxed);
    s.bypasses = bypasses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
}

void
BlobCache::reportTo(telemetry::MetricsRegistry &metrics) const
{
    const Stats s = stats();
    metrics.counter(name_ + ".hits") = s.hits;
    metrics.counter(name_ + ".misses") = s.misses;
    metrics.counter(name_ + ".disk_hits") = s.diskHits;
    metrics.counter(name_ + ".stores") = s.stores;
    metrics.counter(name_ + ".disk_writes") = s.diskWrites;
    metrics.counter(name_ + ".corrupt") = s.corrupt;
    metrics.counter(name_ + ".bypasses") = s.bypasses;
    metrics.counter(name_ + ".evictions") = s.evictions;
    metrics.gauge(name_ + ".disk_bytes") =
        static_cast<double>(diskBytes());
}

} // namespace fasttrack::sched
