/**
 * @file
 * Minimal logging and error-termination helpers, gem5-flavored.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump catches it.
 * fatal()  - the *user* asked for something unsupported (bad config);
 *            exits with status 1.
 * warn()/inform() - non-fatal status messages on stderr.
 */

#ifndef FT_COMMON_LOGGING_HPP
#define FT_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace fasttrack {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a variadic pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Suppress inform()/warn() output (used by benches for clean tables). */
void setQuiet(bool quiet);
bool isQuiet();

} // namespace fasttrack

#define FT_PANIC(...)                                                      \
    ::fasttrack::detail::panicImpl(__FILE__, __LINE__,                     \
                                   ::fasttrack::detail::concat(__VA_ARGS__))

#define FT_FATAL(...)                                                      \
    ::fasttrack::detail::fatalImpl(__FILE__, __LINE__,                     \
                                   ::fasttrack::detail::concat(__VA_ARGS__))

#define FT_WARN(...)                                                       \
    ::fasttrack::detail::warnImpl(::fasttrack::detail::concat(__VA_ARGS__))

#define FT_INFORM(...)                                                     \
    ::fasttrack::detail::informImpl(                                       \
        ::fasttrack::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG: these guard simulator core
 *  correctness and are cheap relative to a router evaluation. */
#define FT_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            FT_PANIC("assertion failed: ", #cond, " ",                     \
                     ::fasttrack::detail::concat(__VA_ARGS__));            \
        }                                                                  \
    } while (0)

#endif // FT_COMMON_LOGGING_HPP
