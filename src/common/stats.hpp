/**
 * @file
 * Lightweight statistics primitives used by the NoC simulator: running
 * scalar summaries and integer histograms with exact percentiles.
 */

#ifndef FT_COMMON_STATS_HPP
#define FT_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fasttrack {

/**
 * Running summary of a scalar sample stream: count, mean, min, max and
 * variance via Welford's algorithm (numerically stable single pass).
 */
class RunningStat
{
  public:
    void add(double x);
    void merge(const RunningStat &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact histogram over non-negative integer samples (e.g. packet
 * latencies in cycles). Stores per-value counts sparsely; supports exact
 * percentiles and log-spaced bucketing for printing.
 */
class Histogram
{
  public:
    void add(std::uint64_t value, std::uint64_t weight = 1);
    void merge(const Histogram &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    std::uint64_t min() const;
    std::uint64_t max() const;

    /** Exact p-th percentile (0 <= p <= 100) by counting. */
    std::uint64_t percentile(double p) const;

    /**
     * Bucketize into @p buckets log2-spaced bins [1,2), [2,4), ...
     * Returns (bucket upper bound, count) pairs covering all samples.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    logBuckets() const;

    /** Raw sparse (value -> count) view, ascending by value. */
    const std::map<std::uint64_t, std::uint64_t> &bins() const
    {
        return bins_;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

} // namespace fasttrack

#endif // FT_COMMON_STATS_HPP
