/**
 * @file
 * Lightweight statistics primitives used by the NoC simulator: running
 * scalar summaries and integer histograms with exact percentiles.
 */

#ifndef FT_COMMON_STATS_HPP
#define FT_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fasttrack {

/**
 * Running summary of a scalar sample stream: count, mean, min, max and
 * variance via Welford's algorithm (numerically stable single pass).
 */
class RunningStat
{
  public:
    void add(double x);
    void merge(const RunningStat &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact histogram over non-negative integer samples (e.g. packet
 * latencies in cycles). Small values hit a dense counter array on the
 * write path; the sparse map is materialized lazily on first read, so
 * hot-loop add() costs one array increment instead of a map lookup.
 * Supports exact percentiles and log-spaced bucketing for printing.
 */
class Histogram
{
  public:
    void add(std::uint64_t value, std::uint64_t weight = 1)
    {
        count_ += weight;
        sum_ += value * weight;
        if (value < kDenseCap) {
            if (value >= dense_.size())
                growDense(value);
            dense_[value] += weight;
            dirty_ = true;
            return;
        }
        bins_[value] += weight;
    }

    void merge(const Histogram &other);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    std::uint64_t min() const;
    std::uint64_t max() const;

    /** Exact p-th percentile (0 <= p <= 100) by counting. */
    std::uint64_t percentile(double p) const;

    /**
     * Linearly interpolated p-th percentile (numpy's "linear" /
     * Hyndman-Fan type 7): the continuous rank p/100 * (count - 1)
     * interpolated between the neighbouring samples. Well-defined at
     * every edge — an empty histogram yields 0.0 and a single sample
     * yields that sample — so exporters can emit it unconditionally
     * without producing NaN. @p p outside [0, 100] is clamped.
     */
    double percentileLerp(double p) const;

    /**
     * Bucketize into @p buckets log2-spaced bins [1,2), [2,4), ...
     * Returns (bucket upper bound, count) pairs covering all samples.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    logBuckets() const;

    /** Raw sparse (value -> count) view, ascending by value. */
    const std::map<std::uint64_t, std::uint64_t> &bins() const
    {
        flush();
        return bins_;
    }

  private:
    /** Values below this go through the dense fast path. */
    static constexpr std::uint64_t kDenseCap = 65536;

    void growDense(std::uint64_t value);
    /** Drain dense counters into the sparse map (totals unchanged). */
    void flush() const;

    mutable std::map<std::uint64_t, std::uint64_t> bins_;
    mutable std::vector<std::uint64_t> dense_;
    mutable bool dirty_ = false;
    std::uint64_t count_ = 0;
    /** Integer accumulator: exact (no float rounding on the add path)
     *  and cheaper than the int-to-double conversions per sample.
     *  Wraps only past 2^64 total mass, far beyond any simulation. */
    std::uint64_t sum_ = 0;
};

} // namespace fasttrack

#endif // FT_COMMON_STATS_HPP
