/**
 * @file
 * Source-level annotation attributes consumed by the ft-tidy plugin
 * (tools/ft_tidy; docs/static_analysis.md).
 *
 * FT_HOT marks a function as part of a simulation hot path. The
 * ft-hotpath-purity check then enforces that its body performs no
 * allocation (new/delete/malloc), throws nothing, makes no virtual
 * calls and constructs no std::function — the properties the
 * devirtualized stepping core (Network::stepImpl, Router::routeCore)
 * and the per-cycle data structures (LinkSlab, CandidateTable) were
 * built around in PR 2.
 *
 * Under compilers without [[clang::annotate]] (gcc) the macro expands
 * to nothing; the attribute never changes codegen, it only labels the
 * AST for the checker.
 */

#ifndef FT_COMMON_ANNOTATIONS_HPP
#define FT_COMMON_ANNOTATIONS_HPP

#if defined(__clang__)
/** Marks a hot-path function for the ft-hotpath-purity check. */
#define FT_HOT [[clang::annotate("ft_hot")]]
#else
#define FT_HOT
#endif

#endif // FT_COMMON_ANNOTATIONS_HPP
