#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.hpp"

namespace fasttrack {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

double
maybeLog(double v, bool log_scale)
{
    if (!log_scale)
        return v;
    return std::log10(std::max(v, 1e-12));
}

std::string
fmt(double v)
{
    char buf[32];
    if (v != 0.0 && (std::fabs(v) < 0.01 || std::fabs(v) >= 10000.0))
        std::snprintf(buf, sizeof(buf), "%.1e", v);
    else
        std::snprintf(buf, sizeof(buf), "%.3g", v);
    return buf;
}

} // namespace

AsciiChart::AsciiChart(std::string title, std::uint32_t width,
                       std::uint32_t height)
    : title_(std::move(title)), width_(width), height_(height)
{
    FT_ASSERT(width_ >= 10 && height_ >= 4, "chart area too small");
}

void
AsciiChart::addSeries(const std::string &name,
                      std::vector<std::pair<double, double>> points)
{
    FT_ASSERT(series_.size() < sizeof(kGlyphs), "too many series");
    series_.push_back(
        Series{name, kGlyphs[series_.size()], std::move(points)});
}

void
AsciiChart::setAxisLabels(std::string x, std::string y)
{
    xLabel_ = std::move(x);
    yLabel_ = std::move(y);
}

void
AsciiChart::print(std::ostream &os) const
{
    if (series_.empty())
        return;

    double min_x = std::numeric_limits<double>::infinity();
    double max_x = -min_x;
    double min_y = min_x, max_y = -min_x;
    for (const Series &s : series_) {
        for (const auto &[x, y] : s.points) {
            min_x = std::min(min_x, maybeLog(x, logX_));
            max_x = std::max(max_x, maybeLog(x, logX_));
            min_y = std::min(min_y, maybeLog(y, logY_));
            max_y = std::max(max_y, maybeLog(y, logY_));
        }
    }
    if (!(min_x < max_x))
        max_x = min_x + 1.0;
    if (!(min_y < max_y))
        max_y = min_y + 1.0;

    std::vector<std::string> grid(height_,
                                  std::string(width_, ' '));
    for (const Series &s : series_) {
        for (const auto &[x, y] : s.points) {
            const double fx =
                (maybeLog(x, logX_) - min_x) / (max_x - min_x);
            const double fy =
                (maybeLog(y, logY_) - min_y) / (max_y - min_y);
            const auto col = static_cast<std::uint32_t>(
                std::lround(fx * (width_ - 1)));
            const auto row = static_cast<std::uint32_t>(
                std::lround((1.0 - fy) * (height_ - 1)));
            grid[row][col] = s.glyph;
        }
    }

    if (!title_.empty())
        os << title_ << "\n";
    const double raw_max_y = logY_ ? std::pow(10.0, max_y) : max_y;
    const double raw_min_y = logY_ ? std::pow(10.0, min_y) : min_y;
    os << fmt(raw_max_y) << (yLabel_.empty() ? "" : " " + yLabel_)
       << "\n";
    for (const std::string &row : grid)
        os << "  |" << row << "\n";
    os << fmt(raw_min_y) << " +" << std::string(width_, '-') << "\n";
    const double raw_min_x = logX_ ? std::pow(10.0, min_x) : min_x;
    const double raw_max_x = logX_ ? std::pow(10.0, max_x) : max_x;
    os << "   " << fmt(raw_min_x) << std::string(
           width_ > 24 ? width_ - 12 : 4, ' ')
       << fmt(raw_max_x) << (xLabel_.empty() ? "" : "  " + xLabel_)
       << "\n";
    os << "  legend:";
    for (const Series &s : series_)
        os << "  " << s.glyph << "=" << s.name;
    os << "\n";
    os.flush();
}

namespace {

/** Intensity ramp from empty to saturated, one step per glyph. */
constexpr char kHeatRamp[] = " .:-=+*#%@";
constexpr std::size_t kHeatLevels = sizeof(kHeatRamp) - 1;

} // namespace

AsciiHeatmap::AsciiHeatmap(std::string title, std::uint32_t width,
                           std::uint32_t height)
    : title_(std::move(title)), width_(width), height_(height),
      cells_(static_cast<std::size_t>(width) * height, 0.0)
{
    FT_ASSERT(width_ >= 1 && height_ >= 1, "heatmap grid too small");
}

void
AsciiHeatmap::set(std::uint32_t x, std::uint32_t y, double value)
{
    if (x >= width_ || y >= height_)
        return;
    cells_[static_cast<std::size_t>(y) * width_ + x] = value;
}

double
AsciiHeatmap::maxValue() const
{
    double max_v = 0.0;
    for (double v : cells_)
        max_v = std::max(max_v, v);
    return max_v;
}

void
AsciiHeatmap::print(std::ostream &os) const
{
    const double max_v = maxValue();
    os << title_ << "\n";
    os << "  +" << std::string(width_, '-') << "+\n";
    for (std::uint32_t y = 0; y < height_; ++y) {
        os << "  |";
        for (std::uint32_t x = 0; x < width_; ++x) {
            const double v =
                cells_[static_cast<std::size_t>(y) * width_ + x];
            std::size_t level = 0;
            if (max_v > 0.0 && v > 0.0) {
                level = 1 + static_cast<std::size_t>(
                                v / max_v *
                                static_cast<double>(kHeatLevels - 2));
                level = std::min(level, kHeatLevels - 1);
            }
            os << kHeatRamp[level];
        }
        os << "|\n";
    }
    os << "  +" << std::string(width_, '-') << "+\n";
    os << "  scale: ' '=0";
    if (max_v > 0.0)
        os << "  '" << kHeatRamp[kHeatLevels - 1] << "'=" << fmt(max_v);
    os << "\n";
    os.flush();
}

} // namespace fasttrack
