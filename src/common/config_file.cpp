#include "common/config_file.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>

#include "common/logging.hpp"

namespace fasttrack {

namespace {

std::string
strip(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

} // namespace

KeyValueFile
KeyValueFile::parse(std::istream &is)
{
    KeyValueFile kv;
    std::string line;
    int line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const std::string stripped = strip(line);
        if (stripped.empty())
            continue;
        const auto eq = stripped.find('=');
        if (eq == std::string::npos) {
            FT_FATAL("config line ", line_no,
                     " is not 'key = value': ", stripped);
        }
        const std::string key = strip(stripped.substr(0, eq));
        const std::string value = strip(stripped.substr(eq + 1));
        if (key.empty())
            FT_FATAL("config line ", line_no, " has an empty key");
        kv.values_[key] = value;
    }
    return kv;
}

KeyValueFile
KeyValueFile::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        FT_FATAL("cannot open config file: ", path);
    return parse(in);
}

bool
KeyValueFile::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
KeyValueFile::getString(const std::string &key,
                        const std::string &fallback) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
KeyValueFile::getInt(const std::string &key,
                     std::int64_t fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    try {
        std::size_t used = 0;
        const std::int64_t v = std::stoll(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception &) {
        FT_FATAL("config key '", key, "' is not an integer: ",
                 it->second);
    }
}

double
KeyValueFile::getDouble(const std::string &key, double fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    try {
        std::size_t used = 0;
        const double v = std::stod(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (const std::exception &) {
        FT_FATAL("config key '", key, "' is not a number: ",
                 it->second);
    }
}

bool
KeyValueFile::getBool(const std::string &key, bool fallback) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(), ::tolower);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    FT_FATAL("config key '", key, "' is not a boolean: ", it->second);
}

} // namespace fasttrack
