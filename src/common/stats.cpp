#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace fasttrack {

void
RunningStat::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::growDense(std::uint64_t value)
{
    const std::uint64_t want = std::max(value + 1, 2 * dense_.size());
    dense_.resize(std::min(want, kDenseCap), 0);
}

void
Histogram::flush() const
{
    if (!dirty_)
        return;
    for (std::uint64_t v = 0; v < dense_.size(); ++v) {
        if (dense_[v]) {
            bins_[v] += dense_[v];
            dense_[v] = 0;
        }
    }
    dirty_ = false;
}

void
Histogram::merge(const Histogram &other)
{
    flush();
    other.flush();
    for (const auto &[value, n] : other.bins_)
        bins_[value] += n;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    bins_.clear();
    dense_.clear();
    dirty_ = false;
    count_ = 0;
    sum_ = 0;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
Histogram::min() const
{
    flush();
    return bins_.empty() ? 0 : bins_.begin()->first;
}

std::uint64_t
Histogram::max() const
{
    flush();
    return bins_.empty() ? 0 : bins_.rbegin()->first;
}

std::uint64_t
Histogram::percentile(double p) const
{
    FT_ASSERT(p >= 0.0 && p <= 100.0, "percentile(", p, ")");
    if (count_ == 0)
        return 0;
    flush();
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (const auto &[value, n] : bins_) {
        seen += n;
        if (seen >= target)
            return value;
    }
    return bins_.rbegin()->first;
}

double
Histogram::percentileLerp(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    flush();
    // Continuous 0-based rank; its floor/ceil neighbours are found in
    // one cumulative walk (bins_ is ordered by value).
    const double rank =
        p / 100.0 * static_cast<double>(count_ - 1);
    const auto lo_rank = static_cast<std::uint64_t>(rank);
    const double frac = rank - static_cast<double>(lo_rank);
    std::uint64_t seen = 0;
    double lo_value = 0.0;
    bool have_lo = false;
    for (const auto &[value, n] : bins_) {
        seen += n;
        if (!have_lo && seen > lo_rank) {
            lo_value = static_cast<double>(value);
            have_lo = true;
            // Both ranks inside this bin (or no fraction): no
            // interpolation needed.
            if (frac == 0.0 || seen > lo_rank + 1)
                return lo_value;
        } else if (have_lo) {
            // First bin past lo holds the hi-rank sample.
            return lo_value +
                   frac * (static_cast<double>(value) - lo_value);
        }
    }
    // lo was the last sample (p == 100 up to rounding).
    return lo_value;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
Histogram::logBuckets() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    flush();
    if (bins_.empty())
        return out;
    std::uint64_t bound = 1;
    std::uint64_t acc = 0;
    for (const auto &[value, n] : bins_) {
        while (value >= bound) {
            out.emplace_back(bound, acc);
            acc = 0;
            bound *= 2;
        }
        acc += n;
    }
    out.emplace_back(bound, acc);
    // Drop leading empty buckets for compact output.
    while (!out.empty() && out.front().second == 0)
        out.erase(out.begin());
    return out;
}

} // namespace fasttrack
