#include "common/rng.hpp"

#include "common/logging.hpp"

namespace fasttrack {

Rng::Rng(std::uint64_t seed)
{
    // Same expansion stream as the classic stateful splitmix64 loop:
    // word i = splitmix64(seed + i * gamma).
    std::uint64_t sm = seed;
    for (auto &word : s_) {
        word = splitmix64(sm);
        sm += 0x9e3779b97f4a7c15ull;
    }
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    FT_ASSERT(bound > 0, "nextBelow(0)");
    // Lemire-style rejection for unbiased draws. Callers with a fixed
    // bound on a hot path can precompute this threshold and an exact
    // reciprocal modulus (see DestinationGenerator) to draw the same
    // stream without the two hardware divides.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    FT_ASSERT(lo <= hi, "nextRange(", lo, ",", hi, ")");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace fasttrack
