/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that experiments are bit-reproducible across runs and
 * platforms. The generator is xoshiro256** (Blackman & Vigna), which is
 * fast, has a 2^256-1 period, and passes BigCrush.
 */

#ifndef FT_COMMON_RNG_HPP
#define FT_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace fasttrack {

/**
 * splitmix64 single-step mix (Steele, Lea & Flanagan): gamma-add then
 * avalanche. The canonical way to derive independent, well-mixed
 * sub-seeds from a base seed (Rng state expansion, per-point sweep
 * seeds); nearby inputs yield uncorrelated outputs.
 */
inline std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Not a std-style engine on purpose: the simulator needs only a handful
 * of draw shapes and we want identical streams on every platform
 * (std::uniform_int_distribution is implementation-defined).
 *
 * The raw draw and the shapes built directly on it are defined inline:
 * traffic generators call them once per node per cycle, which makes
 * the call overhead itself measurable at scale.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. Unbiased (rejection). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p) { return nextDouble() < p; }

    /** Fork an independent stream (hash-mixed from this stream). */
    Rng split();

    /** The full 256-bit generator state, for checkpointing: a stream
     *  restored via setState continues bit-identically from where
     *  state() captured it. */
    std::array<std::uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }
    void setState(const std::array<std::uint64_t, 4> &s)
    {
        s_[0] = s[0];
        s_[1] = s[1];
        s_[2] = s[2];
        s_[3] = s[3];
    }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace fasttrack

#endif // FT_COMMON_RNG_HPP
