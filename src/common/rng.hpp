/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that experiments are bit-reproducible across runs and
 * platforms. The generator is xoshiro256** (Blackman & Vigna), which is
 * fast, has a 2^256-1 period, and passes BigCrush.
 */

#ifndef FT_COMMON_RNG_HPP
#define FT_COMMON_RNG_HPP

#include <cstdint>

namespace fasttrack {

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Not a std-style engine on purpose: the simulator needs only a handful
 * of draw shapes and we want identical streams on every platform
 * (std::uniform_int_distribution is implementation-defined).
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (rejection). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p);

    /** Fork an independent stream (hash-mixed from this stream). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace fasttrack

#endif // FT_COMMON_RNG_HPP
