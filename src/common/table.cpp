#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/logging.hpp"

namespace fasttrack {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    FT_ASSERT(header_.empty() || row.size() == header_.size(),
              "row width ", row.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::na()
{
    return "NA";
}

namespace {
bool csvModeFlag = false;
} // namespace

void
Table::setCsvMode(bool csv)
{
    csvModeFlag = csv;
}

bool
Table::csvMode()
{
    return csvModeFlag;
}

void
Table::print(std::ostream &os) const
{
    if (csvModeFlag) {
        printCsv(os);
        return;
    }
    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > width.size())
            width.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i ? "  " : "") << std::setw(static_cast<int>(width[i]))
               << row[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < width.size(); ++i)
            total += width[i] + (i ? 2 : 0);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
Table::printCsv(std::ostream &os) const
{
    if (!title_.empty())
        os << "# " << title_ << "\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << row[i];
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

} // namespace fasttrack
