/**
 * @file
 * Minimal key=value configuration file support, so experiments can be
 * scripted without recompiling ('#' comments, one `key = value` per
 * line, later keys override earlier ones).
 */

#ifndef FT_COMMON_CONFIG_FILE_HPP
#define FT_COMMON_CONFIG_FILE_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace fasttrack {

/** Parsed key=value file with typed, defaulted accessors. */
class KeyValueFile
{
  public:
    /** Parse from a stream; fatal on malformed lines. */
    static KeyValueFile parse(std::istream &is);
    /** Parse a file path; fatal if unreadable. */
    static KeyValueFile parseFile(const std::string &path);

    bool has(const std::string &key) const;

    /** Typed accessors; return @p fallback when the key is absent and
     *  abort with a user error when the value does not parse. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback = 0) const;
    double getDouble(const std::string &key,
                     double fallback = 0.0) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    std::size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace fasttrack

#endif // FT_COMMON_CONFIG_FILE_HPP
