#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace fasttrack {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace fasttrack
