/**
 * @file
 * Fundamental scalar types and small value types shared by every
 * FastTrack library.
 */

#ifndef FT_COMMON_TYPES_HPP
#define FT_COMMON_TYPES_HPP

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace fasttrack {

/** Simulation time in NoC clock cycles. */
using Cycle = std::uint64_t;

/** Flat node (PE / router) identifier, row-major: id = y * N + x. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/**
 * 2D torus coordinate. Each network is N x N; x grows East, y grows
 * South, matching the unidirectional ring directions of Hoplite.
 */
struct Coord
{
    std::uint16_t x = 0;
    std::uint16_t y = 0;

    auto operator<=>(const Coord &) const = default;
};

/** Convert a flat id to a coordinate on an N x N torus. */
constexpr Coord
toCoord(NodeId id, std::uint32_t n)
{
    return Coord{static_cast<std::uint16_t>(id % n),
                 static_cast<std::uint16_t>(id / n)};
}

/** Convert a coordinate to a flat id on an N x N torus. */
constexpr NodeId
toNodeId(Coord c, std::uint32_t n)
{
    return static_cast<NodeId>(c.y) * n + c.x;
}

/** Eastward (positive-x) distance from @p from to @p to on an N-ring.
 *  Both positions must already be ring coordinates (< n). */
constexpr std::uint32_t
ringDistance(std::uint32_t from, std::uint32_t to, std::uint32_t n)
{
    // from, to < n makes to + n - from < 2n, so one conditional
    // subtract replaces the hardware modulo.
    const std::uint32_t t = to + n - from;
    return t >= n ? t - n : t;
}

/**
 * Division and modulo by a fixed runtime divisor using Lemire's
 * round-up reciprocal multiply: one widening multiplication replaces
 * the hardware divide (exact for all 32-bit dividends). Used on the
 * simulator's hot path to turn flat node ids into torus coordinates.
 */
class FastDiv
{
  public:
    FastDiv() = default;
    explicit FastDiv(std::uint32_t divisor) { init(divisor); }

    void init(std::uint32_t divisor)
    {
        d_ = divisor;
        // ceil(2^64 / d): floor((2^64 - 1) / d) + 1, which is also
        // exact when d is a power of two.
        c_ = ~std::uint64_t{0} / divisor + 1;
    }

    std::uint32_t div(std::uint32_t v) const
    {
#ifdef __SIZEOF_INT128__
        if (d_ == 1)
            return v;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(c_) * v) >> 64);
#else
        return v / d_;
#endif
    }

    std::uint32_t mod(std::uint32_t v) const
    {
#ifdef __SIZEOF_INT128__
        if (d_ == 1)
            return 0;
        const std::uint64_t low = c_ * v;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(low) * d_) >> 64);
#else
        return v % d_;
#endif
    }

    std::uint32_t divisor() const { return d_; }

  private:
    std::uint64_t c_ = 0;
    std::uint32_t d_ = 1;
};

/**
 * Exact v % d for a full 64-bit v against a fixed divisor, without the
 * hardware divider: a round-down reciprocal gives a quotient estimate
 * at most two short, fixed up with conditional subtractions. Traffic
 * generators use it to reduce raw 64-bit RNG draws modulo a constant
 * bound, where the result must be bit-identical to v % d (the draw
 * stream is pinned by golden-stats tests).
 */
class FastMod64
{
  public:
    FastMod64() = default;
    explicit FastMod64(std::uint64_t divisor) { init(divisor); }

    void init(std::uint64_t divisor)
    {
        d_ = divisor;
        // floor(2^64 / d) up to one short (exact unless d divides
        // 2^64); any shortfall only widens the fix-up below.
        m_ = ~std::uint64_t{0} / divisor;
    }

    std::uint64_t mod(std::uint64_t v) const
    {
#ifdef __SIZEOF_INT128__
        if (d_ == 1)
            return 0;
        // q <= floor(v/d) and misses it by at most 2, so the remainder
        // estimate needs at most two subtractions of d.
        const auto q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(m_) * v) >> 64);
        std::uint64_t r = v - q * d_;
        while (r >= d_)
            r -= d_;
        return r;
#else
        return v % d_;
#endif
    }

    std::uint64_t divisor() const { return d_; }

  private:
    std::uint64_t m_ = 0;
    std::uint64_t d_ = 1;
};

/** Render a coordinate as "(x,y)" for logs and tables. */
std::string inline
coordToString(Coord c)
{
    return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

} // namespace fasttrack

template <>
struct std::hash<fasttrack::Coord>
{
    std::size_t
    operator()(const fasttrack::Coord &c) const noexcept
    {
        return (static_cast<std::size_t>(c.y) << 16) | c.x;
    }
};

#endif // FT_COMMON_TYPES_HPP
