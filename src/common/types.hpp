/**
 * @file
 * Fundamental scalar types and small value types shared by every
 * FastTrack library.
 */

#ifndef FT_COMMON_TYPES_HPP
#define FT_COMMON_TYPES_HPP

#include <cstdint>
#include <compare>
#include <functional>
#include <string>

namespace fasttrack {

/** Simulation time in NoC clock cycles. */
using Cycle = std::uint64_t;

/** Flat node (PE / router) identifier, row-major: id = y * N + x. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/**
 * 2D torus coordinate. Each network is N x N; x grows East, y grows
 * South, matching the unidirectional ring directions of Hoplite.
 */
struct Coord
{
    std::uint16_t x = 0;
    std::uint16_t y = 0;

    auto operator<=>(const Coord &) const = default;
};

/** Convert a flat id to a coordinate on an N x N torus. */
constexpr Coord
toCoord(NodeId id, std::uint32_t n)
{
    return Coord{static_cast<std::uint16_t>(id % n),
                 static_cast<std::uint16_t>(id / n)};
}

/** Convert a coordinate to a flat id on an N x N torus. */
constexpr NodeId
toNodeId(Coord c, std::uint32_t n)
{
    return static_cast<NodeId>(c.y) * n + c.x;
}

/** Eastward (positive-x) distance from @p from to @p to on an N-ring. */
constexpr std::uint32_t
ringDistance(std::uint32_t from, std::uint32_t to, std::uint32_t n)
{
    return (to + n - from) % n;
}

/** Render a coordinate as "(x,y)" for logs and tables. */
std::string inline
coordToString(Coord c)
{
    return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
}

} // namespace fasttrack

template <>
struct std::hash<fasttrack::Coord>
{
    std::size_t
    operator()(const fasttrack::Coord &c) const noexcept
    {
        return (static_cast<std::size_t>(c.y) << 16) | c.x;
    }
};

#endif // FT_COMMON_TYPES_HPP
