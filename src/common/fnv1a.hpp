/**
 * @file
 * FNV-1a 64-bit streaming hasher used for content keys and payload
 * self-checks (sweep cache, blob cache, wire frames).
 *
 * add(word) feeds the word's bytes in explicit little-endian order,
 * so a hash computed from the same logical values is identical on
 * every host — the property that lets content-addressed cache keys
 * and frame checksums travel between machines (docs/distributed.md).
 */

#ifndef FT_COMMON_FNV1A_HPP
#define FT_COMMON_FNV1A_HPP

#include <cstdint>
#include <cstddef>

namespace fasttrack {

class Fnv1a
{
  public:
    void addByte(std::uint8_t b)
    {
        hash_ ^= b;
        hash_ *= 0x100000001b3ull;
    }
    void addBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i)
            addByte(p[i]);
    }
    /** Feed @p word as eight little-endian bytes (host-independent). */
    void add(std::uint64_t word)
    {
        for (int i = 0; i < 8; ++i)
            addByte(static_cast<std::uint8_t>(word >> (8 * i)));
    }
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace fasttrack

#endif // FT_COMMON_FNV1A_HPP
