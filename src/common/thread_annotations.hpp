/**
 * @file
 * Clang thread-safety annotations (-Wthread-safety) for the
 * concurrency layer, plus annotated drop-in wrappers over the std
 * primitives the repo actually uses.
 *
 * The analysis is static and intra-procedural: a field declared
 * FT_GUARDED_BY(mu) may only be touched while the compiler can prove
 * mu is held, and a function declared FT_REQUIRES(mu) may only be
 * called with mu held. Under gcc (and any non-clang compiler) every
 * macro expands to nothing, so the annotations cost nothing on the
 * default toolchain; CI builds once with clang and
 * -Wthread-safety -Werror to enforce them (docs/static_analysis.md).
 *
 * std::mutex is not itself annotated as a capability by libstdc++, so
 * guarded fields name an ft::Mutex and critical sections use
 * ft::MutexLock / ft::CondVar below — thin zero-overhead wrappers
 * following the MutexLocker pattern from the clang thread-safety
 * documentation.
 */

#ifndef FT_COMMON_THREAD_ANNOTATIONS_HPP
#define FT_COMMON_THREAD_ANNOTATIONS_HPP

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define FT_TSA(x) __attribute__((x))
#else
#define FT_TSA(x)
#endif

/** Class is a lockable capability (mutex-like). */
#define FT_CAPABILITY(x) FT_TSA(capability(x))
/** Class is an RAII scope managing a capability. */
#define FT_SCOPED_CAPABILITY FT_TSA(scoped_lockable)
/** Field/variable may only be accessed while holding @p x. */
#define FT_GUARDED_BY(x) FT_TSA(guarded_by(x))
/** Pointee may only be accessed while holding @p x. */
#define FT_PT_GUARDED_BY(x) FT_TSA(pt_guarded_by(x))
/** Function may only be called while holding the capability. */
#define FT_REQUIRES(...) FT_TSA(requires_capability(__VA_ARGS__))
/** Function acquires the capability (held on return). */
#define FT_ACQUIRE(...) FT_TSA(acquire_capability(__VA_ARGS__))
/** Function releases the capability (not held on return). */
#define FT_RELEASE(...) FT_TSA(release_capability(__VA_ARGS__))
/** Function acquires the capability iff it returns @p result. */
#define FT_TRY_ACQUIRE(...) FT_TSA(try_acquire_capability(__VA_ARGS__))
/** Function must NOT be called while holding the capability. */
#define FT_EXCLUDES(...) FT_TSA(locks_excluded(__VA_ARGS__))
/** Escape hatch: function body is not analyzed. */
#define FT_NO_THREAD_SAFETY_ANALYSIS FT_TSA(no_thread_safety_analysis)

namespace fasttrack {

/**
 * std::mutex annotated as a thread-safety capability. Guarded fields
 * are declared `T field FT_GUARDED_BY(mutex_);`.
 */
class FT_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() FT_ACQUIRE() { m_.lock(); }
    void unlock() FT_RELEASE() { m_.unlock(); }
    bool try_lock() FT_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/**
 * Scoped lock over ft::Mutex (the clang-docs MutexLocker pattern).
 * Unlike std::lock_guard it supports a manual unlock()/lock() pair,
 * which WorkStealingPool::workerLoop needs to drop the jobs mutex
 * while running a job.
 */
class FT_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) FT_ACQUIRE(mu) : mu_(mu), held_(true)
    {
        mu_.lock();
    }
    ~MutexLock() FT_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }
    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Temporarily drop the lock (must currently be held). */
    void unlock() FT_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }
    /** Re-take the lock after unlock(). */
    void lock() FT_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

  private:
    Mutex &mu_;
    bool held_;
};

/**
 * Condition variable usable with ft::Mutex. wait() declares (via
 * FT_REQUIRES) that the mutex must be held at the call, matching the
 * std contract; the internal unlock/relock happens inside the std
 * implementation and is invisible to the analysis.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    void wait(Mutex &mu) FT_REQUIRES(mu) { cv_.wait(mu.m_); }

  private:
    std::condition_variable_any cv_;
};

} // namespace fasttrack

#endif // FT_COMMON_THREAD_ANNOTATIONS_HPP
