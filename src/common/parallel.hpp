/**
 * @file
 * Deterministic parallel map over independent work items. Experiment
 * sweeps run many isolated simulations; each item's result is written
 * to its own slot, so the output is identical to the serial order no
 * matter how the threads interleave.
 */

#ifndef FT_COMMON_PARALLEL_HPP
#define FT_COMMON_PARALLEL_HPP

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

namespace fasttrack {

/**
 * Apply @p fn to every element of @p items on up to @p threads
 * workers and return the results in input order.
 *
 * @p fn must be safe to call concurrently on distinct items (the
 * simulators here share no mutable state between instances).
 *
 * If @p fn throws, the exception is captured per item and the one
 * belonging to the *earliest input index* is rethrown after all
 * workers join — the same exception a serial loop would surface, so
 * failures are deterministic regardless of thread interleaving.
 * (A thread escaping with an exception would otherwise terminate.)
 */
template <typename In, typename Fn>
auto
parallelMap(const std::vector<In> &items, Fn fn,
            unsigned threads = std::thread::hardware_concurrency())
    -> std::vector<decltype(fn(items.front()))>
{
    using Out = decltype(fn(items.front()));
    std::vector<Out> results(items.size());
    if (items.empty())
        return results;

    threads = std::max(1u, std::min<unsigned>(
                               threads,
                               static_cast<unsigned>(items.size())));
    if (threads == 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            results[i] = fn(items[i]);
        return results;
    }

    std::vector<std::exception_ptr> errors(items.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= items.size())
                return;
            try {
                results[i] = fn(items[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace fasttrack

#endif // FT_COMMON_PARALLEL_HPP
