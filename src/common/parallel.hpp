/**
 * @file
 * Deterministic parallel map over independent work items. Experiment
 * sweeps run many isolated simulations; each item's result is written
 * to its own slot, so the output is identical to the serial order no
 * matter how the threads interleave.
 *
 * Execution backend: when the scheduler library's persistent
 * work-stealing pool is installed (sched::ensureGlobalPool(), see
 * src/sched/work_stealing_pool.hpp), bulk work is dispatched onto its
 * resident workers instead of spawning and joining fresh std::threads
 * per call. The fallback spawn-per-call path below remains for
 * binaries that never touch the scheduler library.
 */

#ifndef FT_COMMON_PARALLEL_HPP
#define FT_COMMON_PARALLEL_HPP

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

namespace fasttrack {

namespace parallel_detail {

/**
 * Backend interface for bulk-parallel execution. Implementations run
 * task(ctx, i) exactly once for every i in [0, count) using at most
 * @p workers concurrent executors, returning only after every call
 * finished. Exceptions never escape @p task (parallelMap wraps the
 * user function), so implementations need no unwind handling.
 */
struct BulkExecutor
{
    virtual ~BulkExecutor() = default;
    virtual void runBulk(void *ctx, void (*task)(void *, std::size_t),
                         std::size_t count, unsigned workers,
                         const char *label) = 0;
};

inline std::atomic<BulkExecutor *> &
executorSlot()
{
    static std::atomic<BulkExecutor *> slot{nullptr};
    return slot;
}

/** Install (or with nullptr remove) the process-wide bulk executor. */
inline void
setBulkExecutor(BulkExecutor *executor)
{
    executorSlot().store(executor, std::memory_order_release);
}

inline BulkExecutor *
bulkExecutor()
{
    return executorSlot().load(std::memory_order_acquire);
}

inline std::atomic<unsigned> &
defaultThreadsSlot()
{
    static std::atomic<unsigned> value{0};
    return value;
}

/**
 * Configure the worker count used when a parallelMap call does not
 * pass an explicit thread count (0 restores "hardware concurrency").
 * bench_util::parseArgs routes --threads here, so every sweep in a
 * harness honors the flag without threading it through each call
 * site. Set before the first sweep: the global pool sizes itself from
 * this value on first use.
 */
inline void
setDefaultParallelThreads(unsigned threads)
{
    defaultThreadsSlot().store(threads, std::memory_order_relaxed);
}

/** Effective default worker count (never 0). */
inline unsigned
defaultParallelThreads()
{
    const unsigned configured =
        defaultThreadsSlot().load(std::memory_order_relaxed);
    if (configured)
        return configured;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1u;
}

/**
 * True while the current thread is executing a bulk task (a pool
 * worker, a participating submitter, or a fallback-path worker).
 * Nested parallelMap calls run inline serially instead of deadlocking
 * on the pool or oversubscribing the machine.
 */
inline bool &
inBulkWorker()
{
    thread_local bool flag = false;
    return flag;
}

} // namespace parallel_detail

/**
 * Apply @p fn to every element of @p items on up to @p threads
 * workers and return the results in input order.
 *
 * @p threads 0 (the default) means the configured process default
 * (--threads via bench_util::parseArgs, else hardware concurrency).
 *
 * @p fn must be safe to call concurrently on distinct items (the
 * simulators here share no mutable state between instances).
 *
 * If @p fn throws, the exception is captured per item and the one
 * belonging to the *earliest input index* is rethrown after all
 * workers finish — the same exception a serial loop would surface, so
 * failures are deterministic regardless of thread interleaving.
 * (A thread escaping with an exception would otherwise terminate.)
 *
 * @p label names the bulk job in scheduler telemetry (per-worker
 * spans in the exported Chrome trace).
 */
template <typename In, typename Fn>
auto
parallelMap(const std::vector<In> &items, Fn fn, unsigned threads = 0,
            const char *label = "parallelMap")
    -> std::vector<decltype(fn(items.front()))>
{
    using Out = decltype(fn(items.front()));
    std::vector<Out> results(items.size());
    if (items.empty())
        return results;

    if (threads == 0)
        threads = parallel_detail::defaultParallelThreads();
    threads = std::max(1u, std::min<unsigned>(
                               threads,
                               static_cast<unsigned>(items.size())));
    if (threads == 1 || parallel_detail::inBulkWorker()) {
        for (std::size_t i = 0; i < items.size(); ++i)
            results[i] = fn(items[i]);
        return results;
    }

    std::vector<std::exception_ptr> errors(items.size());

    if (parallel_detail::BulkExecutor *executor =
            parallel_detail::bulkExecutor()) {
        struct Ctx
        {
            const std::vector<In> *items;
            std::vector<Out> *results;
            std::vector<std::exception_ptr> *errors;
            Fn *fn;
        } ctx{&items, &results, &errors, &fn};
        executor->runBulk(
            &ctx,
            [](void *opaque, std::size_t i) {
                auto *c = static_cast<Ctx *>(opaque);
                try {
                    (*c->results)[i] = (*c->fn)((*c->items)[i]);
                } catch (...) {
                    (*c->errors)[i] = std::current_exception();
                }
            },
            items.size(), threads, label);
    } else {
        // Fallback: spawn-per-call workers claiming items off a shared
        // counter. The claim order does not matter (results are
        // slot-addressed), so the increment can be relaxed; the joins
        // below publish every slot to the caller.
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            parallel_detail::inBulkWorker() = true;
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= items.size())
                    return;
                try {
                    results[i] = fn(items[i]);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace fasttrack

#endif // FT_COMMON_PARALLEL_HPP
