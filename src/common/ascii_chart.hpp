/**
 * @file
 * Terminal line-chart renderer for the bench harnesses: plots one or
 * more (x, y) series on a character grid with axes and a legend, so
 * the paper's figures can be eyeballed straight from the console.
 */

#ifndef FT_COMMON_ASCII_CHART_HPP
#define FT_COMMON_ASCII_CHART_HPP

#include <ostream>
#include <string>
#include <vector>

namespace fasttrack {

/** A multi-series scatter/line chart rendered with ASCII glyphs. */
class AsciiChart
{
  public:
    /**
     * @param title chart heading.
     * @param width plot area width in characters.
     * @param height plot area height in rows.
     */
    explicit AsciiChart(std::string title, std::uint32_t width = 60,
                        std::uint32_t height = 16);

    /** Add a named series; glyphs are assigned in order. */
    void addSeries(const std::string &name,
                   std::vector<std::pair<double, double>> points);

    /** Use log10 scaling on the x axis (injection-rate sweeps). */
    void setLogX(bool log_x) { logX_ = log_x; }
    /** Use log10 scaling on the y axis. */
    void setLogY(bool log_y) { logY_ = log_y; }
    /** Label the axes. */
    void setAxisLabels(std::string x, std::string y);

    void print(std::ostream &os) const;

    std::size_t seriesCount() const { return series_.size(); }

  private:
    struct Series
    {
        std::string name;
        char glyph;
        std::vector<std::pair<double, double>> points;
    };

    std::string title_;
    std::uint32_t width_;
    std::uint32_t height_;
    bool logX_ = false;
    bool logY_ = false;
    std::string xLabel_;
    std::string yLabel_;
    std::vector<Series> series_;
};

/**
 * Dense 2D intensity grid rendered with a glyph ramp (one cell per
 * character), with a min/max legend. Used for per-router link
 * utilization heatmaps: cell (x, y) is the torus router at that
 * coordinate, intensity its traversal count.
 */
class AsciiHeatmap
{
  public:
    /** @param width/@p height grid dimensions in cells. */
    AsciiHeatmap(std::string title, std::uint32_t width,
                 std::uint32_t height);

    /** Set cell (@p x, @p y); values outside the grid are ignored. */
    void set(std::uint32_t x, std::uint32_t y, double value);

    void print(std::ostream &os) const;

    double maxValue() const;

  private:
    std::string title_;
    std::uint32_t width_;
    std::uint32_t height_;
    std::vector<double> cells_;
};

} // namespace fasttrack

#endif // FT_COMMON_ASCII_CHART_HPP
