/**
 * @file
 * ASCII table and CSV emitters used by the bench harnesses to print
 * paper-style tables and figure series.
 */

#ifndef FT_COMMON_TABLE_HPP
#define FT_COMMON_TABLE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fasttrack {

/**
 * Column-aligned ASCII table. Add a header once, then rows of the same
 * width; print() right-aligns numeric-looking cells.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);
    /** Convenience: format an integer. */
    static std::string num(std::uint64_t v);
    /** "NA" cell (infeasible configuration, matching the paper). */
    static std::string na();

    /** Render aligned ASCII, or CSV when global CSV mode is on. */
    void print(std::ostream &os) const;
    /** Emit as CSV (no alignment, comma separated, title as comment). */
    void printCsv(std::ostream &os) const;

    /** Global output mode: when true, print() emits CSV (set by the
     *  bench harnesses' --csv flag). */
    static void setCsvMode(bool csv);
    static bool csvMode();

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fasttrack

#endif // FT_COMMON_TABLE_HPP
