/**
 * @file
 * The ftd wire protocol's frame layer: length-prefixed, versioned,
 * checksummed messages over a byte stream (docs/distributed.md has
 * the full layout and failure-semantics table).
 *
 * Frame layout (all fields little-endian, fixed width):
 *
 *   offset  size  field
 *   0       4     magic 'FTNP' (0x504e5446)
 *   4       4     wire version (kWireVersion)
 *   8       2     message type (MessageType)
 *   10      2     flags (kFlagPartial; other bits must be 0)
 *   12      8     request id (echoed by responses)
 *   20      4     payload length (<= kMaxFramePayload)
 *   24      N     payload
 *   24+N    8     FNV-1a over bytes [0, 24+N)
 *
 * Messages larger than one frame (snapshot payloads) travel as a
 * chain of fragments: every fragment but the last carries
 * kFlagPartial and all fragments share the message's type and
 * request id. sendMessage/recvMessage do the splitting/reassembly;
 * recvMessage bounds the reassembled size so a hostile chain of
 * partial frames cannot exhaust memory, and requires every non-final
 * fragment to be non-empty so the chain length (and with it the time
 * one message can pin the receiving thread) is bounded too.
 *
 * Decoding is defensive end to end: the header is validated (magic,
 * version, flags, length bound) *before* the payload is read, so an
 * oversized or forged length prefix can never force an allocation,
 * and the trailing self-check hash rejects corruption. Any failure
 * maps to a FrameStatus — no exceptions, no hangs (all socket reads
 * are timeout-bounded), no UB on hostile input
 * (tests/test_net.cpp, tests/test_sharding.cpp).
 */

#ifndef FT_NET_FRAME_HPP
#define FT_NET_FRAME_HPP

#include <cstdint>
#include <vector>

#include "net/socket.hpp"

namespace fasttrack::net {

/** 'FTNP' — FastTrack Network Protocol. */
inline constexpr std::uint32_t kFrameMagic = 0x504e5446u;

/** Bump on any change to the frame layout or message payloads. A
 *  version mismatch is detected on the first frame of a session and
 *  answered with MessageType::error (code kErrBadVersion).
 *  v2: kFlagPartial fragmentation + snapshotRequest/snapshotResult. */
inline constexpr std::uint32_t kWireVersion = 2;

/** Upper bound on a frame payload. Generous for sweep results (a
 *  SynthResult payload is a few KiB) while keeping a forged length
 *  prefix from looking plausible. Larger messages (snapshots) are
 *  split into partial frames by sendMessage. */
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/** Default bound on a reassembled multi-frame message. */
inline constexpr std::uint64_t kDefaultMaxMessageBytes = 64ull << 20;

inline constexpr std::size_t kFrameHeaderBytes = 24;
inline constexpr std::size_t kFrameTrailerBytes = 8;

/** Header flag: this frame is a non-final fragment of a message;
 *  the next frame with the same type and request id continues it. */
inline constexpr std::uint16_t kFlagPartial = 0x1;

/** Message types of the ftd session protocol. */
enum class MessageType : std::uint16_t
{
    /** Client -> server session opener: u32 wire version, u32 sweep
     *  schema version, u32 requested pipeline window. */
    hello = 1,
    /** Server -> client accept: u32 wire version, u32 sweep schema,
     *  u32 granted window (the server's per-session queue bound). */
    helloAck = 2,
    /** Client -> server: one sweep point (sim/remote.hpp codec). */
    sweepRequest = 3,
    /** Server -> client: one sweep point result. */
    sweepResult = 4,
    /** Server -> client: a MetricsRegistry telemetry epoch (u32
     *  count, then per metric: string name, f64 value). */
    metricsEpoch = 5,
    /** Either direction: u32 error code + string message; the sender
     *  closes the session after sending. */
    error = 6,
    /** Client -> server: orderly session end. */
    goodbye = 7,
    /** Client -> server: one temporal-shard slice (sim/remote.hpp
     *  ShardSliceRequest codec; may span multiple partial frames). */
    snapshotRequest = 8,
    /** Server -> client: slice stats + the trimmed handoff snapshot
     *  (ShardSliceResult codec; may span multiple partial frames). */
    snapshotResult = 9,
};

/** Error codes carried by MessageType::error payloads. */
inline constexpr std::uint32_t kErrBadVersion = 1;
inline constexpr std::uint32_t kErrBadSchema = 2;
inline constexpr std::uint32_t kErrBadRequest = 3;
inline constexpr std::uint32_t kErrOverloaded = 4;

/** One decoded frame (or, via sendMessage/recvMessage, one whole
 *  reassembled message — then `partial` is always false). */
struct Frame
{
    MessageType type = MessageType::error;
    std::uint64_t requestId = 0;
    std::vector<std::uint8_t> payload;
    /** Non-final fragment of a multi-frame message. */
    bool partial = false;
};

/** Outcome of a frame decode/receive. */
enum class FrameStatus
{
    ok,
    /** Stream ended cleanly between frames. */
    closed,
    /** Timeout elapsed (idle or mid-frame). */
    timeout,
    /** Stream ended inside a frame. */
    truncated,
    badMagic,
    badVersion,
    /** Length prefix exceeds kMaxFramePayload or flags nonzero. */
    malformed,
    badChecksum,
    /** Underlying socket error. */
    ioError,
};

const char *toString(FrameStatus status);

/** Serialize @p frame (header + payload + trailing hash). */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Decode one frame from @p bytes (which must contain exactly one
 * frame). Used by tests and by in-memory paths; socket traffic goes
 * through recvFrame.
 */
FrameStatus decodeFrame(const std::vector<std::uint8_t> &bytes,
                        Frame &out);

/**
 * Read one frame. @p idle_timeout_ms bounds the wait for the first
 * header byte; @p io_timeout_ms bounds every subsequent wait, so a
 * peer that stalls mid-frame yields FrameStatus::timeout rather
 * than a hang.
 */
FrameStatus recvFrame(Socket &socket, Frame &out, int idle_timeout_ms,
                      int io_timeout_ms);

/** Write one frame (timeout-bounded). */
FrameStatus sendFrame(Socket &socket, const Frame &frame,
                      int io_timeout_ms);

/**
 * Write one logical message, splitting payloads larger than
 * @p max_fragment into a chain of partial frames (same type and
 * request id; every fragment but the last carries kFlagPartial).
 * @p frame.partial is ignored. An empty payload sends one frame.
 */
FrameStatus sendMessage(Socket &socket, const Frame &frame,
                        int io_timeout_ms,
                        std::size_t max_fragment = kMaxFramePayload);

/**
 * Read one logical message, reassembling partial-frame chains. A
 * continuation fragment whose type or request id differs from the
 * first fragment's, or a reassembled size exceeding
 * @p max_message_bytes, yields FrameStatus::malformed; a stream
 * ending mid-chain yields FrameStatus::truncated. On ok,
 * out.partial is false and out.payload holds the whole message.
 */
FrameStatus recvMessage(Socket &socket, Frame &out, int idle_timeout_ms,
                        int io_timeout_ms,
                        std::uint64_t max_message_bytes =
                            kDefaultMaxMessageBytes);

/** Convenience: build an error frame (u32 code + string message). */
Frame makeErrorFrame(std::uint64_t request_id, std::uint32_t code,
                     const std::string &message);

/** Parse an error payload; false if it does not decode. */
bool parseErrorFrame(const Frame &frame, std::uint32_t &code,
                     std::string &message);

} // namespace fasttrack::net

#endif // FT_NET_FRAME_HPP
