/**
 * @file
 * Thin RAII wrappers over POSIX TCP sockets for the distributed
 * sweep fabric (docs/distributed.md): a movable connected Socket
 * with poll-based send/recv timeouts, and a Listener that binds an
 * (optionally ephemeral) port and accepts connections.
 *
 * Design rules:
 *  - No exceptions: every operation reports an IoStatus; callers in
 *    the retry/fallback paths branch on it.
 *  - No wall-clock reads: all timeouts are expressed as a
 *    milliseconds budget handed to poll(2), so the library stays
 *    clean under the ft-nondeterminism check.
 *  - SIGPIPE is never raised (MSG_NOSIGNAL on every send).
 */

#ifndef FT_NET_SOCKET_HPP
#define FT_NET_SOCKET_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace fasttrack::net {

/** Outcome of a socket operation. */
enum class IoStatus
{
    ok,
    /** Peer closed the connection (EOF mid-read). */
    closed,
    /** The poll timeout elapsed before the operation completed. */
    timeout,
    /** Any other socket-level error (errno-style failures). */
    error,
};

const char *toString(IoStatus status);

/** Block forever (the poll timeout sentinel). */
inline constexpr int kNoTimeout = -1;

/**
 * A connected TCP socket (RAII over the fd). Move-only; the
 * destructor closes the descriptor.
 */
class Socket
{
  public:
    Socket() = default;
    /** Adopt an already-connected descriptor (-1 = empty). */
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close now (idempotent). */
    void close();

    /** Shut down both directions without closing the fd; a blocked
     *  peer read observes EOF immediately. */
    void shutdownBoth();

    /**
     * Send exactly @p n bytes. @p timeout_ms bounds each wait for
     * writability (kNoTimeout blocks).
     */
    IoStatus sendAll(const void *data, std::size_t n,
                     int timeout_ms = kNoTimeout);

    /**
     * Receive exactly @p n bytes. @p first_timeout_ms bounds the
     * wait for the first byte (an idle timeout); @p timeout_ms
     * bounds each subsequent wait once the read has started.
     */
    IoStatus recvAll(void *data, std::size_t n, int first_timeout_ms,
                     int timeout_ms);

    /** True when at least one byte is readable without blocking
     *  (used to drain pipelined frames). */
    bool readable() const;

  private:
    int fd_ = -1;
};

/**
 * Connect to @p host:@p port with a bounded handshake wait.
 * Resolution failures and refusals return an invalid Socket and set
 * @p error to a human-readable reason.
 */
Socket connectTo(const std::string &host, std::uint16_t port,
                 int timeout_ms, std::string &error);

/** A listening TCP socket. */
class Listener
{
  public:
    Listener() = default;
    ~Listener() { close(); }
    Listener(Listener &&other) noexcept
        : fd_(other.fd_), port_(other.port_)
    {
        other.fd_ = -1;
        other.port_ = 0;
    }
    Listener &operator=(Listener &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            port_ = other.port_;
            other.fd_ = -1;
            other.port_ = 0;
        }
        return *this;
    }
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind @p host:@p port (port 0 = ephemeral; boundPort() reports
     * the actual one) and listen. False (with @p error set) on
     * failure.
     */
    bool open(const std::string &host, std::uint16_t port,
              std::string &error);

    /** Wait up to @p timeout_ms for a connection; an empty Socket on
     *  timeout or error. */
    Socket accept(int timeout_ms);

    bool valid() const { return fd_ >= 0; }
    std::uint16_t boundPort() const { return port_; }
    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace fasttrack::net

#endif // FT_NET_SOCKET_HPP
