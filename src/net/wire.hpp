/**
 * @file
 * Endian-stable byte codec shared by every on-the-wire and on-disk
 * serialization in the tree (frame payloads, sweep-cache entries,
 * blob-cache headers).
 *
 * Every multi-byte field is encoded as explicit little-endian via
 * byte shifts — never a struct/word memcpy — so the bytes a writer
 * produces are identical on every host, and a content key or cached
 * blob written on one machine validates on another. This is the
 * portability contract the distributed sweep fabric
 * (docs/distributed.md) relies on for cross-node cache sharing.
 *
 * WireWriter appends; WireReader bounds-checks every read and
 * reports success, so truncated or hostile input degrades to a clean
 * decode failure instead of UB.
 */

#ifndef FT_NET_WIRE_HPP
#define FT_NET_WIRE_HPP

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace fasttrack::net {

/** Append-only little-endian byte writer. */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }
    void u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }
    void u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void bytes(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        bytes_.insert(bytes_.end(), b, b + n);
    }
    /** u32 length prefix + raw bytes. */
    void str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    std::size_t size() const { return bytes_.size(); }
    const std::vector<std::uint8_t> &buffer() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian reader; every getter reports
 *  success. The reader does not own the bytes. */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit WireReader(const std::vector<std::uint8_t> &bytes)
        : WireReader(bytes.data(), bytes.size())
    {
    }

    bool u8(std::uint8_t &v)
    {
        if (size_ - pos_ < 1)
            return false;
        v = data_[pos_++];
        return true;
    }
    bool u16(std::uint16_t &v)
    {
        std::uint8_t lo = 0, hi = 0;
        if (!u8(lo) || !u8(hi))
            return false;
        v = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(lo) |
            static_cast<std::uint16_t>(static_cast<std::uint16_t>(hi)
                                       << 8));
        return true;
    }
    bool u32(std::uint32_t &v)
    {
        std::uint16_t lo = 0, hi = 0;
        if (!u16(lo) || !u16(hi))
            return false;
        v = static_cast<std::uint32_t>(lo) |
            (static_cast<std::uint32_t>(hi) << 16);
        return true;
    }
    bool u64(std::uint64_t &v)
    {
        std::uint32_t lo = 0, hi = 0;
        if (!u32(lo) || !u32(hi))
            return false;
        v = static_cast<std::uint64_t>(lo) |
            (static_cast<std::uint64_t>(hi) << 32);
        return true;
    }
    bool f64(double &v)
    {
        std::uint64_t word = 0;
        if (!u64(word))
            return false;
        v = std::bit_cast<double>(word);
        return true;
    }
    /** Read a u32-length-prefixed string; rejects lengths past the
     *  end of the buffer before allocating. */
    bool str(std::string &out)
    {
        std::uint32_t len = 0;
        if (!u32(len) || size_ - pos_ < len)
            return false;
        out.assign(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return true;
    }
    bool bytes(void *p, std::size_t n)
    {
        if (size_ - pos_ < n)
            return false;
        std::memcpy(p, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace fasttrack::net

#endif // FT_NET_WIRE_HPP
