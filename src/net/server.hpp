/**
 * @file
 * Generic framed-protocol server: accept loop, per-session threads,
 * version/schema handshake, bounded per-session request queues with
 * TCP backpressure, and idle timeouts. The simulation-specific
 * request handling (decode sweep points, run them on the local pool,
 * stream results) plugs in as a Handler — see sim/ftd_server.hpp,
 * which builds the ftd daemon on top of this.
 *
 * Session lifecycle (docs/distributed.md):
 *
 *   accept -> expect hello (validated against kWireVersion and the
 *   configured schema) -> helloAck(granted window) -> serve batches
 *   of requests until goodbye / idle timeout / protocol error /
 *   stop().
 *
 * Backpressure: a session reads at most maxPending requests off the
 * socket before it stops reading and runs the handler; while the
 * handler runs, the kernel's TCP window throttles the client. The
 * pending batch IS the bounded per-session queue — there is no
 * unbounded buffering anywhere on the server side.
 *
 * Failure semantics: malformed, truncated, checksum-failing or
 * stale-version frames terminate only the offending session (after
 * an error frame when the stream is still writable); the server and
 * its other sessions keep running.
 */

#ifndef FT_NET_SERVER_HPP
#define FT_NET_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace fasttrack::net {

/** Frame-server knobs (defaults suit loopback CI runs). */
struct ServerConfig
{
    /** Bind address; loopback by default (an operator must opt in
     *  to exposure beyond the host). */
    std::string host = "127.0.0.1";
    /** 0 = ephemeral; boundPort() reports the actual port. */
    std::uint16_t port = 0;
    /** Application schema version advertised in helloAck and
     *  required of clients (the sweep-cache schema for ftd). */
    std::uint32_t schemaVersion = 0;
    /** Concurrent session cap; further clients get kErrOverloaded. */
    unsigned maxSessions = 8;
    /** Bounded per-session request queue (pipeline window). */
    std::uint32_t maxPending = 256;
    /** Close a session after this long with no complete frame. */
    int idleTimeoutMs = 30'000;
    /** Per-wait bound once inside a frame or while writing. */
    int ioTimeoutMs = 10'000;
    /** Bound on one reassembled multi-frame message (snapshot
     *  requests); larger chains end the session as malformed. */
    std::uint64_t maxMessageBytes = kDefaultMaxMessageBytes;
    /**
     * Fault injection for tests: when nonzero, hard-close each
     * session after this many response frames, simulating a worker
     * killed mid-sweep. 0 = off.
     */
    std::uint64_t dropAfterFrames = 0;
};

/** Lifetime counters (atomic; safe to read concurrently). */
struct ServerStats
{
    std::uint64_t sessionsAccepted = 0;
    /** Sessions refused at the cap (kErrOverloaded). */
    std::uint64_t sessionsRejected = 0;
    std::uint64_t framesIn = 0;
    std::uint64_t framesOut = 0;
    /** Sessions ended by malformed/stale/corrupt input. */
    std::uint64_t protocolErrors = 0;
    /** Sessions ended by the idle timeout. */
    std::uint64_t idleTimeouts = 0;
    /** Request frames handed to the handler. */
    std::uint64_t requestsServed = 0;
    /** Sessions hard-closed by dropAfterFrames fault injection. */
    std::uint64_t injectedDrops = 0;
};

class FrameServer
{
  public:
    /**
     * Handler for one batch of request frames (arrival order, size
     * 1..maxPending). Returns the response frames to stream back, in
     * order. Runs on the session's thread; may block (it typically
     * fans out to the work-stealing pool).
     */
    using Handler =
        std::function<std::vector<Frame>(std::vector<Frame> &&)>;

    FrameServer(ServerConfig config, Handler handler);
    ~FrameServer();
    FrameServer(const FrameServer &) = delete;
    FrameServer &operator=(const FrameServer &) = delete;

    /** Bind + listen + start the accept thread. False (with @p error
     *  set) if the bind fails. */
    bool start(std::string &error);

    /** The port actually bound (after start()). */
    std::uint16_t boundPort() const;

    /** Stop accepting, shut every live session's socket, join all
     *  threads. Idempotent. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    ServerStats stats() const;

    const ServerConfig &config() const { return config_; }

  private:
    struct Session
    {
        std::shared_ptr<Socket> socket;
        /** Set by the session thread as its last act. The socket fd
         *  is only closed (by Session destruction) after observing
         *  done and joining, so stop()'s shutdownBoth() never races
         *  a close() — the session thread itself only ever shuts
         *  down, it never closes. */
        std::shared_ptr<std::atomic<bool>> done;
        std::thread thread;
    };

    void acceptLoop();
    void runSession(std::shared_ptr<Socket> socket,
                    std::shared_ptr<std::atomic<bool>> done);
    /** Drop finished sessions from sessions_ (called on accept). */
    void reapSessions();

    ServerConfig config_;
    Handler handler_;
    Listener listener_;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    mutable Mutex sessionsMutex_;
    std::vector<Session> sessions_ FT_GUARDED_BY(sessionsMutex_);
    std::atomic<unsigned> activeSessions_{0};

    std::atomic<std::uint64_t> sessionsAccepted_{0};
    std::atomic<std::uint64_t> sessionsRejected_{0};
    std::atomic<std::uint64_t> framesIn_{0};
    std::atomic<std::uint64_t> framesOut_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};
    std::atomic<std::uint64_t> idleTimeouts_{0};
    std::atomic<std::uint64_t> requestsServed_{0};
    std::atomic<std::uint64_t> injectedDrops_{0};
};

} // namespace fasttrack::net

#endif // FT_NET_SERVER_HPP
