#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace fasttrack::net {

namespace {

/** Wait for @p events on @p fd; true when ready. */
bool
waitReady(int fd, short events, int timeout_ms)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return (pfd.revents &
                    (events | POLLERR | POLLHUP | POLLNVAL)) != 0;
        if (rc == 0)
            return false; // timeout
        if (errno != EINTR)
            return false;
        // EINTR: retry with the same budget. Slightly lengthens the
        // total wait, but avoids reading a clock to re-arm.
    }
}

void
setCloexecNodelay(int fd)
{
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

const char *
toString(IoStatus status)
{
    switch (status) {
    case IoStatus::ok:
        return "ok";
    case IoStatus::closed:
        return "closed";
    case IoStatus::timeout:
        return "timeout";
    case IoStatus::error:
        return "error";
    }
    return "?";
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

IoStatus
Socket::sendAll(const void *data, std::size_t n, int timeout_ms)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t rc =
            ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
        if (rc > 0) {
            sent += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!waitReady(fd_, POLLOUT, timeout_ms))
                return IoStatus::timeout;
            continue;
        }
        if (rc < 0 && errno == EINTR)
            continue;
        return errno == EPIPE || errno == ECONNRESET
                   ? IoStatus::closed
                   : IoStatus::error;
    }
    return IoStatus::ok;
}

IoStatus
Socket::recvAll(void *data, std::size_t n, int first_timeout_ms,
                int timeout_ms)
{
    auto *p = static_cast<std::uint8_t *>(data);
    std::size_t got = 0;
    int budget = first_timeout_ms;
    while (got < n) {
        if (!waitReady(fd_, POLLIN, budget))
            return IoStatus::timeout;
        budget = timeout_ms; // idle budget only guards the first byte
        const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
        if (rc > 0) {
            got += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc == 0)
            return IoStatus::closed;
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return errno == ECONNRESET ? IoStatus::closed
                                   : IoStatus::error;
    }
    return IoStatus::ok;
}

bool
Socket::readable() const
{
    if (fd_ < 0)
        return false;
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    return ::poll(&pfd, 1, 0) > 0 &&
           (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

Socket
connectTo(const std::string &host, std::uint16_t port,
          int timeout_ms, std::string &error)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_protocol = IPPROTO_TCP;

    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int rc =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
        error = "resolve '" + host + "': " + ::gai_strerror(rc);
        return Socket();
    }

    Socket out;
    error = "no usable address";
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                ai->ai_protocol);
        if (fd < 0) {
            error = std::strerror(errno);
            continue;
        }
        setCloexecNodelay(fd);
        // Non-blocking connect so the handshake honours timeout_ms.
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        const int crc =
            ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        bool connected = crc == 0;
        if (!connected && errno == EINPROGRESS) {
            if (waitReady(fd, POLLOUT, timeout_ms)) {
                int soerr = 0;
                socklen_t len = sizeof(soerr);
                if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr,
                                 &len) == 0 &&
                    soerr == 0) {
                    connected = true;
                } else {
                    error = std::strerror(soerr ? soerr : EINVAL);
                }
            } else {
                error = "connect timeout";
            }
        } else if (!connected) {
            error = std::strerror(errno);
        }
        if (!connected) {
            ::close(fd);
            continue;
        }
        ::fcntl(fd, F_SETFL, flags); // back to blocking
        out = Socket(fd);
        break;
    }
    ::freeaddrinfo(res);
    return out;
}

bool
Listener::open(const std::string &host, std::uint16_t port,
               std::string &error)
{
    close();
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_protocol = IPPROTO_TCP;
    hints.ai_flags = AI_PASSIVE;

    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 service.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
        error = "resolve '" + host + "': " + ::gai_strerror(rc);
        return false;
    }

    error = "no usable address";
    for (struct addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                                ai->ai_protocol);
        if (fd < 0) {
            error = std::strerror(errno);
            continue;
        }
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 64) != 0) {
            error = std::strerror(errno);
            ::close(fd);
            continue;
        }
        struct sockaddr_storage bound;
        socklen_t blen = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0) {
            if (bound.ss_family == AF_INET)
                port_ = ntohs(
                    reinterpret_cast<sockaddr_in *>(&bound)->sin_port);
            else if (bound.ss_family == AF_INET6)
                port_ = ntohs(reinterpret_cast<sockaddr_in6 *>(&bound)
                                  ->sin6_port);
        }
        fd_ = fd;
        break;
    }
    ::freeaddrinfo(res);
    return fd_ >= 0;
}

Socket
Listener::accept(int timeout_ms)
{
    if (fd_ < 0 || !waitReady(fd_, POLLIN, timeout_ms))
        return Socket();
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0)
        return Socket();
    setCloexecNodelay(fd);
    return Socket(fd);
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        port_ = 0;
    }
}

} // namespace fasttrack::net
