#include "net/endpoint.hpp"

#include <cstdlib>

namespace fasttrack::net {

bool
parseEndpoint(const std::string &text, Endpoint &out,
              std::string &error)
{
    std::string host;
    std::string port_text;
    if (!text.empty() && text.front() == '[') {
        // Bracketed IPv6 literal: [addr]:port
        const std::size_t close = text.find(']');
        if (close == std::string::npos ||
            close + 1 >= text.size() || text[close + 1] != ':') {
            error = "'" + text + "': expected [ipv6]:port";
            return false;
        }
        host = text.substr(1, close - 1);
        port_text = text.substr(close + 2);
    } else {
        const std::size_t colon = text.rfind(':');
        if (colon == std::string::npos) {
            error = "'" + text + "': expected host:port";
            return false;
        }
        host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }

    if (host.empty()) {
        error = "'" + text + "': empty host";
        return false;
    }
    if (port_text.empty()) {
        error = "'" + text + "': empty port";
        return false;
    }
    char *end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == port_text.c_str() || *end != '\0') {
        error = "'" + text + "': port is not a number";
        return false;
    }
    if (port < 1 || port > 65535) {
        error = "'" + text + "': port must be in 1..65535";
        return false;
    }
    out.host = host;
    out.port = static_cast<std::uint16_t>(port);
    return true;
}

bool
parseEndpointList(const std::string &text, std::vector<Endpoint> &out,
                  std::string &error)
{
    std::vector<Endpoint> parsed;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(start, comma - start);
        if (item.empty()) {
            error = "empty endpoint in list '" + text + "'";
            return false;
        }
        Endpoint ep;
        if (!parseEndpoint(item, ep, error))
            return false;
        parsed.push_back(ep);
        start = comma + 1;
        if (comma == text.size())
            break;
    }
    if (parsed.empty()) {
        error = "empty endpoint list";
        return false;
    }
    out = std::move(parsed);
    return true;
}

int
backoffDelayMs(unsigned attempt, int initial_ms, int cap_ms)
{
    if (attempt == 0 || initial_ms <= 0)
        return 0;
    long delay = initial_ms;
    for (unsigned i = 1; i < attempt && delay < cap_ms; ++i)
        delay *= 2;
    if (delay > cap_ms)
        delay = cap_ms;
    return static_cast<int>(delay);
}

} // namespace fasttrack::net
