/**
 * @file
 * Remote endpoint addressing and the client retry/backoff policy of
 * the distributed sweep fabric (docs/distributed.md).
 *
 * Endpoint syntax is the `--remote` flag's `host:port`, with a
 * comma-separated list for multi-node fan-out. Parsing is strict —
 * empty hosts, missing colons, non-numeric or out-of-range ports
 * (0 and >65535) are rejected with a message, matching the
 * strict-error style of the other bench flags — so a typo aborts
 * the run instead of silently sweeping locally.
 */

#ifndef FT_NET_ENDPOINT_HPP
#define FT_NET_ENDPOINT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace fasttrack::net {

/** One remote ftd endpoint. */
struct Endpoint
{
    std::string host;
    std::uint16_t port = 0;

    std::string label() const
    {
        return host + ":" + std::to_string(port);
    }
    bool operator==(const Endpoint &other) const
    {
        return host == other.host && port == other.port;
    }
};

/**
 * Parse `host:port`. False (with @p error set) on empty host,
 * missing/duplicate separator in the port field, non-numeric port,
 * or a port outside 1..65535. An IPv6 literal uses brackets:
 * `[::1]:9000`.
 */
bool parseEndpoint(const std::string &text, Endpoint &out,
                   std::string &error);

/** Parse `host:port[,host:port...]`; empty list items are errors. */
bool parseEndpointList(const std::string &text,
                       std::vector<Endpoint> &out, std::string &error);

/**
 * Exponential backoff schedule for reconnect attempts: delay before
 * attempt @p attempt (0-based; attempt 0 is immediate),
 * min(initial << (attempt-1), cap) milliseconds afterwards. Pure —
 * the caller owns the sleeping — so the policy is unit-testable and
 * clock-free.
 */
int backoffDelayMs(unsigned attempt, int initial_ms, int cap_ms);

} // namespace fasttrack::net

#endif // FT_NET_ENDPOINT_HPP
