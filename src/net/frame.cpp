#include "net/frame.hpp"

#include <cstring>
#include <string>

#include "common/fnv1a.hpp"
#include "net/wire.hpp"

namespace fasttrack::net {

namespace {

/** Serialize the 24-byte header into @p w. */
void
encodeHeader(WireWriter &w, const Frame &frame)
{
    w.u32(kFrameMagic);
    w.u32(kWireVersion);
    w.u16(static_cast<std::uint16_t>(frame.type));
    w.u16(frame.partial ? kFlagPartial : std::uint16_t{0});
    w.u64(frame.requestId);
    w.u32(static_cast<std::uint32_t>(frame.payload.size()));
}

/** Validate a header buffer; fills type/requestId/payload length. */
FrameStatus
parseHeader(const std::uint8_t *bytes, Frame &out,
            std::uint32_t &payload_bytes)
{
    WireReader r(bytes, kFrameHeaderBytes);
    std::uint32_t magic = 0, version = 0;
    std::uint16_t type = 0, flags = 0;
    std::uint64_t request_id = 0;
    std::uint32_t length = 0;
    if (!r.u32(magic) || !r.u32(version) || !r.u16(type) ||
        !r.u16(flags) || !r.u64(request_id) || !r.u32(length))
        return FrameStatus::truncated; // cannot happen: fixed size
    if (magic != kFrameMagic)
        return FrameStatus::badMagic;
    if (version != kWireVersion)
        return FrameStatus::badVersion;
    if ((flags & ~kFlagPartial) != 0 || length > kMaxFramePayload)
        return FrameStatus::malformed;
    out.type = static_cast<MessageType>(type);
    out.requestId = request_id;
    out.partial = (flags & kFlagPartial) != 0;
    payload_bytes = length;
    return FrameStatus::ok;
}

} // namespace

const char *
toString(FrameStatus status)
{
    switch (status) {
    case FrameStatus::ok:
        return "ok";
    case FrameStatus::closed:
        return "closed";
    case FrameStatus::timeout:
        return "timeout";
    case FrameStatus::truncated:
        return "truncated";
    case FrameStatus::badMagic:
        return "bad-magic";
    case FrameStatus::badVersion:
        return "bad-version";
    case FrameStatus::malformed:
        return "malformed";
    case FrameStatus::badChecksum:
        return "bad-checksum";
    case FrameStatus::ioError:
        return "io-error";
    }
    return "?";
}

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    WireWriter w;
    encodeHeader(w, frame);
    w.bytes(frame.payload.data(), frame.payload.size());
    Fnv1a check;
    check.addBytes(w.buffer().data(), w.buffer().size());
    w.u64(check.value());
    return w.take();
}

FrameStatus
decodeFrame(const std::vector<std::uint8_t> &bytes, Frame &out)
{
    if (bytes.size() < kFrameHeaderBytes + kFrameTrailerBytes)
        return FrameStatus::truncated;
    Frame frame;
    std::uint32_t payload_bytes = 0;
    const FrameStatus header =
        parseHeader(bytes.data(), frame, payload_bytes);
    if (header != FrameStatus::ok)
        return header;
    const std::size_t want =
        kFrameHeaderBytes + payload_bytes + kFrameTrailerBytes;
    if (bytes.size() < want)
        return FrameStatus::truncated;
    if (bytes.size() > want)
        return FrameStatus::malformed;

    Fnv1a check;
    check.addBytes(bytes.data(), kFrameHeaderBytes + payload_bytes);
    WireReader trailer(
        bytes.data() + kFrameHeaderBytes + payload_bytes,
        kFrameTrailerBytes);
    std::uint64_t recorded = 0;
    trailer.u64(recorded);
    if (check.value() != recorded)
        return FrameStatus::badChecksum;

    frame.payload.assign(bytes.begin() +
                             static_cast<std::ptrdiff_t>(
                                 kFrameHeaderBytes),
                         bytes.begin() +
                             static_cast<std::ptrdiff_t>(
                                 kFrameHeaderBytes + payload_bytes));
    out = std::move(frame);
    return FrameStatus::ok;
}

FrameStatus
recvFrame(Socket &socket, Frame &out, int idle_timeout_ms,
          int io_timeout_ms)
{
    std::uint8_t header[kFrameHeaderBytes];
    switch (socket.recvAll(header, sizeof(header), idle_timeout_ms,
                           io_timeout_ms)) {
    case IoStatus::ok:
        break;
    case IoStatus::closed:
        return FrameStatus::closed;
    case IoStatus::timeout:
        return FrameStatus::timeout;
    case IoStatus::error:
        return FrameStatus::ioError;
    }

    Frame frame;
    std::uint32_t payload_bytes = 0;
    const FrameStatus status =
        parseHeader(header, frame, payload_bytes);
    if (status != FrameStatus::ok)
        return status;

    // Header validated first, so a forged length can never force an
    // allocation beyond kMaxFramePayload.
    std::vector<std::uint8_t> rest(payload_bytes +
                                   kFrameTrailerBytes);
    switch (socket.recvAll(rest.data(), rest.size(), io_timeout_ms,
                           io_timeout_ms)) {
    case IoStatus::ok:
        break;
    case IoStatus::closed:
        return FrameStatus::truncated; // EOF inside a frame
    case IoStatus::timeout:
        return FrameStatus::timeout;
    case IoStatus::error:
        return FrameStatus::ioError;
    }

    Fnv1a check;
    check.addBytes(header, sizeof(header));
    check.addBytes(rest.data(), payload_bytes);
    WireReader trailer(rest.data() + payload_bytes,
                       kFrameTrailerBytes);
    std::uint64_t recorded = 0;
    trailer.u64(recorded);
    if (check.value() != recorded)
        return FrameStatus::badChecksum;

    rest.resize(payload_bytes);
    frame.payload = std::move(rest);
    out = std::move(frame);
    return FrameStatus::ok;
}

FrameStatus
sendFrame(Socket &socket, const Frame &frame, int io_timeout_ms)
{
    const std::vector<std::uint8_t> bytes = encodeFrame(frame);
    switch (socket.sendAll(bytes.data(), bytes.size(),
                           io_timeout_ms)) {
    case IoStatus::ok:
        return FrameStatus::ok;
    case IoStatus::closed:
        return FrameStatus::closed;
    case IoStatus::timeout:
        return FrameStatus::timeout;
    case IoStatus::error:
        return FrameStatus::ioError;
    }
    return FrameStatus::ioError;
}

FrameStatus
sendMessage(Socket &socket, const Frame &frame, int io_timeout_ms,
            std::size_t max_fragment)
{
    if (max_fragment == 0 || max_fragment > kMaxFramePayload)
        max_fragment = kMaxFramePayload;
    const std::uint8_t *data = frame.payload.data();
    std::size_t remaining = frame.payload.size();
    do {
        const std::size_t take =
            remaining < max_fragment ? remaining : max_fragment;
        Frame fragment;
        fragment.type = frame.type;
        fragment.requestId = frame.requestId;
        fragment.partial = take < remaining;
        fragment.payload.assign(data, data + take);
        const FrameStatus status =
            sendFrame(socket, fragment, io_timeout_ms);
        if (status != FrameStatus::ok)
            return status;
        data += take;
        remaining -= take;
    } while (remaining > 0);
    return FrameStatus::ok;
}

FrameStatus
recvMessage(Socket &socket, Frame &out, int idle_timeout_ms,
            int io_timeout_ms, std::uint64_t max_message_bytes)
{
    Frame first;
    FrameStatus status =
        recvFrame(socket, first, idle_timeout_ms, io_timeout_ms);
    if (status != FrameStatus::ok)
        return status;
    if (first.payload.size() > max_message_bytes)
        return FrameStatus::malformed;
    // Every non-final fragment must carry payload: together with the
    // byte budget this bounds a hostile chain to max_message_bytes
    // fragments, so a peer streaming empty kFlagPartial frames cannot
    // pin this thread forever.
    if (first.partial && first.payload.empty())
        return FrameStatus::malformed;
    while (first.partial) {
        Frame next;
        status = recvFrame(socket, next, io_timeout_ms, io_timeout_ms);
        if (status != FrameStatus::ok)
            // A clean close between fragments still ends mid-message.
            return status == FrameStatus::closed
                       ? FrameStatus::truncated
                       : status;
        if (next.type != first.type ||
            next.requestId != first.requestId)
            return FrameStatus::malformed;
        if (next.partial && next.payload.empty())
            return FrameStatus::malformed;
        if (first.payload.size() + next.payload.size() >
            max_message_bytes)
            return FrameStatus::malformed;
        first.payload.insert(first.payload.end(),
                             next.payload.begin(),
                             next.payload.end());
        first.partial = next.partial;
    }
    out = std::move(first);
    return FrameStatus::ok;
}

Frame
makeErrorFrame(std::uint64_t request_id, std::uint32_t code,
               const std::string &message)
{
    Frame frame;
    frame.type = MessageType::error;
    frame.requestId = request_id;
    WireWriter w;
    w.u32(code);
    w.str(message);
    frame.payload = w.take();
    return frame;
}

bool
parseErrorFrame(const Frame &frame, std::uint32_t &code,
                std::string &message)
{
    if (frame.type != MessageType::error)
        return false;
    WireReader r(frame.payload);
    return r.u32(code) && r.str(message) && r.atEnd();
}

} // namespace fasttrack::net
